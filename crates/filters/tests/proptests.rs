//! Property-based tests for event-domain filters.

use ebbiot_events::{stream, Event, Polarity, SensorGeometry};
use ebbiot_filters::{filter_stream, EventFilter, FilterChain, NnFilter, RefractoryFilter};
use proptest::prelude::*;

const W: u16 = 64;
const H: u16 = 48;

fn geometry() -> SensorGeometry {
    SensorGeometry::new(W, H)
}

fn arb_stream() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((0u64..2_000_000, 0..W, 0..H, any::<bool>()), 0..300).prop_map(
        |specs| {
            let mut events: Vec<Event> = specs
                .into_iter()
                .map(|(t, x, y, on)| {
                    Event::new(x, y, t, if on { Polarity::On } else { Polarity::Off })
                })
                .collect();
            stream::sort_by_time(&mut events);
            events
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filters_only_remove_events(events in arb_stream()) {
        let mut nn = NnFilter::paper_default(geometry());
        let kept = filter_stream(&mut nn, &events);
        prop_assert!(kept.len() <= events.len());
        // Output is a subsequence: ordered and all members of the input.
        prop_assert!(stream::is_time_ordered(&kept));
        let mut iter = events.iter();
        for k in &kept {
            prop_assert!(iter.any(|e| e == k), "kept event not in input order");
        }
    }

    #[test]
    fn refractory_enforces_min_gap_per_pixel(
        events in arb_stream(),
        gap in 1_000u64..100_000,
    ) {
        let mut filter = RefractoryFilter::new(geometry(), gap);
        let kept = filter_stream(&mut filter, &events);
        let mut last: std::collections::HashMap<(u16, u16), u64> = Default::default();
        for e in &kept {
            if let Some(&prev) = last.get(&e.pixel()) {
                prop_assert!(e.t - prev >= gap, "gap violated: {} after {}", e.t, prev);
            }
            last.insert(e.pixel(), e.t);
        }
    }

    #[test]
    fn nn_filter_is_deterministic_and_reset_restores_state(events in arb_stream()) {
        let mut filter = NnFilter::paper_default(geometry());
        let first = filter_stream(&mut filter, &events);
        filter.reset();
        let second = filter_stream(&mut filter, &events);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn chain_keeps_subset_of_each_stage(events in arb_stream()) {
        // chain(refractory, nn) ⊆ refractory alone.
        let mut refr_alone = RefractoryFilter::new(geometry(), 2_000);
        let refr_kept = filter_stream(&mut refr_alone, &events);

        let mut chain = FilterChain::new()
            .with(RefractoryFilter::new(geometry(), 2_000))
            .with(NnFilter::paper_default(geometry()));
        let chain_kept = filter_stream(&mut chain, &events);
        prop_assert!(chain_kept.len() <= refr_kept.len());
        for e in &chain_kept {
            prop_assert!(refr_kept.contains(e));
        }
    }

    #[test]
    fn dense_bursts_pass_sparse_noise_fails(
        cx in 4..W - 4,
        cy in 4..H - 4,
        t0 in 0u64..1_000_000,
    ) {
        // A 3x3 burst within 1 ms: everything after the first event passes.
        let mut filter = NnFilter::paper_default(geometry());
        let mut passed = 0;
        let mut total = 0;
        for (k, (dx, dy)) in [(0i32, 0i32), (1, 0), (0, 1), (-1, 0), (0, -1), (1, 1)]
            .iter()
            .enumerate()
        {
            let e = Event::on(
                (i32::from(cx) + dx) as u16,
                (i32::from(cy) + dy) as u16,
                t0 + k as u64 * 100,
            );
            total += 1;
            if filter.keep(&e) {
                passed += 1;
            }
        }
        prop_assert_eq!(passed, total - 1, "all but the first burst event pass");
        // A lone event far away much later is rejected.
        let lone = Event::on(2, 2, t0 + 60_000_000);
        prop_assert!(!filter.keep(&lone));
    }

    #[test]
    fn nn_ops_scale_linearly_with_events(events in arb_stream()) {
        let mut filter = NnFilter::paper_default(geometry());
        let in_bounds = events.len() as u64;
        let _ = filter_stream(&mut filter, &events);
        // Eq. 2: exactly (2*(p^2-1) + Bt) ops per in-bounds event.
        prop_assert_eq!(filter.ops().total(), in_bounds * 32);
    }
}

//! Event-domain noise filters.
//!
//! NVS pixels produce spurious background-activity events even in a static
//! scene (§II-A: "noise prevalent in such sensors invariably lead to
//! spurious spikes even in the absence of any objects"). A *fully*
//! event-based pipeline must therefore denoise the stream before tracking;
//! the EBBIOT paper's EBMS baseline runs behind the nearest-neighbour
//! filter of Padala et al., whose cost model is Eq. 2:
//!
//! ```text
//! C_NN-filt = (2 (p^2 - 1) + Bt) * n        [ops per frame]
//! M_NN-filt = Bt * A * B                    [bits]
//! ```
//!
//! This crate implements:
//!
//! * [`NnFilter`] — the nearest-neighbour filter: an event is signal when
//!   some pixel in its `p x p` neighbourhood fired within the support
//!   window,
//! * [`RefractoryFilter`] — drops events from a pixel within its
//!   refractory period (a common pre-filter on real sensors),
//! * [`polarity::PolarityFilter`] — keeps a single polarity,
//! * [`EventFilter`] — the streaming-filter trait, plus [`FilterChain`]
//!   for composition and [`filter_stream`] for batch use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod nn_filter;
pub mod polarity;
pub mod refractory;

pub use chain::{filter_stream, FilterChain};
pub use nn_filter::NnFilter;
pub use refractory::RefractoryFilter;

use ebbiot_events::{Event, OpsCounter};

/// A streaming event filter: sees each event once, in time order, and
/// decides whether it is signal (`true`) or noise (`false`).
///
/// Filters are stateful (timestamp maps etc.); [`EventFilter::reset`]
/// clears that state for reuse across recordings.
pub trait EventFilter {
    /// Processes one event, returning `true` to keep it.
    fn keep(&mut self, event: &Event) -> bool;

    /// Clears internal state.
    fn reset(&mut self);

    /// Runtime op counter for this filter.
    fn ops(&self) -> &OpsCounter;

    /// Resets the op counter.
    fn reset_ops(&mut self);
}

//! Polarity selection filter.

use ebbiot_events::{Event, OpsCounter, Polarity};

use crate::EventFilter;

/// Keeps only events of one polarity.
///
/// Some trackers (and some recordings) use ON events only; the EBBI itself
/// ignores polarity, but a polarity filter ahead of an event-based tracker
/// halves its input rate at the cost of thinner silhouettes.
#[derive(Debug, Clone)]
pub struct PolarityFilter {
    keep: Polarity,
    ops: OpsCounter,
}

impl PolarityFilter {
    /// Creates a filter keeping only `keep`-polarity events.
    #[must_use]
    pub fn new(keep: Polarity) -> Self {
        Self { keep, ops: OpsCounter::new() }
    }

    /// The polarity this filter keeps.
    #[must_use]
    pub const fn polarity(&self) -> Polarity {
        self.keep
    }
}

impl EventFilter for PolarityFilter {
    fn keep(&mut self, event: &Event) -> bool {
        self.ops.compare(1);
        event.polarity == self.keep
    }

    fn reset(&mut self) {}

    fn ops(&self) -> &OpsCounter {
        &self.ops
    }

    fn reset_ops(&mut self) {
        self.ops.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_matching_polarity_only() {
        let mut f = PolarityFilter::new(Polarity::On);
        assert!(f.keep(&Event::on(0, 0, 0)));
        assert!(!f.keep(&Event::off(0, 0, 1)));
    }

    #[test]
    fn off_variant() {
        let mut f = PolarityFilter::new(Polarity::Off);
        assert!(!f.keep(&Event::on(0, 0, 0)));
        assert!(f.keep(&Event::off(0, 0, 1)));
        assert_eq!(f.polarity(), Polarity::Off);
    }

    #[test]
    fn one_comparison_per_event() {
        let mut f = PolarityFilter::new(Polarity::On);
        for t in 0..5 {
            let _ = f.keep(&Event::on(0, 0, t));
        }
        assert_eq!(f.ops().comparisons, 5);
    }
}

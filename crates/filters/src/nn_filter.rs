//! The nearest-neighbour event filter (Padala, Basu & Orchard 2018).
//!
//! For every incoming event the filter looks at the last-fire timestamps of
//! the `p x p` spatial neighbourhood (excluding the event's own pixel); the
//! event is *signal* if any neighbour fired within the support window, and
//! *noise* otherwise. Either way the event's own timestamp is written to
//! the map — noise events still provide support to later neighbours, which
//! is what makes isolated shot noise (no correlated neighbours) drop out
//! while object edges (many near-simultaneous neighbours) pass.
//!
//! Cost accounting follows Eq. 2: per event, `p^2 - 1` comparisons plus
//! `p^2 - 1` counter increments plus a `Bt`-bit memory write.

use ebbiot_events::{Event, OpsCounter, SensorGeometry, Timestamp};

use crate::EventFilter;

/// Sentinel for "pixel never fired".
const NEVER: Timestamp = Timestamp::MAX;

/// Nearest-neighbour temporal-support filter.
#[derive(Debug, Clone)]
pub struct NnFilter {
    geometry: SensorGeometry,
    /// Last-fire timestamp per pixel (`Bt` bits each in hardware; `u64`
    /// here, with the modelled width kept in `timestamp_bits`).
    last_fire: Vec<Timestamp>,
    patch: u16,
    support_window_us: u64,
    timestamp_bits: u32,
    ops: OpsCounter,
}

impl NnFilter {
    /// Default support window: 5 ms, a typical choice for traffic speeds.
    pub const DEFAULT_SUPPORT_US: u64 = 5_000;
    /// The paper's `Bt` = 16 bits per stored timestamp.
    pub const DEFAULT_TIMESTAMP_BITS: u32 = 16;

    /// Creates a filter with patch size `patch` (odd; the paper uses 3)
    /// and the given temporal support window in microseconds.
    ///
    /// # Panics
    ///
    /// Panics when `patch` is even or zero.
    #[must_use]
    pub fn new(geometry: SensorGeometry, patch: u16, support_window_us: u64) -> Self {
        assert!(patch % 2 == 1, "patch size must be odd");
        Self {
            geometry,
            last_fire: vec![NEVER; geometry.num_pixels()],
            patch,
            support_window_us,
            timestamp_bits: Self::DEFAULT_TIMESTAMP_BITS,
            ops: OpsCounter::new(),
        }
    }

    /// The paper's configuration: `p = 3`, `Bt = 16`, 5 ms support.
    #[must_use]
    pub fn paper_default(geometry: SensorGeometry) -> Self {
        Self::new(geometry, 3, Self::DEFAULT_SUPPORT_US)
    }

    /// Patch size `p`.
    #[must_use]
    pub const fn patch(&self) -> u16 {
        self.patch
    }

    /// Support window in microseconds.
    #[must_use]
    pub const fn support_window_us(&self) -> u64 {
        self.support_window_us
    }

    /// Modelled timestamp width `Bt` in bits.
    #[must_use]
    pub const fn timestamp_bits(&self) -> u32 {
        self.timestamp_bits
    }

    /// Memory footprint in bits per Eq. 2: `Bt * A * B`.
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        u64::from(self.timestamp_bits) * self.geometry.num_pixels() as u64
    }

    /// The per-pixel last-fire map, row-major; entries equal to
    /// [`Timestamp::MAX`] mean "never fired". Exposed (with
    /// [`Self::set_last_fire`]) so the session-checkpoint layer can
    /// serialize the filter without the byte codec leaking in here.
    #[must_use]
    pub fn last_fire(&self) -> &[Timestamp] {
        &self.last_fire
    }

    /// Overwrites one last-fire entry — the checkpoint-restore path,
    /// used after [`EventFilter::reset`] has cleared the map.
    ///
    /// # Panics
    ///
    /// Panics when `index` is outside the pixel array; restore code must
    /// bounds-check untrusted indices first.
    pub fn set_last_fire(&mut self, index: usize, t: Timestamp) {
        self.last_fire[index] = t;
    }

    /// Overwrites the op counter with a previously saved tally — the
    /// session-checkpoint restore path.
    pub fn restore_ops(&mut self, ops: OpsCounter) {
        self.ops = ops;
    }
}

impl EventFilter for NnFilter {
    fn keep(&mut self, event: &Event) -> bool {
        if !self.geometry.contains_event(event) {
            return false;
        }
        let half = i32::from(self.patch / 2);
        let mut supported = false;
        for dy in -half..=half {
            for dx in -half..=half {
                if dx == 0 && dy == 0 {
                    continue; // own pixel gives no support
                }
                // Eq. 2 charges one comparison + one increment per
                // neighbour regardless of the outcome.
                self.ops.compare(1);
                self.ops.add(1);
                let nx = i32::from(event.x) + dx;
                let ny = i32::from(event.y) + dy;
                if nx < 0 || ny < 0 {
                    continue;
                }
                let (nx, ny) = (nx as u16, ny as u16);
                if !self.geometry.contains(nx, ny) {
                    continue;
                }
                let last = self.last_fire[self.geometry.index_of(nx, ny)];
                if last != NEVER && event.t.saturating_sub(last) <= self.support_window_us {
                    supported = true;
                }
            }
        }
        // Bt-bit timestamp write for the event's own pixel.
        self.last_fire[self.geometry.index_of(event.x, event.y)] = event.t;
        self.ops.write(u64::from(self.timestamp_bits));
        supported
    }

    fn reset(&mut self) {
        self.last_fire.fill(NEVER);
    }

    fn ops(&self) -> &OpsCounter {
        &self.ops
    }

    fn reset_ops(&mut self) {
        self.ops.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_events::Polarity;

    fn filt() -> NnFilter {
        NnFilter::new(SensorGeometry::new(32, 32), 3, 5_000)
    }

    #[test]
    fn first_event_is_noise() {
        let mut f = filt();
        assert!(!f.keep(&Event::on(10, 10, 0)), "no prior support anywhere");
    }

    #[test]
    fn neighbour_within_window_gives_support() {
        let mut f = filt();
        let _ = f.keep(&Event::on(10, 10, 0));
        assert!(f.keep(&Event::on(11, 10, 1_000)), "neighbour fired 1 ms ago");
    }

    #[test]
    fn same_pixel_does_not_support_itself() {
        let mut f = filt();
        let _ = f.keep(&Event::on(10, 10, 0));
        assert!(!f.keep(&Event::on(10, 10, 1_000)), "own pixel excluded");
    }

    #[test]
    fn support_expires_after_window() {
        let mut f = filt();
        let _ = f.keep(&Event::on(10, 10, 0));
        assert!(!f.keep(&Event::on(11, 10, 6_000)), "5 ms window elapsed");
        // Exactly at the window boundary: still supported (<=).
        let _ = f.keep(&Event::on(20, 20, 10_000));
        assert!(f.keep(&Event::on(21, 20, 15_000)));
    }

    #[test]
    fn diagonal_neighbours_support_within_p3() {
        let mut f = filt();
        let _ = f.keep(&Event::on(10, 10, 0));
        assert!(f.keep(&Event::on(11, 11, 100)));
    }

    #[test]
    fn distance_two_is_outside_p3_patch() {
        let mut f = filt();
        let _ = f.keep(&Event::on(10, 10, 0));
        assert!(!f.keep(&Event::on(12, 10, 100)));
    }

    #[test]
    fn larger_patch_extends_reach() {
        let mut f = NnFilter::new(SensorGeometry::new(32, 32), 5, 5_000);
        let _ = f.keep(&Event::on(10, 10, 0));
        assert!(f.keep(&Event::on(12, 10, 100)), "distance 2 inside 5x5");
    }

    #[test]
    fn noise_events_still_leave_support() {
        let mut f = filt();
        assert!(!f.keep(&Event::on(10, 10, 0)), "noise");
        assert!(f.keep(&Event::on(11, 10, 100)), "but it supports the next one");
    }

    #[test]
    fn border_events_are_handled() {
        let mut f = filt();
        let _ = f.keep(&Event::on(0, 0, 0));
        assert!(f.keep(&Event::on(1, 0, 100)));
        assert!(!f.keep(&Event::on(31, 31, 100)));
    }

    #[test]
    fn out_of_bounds_events_are_dropped() {
        let mut f = filt();
        assert!(!f.keep(&Event::on(100, 100, 0)));
    }

    #[test]
    fn polarity_is_irrelevant_to_support() {
        let mut f = filt();
        let _ = f.keep(&Event::new(10, 10, 0, Polarity::Off));
        assert!(f.keep(&Event::new(11, 10, 50, Polarity::On)));
    }

    #[test]
    fn reset_clears_support_map() {
        let mut f = filt();
        let _ = f.keep(&Event::on(10, 10, 0));
        f.reset();
        assert!(!f.keep(&Event::on(11, 10, 100)));
    }

    #[test]
    fn ops_match_eq2_per_event() {
        let mut f = filt();
        let _ = f.keep(&Event::on(10, 10, 0));
        // p^2 - 1 = 8 comparisons, 8 additions, Bt = 16 write units.
        assert_eq!(f.ops().comparisons, 8);
        assert_eq!(f.ops().additions, 8);
        assert_eq!(f.ops().mem_writes, 16);
        assert_eq!(f.ops().total(), 2 * 8 + 16, "the paper's 2(p^2-1)+Bt per event");
    }

    #[test]
    fn memory_bits_match_eq2() {
        let f = NnFilter::paper_default(SensorGeometry::davis240());
        assert_eq!(f.memory_bits(), 16 * 240 * 180);
        // = 86.4 kB, the paper's "8X" comparison base against 10.8 kB EBBI.
        assert_eq!(f.memory_bits() / 8, 86_400);
    }

    #[test]
    fn dense_edge_passes_isolated_noise_fails() {
        let mut f = filt();
        // Simulate a vertical edge sweeping: 5 pixels fire within 200 us.
        let edge: Vec<_> = (0..5).map(|i| Event::on(15, 10 + i, u64::from(i) * 50)).collect();
        let kept: Vec<_> = edge.iter().map(|e| f.keep(e)).collect();
        assert!(!kept[0], "first edge event has no support yet");
        assert!(kept[1..].iter().all(|&k| k), "subsequent edge events pass");
        // An isolated event far away, long after: noise.
        assert!(!f.keep(&Event::on(25, 25, 1_000_000)));
    }
}

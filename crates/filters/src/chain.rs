//! Filter composition and batch helpers.

use ebbiot_events::{Event, OpsCounter};

use crate::EventFilter;

/// A sequential chain of filters: an event is kept only if every stage
/// keeps it. Stages after the first rejection are *not* run (short-circuit,
/// as a hardware pipeline would gate its clock).
pub struct FilterChain {
    stages: Vec<Box<dyn EventFilter>>,
    ops: OpsCounter,
}

impl FilterChain {
    /// Creates an empty chain (keeps everything).
    #[must_use]
    pub fn new() -> Self {
        Self { stages: Vec::new(), ops: OpsCounter::new() }
    }

    /// Appends a stage, builder style.
    #[must_use]
    pub fn with(mut self, stage: impl EventFilter + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Number of stages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Default for FilterChain {
    fn default() -> Self {
        Self::new()
    }
}

impl EventFilter for FilterChain {
    fn keep(&mut self, event: &Event) -> bool {
        self.stages.iter_mut().all(|s| s.keep(event))
    }

    fn reset(&mut self) {
        for s in &mut self.stages {
            s.reset();
        }
    }

    fn ops(&self) -> &OpsCounter {
        // The chain's own counter is an aggregate refreshed lazily; callers
        // wanting exact per-stage numbers should query the stages they own
        // before boxing. We keep a running aggregate instead:
        &self.ops
    }

    fn reset_ops(&mut self) {
        self.ops.reset();
        for s in &mut self.stages {
            s.reset_ops();
        }
    }
}

impl core::fmt::Debug for FilterChain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "FilterChain({} stages)", self.stages.len())
    }
}

/// Runs a filter over a whole stream, returning the kept events.
pub fn filter_stream(filter: &mut impl EventFilter, events: &[Event]) -> Vec<Event> {
    events.iter().filter(|e| filter.keep(e)).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NnFilter, RefractoryFilter};
    use ebbiot_events::SensorGeometry;

    fn geom() -> SensorGeometry {
        SensorGeometry::new(32, 32)
    }

    #[test]
    fn empty_chain_keeps_everything() {
        let mut c = FilterChain::new();
        assert!(c.is_empty());
        assert!(c.keep(&Event::on(1, 1, 0)));
    }

    #[test]
    fn chain_requires_all_stages_to_pass() {
        let mut c = FilterChain::new()
            .with(RefractoryFilter::new(geom(), 1_000))
            .with(NnFilter::new(geom(), 3, 5_000));
        assert_eq!(c.len(), 2);
        // First event: passes refractory, fails NN (no support).
        assert!(!c.keep(&Event::on(10, 10, 0)));
        // Neighbour shortly after: passes both.
        assert!(c.keep(&Event::on(11, 10, 100)));
        // Same pixel again within refractory: fails stage 1.
        assert!(!c.keep(&Event::on(11, 10, 150)));
    }

    #[test]
    fn reset_propagates_to_stages() {
        let mut c = FilterChain::new().with(RefractoryFilter::new(geom(), 1_000_000));
        assert!(c.keep(&Event::on(5, 5, 0)));
        assert!(!c.keep(&Event::on(5, 5, 1)));
        c.reset();
        assert!(c.keep(&Event::on(5, 5, 2)));
    }

    #[test]
    fn filter_stream_batches() {
        let mut f = RefractoryFilter::new(geom(), 1_000);
        let events = vec![
            Event::on(1, 1, 0),
            Event::on(1, 1, 500),   // dropped
            Event::on(1, 1, 1_500), // kept
            Event::on(2, 2, 1_600), // kept
        ];
        let kept = filter_stream(&mut f, &events);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[1].t, 1_500);
    }

    #[test]
    fn short_circuit_skips_later_stages() {
        // A refractory stage rejecting duplicates means the NN filter never
        // sees them: its op counter stays at one event's worth.
        let mut refr = RefractoryFilter::new(geom(), 1_000_000);
        let _ = refr.keep(&Event::on(1, 1, 0));
        let mut chain = FilterChain::new().with(refr).with(NnFilter::new(geom(), 3, 5_000));
        let _ = chain.keep(&Event::on(1, 1, 10)); // rejected by stage 1

        // If the NN filter had run it would have charged 8 comparisons;
        // we can't inspect the boxed stage, so assert via behaviour: a
        // supported neighbour is still unsupported because the NN filter
        // never recorded (1, 1, 10).
        assert!(!chain.keep(&Event::on(2, 1, 20)));
    }
}

//! Per-pixel refractory filter.
//!
//! Real NVS pixels have a refractory period after each event; readout
//! chains often enforce a further minimum inter-event interval per pixel to
//! bound bandwidth. This filter drops any event that follows a previous
//! event *from the same pixel* within the refractory interval. It is used
//! by the simulator's self-tests and as an optional pre-filter ahead of
//! [`crate::NnFilter`] in fully event-based pipelines.

use ebbiot_events::{Event, OpsCounter, SensorGeometry, Timestamp};

use crate::EventFilter;

const NEVER: Timestamp = Timestamp::MAX;

/// Drops same-pixel events closer than the refractory period.
#[derive(Debug, Clone)]
pub struct RefractoryFilter {
    geometry: SensorGeometry,
    last_pass: Vec<Timestamp>,
    refractory_us: u64,
    ops: OpsCounter,
}

impl RefractoryFilter {
    /// Creates a filter with the given refractory period in microseconds.
    #[must_use]
    pub fn new(geometry: SensorGeometry, refractory_us: u64) -> Self {
        Self {
            geometry,
            last_pass: vec![NEVER; geometry.num_pixels()],
            refractory_us,
            ops: OpsCounter::new(),
        }
    }

    /// The refractory period in microseconds.
    #[must_use]
    pub const fn refractory_us(&self) -> u64 {
        self.refractory_us
    }
}

impl EventFilter for RefractoryFilter {
    fn keep(&mut self, event: &Event) -> bool {
        if !self.geometry.contains_event(event) {
            return false;
        }
        let idx = self.geometry.index_of(event.x, event.y);
        let last = self.last_pass[idx];
        self.ops.compare(1);
        let keep = last == NEVER || event.t.saturating_sub(last) >= self.refractory_us;
        if keep {
            self.last_pass[idx] = event.t;
            self.ops.write(1);
        }
        keep
    }

    fn reset(&mut self) {
        self.last_pass.fill(NEVER);
    }

    fn ops(&self) -> &OpsCounter {
        &self.ops
    }

    fn reset_ops(&mut self) {
        self.ops.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filt(refractory_us: u64) -> RefractoryFilter {
        RefractoryFilter::new(SensorGeometry::new(16, 16), refractory_us)
    }

    #[test]
    fn first_event_always_passes() {
        let mut f = filt(1_000);
        assert!(f.keep(&Event::on(3, 3, 0)));
    }

    #[test]
    fn event_within_refractory_is_dropped() {
        let mut f = filt(1_000);
        assert!(f.keep(&Event::on(3, 3, 0)));
        assert!(!f.keep(&Event::on(3, 3, 999)));
    }

    #[test]
    fn event_at_exact_refractory_passes() {
        let mut f = filt(1_000);
        assert!(f.keep(&Event::on(3, 3, 0)));
        assert!(f.keep(&Event::on(3, 3, 1_000)));
    }

    #[test]
    fn different_pixels_are_independent() {
        let mut f = filt(1_000);
        assert!(f.keep(&Event::on(3, 3, 0)));
        assert!(f.keep(&Event::on(4, 3, 1)));
    }

    #[test]
    fn dropped_events_do_not_extend_the_period() {
        let mut f = filt(1_000);
        assert!(f.keep(&Event::on(3, 3, 0)));
        assert!(!f.keep(&Event::on(3, 3, 500)));
        // 1_400 is >= 1_000 after the last *passed* event at t = 0.
        assert!(f.keep(&Event::on(3, 3, 1_400)));
    }

    #[test]
    fn reset_forgets_history() {
        let mut f = filt(1_000_000);
        assert!(f.keep(&Event::on(3, 3, 0)));
        f.reset();
        assert!(f.keep(&Event::on(3, 3, 1)));
    }

    #[test]
    fn out_of_bounds_dropped() {
        let mut f = filt(1_000);
        assert!(!f.keep(&Event::on(200, 200, 0)));
    }

    #[test]
    fn zero_refractory_keeps_everything() {
        let mut f = filt(0);
        assert!(f.keep(&Event::on(3, 3, 0)));
        assert!(f.keep(&Event::on(3, 3, 0)));
    }

    #[test]
    fn ops_counted_per_event() {
        let mut f = filt(1_000);
        let _ = f.keep(&Event::on(1, 1, 0));
        let _ = f.keep(&Event::on(1, 1, 10));
        assert_eq!(f.ops().comparisons, 2);
        assert_eq!(f.ops().mem_writes, 1, "only the kept event writes");
    }
}

//! Fleet engine benches: aggregate event throughput of the concurrent
//! engine at several worker counts vs per-camera sequential processing,
//! over the same 4-camera LT4 fleet.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ebbiot_baselines::registry;
use ebbiot_bench::{run_fleet_backend, run_fleet_sequential};
use ebbiot_engine::FleetOptions;
use ebbiot_sim::{DatasetPreset, FleetConfig, SimulatedRecording};
use std::hint::black_box;

fn fleet() -> Vec<SimulatedRecording> {
    FleetConfig::new(DatasetPreset::Lt4, 4).with_seconds(1.0).generate()
}

fn bench_fleet(c: &mut Criterion) {
    let fleet = fleet();
    let spec = registry::find_backend("ebbiot").expect("registered");
    let events: u64 = fleet.iter().map(|r| r.events.len() as u64).sum();

    let mut group = c.benchmark_group("fleet_4cam_lt4");
    group.throughput(Throughput::Elements(events));

    group.bench_function("sequential", |b| {
        b.iter(|| black_box(run_fleet_sequential(spec, DatasetPreset::Lt4, &fleet)));
    });

    for workers in [1usize, 2, 4, 8] {
        let options = FleetOptions { workers, queue_capacity: 32, chunk_events: 4096 };
        group.bench_function(&format!("engine_{workers}w"), |b| {
            b.iter_batched(
                || (),
                |()| black_box(run_fleet_backend(spec, DatasetPreset::Lt4, &fleet, &options)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);

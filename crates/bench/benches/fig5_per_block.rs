//! Criterion benches backing Fig. 5: wall-clock cost of every pipeline
//! block on identical, realistic frame workloads.
//!
//! The paper's Fig. 5 is an ops/memory comparison; these benches provide
//! the wall-clock analogue on this machine, with the same expected shape
//! (EBBI + median + RPN dominated by A*B work; OT and KF tiny; NN-filt +
//! EBMS scaling with the event rate).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ebbiot_baselines::{EbmsConfig, EbmsTracker, KalmanConfig, KalmanTracker};
use ebbiot_core::{
    rpn::{RegionProposalNetwork, RpnConfig},
    tracker::{OtConfig, OverlapTracker},
};
use ebbiot_events::{Event, SensorGeometry};
use ebbiot_filters::{EventFilter, NnFilter};
use ebbiot_frame::{BinaryImage, BoundingBox, EbbiAccumulator, MedianFilter};
use ebbiot_sim::DatasetPreset;
use std::hint::black_box;

/// One representative 66 ms frame of ENG traffic (events) for the
/// event-domain blocks.
fn frame_events() -> Vec<Event> {
    let rec = DatasetPreset::Eng.config().with_duration_s(2.0).generate(42);
    rec.events.iter().copied().filter(|e| e.t < 66_000).collect::<Vec<_>>()
}

/// The EBBI of that frame for the frame-domain blocks.
fn frame_image(events: &[Event]) -> BinaryImage {
    ebbiot_frame::ebbi::ebbi_from_events(SensorGeometry::davis240(), events)
}

fn bench_blocks(c: &mut Criterion) {
    let events = frame_events();
    let image = frame_image(&events);
    let filtered = MedianFilter::paper_default().apply(&image);
    let geometry = SensorGeometry::davis240();

    let mut group = c.benchmark_group("fig5_blocks");

    group.bench_function("ebbi_accumulate_frame", |b| {
        b.iter_batched(
            || EbbiAccumulator::new(geometry),
            |mut acc| {
                acc.accumulate_all(black_box(&events));
                black_box(acc.readout())
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("median_filter_3x3", |b| {
        let mut filter = MedianFilter::paper_default();
        b.iter(|| black_box(filter.apply(black_box(&image))));
    });

    group.bench_function("nn_filter_frame", |b| {
        b.iter_batched(
            || NnFilter::paper_default(geometry),
            |mut f| {
                let mut kept = 0usize;
                for e in &events {
                    if f.keep(e) {
                        kept += 1;
                    }
                }
                black_box(kept)
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("rpn_histogram", |b| {
        let mut rpn = RegionProposalNetwork::new(RpnConfig::paper_default());
        b.iter(|| black_box(rpn.propose(black_box(&filtered))));
    });

    group.bench_function("rpn_cca", |b| {
        let mut rpn = RegionProposalNetwork::new(RpnConfig {
            mode: ebbiot_core::RpnMode::ConnectedComponents,
            ..RpnConfig::paper_default()
        });
        b.iter(|| black_box(rpn.propose(black_box(&filtered))));
    });

    // Two steady proposals, matching the paper's NT ~ 2.
    let proposals =
        vec![BoundingBox::new(60.0, 90.0, 42.0, 18.0), BoundingBox::new(150.0, 110.0, 30.0, 16.0)];

    group.bench_function("ot_step_nt2", |b| {
        let mut ot = OverlapTracker::new(geometry, OtConfig::paper_default());
        let _ = ot.step(&proposals);
        b.iter(|| black_box(ot.step(black_box(&proposals))));
    });

    group.bench_function("kf_step_nt2", |b| {
        let mut kf = KalmanTracker::new(geometry, KalmanConfig::paper_default());
        let _ = kf.step(&proposals);
        b.iter(|| black_box(kf.step(black_box(&proposals))));
    });

    group.bench_function("ebms_frame_nt2", |b| {
        b.iter_batched(
            || {
                let mut t = EbmsTracker::new(geometry, EbmsConfig::paper_default());
                // Pre-seed two clusters.
                for k in 0..40u32 {
                    t.process_event(&Event::on(70 + (k % 6) as u16, 95, u64::from(k)));
                    t.process_event(&Event::on(160 + (k % 6) as u16, 115, u64::from(k)));
                }
                t
            },
            |mut t| {
                for e in &events {
                    t.process_event(e);
                }
                t.maintain(66_000);
                black_box(t.visible())
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_blocks);
criterion_main!(benches);

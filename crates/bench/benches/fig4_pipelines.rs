//! End-to-end pipeline benches backing Fig. 4's trackers: EBBIOT,
//! EBBI+KF, and NN-filt+EBMS over the same 2-second LT4 recording.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ebbiot_baselines::registry::BACKENDS;
use ebbiot_core::EbbiotConfig;
use ebbiot_sim::{DatasetPreset, SimulatedRecording};
use std::hint::black_box;

fn recording() -> SimulatedRecording {
    DatasetPreset::Lt4.config().with_duration_s(2.0).generate(42)
}

fn bench_pipelines(c: &mut Criterion) {
    let rec = recording();
    let mut group = c.benchmark_group("fig4_pipelines");
    group.throughput(Throughput::Elements(rec.events.len() as u64));

    // Every registered back-end, end to end over the same recording.
    for spec in BACKENDS {
        let id = format!("{}_2s_lt4", spec.name.replace('-', "_"));
        group.bench_function(&id, |b| {
            b.iter_batched(
                || spec.build(EbbiotConfig::paper_default(rec.geometry)),
                |mut p| black_box(p.process_recording(&rec.events, rec.duration_us)),
                BatchSize::SmallInput,
            );
        });
    }

    // The streaming path should cost the same as the batch path.
    group.bench_function("ebbiot_2s_lt4_streaming", |b| {
        b.iter_batched(
            || {
                BACKENDS
                    .iter()
                    .find(|s| s.name == "ebbiot")
                    .expect("registered")
                    .build(EbbiotConfig::paper_default(rec.geometry))
            },
            |mut p| {
                let mut frames = 0;
                for chunk in rec.events.chunks(4096) {
                    frames += p.push(chunk).len();
                }
                frames += p.finish(rec.duration_us).len();
                black_box(frames)
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);

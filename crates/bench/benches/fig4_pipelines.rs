//! End-to-end pipeline benches backing Fig. 4's trackers: EBBIOT,
//! EBBI+KF, and NN-filt+EBMS over the same 2-second LT4 recording.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ebbiot_baselines::{EbbiKfPipeline, EbmsConfig, KalmanConfig, NnEbmsPipeline};
use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
use ebbiot_sim::{DatasetPreset, SimulatedRecording};
use std::hint::black_box;

fn recording() -> SimulatedRecording {
    DatasetPreset::Lt4.config().with_duration_s(2.0).generate(42)
}

fn bench_pipelines(c: &mut Criterion) {
    let rec = recording();
    let mut group = c.benchmark_group("fig4_pipelines");
    group.throughput(Throughput::Elements(rec.events.len() as u64));

    group.bench_function("ebbiot_2s_lt4", |b| {
        b.iter_batched(
            || EbbiotPipeline::new(EbbiotConfig::paper_default(rec.geometry)),
            |mut p| black_box(p.process_recording(&rec.events, rec.duration_us)),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("ebbi_kf_2s_lt4", |b| {
        b.iter_batched(
            || {
                EbbiKfPipeline::new(
                    EbbiotConfig::paper_default(rec.geometry),
                    KalmanConfig::paper_default(),
                )
            },
            |mut p| black_box(p.process_recording(&rec.events, rec.duration_us)),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("nn_ebms_2s_lt4", |b| {
        b.iter_batched(
            || NnEbmsPipeline::new(rec.geometry, rec.frame_us, EbmsConfig::paper_default()),
            |mut p| black_box(p.process_recording(&rec.events, rec.duration_us)),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);

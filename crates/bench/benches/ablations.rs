//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * RPN downsampling (`s1 = 6, s2 = 3` vs none): the paper's second Eq. 5
//!   term and the fragmentation merging both depend on it.
//! * Histogram RPN vs the future-work CCA RPN.
//! * Median-filter front end vs NN-filter front end (frame vs event
//!   domain denoising).
//! * Overlap tracker with vs without occlusion look-ahead.

use criterion::{criterion_group, criterion_main, Criterion};
use ebbiot_core::{
    rpn::{RegionProposalNetwork, RpnConfig},
    tracker::{OtConfig, OverlapTracker},
    RpnMode,
};
use ebbiot_events::{Event, SensorGeometry};
use ebbiot_filters::{EventFilter, NnFilter};
use ebbiot_frame::{BoundingBox, MedianFilter};
use ebbiot_sim::DatasetPreset;
use std::hint::black_box;

fn setup() -> (Vec<Event>, ebbiot_frame::BinaryImage) {
    let rec = DatasetPreset::Eng.config().with_duration_s(2.0).generate(7);
    let events: Vec<Event> = rec.events.iter().copied().filter(|e| e.t < 66_000).collect();
    let image = ebbiot_frame::ebbi::ebbi_from_events(SensorGeometry::davis240(), &events);
    (events, image)
}

fn bench_ablations(c: &mut Criterion) {
    let (events, image) = setup();
    let filtered = MedianFilter::paper_default().apply(&image);
    let geometry = SensorGeometry::davis240();

    let mut group = c.benchmark_group("ablations");

    // --- RPN downsampling -------------------------------------------------
    group.bench_function("rpn_downsampled_s6x3", |b| {
        let mut rpn = RegionProposalNetwork::new(RpnConfig::paper_default());
        b.iter(|| black_box(rpn.propose(black_box(&filtered))));
    });
    group.bench_function("rpn_full_resolution_s1x1", |b| {
        let mut rpn =
            RegionProposalNetwork::new(RpnConfig { s1: 1, s2: 1, ..RpnConfig::paper_default() });
        b.iter(|| black_box(rpn.propose(black_box(&filtered))));
    });

    // --- Histogram vs CCA proposals ---------------------------------------
    group.bench_function("rpn_mode_histogram", |b| {
        let mut rpn = RegionProposalNetwork::new(RpnConfig::paper_default());
        b.iter(|| black_box(rpn.propose(black_box(&filtered))));
    });
    group.bench_function("rpn_mode_cca", |b| {
        let mut rpn = RegionProposalNetwork::new(RpnConfig {
            mode: RpnMode::ConnectedComponents,
            ..RpnConfig::paper_default()
        });
        b.iter(|| black_box(rpn.propose(black_box(&filtered))));
    });

    // --- Frame-domain vs event-domain denoising ---------------------------
    group.bench_function("denoise_median_frame", |b| {
        let mut filter = MedianFilter::paper_default();
        b.iter(|| black_box(filter.apply(black_box(&image))));
    });
    group.bench_function("denoise_nn_filter_events", |b| {
        let mut filter = NnFilter::paper_default(geometry);
        b.iter(|| {
            let mut kept = 0usize;
            for e in &events {
                if filter.keep(e) {
                    kept += 1;
                }
            }
            black_box(kept)
        });
    });

    // --- OT occlusion look-ahead -------------------------------------------
    let crossing =
        vec![BoundingBox::new(100.0, 80.0, 30.0, 16.0), BoundingBox::new(118.0, 82.0, 30.0, 16.0)];
    group.bench_function("ot_with_occlusion_lookahead", |b| {
        let mut ot = OverlapTracker::new(geometry, OtConfig::paper_default());
        let _ = ot.step(&crossing);
        b.iter(|| black_box(ot.step(black_box(&crossing))));
    });
    group.bench_function("ot_without_occlusion_lookahead", |b| {
        let cfg = OtConfig { occlusion_lookahead: 0, ..OtConfig::paper_default() };
        let mut ot = OverlapTracker::new(geometry, cfg);
        let _ = ot.step(&crossing);
        b.iter(|| black_box(ot.step(black_box(&crossing))));
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);

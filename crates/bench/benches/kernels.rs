//! Frame-kernel benches: word-parallel hot kernels vs their scalar
//! references on a realistic 240x180 EBBI (a few vehicle blobs plus
//! ~3% salt noise), per-kernel pixel throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ebbiot_bench::{synthetic_traffic_ebbi, tracker_box_tiling};
use ebbiot_events::{OpsCounter, SensorGeometry};
use ebbiot_frame::{reference, BinaryImage, CountImage, MedianFilter};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let geometry = SensorGeometry::davis240();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let img = synthetic_traffic_ebbi(geometry, 0.03, &mut rng);
    let mut scratch = BinaryImage::new(geometry);

    let mut group = c.benchmark_group("kernels_240x180");
    group.throughput(Throughput::Elements(geometry.num_pixels() as u64));

    let mut filter = MedianFilter::paper_default();
    group.bench_function("median3_word", |b| {
        b.iter(|| filter.apply_into(black_box(&img), &mut scratch));
    });
    let mut ops = OpsCounter::new();
    group.bench_function("median3_reference", |b| {
        b.iter(|| reference::median_into(black_box(&img), 3, &mut scratch, &mut ops));
    });

    group.bench_function("downsample6x3_word", |b| {
        b.iter(|| black_box(CountImage::downsample(black_box(&img), 6, 3, &mut ops)));
    });
    group.bench_function("downsample6x3_reference", |b| {
        b.iter(|| black_box(reference::downsample(black_box(&img), 6, 3, &mut ops)));
    });

    let boxes = tracker_box_tiling(geometry);
    group.bench_function("count_in_box_word", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for bx in &boxes {
                total += img.count_in_box(bx);
            }
            black_box(total)
        });
    });
    group.bench_function("count_in_box_reference", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for bx in &boxes {
                total += reference::count_in_box(&img, bx);
            }
            black_box(total)
        });
    });

    group.bench_function("readout_copy", |b| {
        b.iter(|| scratch.copy_from(black_box(&img)));
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

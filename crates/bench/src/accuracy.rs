//! The accuracy gate: CLEAR-MOT and precision/recall over the named
//! scenario matrix × tracker back-end matrix, with per-cell metric
//! floors.
//!
//! `exp_accuracy` drives this module over every scenario in
//! [`ebbiot_sim::SCENARIO_MATRIX`] and every back-end in
//! [`ebbiot_baselines::registry::BACKENDS`]. Each (scenario, back-end)
//! cell yields a [`CellMetrics`]; [`floors_for`] supplies the
//! regression floor the cell must clear. Floors are *tripwires*, not
//! aspirations: they sit safely below the currently measured values
//! (including the weak baselines' negative MOTAs) so that only a real
//! quality regression — e.g. a kernel optimization that changes tracker
//! output — trips them. See ARCHITECTURE.md §6 for how to add a
//! scenario or recalibrate a floor.

use ebbiot_baselines::registry::BackendSpec;
use ebbiot_core::{EbbiotConfig, RegionOfExclusion};
use ebbiot_eval::{evaluate_frames, evaluate_recording, IdentifiedBox};
use ebbiot_frame::BoundingBox;
use ebbiot_sim::{ScriptedScenario, SimulatedRecording};

/// The IoU threshold the accuracy gate evaluates at — the mid-grid
/// point of the paper's Fig. 4 sweep, and the threshold the existing
/// identity tests use.
pub const MOT_IOU: f32 = 0.3;

/// Builds the pipeline configuration for a scripted scenario, deriving
/// the ROE from the scenario's flicker distractors exactly as
/// [`crate::ebbiot_config_for`] does for the presets (the paper's
/// manually drawn ROE; our "manual" knowledge is the scenario script).
#[must_use]
pub fn scenario_config(scenario: &ScriptedScenario) -> EbbiotConfig {
    let roe_boxes: Vec<BoundingBox> = scenario
        .scene
        .flickers
        .iter()
        .map(|f| {
            let b = f.region;
            // One RPN cell of margin so cell-aligned proposals of the
            // flicker are reliably caught.
            BoundingBox::new(
                f32::from(b.x_min) - 6.0,
                f32::from(b.y_min) - 3.0,
                f32::from(b.width()) + 12.0,
                f32::from(b.height()) + 6.0,
            )
        })
        .collect();
    EbbiotConfig::paper_default(scenario.scene.geometry)
        .with_roe(RegionOfExclusion::new(roe_boxes))
        .with_frame_us(scenario.frame_us)
}

/// Runs one back-end over a scenario recording, keeping track ids —
/// the identity-aware sibling of [`crate::run_backend`].
#[must_use]
pub fn run_backend_identified(
    spec: &BackendSpec,
    config: EbbiotConfig,
    rec: &SimulatedRecording,
) -> Vec<Vec<IdentifiedBox>> {
    let mut pipeline = spec.build(config);
    pipeline
        .process_recording(&rec.events, rec.duration_us)
        .into_iter()
        .map(|f| f.tracks.into_iter().map(|t| IdentifiedBox::new(t.track_id, t.bbox)).collect())
        .collect()
}

/// Per-frame identified ground truth of a scenario recording.
#[must_use]
pub fn gt_identified(rec: &SimulatedRecording) -> Vec<Vec<IdentifiedBox>> {
    rec.ground_truth
        .iter()
        .map(|f| {
            f.boxes.iter().map(|b| IdentifiedBox::new(u64::from(b.object_id), b.bbox)).collect()
        })
        .collect()
}

/// All metrics of one (scenario, back-end) matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Scenario registry name.
    pub scenario: &'static str,
    /// Back-end registry name.
    pub backend: &'static str,
    /// CLEAR-MOT accuracy (can be negative; 1.0 is perfect).
    pub mota: f64,
    /// Mean IoU of matched pairs.
    pub motp: f64,
    /// Detection precision at [`MOT_IOU`].
    pub precision: f64,
    /// Detection recall at [`MOT_IOU`].
    pub recall: f64,
    /// Identity switches.
    pub id_switches: u64,
    /// Matched → unmatched transitions.
    pub fragmentations: u64,
    /// Ground truths with no matching tracker box.
    pub misses: u64,
    /// Tracker boxes matching nothing.
    pub false_positives: u64,
    /// Total ground-truth boxes.
    pub total_gt: u64,
}

/// Evaluates one back-end on one scenario recording.
#[must_use]
pub fn evaluate_cell(
    scenario: &ScriptedScenario,
    spec: &BackendSpec,
    rec: &SimulatedRecording,
) -> CellMetrics {
    let predictions = run_backend_identified(spec, scenario_config(scenario), rec);
    let gt = gt_identified(rec);
    let mot = evaluate_recording(&gt, &predictions, MOT_IOU);
    let strip = |frames: &[Vec<IdentifiedBox>]| -> Vec<Vec<BoundingBox>> {
        frames.iter().map(|f| f.iter().map(|b| b.bbox).collect()).collect()
    };
    let det = evaluate_frames(&strip(&gt), &strip(&predictions), MOT_IOU);
    CellMetrics {
        scenario: scenario.name,
        backend: spec.name,
        mota: mot.mota(),
        motp: mot.motp(),
        precision: det.pr.precision,
        recall: det.pr.recall,
        id_switches: mot.id_switches(),
        fragmentations: mot.fragmentations(),
        misses: mot.misses(),
        false_positives: mot.false_positives(),
        total_gt: mot.total_ground_truths(),
    }
}

/// The regression floor of one matrix cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricFloors {
    /// MOTA must be at least this (negative floors are legitimate for
    /// the weak baselines on hostile scenes).
    pub min_mota: f64,
    /// Precision must be at least this.
    pub min_precision: f64,
    /// Recall must be at least this.
    pub min_recall: f64,
    /// Identity switches must not exceed this.
    pub max_id_switches: u64,
}

/// The floor for one (scenario, back-end) cell.
///
/// Values were calibrated from measured seed-42 runs at both the full
/// and the `--smoke` durations, with margin (MOTA −0.15…−0.25, P/R
/// −0.10…−0.15, id switches ×2 + 2) for cross-platform float drift and
/// seed sensitivity. A regression that trips one of these changed
/// tracker behaviour, not measurement noise.
#[must_use]
pub fn floors_for(scenario: &str, backend: &str) -> MetricFloors {
    // Placeholder-permissive default for cells without a calibrated
    // entry; every registered cell below overrides it.
    let loose = MetricFloors {
        min_mota: f64::NEG_INFINITY,
        min_precision: 0.0,
        min_recall: 0.0,
        max_id_switches: u64::MAX,
    };
    let f = |min_mota: f64, min_precision: f64, min_recall: f64, max_id_switches: u64| {
        MetricFloors { min_mota, min_precision, min_recall, max_id_switches }
    };
    match (scenario, backend) {
        // EBBIOT (the paper pipeline). Dense crossings merge proposals
        // heavily at 0.3 IoU against per-object ground truth, so the
        // honest floor there is "stays near break-even", not "tracks
        // cleanly" — same for the KF baseline below.
        ("dense-crossing", "ebbiot") => f(-0.20, 0.38, 0.40, 6),
        ("long-occlusion", "ebbiot") => f(0.45, 0.80, 0.50, 2),
        ("mid-stall", "ebbiot") => f(0.50, 0.80, 0.58, 4),
        ("burst-rate", "ebbiot") => f(0.65, 0.78, 0.80, 2),
        ("night-noise", "ebbiot") => f(0.75, 0.80, 0.85, 2),
        ("flicker-distractor", "ebbiot") => f(0.45, 0.60, 0.75, 2),
        ("geometry-davis240", "ebbiot") => f(0.70, 0.80, 0.83, 2),
        ("geometry-davis346", "ebbiot") => f(0.70, 0.80, 0.82, 2),
        ("geometry-hd", "ebbiot") => f(0.75, 0.84, 0.82, 2),
        // EBBI + Kalman filter baseline: tracks nearly as well as
        // EBBIOT on these scenes.
        ("dense-crossing", "ebbi-kf") => f(-0.20, 0.38, 0.32, 8),
        ("long-occlusion", "ebbi-kf") => f(0.45, 0.80, 0.50, 2),
        ("mid-stall", "ebbi-kf") => f(0.50, 0.80, 0.58, 4),
        ("burst-rate", "ebbi-kf") => f(0.65, 0.78, 0.80, 4),
        ("night-noise", "ebbi-kf") => f(0.70, 0.78, 0.85, 2),
        ("flicker-distractor", "ebbi-kf") => f(0.40, 0.58, 0.75, 4),
        ("geometry-davis240", "ebbi-kf") => f(0.70, 0.80, 0.83, 2),
        ("geometry-davis346", "ebbi-kf") => f(0.70, 0.80, 0.82, 2),
        ("geometry-hd", "ebbi-kf") => f(0.75, 0.84, 0.82, 6),
        // NN-filt + EBMS: high recall, terrible precision, identity
        // churn — its MOTA is legitimately negative on hostile scenes
        // (and its mean-shift kernel loses the 3x-scaled HD objects
        // almost entirely). The floors bound how bad it is allowed to
        // get, which is what a weak-baseline regression gate can do.
        ("dense-crossing", "nn-ebms") => f(-1.0, 0.35, 0.70, 170),
        ("long-occlusion", "nn-ebms") => f(-4.0, 0.10, 0.45, 50),
        ("mid-stall", "nn-ebms") => f(-0.7, 0.38, 0.45, 28),
        ("burst-rate", "nn-ebms") => f(-1.0, 0.32, 0.70, 116),
        ("night-noise", "nn-ebms") => f(-1.5, 0.25, 0.75, 6),
        ("flicker-distractor", "nn-ebms") => f(-4.5, 0.10, 0.65, 44),
        ("geometry-davis240", "nn-ebms") => f(-0.6, 0.40, 0.75, 56),
        ("geometry-davis346", "nn-ebms") => f(-0.7, 0.40, 0.75, 52),
        ("geometry-hd", "nn-ebms") => f(-6.0, 0.0, 0.0, 6),
        _ => loose,
    }
}

impl MetricFloors {
    /// Human-readable floor violations of `m`, empty when the cell
    /// clears its floor.
    #[must_use]
    pub fn violations(&self, m: &CellMetrics) -> Vec<String> {
        let cell = format!("{}/{}", m.scenario, m.backend);
        let mut v = Vec::new();
        if m.mota < self.min_mota {
            v.push(format!("{cell}: MOTA {:.3} < floor {:.3}", m.mota, self.min_mota));
        }
        if m.precision < self.min_precision {
            v.push(format!(
                "{cell}: precision {:.3} < floor {:.3}",
                m.precision, self.min_precision
            ));
        }
        if m.recall < self.min_recall {
            v.push(format!("{cell}: recall {:.3} < floor {:.3}", m.recall, self.min_recall));
        }
        if m.id_switches > self.max_id_switches {
            v.push(format!("{cell}: id switches {} > cap {}", m.id_switches, self.max_id_switches));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_baselines::registry;
    use ebbiot_sim::find_scenario;

    #[test]
    fn every_matrix_cell_has_a_calibrated_floor() {
        for scenario in ebbiot_sim::SCENARIO_MATRIX {
            for backend in registry::BACKENDS {
                let floors = floors_for(scenario.name, backend.name);
                assert!(
                    floors.min_mota.is_finite() && floors.max_id_switches < u64::MAX,
                    "{}/{} lacks a calibrated floor",
                    scenario.name,
                    backend.name
                );
            }
        }
    }

    #[test]
    fn scenario_config_derives_roe_from_flickers() {
        let with = (find_scenario("flicker-distractor").unwrap().build)();
        let cfg = scenario_config(&with);
        assert_eq!(cfg.roe.regions().len(), with.scene.flickers.len());
        let without = (find_scenario("night-noise").unwrap().build)();
        assert!(scenario_config(&without).roe.regions().is_empty());
    }

    #[test]
    fn evaluate_cell_produces_consistent_counts() {
        let scenario = (find_scenario("dense-crossing").unwrap().build)();
        let rec = scenario.generate_with_duration(1, 1_500_000);
        let spec = registry::find_backend("ebbiot").unwrap();
        let cell = evaluate_cell(&scenario, spec, &rec);
        assert_eq!(cell.scenario, "dense-crossing");
        assert_eq!(cell.backend, "ebbiot");
        assert!(cell.misses <= cell.total_gt);
        assert!(cell.mota <= 1.0);
        assert!((0.0..=1.0).contains(&cell.precision));
        assert!((0.0..=1.0).contains(&cell.recall));
    }

    #[test]
    fn violations_fire_only_below_the_floor() {
        let m = CellMetrics {
            scenario: "dense-crossing",
            backend: "ebbiot",
            mota: 0.5,
            motp: 0.6,
            precision: 0.8,
            recall: 0.7,
            id_switches: 3,
            fragmentations: 1,
            misses: 10,
            false_positives: 5,
            total_gt: 100,
        };
        let clear =
            MetricFloors { min_mota: 0.4, min_precision: 0.7, min_recall: 0.6, max_id_switches: 5 };
        assert!(clear.violations(&m).is_empty());
        let trip =
            MetricFloors { min_mota: 0.6, min_precision: 0.9, min_recall: 0.8, max_id_switches: 2 };
        assert_eq!(trip.violations(&m).len(), 4);
    }
}

//! Loopback `EBWP` client: streams one camera's events to an
//! [`IngestServer`](ebbiot_server::IngestServer) and collects the
//! tracker frames it sends back.
//!
//! The client is deliberately dumb — chunk, frame, send, read — so the
//! parity tests compare *transport*, not client-side cleverness. Frames
//! are read on a dedicated thread while events are still being written:
//! the server streams TRACKS back on the same connection, and a client
//! that only reads at the end would eventually deadlock against
//! back-pressure (both sides blocked on full socket buffers).

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use ebbiot_core::FrameResult;
use ebbiot_events::{Event, Micros, SensorGeometry};
use ebbiot_server::{read_frame, write_frame, EventsChunk, Finished, Frame, Hello, WireError};

/// One camera's ingestion run, as seen by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientRun {
    /// Every tracker frame the server sent back, in emission order —
    /// bit-for-bit what in-process processing of the same events
    /// yields.
    pub frames: Vec<FrameResult>,
    /// The server's session summary.
    pub finished: Finished,
    /// Wall-clock duration of the whole session.
    pub elapsed: Duration,
}

/// Streams `events` to the `EBWP` server at `addr` as one session,
/// in `chunk_events`-sized EVENTS frames, and returns everything the
/// server sent back.
///
/// # Errors
///
/// Returns the first connection, protocol or server-reported error.
///
/// # Panics
///
/// Panics when `events` is not time-ordered (clients frame validated
/// streams) or `chunk_events` is zero.
pub fn stream_camera(
    addr: SocketAddr,
    name: &str,
    geometry: SensorGeometry,
    span_us: Micros,
    events: &[Event],
    chunk_events: usize,
) -> Result<ClientRun, WireError> {
    let bytes = encode_session(name, geometry, span_us, events, chunk_events);
    stream_session_bytes(addr, name, &bytes)
}

/// Encodes a complete client session — HELLO, `chunk_events`-sized
/// EVENTS frames, FINISH — into one wire-ready byte buffer.
///
/// Splitting encoding from transmission lets benchmarks price the two
/// separately: a real sensor encodes on-device, so server ingest
/// throughput is measured against pre-encoded bytes
/// ([`stream_session_bytes`]), not against a client racing to varint-
/// encode on the same host.
///
/// # Panics
///
/// Panics when `events` is not time-ordered (clients frame validated
/// streams) or `chunk_events` is zero.
#[must_use]
pub fn encode_session(
    name: &str,
    geometry: SensorGeometry,
    span_us: Micros,
    events: &[Event],
    chunk_events: usize,
) -> Vec<u8> {
    assert!(chunk_events > 0, "chunk_events must be at least 1");
    let mut bytes = Vec::new();
    let hello = Hello { geometry, span_us, name: name.to_string() };
    write_frame(&mut bytes, &Frame::Hello(hello)).expect("Vec write cannot fail");
    for chunk in events.chunks(chunk_events) {
        write_frame(&mut bytes, &Frame::Events(EventsChunk::encode(chunk)))
            .expect("Vec write cannot fail");
    }
    write_frame(&mut bytes, &Frame::Finish { span_us }).expect("Vec write cannot fail");
    bytes
}

/// Streams a pre-encoded session ([`encode_session`]) to the server
/// and returns everything it sent back.
///
/// # Errors
///
/// Returns the first connection, protocol or server-reported error.
///
/// # Panics
///
/// Panics when the client reader thread cannot be spawned.
pub fn stream_session_bytes(
    addr: SocketAddr,
    name: &str,
    bytes: &[u8],
) -> Result<ClientRun, WireError> {
    let started = Instant::now();
    let connection = TcpStream::connect(addr).map_err(WireError::Io)?;
    connection.set_nodelay(true).map_err(WireError::Io)?;

    // Reader thread: collect TRACKS until FINISHED (or an error).
    let read_half = connection.try_clone().map_err(WireError::Io)?;
    let reader = std::thread::Builder::new()
        .name(format!("ebwp-client-read-{name}"))
        .spawn(move || collect_responses(read_half))
        .expect("spawn client reader");

    // Writer: the session is already framed, just push the bytes.
    let write_result = (|| -> Result<(), WireError> {
        let mut writer = BufWriter::new(&connection);
        writer.write_all(bytes).map_err(WireError::Io)?;
        writer.flush().map_err(WireError::Io)
    })();

    let read_result = reader.join().expect("client reader panicked");
    // A writer error is usually the *consequence* of a server-side
    // close; the reader saw the cause (the ERROR frame), so prefer it.
    let (frames, finished) = match (read_result, write_result) {
        (Ok(collected), Ok(())) => collected,
        (Err(read_err), _) => return Err(read_err),
        (Ok(_), Err(write_err)) => return Err(write_err),
    };
    Ok(ClientRun { frames, finished, elapsed: started.elapsed() })
}

fn collect_responses(connection: TcpStream) -> Result<(Vec<FrameResult>, Finished), WireError> {
    let mut reader = BufReader::new(connection);
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut reader)? {
            Some(Frame::Tracks(batch)) => frames.extend(batch),
            Some(Frame::Finished(finished)) => return Ok((frames, finished)),
            Some(Frame::Error(msg)) => return Err(WireError::Remote(msg)),
            Some(other) => {
                let _ = other;
                return Err(WireError::Protocol { reason: "client received a client frame" });
            }
            None => return Err(WireError::Truncated),
        }
    }
}

/// Streams a whole simulated fleet through the server concurrently —
/// one connection (and one client thread) per camera, mirroring K
/// independent sensors — and returns the per-camera runs in camera
/// order.
///
/// # Errors
///
/// Returns the first camera's error (by camera order).
pub fn stream_fleet(
    addr: SocketAddr,
    fleet: &[ebbiot_sim::SimulatedRecording],
    chunk_events: usize,
) -> Result<Vec<ClientRun>, WireError> {
    let runs: Vec<Result<ClientRun, WireError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .iter()
            .map(|rec| {
                scope.spawn(move || {
                    stream_camera(
                        addr,
                        &rec.name,
                        rec.geometry,
                        rec.duration_us,
                        &rec.events,
                        chunk_events,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    runs.into_iter().collect()
}

/// Streams a fleet of pre-encoded sessions ([`encode_session`], one
/// buffer per camera in camera order) concurrently — the timed half of
/// [`stream_fleet`] with client-side encoding already paid.
///
/// # Errors
///
/// Returns the first camera's error (by camera order).
///
/// # Panics
///
/// Panics when `sessions` and `fleet` differ in length.
pub fn stream_fleet_bytes(
    addr: SocketAddr,
    fleet: &[ebbiot_sim::SimulatedRecording],
    sessions: &[Vec<u8>],
) -> Result<Vec<ClientRun>, WireError> {
    assert_eq!(fleet.len(), sessions.len(), "one pre-encoded session per camera");
    let runs: Vec<Result<ClientRun, WireError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .iter()
            .zip(sessions)
            .map(|(rec, bytes)| scope.spawn(move || stream_session_bytes(addr, &rec.name, bytes)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    runs.into_iter().collect()
}

/// A server pipeline factory building `spec` back-ends with exactly
/// `config` — the serving-side twin of
/// [`run_fleet_backend`](crate::run_fleet_backend), so the parity tests
/// compare like for like. Sessions announcing a different sensor
/// geometry than the serving configuration are rejected with an ERROR.
#[must_use]
pub fn server_factory(
    spec: &'static ebbiot_baselines::registry::BackendSpec,
    config: ebbiot_core::EbbiotConfig,
) -> std::sync::Arc<ebbiot_server::PipelineFactory> {
    std::sync::Arc::new(move |hello: &Hello| {
        if hello.geometry != config.geometry {
            return Err(format!(
                "session geometry {}x{} does not match the serving configuration {}x{}",
                hello.geometry.width(),
                hello.geometry.height(),
                config.geometry.width(),
                config.geometry.height(),
            ));
        }
        Ok(spec.build(config.clone()))
    })
}

//! Regenerates **Fig. 4 — precision and recall vs IoU threshold** for
//! EBMS, KF and EBBIOT, weighted across recordings by ground-truth
//! tracks.
//!
//! ```text
//! cargo run --release -p ebbiot-bench --bin exp_fig4 [--seconds S] [--seed N] [--full]
//! ```

use ebbiot_baselines::registry::BACKENDS;
use ebbiot_bench::{fig4_sweep, generate_for_harness, parse_harness_args, run_backend};
use ebbiot_eval::{
    report::{render_pr_sweep, render_table},
    sweep::fig4_thresholds,
    weighted_average,
};
use ebbiot_sim::DatasetPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (seconds, seed, full) = parse_harness_args(&args);

    println!("== Fig. 4: precision/recall vs IoU threshold (EBMS, KF, EBBIOT) ==\n");

    let thresholds = fig4_thresholds();
    // Per registered back-end, per-threshold, accumulate (pr, weight) per
    // recording.
    type WeightedPrs = Vec<Vec<(ebbiot_eval::PrecisionRecall, usize)>>;
    let mut per_tracker: Vec<(&str, WeightedPrs)> =
        BACKENDS.iter().map(|spec| (spec.label, vec![Vec::new(); thresholds.len()])).collect();

    for preset in DatasetPreset::all() {
        let rec = generate_for_harness(preset, seconds, seed, full, 40.0);
        let weight = rec.num_tracks().max(1);
        println!("{rec}");
        for (tracker_idx, spec) in BACKENDS.iter().enumerate() {
            let sweep = fig4_sweep(&rec, &run_backend(spec, preset, &rec));
            for (t_idx, eval) in sweep.iter().enumerate() {
                per_tracker[tracker_idx].1[t_idx].push((eval.pr, weight));
            }
        }
    }

    println!("\nTrack-weighted average across recordings:\n");
    let named: Vec<(&str, Vec<ebbiot_eval::RecordingEval>)> = per_tracker
        .iter()
        .map(|(name, per_thr)| {
            let evals: Vec<ebbiot_eval::RecordingEval> = per_thr
                .iter()
                .zip(&thresholds)
                .map(|(prs, &thr)| {
                    let pr = weighted_average(prs);
                    ebbiot_eval::RecordingEval {
                        iou_threshold: thr,
                        pr,
                        true_positives: 0,
                        proposals: 0,
                        ground_truths: 0,
                    }
                })
                .collect();
            (*name, evals)
        })
        .collect();
    println!("{}", render_pr_sweep(&named));

    // Shape summary at the paper's canonical IoU = 0.5.
    let at = |name: &str| {
        named
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, evals)| evals[4].pr)
            .expect("tracker present")
    };
    let (ebms, kf, ebbiot) = (at("EBMS"), at("KF"), at("EBBIOT"));
    println!("\nShape check at IoU 0.5 (paper: EBBIOT outperforms both, most stable):");
    let rows = vec![
        vec!["EBMS".into(), format!("{:.3}", ebms.precision), format!("{:.3}", ebms.recall)],
        vec!["KF".into(), format!("{:.3}", kf.precision), format!("{:.3}", kf.recall)],
        vec!["EBBIOT".into(), format!("{:.3}", ebbiot.precision), format!("{:.3}", ebbiot.recall)],
    ];
    println!("{}", render_table(&["Tracker", "Precision", "Recall"], &rows));
    println!(
        "F1 at IoU 0.5: EBMS {:.3}, KF {:.3}, EBBIOT {:.3} -> EBBIOT best: {}",
        ebms.f1(),
        kf.f1(),
        ebbiot.f1(),
        ebbiot.f1() >= kf.f1() && ebbiot.f1() >= ebms.f1()
    );
}

//! Regenerates **Fig. 5 — total computations/frame and memory relative to
//! EBBIOT**, from the paper's analytic models (Eqs. 1, 2, 5-8), and
//! cross-checks the analytic totals against measured op counters from the
//! instrumented pipelines running on a simulated recording.
//!
//! ```text
//! cargo run --release -p ebbiot-bench --bin exp_fig5 [--seconds S] [--seed N]
//! ```

use ebbiot_bench::{ebbiot_config_for, generate_for_harness, parse_harness_args};
use ebbiot_core::EbbiotPipeline;
use ebbiot_eval::report::{render_bar, render_table};
use ebbiot_resource::{fig5_comparison, PaperParams};
use ebbiot_sim::DatasetPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (seconds, seed, full) = parse_harness_args(&args);

    println!("== Fig. 5: resources relative to EBBIOT (analytic, Eqs. 1-8) ==\n");
    let rows = fig5_comparison(PaperParams::paper());
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cost.name.to_string(),
                format!("{:.1}k", r.cost.computes / 1e3),
                format!("{:.2}x", r.relative_computes),
                format!("{:.1}", r.cost.memory_kb()),
                format!("{:.2}x", r.relative_memory),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Pipeline", "computes/frame", "rel. computes", "memory (kB)", "rel. memory"],
            &table
        )
    );

    println!("\nRelative computes:");
    for r in &rows {
        println!(
            "  {:<13} {} {:.2}x",
            r.cost.name,
            render_bar(r.relative_computes, 3.2, 32),
            r.relative_computes
        );
    }
    println!("Relative memory:");
    for r in &rows {
        println!(
            "  {:<13} {} {:.2}x",
            r.cost.name,
            render_bar(r.relative_memory, 7.2, 32),
            r.relative_memory
        );
    }
    println!("\nPaper's claims: EBMS ~3x computes / ~7x memory of EBBIOT; EBBI+KF ~1x.\n");

    // Measured cross-check: instrumented EBBIOT pipeline on ENG traffic.
    let preset = DatasetPreset::Eng;
    let rec = generate_for_harness(preset, seconds, seed, full, 15.0);
    let mut pipeline = EbbiotPipeline::new(ebbiot_config_for(preset, &rec));
    let _ = pipeline.process_recording(&rec.events, rec.duration_us);
    let per_frame = pipeline.ops_per_frame().expect("frames processed");
    println!("Measured EBBIOT ops/frame on {} ({} frames):", rec.name, pipeline.frames_processed());
    let measured = vec![
        vec![
            "EBBI".into(),
            format!("{}", per_frame.ebbi.total()),
            "125.3k (Eq. 1, with median)".into(),
        ],
        vec!["median".into(), format!("{}", per_frame.median.total()), "(in C_EBBI)".into()],
        vec!["RPN".into(), format!("{}", per_frame.rpn.total()), "48.0k (Eq. 5)".into()],
        vec!["OT".into(), format!("{}", per_frame.tracker.total()), "564 (Eq. 6)".into()],
        vec!["total".into(), format!("{}", per_frame.total()), "173.8k".into()],
    ];
    println!("{}", render_table(&["block", "measured ops/frame", "paper analytic"], &measured));
    println!("mean active trackers NT = {:.2} (paper: NT ~ 2)", pipeline.mean_active_trackers());
}

//! **Fleet experiment** — aggregate throughput of the concurrent
//! multi-camera engine vs sequential per-camera processing, on a
//! simulated K-camera fleet of one site preset.
//!
//! ```text
//! cargo run --release -p ebbiot_bench --bin exp_fleet -- \
//!     [--cameras K] [--workers W1,W2,...] [--seconds S] [--seed N] \
//!     [--backend ebbiot|ebbi-kf|nn-ebms] [--preset LT4|ENG] \
//!     [--chunk E] [--queue C] [--smoke] [--overhead]
//! ```
//!
//! Defaults: 16 cameras, a `1,2,4,8` worker sweep, 2 s per camera, the
//! `ebbiot` back-end on LT4. The report prints per-camera stats, the
//! stage/contention breakdown of ARCHITECTURE.md §7.3 (at the sweep's
//! largest worker count), aggregate events/s for engine and sequential
//! drive modes, a per-worker-count `speedup_wN` scaling series, and a
//! bit-for-bit determinism check of engine output against the
//! sequential baseline. Speedup scales with physical cores — on a
//! single-core host expect ~1x regardless of worker count; the
//! determinism check must hold everywhere. `--smoke` shrinks the run to
//! CI size and skips the `BENCH_fleet.json` artifact while still
//! asserting parity. `--overhead` runs only the telemetry-overhead
//! bench: best-of-N plain vs stage-instrumented sequential passes
//! (interleaved, both sides best-of-N, delta clamped at 0), asserting
//! the instrumentation costs ≤ 3% of throughput.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ebbiot_baselines::registry;
use ebbiot_bench::breakdown::{
    append_contention_fields, histogram_summary, run_fleet_backend_instrumented,
    run_fleet_sequential_instrumented, stage_rows, worker_rows, STAGE_HEADER, WORKER_HEADER,
};
use ebbiot_bench::{run_fleet_sequential, JsonReport};
use ebbiot_core::StageTelemetry;
use ebbiot_engine::{EngineTelemetry, FleetOptions};
use ebbiot_eval::report::render_table;
use ebbiot_sim::{DatasetPreset, FleetConfig};
use ebbiot_telemetry::Registry;

struct Args {
    cameras: usize,
    /// Worker counts to sweep (`--workers 1,2,4,8`); the breakdown
    /// tables and the artifact's headline `speedup` use the largest.
    workers: Vec<usize>,
    seconds: f64,
    seed: u64,
    backend: String,
    preset: DatasetPreset,
    chunk: usize,
    queue: usize,
    smoke: bool,
    overhead: bool,
}

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args {
        cameras: 16,
        workers: vec![1, 2, 4, 8],
        seconds: 2.0,
        seed: 42,
        backend: "ebbiot".into(),
        preset: DatasetPreset::Lt4,
        chunk: 4096,
        queue: 32,
        smoke: false,
        overhead: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_default();
        match arg.as_str() {
            "--cameras" => parsed.cameras = value().parse().expect("--cameras <usize>"),
            "--workers" => {
                parsed.workers = value()
                    .split(',')
                    .map(|w| w.trim().parse().expect("--workers <usize>[,<usize>...]"))
                    .collect();
                assert!(!parsed.workers.is_empty(), "--workers needs at least one count");
            }
            "--seconds" => parsed.seconds = value().parse().expect("--seconds <f64>"),
            "--seed" => parsed.seed = value().parse().expect("--seed <u64>"),
            "--backend" => parsed.backend = value(),
            "--chunk" => parsed.chunk = value().parse().expect("--chunk <usize>"),
            "--queue" => parsed.queue = value().parse().expect("--queue <usize>"),
            "--smoke" => parsed.smoke = true,
            "--overhead" => parsed.overhead = true,
            "--preset" => {
                parsed.preset = match value().to_uppercase().as_str() {
                    "ENG" => DatasetPreset::Eng,
                    "LT4" => DatasetPreset::Lt4,
                    other => panic!("--preset must be ENG or LT4, got {other:?}"),
                }
            }
            other => panic!("unknown argument {other}"),
        }
    }
    parsed
}

/// Times `iters` plain and `iters` stage-instrumented sequential fleet
/// passes (interleaved, best-of-N to shave scheduler noise), returning
/// `(plain_min_s, instrumented_min_s, overhead_pct)`. Also asserts the
/// instrumented output is bit-identical to the plain one.
fn measure_overhead(
    spec: &registry::BackendSpec,
    preset: DatasetPreset,
    fleet: &[ebbiot_sim::SimulatedRecording],
    iters: usize,
) -> (f64, f64, f64) {
    let mut plain_min = f64::INFINITY;
    let mut inst_min = f64::INFINITY;
    let mut plain_out = None;
    let mut inst_out = None;
    for _ in 0..iters.max(1) {
        let started = Instant::now();
        plain_out = Some(run_fleet_sequential(spec, preset, fleet));
        plain_min = plain_min.min(started.elapsed().as_secs_f64());

        let stage = StageTelemetry::register(&Registry::new());
        let started = Instant::now();
        inst_out = Some(run_fleet_sequential_instrumented(spec, preset, fleet, &stage));
        inst_min = inst_min.min(started.elapsed().as_secs_f64());
    }
    assert_eq!(inst_out, plain_out, "stage telemetry changed sequential output");
    // Clamp at 0: with best-of-N on both sides, a negative delta just
    // means the instrumented pass got the luckier schedule — reporting
    // a nonsense negative "overhead" would hide real regressions in
    // the trajectory while telling us nothing.
    let pct = (100.0 * (inst_min - plain_min) / plain_min.max(1e-9)).max(0.0);
    (plain_min, inst_min, pct)
}

/// The ≤3% overhead gate, with an absolute floor so micro-workloads
/// (where one scheduler tick exceeds 3%) cannot flake: a delta under
/// 10 ms is below timing resolution and passes regardless of its
/// percentage.
fn assert_overhead_budget(plain_s: f64, inst_s: f64, pct: f64) {
    assert!(
        pct <= 3.0 || (inst_s - plain_s) <= 0.010,
        "stage telemetry cost {pct:.2}% of sequential throughput \
         ({plain_s:.3} s plain vs {inst_s:.3} s instrumented; budget 3%)"
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = parse_args(&argv);
    if args.smoke {
        // CI-sized: exercise engine vs sequential parity in a couple of
        // seconds, without touching the BENCH artifact.
        args.cameras = args.cameras.min(2);
        args.workers = vec![1, 2];
        args.seconds = args.seconds.min(0.25);
    }
    let spec = registry::find_backend(&args.backend)
        .unwrap_or_else(|| panic!("unknown backend {:?}", args.backend));

    // The engine clamps workers to the stream count; sweep what runs
    // (deduplicated, ascending — the largest drives the breakdown).
    let mut sweep: Vec<usize> = args.workers.iter().map(|&w| w.min(args.cameras).max(1)).collect();
    sweep.sort_unstable();
    sweep.dedup();
    let workers = *sweep.last().expect("at least one worker count");
    println!(
        "== Fleet: {} cameras x {:.1} s of {} through `{}`, workers {:?} ==\n",
        args.cameras,
        args.seconds,
        args.preset.name(),
        spec.name,
        sweep
    );

    let fleet = FleetConfig::new(args.preset, args.cameras)
        .with_seconds(args.seconds)
        .with_base_seed(args.seed)
        .generate();

    if args.overhead {
        // Overhead-only mode (scripts/smoke_bench.sh): best-of-3 plain
        // vs instrumented sequential, gate at 3%, no artifacts.
        let (plain_s, inst_s, pct) = measure_overhead(spec, args.preset, &fleet, 3);
        println!(
            "telemetry overhead (best of 3): {pct:+.2}% \
             ({plain_s:.3} s plain, {inst_s:.3} s instrumented)"
        );
        assert_overhead_budget(plain_s, inst_s, pct);
        println!("telemetry overhead within budget (<= 3% or <= 10 ms absolute)");
        return;
    }

    let total_events: u64 = fleet.iter().map(|r| r.events.len() as u64).sum();
    println!(
        "generated {} recordings, {} events total ({:.1} k ev/s offered)\n",
        fleet.len(),
        total_events,
        total_events as f64 / args.seconds / 1e3
    );

    // Concurrent engine run, fully instrumented: engine contention
    // metrics plus per-stage pipeline timings in one registry.
    let options = FleetOptions { workers, queue_capacity: args.queue, chunk_events: args.chunk };
    let metrics = Arc::new(Registry::new());
    let (run, stage) =
        run_fleet_backend_instrumented(spec, args.preset, &fleet, &options, &metrics);
    let engine_metrics = EngineTelemetry::register(Arc::clone(&metrics));

    let rows: Vec<Vec<String>> = run
        .output
        .snapshot
        .streams
        .iter()
        .map(|s| {
            vec![
                s.id.to_string(),
                s.events_in.to_string(),
                s.chunks_in.to_string(),
                s.frames_out.to_string(),
                s.tracks_out.to_string(),
                s.queue_high_water.to_string(),
                format!("{:.2}", s.queue_wait_ns as f64 / 1e6),
                format!("{:.2}", s.producer_block_ns as f64 / 1e6),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Camera",
                "Events",
                "Chunks",
                "Frames",
                "Tracks",
                "Queue HWM",
                "Queue-wait ms",
                "Blocked ms"
            ],
            &rows
        )
    );

    // Where each worker's wall clock went
    // (busy + acquire + idle == wall exactly).
    println!("{}", render_table(&WORKER_HEADER, &worker_rows(&run.output.snapshot)));

    // Per-stage cost across the whole fleet.
    println!("{}", render_table(&STAGE_HEADER, &stage_rows(&stage)));
    println!("chunk enqueue→dequeue: {}", histogram_summary(&engine_metrics.queue_wait, "ns"));
    println!(
        "queue depth at admission: {}",
        histogram_summary(&engine_metrics.queue_depth, "chunks")
    );
    println!(
        "collector buffer occupancy: {}\n",
        histogram_summary(&engine_metrics.collector_buffered, "frames")
    );

    // Sequential baseline over the identical fleet, best-of-3 so one
    // descheduled run cannot inflate every speedup ratio keyed off it.
    let mut seq_elapsed = Duration::MAX;
    let mut sequential = Vec::new();
    for _ in 0..3 {
        let seq_started = Instant::now();
        sequential = run_fleet_sequential(spec, args.preset, &fleet);
        seq_elapsed = seq_elapsed.min(seq_started.elapsed());
    }

    // Telemetry overhead on the same sequential workload: instrumented
    // twin vs plain, interleaved best-of-5 on both sides with the delta
    // clamped at 0 (full runs take the extra rounds because the tracked
    // artifact records this number). Stage timers are two `Instant`
    // reads and two relaxed atomic adds per stage per frame, so the
    // delta should vanish into noise (≤ ~3%, asserted on full runs).
    let (plain_s, inst_s, overhead_pct) = measure_overhead(spec, args.preset, &fleet, 5);

    let identical = run.output.streams == sequential;
    let engine_rate = run.events_per_sec();
    let seq_rate = total_events as f64 / seq_elapsed.as_secs_f64().max(1e-9);
    let speedup = engine_rate / seq_rate.max(1e-9);

    // Worker-count scaling sweep: plain (uninstrumented) engine runs
    // per requested count, each checked bit-identical to sequential and
    // reported best-of-3 so scheduler noise on short runs does not
    // wobble the tracked curve. The `speedup_wN` series lands in
    // BENCH_fleet.json so scaling is tracked per-PR, not just the
    // single headline number.
    let mut scaling: Vec<(usize, f64)> = Vec::with_capacity(sweep.len());
    for &w in &sweep {
        let opts =
            FleetOptions { workers: w, queue_capacity: args.queue, chunk_events: args.chunk };
        let mut best = 0.0f64;
        for _ in 0..3 {
            let sweep_run = ebbiot_bench::run_fleet_backend(spec, args.preset, &fleet, &opts);
            assert_eq!(
                sweep_run.output.streams, sequential,
                "engine output diverged from sequential at {w} workers"
            );
            best = best.max(sweep_run.events_per_sec());
        }
        scaling.push((w, best / seq_rate.max(1e-9)));
    }

    println!("\nAggregate throughput:");
    println!(
        "  engine ({} workers): {:>10.1} k ev/s, {:>8.1} frames/s  ({:.3} s wall)",
        workers,
        engine_rate / 1e3,
        run.frames_per_sec(),
        run.elapsed.as_secs_f64()
    );
    println!(
        "  sequential:          {:>10.1} k ev/s              ({:.3} s wall)",
        seq_rate / 1e3,
        seq_elapsed.as_secs_f64()
    );
    println!(
        "  speedup: {speedup:.2}x on {} core(s) (target >= 4x with 16 cameras / 8 workers on >= 8 cores)",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let curve = scaling.iter().map(|(w, s)| format!("w{w}={s:.2}x")).collect::<Vec<_>>().join(", ");
    println!("  scaling: {curve}");
    println!(
        "  telemetry overhead: {overhead_pct:+.2}% on sequential \
         ({plain_s:.3} s plain, {inst_s:.3} s instrumented, best of 5)"
    );
    println!("\nDeterminism: engine output bit-for-bit identical to sequential: {identical}");

    // Machine-readable artifact for the perf trajectory (skipped in
    // smoke mode so CI-sized runs never clobber the tracked numbers).
    if args.smoke {
        println!("--smoke: skipping BENCH_fleet.json");
    } else {
        let mut report = JsonReport::new()
            .str("experiment", "fleet")
            .str("backend", spec.name)
            .str("preset", args.preset.name())
            .u64("cameras", args.cameras as u64)
            .u64("workers", workers as u64)
            .f64("seconds_per_camera", args.seconds)
            .u64("events", total_events)
            .f64("engine_events_per_sec", engine_rate)
            .f64("sequential_events_per_sec", seq_rate)
            .f64("speedup", speedup)
            .f64("telemetry_overhead_pct", overhead_pct)
            .bool("identical", identical);
        for (w, s) in &scaling {
            report = report.f64(&format!("speedup_w{w}"), *s);
        }
        append_contention_fields(report, &run.output.snapshot, &stage, &engine_metrics)
            .write(std::path::Path::new("BENCH_fleet.json"))
            .expect("write BENCH_fleet.json");
        println!("wrote BENCH_fleet.json");
        // Overhead gate only on full (non-smoke) runs: smoke workloads
        // are too short to time a ≤3% delta above scheduler noise.
        assert_overhead_budget(plain_s, inst_s, overhead_pct);
    }

    assert!(identical, "engine output diverged from sequential processing");
}

//! **Fleet experiment** — aggregate throughput of the concurrent
//! multi-camera engine vs sequential per-camera processing, on a
//! simulated K-camera fleet of one site preset.
//!
//! ```text
//! cargo run --release -p ebbiot_bench --bin exp_fleet -- \
//!     [--cameras K] [--workers W] [--seconds S] [--seed N] \
//!     [--backend ebbiot|ebbi-kf|nn-ebms] [--preset LT4|ENG] \
//!     [--chunk E] [--queue C] [--smoke]
//! ```
//!
//! Defaults: 16 cameras, 8 workers, 2 s per camera, the `ebbiot`
//! back-end on LT4. The report prints per-camera stats, aggregate
//! events/s for both drive modes, the speedup, and a bit-for-bit
//! determinism check of engine output against the sequential baseline.
//! Speedup scales with physical cores — on a single-core host expect
//! ~1x regardless of worker count; the determinism check must hold
//! everywhere. `--smoke` shrinks the run to CI size and skips the
//! `BENCH_fleet.json` artifact while still asserting parity.

use std::time::Instant;

use ebbiot_baselines::registry;
use ebbiot_bench::{run_fleet_backend, run_fleet_sequential, JsonReport};
use ebbiot_engine::FleetOptions;
use ebbiot_eval::report::render_table;
use ebbiot_sim::{DatasetPreset, FleetConfig};

struct Args {
    cameras: usize,
    workers: usize,
    seconds: f64,
    seed: u64,
    backend: String,
    preset: DatasetPreset,
    chunk: usize,
    queue: usize,
    smoke: bool,
}

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args {
        cameras: 16,
        workers: 8,
        seconds: 2.0,
        seed: 42,
        backend: "ebbiot".into(),
        preset: DatasetPreset::Lt4,
        chunk: 4096,
        queue: 32,
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_default();
        match arg.as_str() {
            "--cameras" => parsed.cameras = value().parse().expect("--cameras <usize>"),
            "--workers" => parsed.workers = value().parse().expect("--workers <usize>"),
            "--seconds" => parsed.seconds = value().parse().expect("--seconds <f64>"),
            "--seed" => parsed.seed = value().parse().expect("--seed <u64>"),
            "--backend" => parsed.backend = value(),
            "--chunk" => parsed.chunk = value().parse().expect("--chunk <usize>"),
            "--queue" => parsed.queue = value().parse().expect("--queue <usize>"),
            "--smoke" => parsed.smoke = true,
            "--preset" => {
                parsed.preset = match value().to_uppercase().as_str() {
                    "ENG" => DatasetPreset::Eng,
                    "LT4" => DatasetPreset::Lt4,
                    other => panic!("--preset must be ENG or LT4, got {other:?}"),
                }
            }
            other => panic!("unknown argument {other}"),
        }
    }
    parsed
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = parse_args(&argv);
    if args.smoke {
        // CI-sized: exercise engine vs sequential parity in a couple of
        // seconds, without touching the BENCH artifact.
        args.cameras = args.cameras.min(2);
        args.workers = args.workers.min(2);
        args.seconds = args.seconds.min(0.25);
    }
    let spec = registry::find_backend(&args.backend)
        .unwrap_or_else(|| panic!("unknown backend {:?}", args.backend));

    // The engine clamps workers to the stream count; report what runs.
    let workers = args.workers.min(args.cameras).max(1);
    println!(
        "== Fleet: {} cameras x {:.1} s of {} through `{}`, {} workers ==\n",
        args.cameras,
        args.seconds,
        args.preset.name(),
        spec.name,
        workers
    );

    let fleet = FleetConfig::new(args.preset, args.cameras)
        .with_seconds(args.seconds)
        .with_base_seed(args.seed)
        .generate();
    let total_events: u64 = fleet.iter().map(|r| r.events.len() as u64).sum();
    println!(
        "generated {} recordings, {} events total ({:.1} k ev/s offered)\n",
        fleet.len(),
        total_events,
        total_events as f64 / args.seconds / 1e3
    );

    // Concurrent engine run.
    let options = FleetOptions { workers, queue_capacity: args.queue, chunk_events: args.chunk };
    let run = run_fleet_backend(spec, args.preset, &fleet, &options);

    let rows: Vec<Vec<String>> = run
        .output
        .snapshot
        .streams
        .iter()
        .map(|s| {
            vec![
                s.id.to_string(),
                s.events_in.to_string(),
                s.chunks_in.to_string(),
                s.frames_out.to_string(),
                s.tracks_out.to_string(),
                s.queue_high_water.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Camera", "Events", "Chunks", "Frames", "Tracks", "Queue HWM"], &rows)
    );

    // Sequential baseline over the identical fleet.
    let seq_started = Instant::now();
    let sequential = run_fleet_sequential(spec, args.preset, &fleet);
    let seq_elapsed = seq_started.elapsed();

    let identical = run.output.streams == sequential;
    let engine_rate = run.events_per_sec();
    let seq_rate = total_events as f64 / seq_elapsed.as_secs_f64().max(1e-9);
    let speedup = engine_rate / seq_rate.max(1e-9);

    println!("\nAggregate throughput:");
    println!(
        "  engine ({} workers): {:>10.1} k ev/s, {:>8.1} frames/s  ({:.3} s wall)",
        workers,
        engine_rate / 1e3,
        run.frames_per_sec(),
        run.elapsed.as_secs_f64()
    );
    println!(
        "  sequential:          {:>10.1} k ev/s              ({:.3} s wall)",
        seq_rate / 1e3,
        seq_elapsed.as_secs_f64()
    );
    println!(
        "  speedup: {speedup:.2}x on {} core(s) (target >= 4x with 16 cameras / 8 workers on >= 8 cores)",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    println!("\nDeterminism: engine output bit-for-bit identical to sequential: {identical}");

    // Machine-readable artifact for the perf trajectory (skipped in
    // smoke mode so CI-sized runs never clobber the tracked numbers).
    if args.smoke {
        println!("--smoke: skipping BENCH_fleet.json");
    } else {
        JsonReport::new()
            .str("experiment", "fleet")
            .str("backend", spec.name)
            .str("preset", args.preset.name())
            .u64("cameras", args.cameras as u64)
            .u64("workers", workers as u64)
            .f64("seconds_per_camera", args.seconds)
            .u64("events", total_events)
            .f64("engine_events_per_sec", engine_rate)
            .f64("sequential_events_per_sec", seq_rate)
            .f64("speedup", speedup)
            .bool("identical", identical)
            .write(std::path::Path::new("BENCH_fleet.json"))
            .expect("write BENCH_fleet.json");
        println!("wrote BENCH_fleet.json");
    }

    assert!(identical, "engine output diverged from sequential processing");
}

//! **Replay experiment** — spool a simulated camera fleet to the
//! chunked `EBST` store, measure its compression against the flat
//! 14 B/event `EAER` codec, then replay it from disk through the
//! concurrent engine and check the tracker output is bit-for-bit
//! identical to in-memory processing.
//!
//! ```text
//! cargo run --release -p ebbiot_bench --bin exp_replay -- \
//!     [--cameras K] [--workers W] [--seconds S] [--seed N] \
//!     [--backend ebbiot|ebbi-kf|nn-ebms] [--preset LT4|ENG] \
//!     [--chunk E] [--rate R] [--dir PATH] [--keep] [--smoke]
//! ```
//!
//! Defaults: 8 cameras, 4 workers, 2 s per camera, the `ebbiot`
//! back-end on LT4, 16384-event chunks, max-speed replay (`--rate R`
//! paces at R× real time), spool under the system temp dir (removed
//! afterwards unless `--keep`). Replay uses the resident
//! (whole-file-in-memory) readers and the decode-ahead parallel
//! replayer; a separate decode-only pass isolates `EBST` → `Event`
//! throughput from tracker cost. Emits `BENCH_replay.json` with the
//! compression ratio and both throughputs so the perf trajectory is
//! tracked across PRs. `--smoke` shrinks the run to CI size and skips
//! the JSON artifact while still asserting bit-for-bit parity.

use std::path::PathBuf;
use std::time::Instant;

use ebbiot_baselines::registry;
use ebbiot_bench::{ebbiot_config_for, run_fleet_backend, JsonReport};
use ebbiot_engine::{Engine, EngineConfig, FleetOptions};
use ebbiot_eval::report::render_table;
use ebbiot_events::codec::{EVENT_RECORD_BYTES, HEADER_BYTES};
use ebbiot_sim::{spool_fleet, DatasetPreset, FleetConfig};
use ebbiot_store::{ReplayMode, Replayer, StoreOptions};

struct Args {
    cameras: usize,
    workers: usize,
    seconds: f64,
    seed: u64,
    backend: String,
    preset: DatasetPreset,
    chunk: usize,
    rate: Option<f64>,
    dir: Option<PathBuf>,
    keep: bool,
    smoke: bool,
}

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args {
        cameras: 8,
        workers: 4,
        seconds: 2.0,
        seed: 42,
        backend: "ebbiot".into(),
        preset: DatasetPreset::Lt4,
        chunk: StoreOptions::default().chunk_events,
        rate: None,
        dir: None,
        keep: false,
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_default();
        match arg.as_str() {
            "--cameras" => parsed.cameras = value().parse().expect("--cameras <usize>"),
            "--workers" => parsed.workers = value().parse().expect("--workers <usize>"),
            "--seconds" => parsed.seconds = value().parse().expect("--seconds <f64>"),
            "--seed" => parsed.seed = value().parse().expect("--seed <u64>"),
            "--backend" => parsed.backend = value(),
            "--chunk" => parsed.chunk = value().parse().expect("--chunk <usize>"),
            "--rate" => parsed.rate = Some(value().parse().expect("--rate <f64>")),
            "--dir" => parsed.dir = Some(PathBuf::from(value())),
            "--keep" => parsed.keep = true,
            "--smoke" => parsed.smoke = true,
            "--preset" => {
                parsed.preset = match value().to_uppercase().as_str() {
                    "ENG" => DatasetPreset::Eng,
                    "LT4" => DatasetPreset::Lt4,
                    other => panic!("--preset must be ENG or LT4, got {other:?}"),
                }
            }
            other => panic!("unknown argument {other}"),
        }
    }
    parsed
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = parse_args(&argv);
    if args.smoke {
        // CI-sized: exercise spool → decode → parallel replay → parity
        // in a couple of seconds, without touching the BENCH artifact.
        args.cameras = args.cameras.min(2);
        args.workers = args.workers.min(2);
        args.seconds = args.seconds.min(0.25);
    }
    let spec = registry::find_backend(&args.backend)
        .unwrap_or_else(|| panic!("unknown backend {:?}", args.backend));
    let workers = args.workers.min(args.cameras).max(1);
    let mode = match args.rate {
        Some(rate) => ReplayMode::Paced { rate },
        None => ReplayMode::MaxSpeed,
    };

    println!(
        "== Replay: {} cameras x {:.1} s of {} spooled to EBST, `{}` back-end, {} workers ==\n",
        args.cameras,
        args.seconds,
        args.preset.name(),
        spec.name,
        workers
    );

    // 1. Generate and spool.
    let fleet = FleetConfig::new(args.preset, args.cameras)
        .with_seconds(args.seconds)
        .with_base_seed(args.seed)
        .generate();
    let dir = args.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("ebbiot_replay_{}", std::process::id()))
    });
    let store = spool_fleet(&dir, &fleet, StoreOptions { chunk_events: args.chunk.max(1) })
        .expect("spool fleet to disk");

    // 2. Compression report vs the flat EAER binary codec (14 B/event).
    let rows: Vec<Vec<String>> = store
        .entries()
        .iter()
        .map(|e| {
            let eaer = eaer_bytes(e.events);
            vec![
                e.name.clone(),
                e.events.to_string(),
                eaer.to_string(),
                e.bytes.to_string(),
                format!("{:.2}", e.bytes as f64 / e.events.max(1) as f64),
                format!("{:.2}x", eaer as f64 / e.bytes.max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Camera", "Events", "EAER bytes", "EBST bytes", "B/event", "vs EAER"],
            &rows
        )
    );

    let total_events = store.total_events();
    let ebst_bytes = store.total_bytes();
    let eaer_total: u64 = store.entries().iter().map(|e| eaer_bytes(e.events)).sum();
    let compression = eaer_total as f64 / ebst_bytes.max(1) as f64;
    let bytes_per_event = ebst_bytes as f64 / total_events.max(1) as f64;
    println!(
        "spool: {} events in {} bytes ({bytes_per_event:.2} B/event) — {compression:.2}x smaller than EAER\n",
        total_events, ebst_bytes
    );

    // 3. In-memory reference run (also the determinism baseline).
    let options = FleetOptions { workers, queue_capacity: 32, chunk_events: args.chunk.max(1) };
    let in_memory = run_fleet_backend(spec, args.preset, &fleet, &options);

    // 4. Decode-only pass: CRC + varint decode of every chunk into a
    //    reused buffer, no engine behind it — the store's raw read
    //    throughput, isolated from tracker cost.
    let mut decode_readers = store.mapped_readers().expect("open mapped readers");
    let mut decoded = Vec::new();
    let decode_started = Instant::now();
    let mut decoded_events = 0u64;
    for reader in &mut decode_readers {
        while reader.next_chunk_into(&mut decoded).expect("decode chunk") {
            decoded_events += decoded.len() as u64;
        }
    }
    let decode_elapsed = decode_started.elapsed();
    let decode_only_rate = decoded_events as f64 / decode_elapsed.as_secs_f64().max(1e-9);
    assert_eq!(decoded_events, total_events, "decode-only pass must see every spooled event");

    // 5. Replay from disk through a fresh engine: resident readers,
    //    decode running ahead of the engine push on its own threads.
    let config = ebbiot_config_for(args.preset, &fleet[0]).with_frame_us(fleet[0].frame_us);
    let mut readers = store.mapped_readers().expect("open fleet readers");
    let engine = Engine::new(
        EngineConfig { workers, queue_capacity: 32, ..EngineConfig::default() },
        spec.build_fleet(&config, fleet.len()),
    );
    let replay =
        Replayer::new(mode).replay_engine_parallel(&mut readers, engine).expect("replay fleet");

    let identical = replay.output.streams == in_memory.output.streams;
    println!("replay ({:?}):", mode);
    println!(
        "  decode:    {:>10.1} k ev/s  ({:.3} s wall, no engine)",
        decode_only_rate / 1e3,
        decode_elapsed.as_secs_f64()
    );
    println!(
        "  disk:      {:>10.1} k ev/s  ({:.3} s wall, {} chunks)",
        replay.events_per_sec() / 1e3,
        replay.elapsed.as_secs_f64(),
        replay.stats.iter().map(|s| s.chunks).sum::<u64>()
    );
    println!(
        "  in-memory: {:>10.1} k ev/s  ({:.3} s wall)",
        in_memory.events_per_sec() / 1e3,
        in_memory.elapsed.as_secs_f64()
    );
    println!("\nDeterminism: disk replay bit-for-bit identical to in-memory: {identical}");

    // 6. Machine-readable artifact for the perf trajectory (skipped in
    //    smoke mode so CI-sized runs never clobber the tracked numbers).
    if args.smoke {
        println!("--smoke: skipping BENCH_replay.json");
    } else {
        JsonReport::new()
            .str("experiment", "replay")
            .str("backend", spec.name)
            .str("preset", args.preset.name())
            .u64("cameras", args.cameras as u64)
            .u64("workers", workers as u64)
            .f64("seconds_per_camera", args.seconds)
            .u64("chunk_events", args.chunk as u64)
            .u64("events", total_events)
            .u64("ebst_bytes", ebst_bytes)
            .u64("eaer_bytes", eaer_total)
            .f64("bytes_per_event", bytes_per_event)
            .f64("compression_vs_eaer", compression)
            .f64("decode_only_events_per_sec", decode_only_rate)
            .f64("replay_events_per_sec", replay.events_per_sec())
            .f64("in_memory_events_per_sec", in_memory.events_per_sec())
            .bool("identical", identical)
            .write(std::path::Path::new("BENCH_replay.json"))
            .expect("write BENCH_replay.json");
        println!("wrote BENCH_replay.json");
    }

    if args.keep || args.dir.is_some() {
        println!("spool kept at {}", dir.display());
    } else {
        std::fs::remove_dir_all(&dir).expect("remove spool dir");
    }

    assert!(identical, "disk replay diverged from in-memory processing");
    assert!(
        compression > 1.0,
        "EBST ({bytes_per_event:.2} B/event) must beat the flat {EVENT_RECORD_BYTES} B/event EAER codec"
    );
}

/// Size of the same recording in the flat `EAER` binary codec.
fn eaer_bytes(events: u64) -> u64 {
    HEADER_BYTES as u64 + events * EVENT_RECORD_BYTES as u64
}

//! **Accuracy gate** — CLEAR-MOT and precision/recall over the full
//! scenario × back-end matrix, with per-cell regression floors.
//!
//! ```text
//! cargo run --release -p ebbiot_bench --bin exp_accuracy -- \
//!     [--seed N] [--scenario NAME] [--smoke]
//! ```
//!
//! Every scenario in [`ebbiot_sim::SCENARIO_MATRIX`] is simulated once
//! per run (deterministically from `--seed`), then evaluated under every
//! registered back-end. The full matrix is printed as a table and
//! written to `BENCH_accuracy.json` (one flat key per cell metric);
//! afterwards each cell is checked against its
//! [`ebbiot_bench::accuracy::floors_for`] floor and the binary panics
//! listing every violation. `--smoke` switches to the CI-sized scenario
//! durations and skips the JSON artifact (so a smoke run never clobbers
//! a full-length measurement) while still asserting every floor.

use ebbiot_baselines::registry::BACKENDS;
use ebbiot_bench::accuracy::{evaluate_cell, floors_for, CellMetrics, MOT_IOU};
use ebbiot_bench::JsonReport;
use ebbiot_eval::report::render_table;
use ebbiot_sim::SCENARIO_MATRIX;

struct Args {
    seed: u64,
    scenario: Option<String>,
    smoke: bool,
}

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args { seed: 42, scenario: None, smoke: false };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_default();
        match arg.as_str() {
            "--seed" => parsed.seed = value().parse().expect("--seed <u64>"),
            "--scenario" => parsed.scenario = Some(value()),
            "--smoke" => parsed.smoke = true,
            other => panic!("unknown argument {other}"),
        }
    }
    parsed
}

fn row(m: &CellMetrics) -> Vec<String> {
    vec![
        m.scenario.to_string(),
        m.backend.to_string(),
        format!("{:.3}", m.mota),
        format!("{:.3}", m.motp),
        format!("{:.3}", m.precision),
        format!("{:.3}", m.recall),
        m.id_switches.to_string(),
        m.fragmentations.to_string(),
        m.misses.to_string(),
        m.false_positives.to_string(),
        m.total_gt.to_string(),
    ]
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv);

    let mode = if args.smoke { "smoke" } else { "full" };
    println!(
        "accuracy gate: {} scenarios x {} back-ends, seed {}, {mode} durations, IoU {MOT_IOU}",
        SCENARIO_MATRIX.len(),
        BACKENDS.len(),
        args.seed
    );

    let mut cells: Vec<CellMetrics> = Vec::new();
    for spec in SCENARIO_MATRIX {
        if args.scenario.as_deref().is_some_and(|only| only != spec.name) {
            continue;
        }
        let scenario = (spec.build)();
        let rec = if args.smoke {
            scenario.generate_smoke(args.seed)
        } else {
            scenario.generate(args.seed)
        };
        println!(
            "  {} ({:.1}s, {} events): {}",
            spec.name,
            rec.duration_us as f64 / 1e6,
            rec.events.len(),
            spec.summary
        );
        for backend in BACKENDS {
            cells.push(evaluate_cell(&scenario, backend, &rec));
        }
    }
    assert!(!cells.is_empty(), "no scenario matched {:?}", args.scenario);

    // Print the full matrix BEFORE asserting floors, so a tripped gate
    // still shows every measured number.
    println!();
    println!(
        "{}",
        render_table(
            &[
                "scenario", "backend", "MOTA", "MOTP", "prec", "recall", "IDsw", "frag", "miss",
                "FP", "GT"
            ],
            &cells.iter().map(row).collect::<Vec<_>>()
        )
    );

    if args.smoke {
        println!("smoke run: skipping BENCH_accuracy.json");
    } else {
        let mut report = JsonReport::new()
            .str("experiment", "accuracy")
            .u64("seed", args.seed)
            .u64("scenarios", (cells.len() / BACKENDS.len()) as u64)
            .u64("backends", BACKENDS.len() as u64)
            .f64("iou_threshold", f64::from(MOT_IOU));
        for m in &cells {
            let key = |metric: &str| format!("{}.{}.{metric}", m.scenario, m.backend);
            report = report
                .f64(&key("mota"), m.mota)
                .f64(&key("motp"), m.motp)
                .f64(&key("precision"), m.precision)
                .f64(&key("recall"), m.recall)
                .u64(&key("id_switches"), m.id_switches)
                .u64(&key("fragmentations"), m.fragmentations)
                .u64(&key("misses"), m.misses)
                .u64(&key("false_positives"), m.false_positives)
                .u64(&key("total_gt"), m.total_gt);
        }
        let path = std::path::Path::new("BENCH_accuracy.json");
        report.write(path).expect("write BENCH_accuracy.json");
        println!("wrote {}", path.display());
    }

    let violations: Vec<String> =
        cells.iter().flat_map(|m| floors_for(m.scenario, m.backend).violations(m)).collect();
    assert!(
        violations.is_empty(),
        "accuracy gate FAILED — {} floor violation(s):\n  {}",
        violations.len(),
        violations.join("\n  ")
    );
    println!("accuracy gate passed: all {} cells clear their floors", cells.len());
}

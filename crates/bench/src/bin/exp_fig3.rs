//! Regenerates **Fig. 3 — a sample EBBI with X/Y histogram region
//! proposals**, as ASCII art.
//!
//! Builds one frame containing a fragmenting car (dense edges, quiet
//! interior) the way the paper's figure shows, renders the denoised EBBI,
//! the downsampled histograms, and the resulting merged region proposal.
//!
//! ```text
//! cargo run --release -p ebbiot-bench --bin exp_fig3 [--seed N]
//! ```

use ebbiot_bench::parse_harness_args;
use ebbiot_core::rpn::{RegionProposalNetwork, RpnConfig};
use ebbiot_events::SensorGeometry;
use ebbiot_frame::{ebbi::ebbi_from_events, MedianFilter};
use ebbiot_sim::{
    BackgroundNoise, DavisConfig, DavisSimulator, LinearTrajectory, ObjectClass, Scene, SceneObject,
};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, seed, _) = parse_harness_args(&args);

    // One frame (66 ms) of a car and a bus crossing the view.
    let geometry = SensorGeometry::davis240();
    let mut scene = Scene::new(geometry);
    let (cw, ch) = ObjectClass::Car.nominal_size();
    scene.objects.push(SceneObject {
        id: 1,
        class: ObjectClass::Car,
        width: cw,
        height: ch,
        trajectory: LinearTrajectory::horizontal(60.0, 95.0, 70.0, 0),
        z_order: 1,
        stall: None,
    });
    let (bw, bh) = ObjectClass::Bus.nominal_size();
    scene.objects.push(SceneObject {
        id: 2,
        class: ObjectClass::Bus,
        width: bw,
        height: bh,
        trajectory: LinearTrajectory::horizontal(140.0, 40.0, -45.0, 0),
        z_order: 2,
        stall: None,
    });

    let sim = DavisSimulator::new(DavisConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let events = sim.simulate(&scene, 66_000, BackgroundNoise::new(0.15), &mut rng);

    let ebbi = ebbi_from_events(geometry, &events);
    let filtered = MedianFilter::paper_default().apply(&ebbi);

    let mut rpn = RegionProposalNetwork::new(RpnConfig::paper_default());
    let (proposals, _scaled, hx, hy) = rpn.propose_with_intermediates(&filtered);

    println!("== Fig. 3: sample EBBI with X/Y histogram region proposals ==\n");
    println!(
        "One 66 ms frame: car (x~60-104, y~95-113) and bus (x~137-225, y~40-72); {} raw events.\n",
        events.len()
    );
    println!("Denoised EBBI (downscaled 4x, '#' = any event in 4x4 block):");
    println!("{}", filtered.to_ascii(4));
    println!("H_X (40 bins of s1 = 6 columns each; digits = count, '+' >= 10):");
    println!("  {}", hx.to_ascii());
    println!("H_Y (60 bins of s2 = 3 rows each):");
    println!("  {}", hy.to_ascii());
    println!("\nRegion proposals from run intersections:");
    for (k, p) in proposals.iter().enumerate() {
        println!(
            "  proposal {k}: x=[{:.0}, {:.0}) y=[{:.0}, {:.0})  ({:.0} x {:.0} px)",
            p.x,
            p.x_max(),
            p.y,
            p.y_max(),
            p.w,
            p.h
        );
    }
    println!(
        "\nThe car's front/rear event clusters merge into ONE proposal in the\n\
         coarse histograms (the paper's fragmentation fix); the bus appears\n\
         as a separate region despite its quiet flanks."
    );
}

//! **Hot-path kernel experiment** — word-parallel frame kernels vs their
//! scalar per-pixel references, on realistic EBBI content.
//!
//! ```text
//! cargo run --release -p ebbiot_bench --bin exp_hotpath -- \
//!     [--seed N] [--density D] [--budget-ms MS] [--davis346] [--smoke]
//! ```
//!
//! Builds a frame population mimicking traffic EBBIs (a few vehicle-sized
//! blobs plus salt noise at the requested density), then times each
//! kernel pair — 3x3 median, (6, 3) block downsample, box counting over
//! tracker-sized boxes, and the EBBI readout copy — reporting frames/s,
//! Mpixel/s and the word-parallel speedup. Writes `BENCH_hotpath.json`
//! and **asserts** the median kernel is at least 3x faster than the
//! scalar reference (the PR's acceptance floor; typical machines see far
//! more). Parity is asserted on every timed input before timing starts.
//! `--smoke` shrinks the timing budget to CI size and skips the JSON
//! artifact while still asserting parity and the speedup floor.

use std::time::{Duration, Instant};

use ebbiot_bench::{synthetic_traffic_ebbi, tracker_box_tiling, JsonReport};
use ebbiot_events::{OpsCounter, SensorGeometry};
use ebbiot_frame::{reference, BinaryImage, CountImage, MedianFilter};
use rand::SeedableRng;

struct Args {
    seed: u64,
    density: f64,
    budget: Duration,
    geometry: SensorGeometry,
    smoke: bool,
}

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args {
        seed: 42,
        density: 0.03,
        budget: Duration::from_millis(300),
        geometry: SensorGeometry::davis240(),
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_default();
        match arg.as_str() {
            "--seed" => parsed.seed = value().parse().expect("--seed <u64>"),
            "--density" => parsed.density = value().parse().expect("--density <f64>"),
            "--budget-ms" => {
                parsed.budget = Duration::from_millis(value().parse().expect("--budget-ms <u64>"));
            }
            "--davis346" => parsed.geometry = SensorGeometry::davis346(),
            "--smoke" => parsed.smoke = true,
            other => panic!("unknown argument {other}"),
        }
    }
    parsed
}

/// Adaptive wall-clock timer: runs `f` until the budget elapses,
/// returning mean seconds per iteration.
fn time_per_iter(budget: Duration, mut f: impl FnMut()) -> f64 {
    // Warm-up.
    f();
    let mut iters = 0u64;
    let started = Instant::now();
    loop {
        f();
        iters += 1;
        let elapsed = started.elapsed();
        if elapsed >= budget {
            return elapsed.as_secs_f64() / iters as f64;
        }
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = parse_args(&argv);
    if args.smoke {
        // CI-sized: parity and the speedup floor still hold with a
        // short timing budget, without touching the BENCH artifact.
        args.budget = args.budget.min(Duration::from_millis(50));
    }
    let geometry = args.geometry;
    let pixels = geometry.num_pixels() as f64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);
    let frames: Vec<BinaryImage> =
        (0..8).map(|_| synthetic_traffic_ebbi(geometry, args.density, &mut rng)).collect();
    let mean_density: f64 = frames.iter().map(BinaryImage::density).sum::<f64>() / 8.0;
    println!(
        "== Hot-path kernels on {geometry} EBBIs (mean alpha = {:.1}%, {} frames/rotation) ==\n",
        mean_density * 100.0,
        frames.len()
    );

    // Parity before timing: every frame in the rotation must agree.
    let mut scratch = BinaryImage::new(geometry);
    for img in &frames {
        let mut ops = OpsCounter::new();
        let mut f = MedianFilter::paper_default();
        f.apply_into(img, &mut scratch);
        assert_eq!(scratch, reference::median(img, 3, &mut ops), "median parity");
        assert_eq!(
            CountImage::downsample(img, 6, 3, &mut ops),
            reference::downsample(img, 6, 3, &mut ops),
            "downsample parity"
        );
    }

    let mpix = |secs_per_iter: f64| pixels / secs_per_iter / 1e6;
    let mut report = JsonReport::new()
        .str("experiment", "hotpath")
        .str("geometry", &geometry.to_string())
        .f64("mean_density", mean_density)
        .u64("seed", args.seed);

    // 3x3 median: word-parallel vs scalar reference.
    let mut filter = MedianFilter::paper_default();
    let mut idx = 0usize;
    let median_word = time_per_iter(args.budget, || {
        filter.apply_into(&frames[idx % frames.len()], &mut scratch);
        idx += 1;
    });
    let mut ref_ops = OpsCounter::new();
    let mut idx = 0usize;
    let median_ref = time_per_iter(args.budget, || {
        reference::median_into(&frames[idx % frames.len()], 3, &mut scratch, &mut ref_ops);
        idx += 1;
    });
    let median_speedup = median_ref / median_word;
    println!(
        "median 3x3:    word {:>8.1} Mpix/s ({:>9.1} frames/s)  scalar {:>7.1} Mpix/s  speedup {:>6.1}x",
        mpix(median_word),
        1.0 / median_word,
        mpix(median_ref),
        median_speedup
    );
    report = report
        .f64("median_word_mpix_per_sec", mpix(median_word))
        .f64("median_reference_mpix_per_sec", mpix(median_ref))
        .f64("median_speedup", median_speedup);

    // (6, 3) block downsample.
    let mut ops = OpsCounter::new();
    let mut idx = 0usize;
    let down_word = time_per_iter(args.budget, || {
        let _ = CountImage::downsample(&frames[idx % frames.len()], 6, 3, &mut ops);
        idx += 1;
    });
    let mut idx = 0usize;
    let down_ref = time_per_iter(args.budget, || {
        let _ = reference::downsample(&frames[idx % frames.len()], 6, 3, &mut ops);
        idx += 1;
    });
    println!(
        "downsample:    word {:>8.1} Mpix/s ({:>9.1} frames/s)  scalar {:>7.1} Mpix/s  speedup {:>6.1}x",
        mpix(down_word),
        1.0 / down_word,
        mpix(down_ref),
        down_ref / down_word
    );
    report = report
        .f64("downsample_word_mpix_per_sec", mpix(down_word))
        .f64("downsample_reference_mpix_per_sec", mpix(down_ref))
        .f64("downsample_speedup", down_ref / down_word);

    // Box counting over tracker-sized boxes tiled across the frame.
    let boxes = tracker_box_tiling(geometry);
    let mut idx = 0usize;
    let count_word = time_per_iter(args.budget, || {
        let img = &frames[idx % frames.len()];
        let mut total = 0usize;
        for b in &boxes {
            total += img.count_in_box(b);
        }
        std::hint::black_box(total);
        idx += 1;
    });
    let mut idx = 0usize;
    let count_ref = time_per_iter(args.budget, || {
        let img = &frames[idx % frames.len()];
        let mut total = 0usize;
        for b in &boxes {
            total += reference::count_in_box(img, b);
        }
        std::hint::black_box(total);
        idx += 1;
    });
    println!(
        "count_in_box:  word {:>8.1} kbox/s{:<14} scalar {:>7.1} kbox/s   speedup {:>6.1}x",
        64.0 / count_word / 1e3,
        "",
        64.0 / count_ref / 1e3,
        count_ref / count_word
    );
    report = report
        .f64("count_in_box_word_kbox_per_sec", 64.0 / count_word / 1e3)
        .f64("count_in_box_reference_kbox_per_sec", 64.0 / count_ref / 1e3)
        .f64("count_in_box_speedup", count_ref / count_word);

    // EBBI readout copy (word copy by construction; no scalar pair).
    let mut idx = 0usize;
    let copy = time_per_iter(args.budget, || {
        scratch.copy_from(&frames[idx % frames.len()]);
        idx += 1;
    });
    println!("readout copy:  word {:>8.1} Mpix/s ({:>9.1} frames/s)", mpix(copy), 1.0 / copy);
    report = report.f64("readout_copy_mpix_per_sec", mpix(copy));

    // Skipped in smoke mode so CI-sized runs never clobber the tracked
    // numbers.
    if args.smoke {
        drop(report);
        println!("\n--smoke: skipping BENCH_hotpath.json");
    } else {
        report
            .bool("median_speedup_at_least_3x", median_speedup >= 3.0)
            .write(std::path::Path::new("BENCH_hotpath.json"))
            .expect("write BENCH_hotpath.json");
        println!("\nwrote BENCH_hotpath.json");
    }

    assert!(
        median_speedup >= 3.0,
        "word-parallel median must be >= 3x the scalar reference, measured {median_speedup:.2}x"
    );
}

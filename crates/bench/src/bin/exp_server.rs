//! **Server experiment** — drive K concurrent simulated cameras through
//! real loopback TCP sockets into the `EBWP` ingestion server, check
//! the tracker output is bit-for-bit identical to in-process
//! `Engine::run_fleet`, and measure ingestion throughput.
//!
//! ```text
//! cargo run --release -p ebbiot_bench --bin exp_server -- \
//!     [--cameras K] [--workers W] [--seconds S] [--seed N] \
//!     [--backend ebbiot|ebbi-kf|nn-ebms] [--preset LT4|ENG] \
//!     [--chunk E] [--queue C] [--archive PATH] [--smoke]
//! ```
//!
//! Defaults: 4 cameras, 4 workers, 2 s per camera, the `ebbiot`
//! back-end on LT4, 4096-event EVENTS frames, queue capacity 32, no
//! archival tee. A decode-only pass times CRC + varint decode of the
//! same wire-sized EVENTS bodies without sockets or trackers behind
//! them. Emits `BENCH_server.json` (events/s ingested and decoded,
//! frames/s returned, per-connection queue high-water) so the
//! serving-layer perf trajectory is tracked across PRs. `--smoke`
//! shrinks the run to CI size and skips the JSON artifact while still
//! asserting bit-for-bit parity.

use std::path::PathBuf;
use std::sync::Arc;

use ebbiot_baselines::registry;
use ebbiot_bench::breakdown::{
    append_contention_fields, stage_rows, worker_rows, STAGE_HEADER, WORKER_HEADER,
};
use ebbiot_bench::net::{encode_session, server_factory, stream_fleet_bytes};
use ebbiot_bench::{ebbiot_config_for, run_fleet_backend, JsonReport};
use ebbiot_core::StageTelemetry;
use ebbiot_engine::{EngineTelemetry, FleetOptions};
use ebbiot_eval::report::render_table;
use ebbiot_server::{scrape_stats, IngestServer, ServerConfig};
use ebbiot_sim::{DatasetPreset, FleetConfig};
use ebbiot_store::format::{crc32, decode_chunk_payload_fast, encode_chunk_payload};
use ebbiot_telemetry::validate_exposition;

struct Args {
    cameras: usize,
    workers: usize,
    seconds: f64,
    seed: u64,
    backend: String,
    preset: DatasetPreset,
    chunk: usize,
    queue: usize,
    archive: Option<PathBuf>,
    smoke: bool,
}

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args {
        cameras: 4,
        workers: 4,
        seconds: 2.0,
        seed: 42,
        backend: "ebbiot".into(),
        preset: DatasetPreset::Lt4,
        chunk: 4096,
        queue: 32,
        archive: None,
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_default();
        match arg.as_str() {
            "--cameras" => parsed.cameras = value().parse().expect("--cameras <usize>"),
            "--workers" => parsed.workers = value().parse().expect("--workers <usize>"),
            "--seconds" => parsed.seconds = value().parse().expect("--seconds <f64>"),
            "--seed" => parsed.seed = value().parse().expect("--seed <u64>"),
            "--backend" => parsed.backend = value(),
            "--chunk" => parsed.chunk = value().parse().expect("--chunk <usize>"),
            "--queue" => parsed.queue = value().parse().expect("--queue <usize>"),
            "--archive" => parsed.archive = Some(PathBuf::from(value())),
            "--smoke" => parsed.smoke = true,
            "--preset" => {
                parsed.preset = match value().to_uppercase().as_str() {
                    "ENG" => DatasetPreset::Eng,
                    "LT4" => DatasetPreset::Lt4,
                    other => panic!("--preset must be ENG or LT4, got {other:?}"),
                }
            }
            other => panic!("unknown argument {other}"),
        }
    }
    parsed
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = parse_args(&argv);
    if args.smoke {
        // CI-sized: exercise sockets → decode → engine → parity in a
        // couple of seconds, without touching the BENCH artifact.
        args.cameras = args.cameras.min(2);
        args.workers = args.workers.min(2);
        args.seconds = args.seconds.min(0.25);
    }
    let spec = registry::find_backend(&args.backend)
        .unwrap_or_else(|| panic!("unknown backend {:?}", args.backend));
    let workers = args.workers.max(1);
    let chunk = args.chunk.max(1);

    println!(
        "== Server: {} cameras x {:.1} s of {} over loopback EBWP, `{}` back-end, {} workers ==\n",
        args.cameras,
        args.seconds,
        args.preset.name(),
        spec.name,
        workers
    );

    // 1. Simulate the fleet (clients would normally generate per
    //    connection via FleetConfig::generate_one; the reference run
    //    needs the whole fleet anyway).
    let fleet = FleetConfig::new(args.preset, args.cameras)
        .with_seconds(args.seconds)
        .with_base_seed(args.seed)
        .generate();
    let config = ebbiot_config_for(args.preset, &fleet[0]).with_frame_us(fleet[0].frame_us);

    // 2. In-process reference: the engine's run_fleet on the same
    //    pipelines — the determinism baseline the server must match.
    let options = FleetOptions { workers, queue_capacity: args.queue, chunk_events: chunk };
    let in_memory = run_fleet_backend(spec, args.preset, &fleet, &options);

    // 3. Decode-only pass: encode every camera's stream into the same
    //    wire-sized EVENTS bodies the clients will send, then time
    //    CRC + varint decode into a reused buffer — the protocol's
    //    decode cost isolated from sockets and trackers.
    let bodies: Vec<(u32, u64, u64, Vec<u8>)> = fleet
        .iter()
        .flat_map(|rec| rec.events.chunks(chunk))
        .map(|events| {
            let mut body = Vec::new();
            encode_chunk_payload(&mut body, events);
            let t_first = events.first().expect("chunks are never empty").t;
            let t_last = events.last().expect("chunks are never empty").t;
            (events.len() as u32, t_first, t_last, body)
        })
        .collect();
    let geometry = fleet[0].geometry;
    let expected_crcs: Vec<u32> = bodies.iter().map(|(_, _, _, body)| crc32(body)).collect();
    let mut decoded = Vec::new();
    let decode_started = std::time::Instant::now();
    let mut decoded_events = 0u64;
    for (idx, (count, t_first, t_last, body)) in bodies.iter().enumerate() {
        assert_eq!(crc32(body), expected_crcs[idx], "wire chunk CRC");
        decode_chunk_payload_fast(&mut decoded, body, idx, geometry, *count, *t_first, *t_last)
            .expect("decode wire chunk");
        decoded_events += decoded.len() as u64;
    }
    let decode_elapsed = decode_started.elapsed();
    let decode_only_rate = decoded_events as f64 / decode_elapsed.as_secs_f64().max(1e-9);
    let fleet_events: u64 = fleet.iter().map(|r| r.events.len() as u64).sum();
    assert_eq!(decoded_events, fleet_events, "decode-only pass must see every simulated event");

    // 4. Serve on an ephemeral loopback port and stream every camera
    //    over its own real TCP connection, concurrently. Sessions are
    //    encoded up front — a real sensor encodes on-device, so the
    //    timed window measures ingest, not client-side varint encoding
    //    racing the server for the same cores.
    let sessions: Vec<Vec<u8>> = fleet
        .iter()
        .map(|rec| encode_session(&rec.name, rec.geometry, rec.duration_us, &rec.events, chunk))
        .collect();
    let server = IngestServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue_capacity: args.queue,
            archive_dir: args.archive.clone(),
            archive_options: ebbiot_store::StoreOptions::default(),
            stats_addr: Some("127.0.0.1:0".parse().expect("loopback addr")),
        },
        server_factory(spec, config),
    )
    .expect("bind ingestion server");
    let addr = server.local_addr();
    let stats_addr = server.stats_addr().expect("stats listener requested");
    let started = std::time::Instant::now();
    let runs = stream_fleet_bytes(addr, &fleet, &sessions).expect("stream fleet over TCP");
    let elapsed = started.elapsed();

    // Scrape the live STATS surface while the server is still up and
    // assert it is a parseable exposition carrying every layer's metric
    // families — the CI "Telemetry" step greps for this line.
    let exposition = scrape_stats(stats_addr).expect("scrape STATS listener");
    let stats_samples =
        validate_exposition(&exposition).expect("STATS exposition must parse") as u64;
    for family in [
        "ebbiot_server_connections_total",
        "ebbiot_engine_worker_busy_nanoseconds_total",
        "ebbiot_engine_chunk_queue_wait_nanoseconds",
        "ebbiot_stage_duration_nanoseconds",
    ] {
        assert!(exposition.contains(family), "STATS scrape is missing {family}");
    }
    println!("STATS scrape OK: {stats_samples} samples from {stats_addr}\n");

    let metrics = Arc::clone(server.registry());
    let report = server.shutdown();
    // Idempotent registration returns the live instruments the server
    // recorded into — the handles for the breakdown tables below.
    let stage = StageTelemetry::register(&metrics);
    let engine_metrics = EngineTelemetry::register(Arc::clone(&metrics));

    // 5. Parity: per-camera server output == in-process output, matched
    //    by camera name (concurrent sessions attach in arrival order).
    let mut identical = true;
    for (k, (rec, run)) in fleet.iter().zip(&runs).enumerate() {
        let session = report
            .sessions
            .iter()
            .find(|s| s.summary.name == rec.name)
            .unwrap_or_else(|| panic!("no session report for {}", rec.name));
        assert!(session.error.is_none(), "{}: {:?}", rec.name, session.error);
        if run.frames != in_memory.output.streams[k] {
            identical = false;
        }
    }

    // 6. Per-connection table: events, frames, queue high-water.
    let rows: Vec<Vec<String>> = fleet
        .iter()
        .zip(&runs)
        .map(|(rec, run)| {
            vec![
                rec.name.clone(),
                run.finished.events.to_string(),
                run.finished.frames.to_string(),
                run.finished.queue_high_water.to_string(),
                format!("{:.3}", run.elapsed.as_secs_f64()),
            ]
        })
        .collect();
    println!("{}", render_table(&["Camera", "Events", "Frames", "Queue HWM", "Session s"], &rows));

    // Contention breakdown of the serving engine (final, post-join).
    println!("{}", render_table(&WORKER_HEADER, &worker_rows(&report.snapshot)));
    println!("{}", render_table(&STAGE_HEADER, &stage_rows(&stage)));

    let events: u64 = runs.iter().map(|r| r.finished.events).sum();
    let frames: u64 = runs.iter().map(|r| r.finished.frames).sum();
    let max_hwm = runs.iter().map(|r| r.finished.queue_high_water).max().unwrap_or(0);
    let events_per_sec = events as f64 / elapsed.as_secs_f64().max(1e-9);
    let frames_per_sec = frames as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "ingested {events} events / {frames} frames in {:.3} s over {} connections",
        elapsed.as_secs_f64(),
        args.cameras
    );
    println!(
        "  decode:    {:>10.1} k ev/s  ({:.3} s wall, no sockets)",
        decode_only_rate / 1e3,
        decode_elapsed.as_secs_f64()
    );
    println!(
        "  socket:    {:>10.1} k ev/s  ({frames_per_sec:.1} frames/s, max queue HWM {max_hwm})",
        events_per_sec / 1e3
    );
    println!(
        "  in-memory: {:>10.1} k ev/s  ({:.3} s wall)",
        in_memory.events_per_sec() / 1e3,
        in_memory.elapsed.as_secs_f64()
    );
    if let Some(dir) = &args.archive {
        let store = ebbiot_store::FleetStore::open(dir).expect("open archive");
        println!(
            "  archive:   {} cameras, {} events, {} bytes at {}",
            store.cameras(),
            store.total_events(),
            store.total_bytes(),
            dir.display()
        );
    }
    println!(
        "\nDeterminism: TCP ingestion bit-for-bit identical to in-process run_fleet: {identical}"
    );

    // 7. Machine-readable artifact for the perf trajectory (skipped in
    //    smoke mode so CI-sized runs never clobber the tracked numbers).
    if args.smoke {
        println!("--smoke: skipping BENCH_server.json");
    } else {
        let json = JsonReport::new()
            .str("experiment", "server")
            .str("backend", spec.name)
            .str("preset", args.preset.name())
            .u64("cameras", args.cameras as u64)
            .u64("workers", workers as u64)
            .f64("seconds_per_camera", args.seconds)
            .u64("chunk_events", chunk as u64)
            .u64("queue_capacity", args.queue as u64)
            .u64("events", events)
            .u64("frames", frames)
            .f64("decode_only_events_per_sec", decode_only_rate)
            .f64("ingest_events_per_sec", events_per_sec)
            .f64("tracks_frames_per_sec", frames_per_sec)
            .u64("max_queue_high_water", u64::from(max_hwm))
            .f64("in_memory_events_per_sec", in_memory.events_per_sec())
            .u64("stats_samples", stats_samples)
            .bool("identical", identical);
        append_contention_fields(json, &report.snapshot, &stage, &engine_metrics)
            .write(std::path::Path::new("BENCH_server.json"))
            .expect("write BENCH_server.json");
        println!("wrote BENCH_server.json");
    }

    assert!(identical, "server-side output diverged from in-process run_fleet");
}

//! Regenerates **Table I — Dataset Details**.
//!
//! Prints the paper's values next to the simulated recordings' measured
//! duration, event count and rate. Usage:
//!
//! ```text
//! cargo run --release -p ebbiot-bench --bin exp_table1 [--seconds S] [--seed N] [--full]
//! ```

use ebbiot_bench::{generate_for_harness, parse_harness_args};
use ebbiot_eval::report::render_table;
use ebbiot_sim::DatasetPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (seconds, seed, full) = parse_harness_args(&args);

    println!("== Table I: Dataset Details (paper vs simulated) ==\n");
    let mut rows = Vec::new();
    for preset in DatasetPreset::all() {
        let rec = generate_for_harness(preset, seconds, seed, full, 30.0);
        let stats = rec.stats();
        rows.push(vec![
            preset.name().to_string(),
            format!("{:.0}", preset.lens_mm()),
            format!("{:.1}", preset.paper_duration_s()),
            format!("{:.1}M", preset.paper_event_count() as f64 / 1e6),
            format!("{:.1}k", preset.paper_event_rate_hz() / 1e3),
            format!("{:.1}", rec.duration_s()),
            format!("{:.2}M", stats.num_events as f64 / 1e6),
            format!("{:.1}k", rec.event_rate_hz() / 1e3),
            format!("{}", rec.num_tracks()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Location",
                "Lens(mm)",
                "Paper dur(s)",
                "Paper events",
                "Paper ev/s",
                "Sim dur(s)",
                "Sim events",
                "Sim ev/s",
                "Sim GT tracks",
            ],
            &rows,
        )
    );
    println!("Note: simulated durations default to short slices for quick runs;");
    println!("use --full for the paper's 2998.4 s / 999.5 s recordings.");
}

//! Regenerates **Fig. 2 — interrupt-driven duty-cycled operation**.
//!
//! The paper's figure is a timing diagram; the quantitative claim behind
//! it is that waking every `tF` to process the EBBI lets the processor
//! sleep almost always, whereas event-driven wake-ups at traffic rates
//! never sleep. This harness prints both schedules plus the measured
//! per-frame workload of the EBBIOT pipeline on a simulated recording.
//!
//! ```text
//! cargo run --release -p ebbiot-bench --bin exp_fig2 [--seconds S] [--seed N]
//! ```

use ebbiot_bench::{ebbiot_config_for, generate_for_harness, parse_harness_args};
use ebbiot_core::{DutyCycleModel, EbbiotPipeline, ProcessorModel};
use ebbiot_eval::report::{render_bar, render_table};
use ebbiot_sim::DatasetPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (seconds, seed, full) = parse_harness_args(&args);
    let preset = DatasetPreset::Eng;
    let rec = generate_for_harness(preset, seconds, seed, full, 20.0);

    let mut pipeline = EbbiotPipeline::new(ebbiot_config_for(preset, &rec));
    let _ = pipeline.process_recording(&rec.events, rec.duration_us);
    let ops = pipeline.ops_per_frame().expect("frames were processed");
    let ops_per_frame = ops.total() as f64;
    let event_rate = rec.event_rate_hz();

    let model = DutyCycleModel::new(ProcessorModel::cortex_m4_class(), rec.frame_us);
    let interrupt = model.evaluate(ops_per_frame);
    let event_driven = model.evaluate_event_driven(event_rate, 32.0);

    println!("== Fig. 2: interrupt-driven operation vs event-driven wake-ups ==\n");
    println!("Recording: {rec}");
    println!("Measured EBBIOT workload: {ops_per_frame:.0} ops/frame\n");
    let rows = vec![
        vec![
            "EBBIOT interrupt (tF = 66 ms)".into(),
            format!("{:.2}", interrupt.active_us_per_frame / 1000.0),
            format!("{:.2}%", interrupt.duty_cycle * 100.0),
            format!("{:.3}", interrupt.average_mw),
            format!("{}", interrupt.real_time),
        ],
        vec![
            format!("event-driven ({:.1}k ev/s)", event_rate / 1e3),
            format!("{:.2}", event_driven.active_us_per_frame / 1000.0),
            format!("{:.2}%", event_driven.duty_cycle * 100.0),
            format!("{:.3}", event_driven.average_mw),
            format!("{}", event_driven.real_time),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["Scheme", "awake ms/frame", "duty cycle", "avg power (mW)", "real-time"],
            &rows
        )
    );

    println!("\nTiming diagram over one frame (each char = ~1.3 ms of tF):");
    let slots = 50usize;
    let awake = ((interrupt.duty_cycle * slots as f64).ceil() as usize).clamp(1, slots);
    println!(
        "  EBBIOT:       [{}{}]  (wake at interrupt, then sleep)",
        "W".repeat(awake),
        "s".repeat(slots - awake)
    );
    println!("  event-driven: [{}]  (noise events keep waking the core)", "W".repeat(slots));
    println!("\nAverage power: {}", render_bar(interrupt.average_mw, event_driven.average_mw, 40));
    println!(
        "  EBBIOT {:.3} mW vs event-driven {:.3} mW ({:.0}x lower)",
        interrupt.average_mw,
        event_driven.average_mw,
        event_driven.average_mw / interrupt.average_mw
    );
}

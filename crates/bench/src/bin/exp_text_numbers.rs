//! Regenerates every **in-text resource number** of §II against the typed
//! cost models (Eqs. 1, 2, 5-8).
//!
//! ```text
//! cargo run --release -p ebbiot-bench --bin exp_text_numbers
//! ```

use ebbiot_eval::report::render_table;
use ebbiot_resource::{
    ebbi::EbbiCost,
    nn_filter::NnFilterCost,
    rpn::RpnCost,
    trackers::{EbmsCost, KfCost, OtCost},
    PaperParams,
};

fn main() {
    let p = PaperParams::paper();
    let ebbi = EbbiCost::new(p);
    let nn = NnFilterCost::new(p);
    let rpn = RpnCost::new(p);
    let ot = OtCost::new(p);
    let kf = KfCost::new(p);
    let ebms = EbmsCost::new(p);

    println!("== In-text resource numbers (paper vs this reproduction) ==\n");
    let rows = vec![
        vec![
            "C_EBBI".into(),
            "125.2 kops/frame".into(),
            format!("{:.1} kops", ebbi.computes() / 1e3),
        ],
        vec!["M_EBBI".into(), "10.8 kB".into(), format!("{:.1} kB", ebbi.memory_kb())],
        vec![
            "C_NN-filt".into(),
            "~276.4 kops/frame".into(),
            format!("{:.1} kops", nn.computes() / 1e3),
        ],
        vec![
            "M_NN-filt vs M_EBBI".into(),
            "8x savings".into(),
            format!("{:.1}x", nn.memory_saving_vs_ebbi()),
        ],
        vec![
            "C_RPN (Eq. 5)".into(),
            "45.6 kops (in text)".into(),
            format!(
                "{:.1} kops (Eq. 5 verbatim: {:.1}k)",
                rpn.computes_in_text() / 1e3,
                rpn.computes() / 1e3
            ),
        ],
        vec!["M_RPN".into(), "~1.6 kB".into(), format!("{:.2} kB", rpn.memory_kb())],
        vec!["C_OT".into(), "~564 ops".into(), format!("{:.0} ops", ot.computes())],
        vec!["M_OT".into(), "< 0.5 kB".into(), format!("{:.2} kB", ot.memory_bits() as f64 / 8e3)],
        vec!["C_KF (NT=2)".into(), "1200 ops".into(), format!("{:.0} ops", kf.computes())],
        vec!["M_KF".into(), "~1.1 kB".into(), format!("{:.2} kB", kf.memory_bits() as f64 / 8e3)],
        vec![
            "C_EBMS".into(),
            "252 kops/frame".into(),
            format!("{:.1} kops", ebms.computes() / 1e3),
        ],
        vec!["M_EBMS".into(), "3.32 kb".into(), format!("{} bits", ebms.memory_bits())],
        vec![
            "C_EBMS / C_OT".into(),
            "~500x".into(),
            format!("{:.0}x", ebms.computes() / ot.computes()),
        ],
    ];
    println!("{}", render_table(&["quantity", "paper", "reproduction"], &rows));
    println!("\nNotes:");
    println!("- C_RPN: Eq. 5 as printed evaluates to 48.0k; the paper's in-text 45.6k");
    println!("  corresponds to a single shared pass building both histograms.");
    println!("- M_EBMS: Eq. 8 yields 3320 *bits*; the paper's '3.32 kB' reads kb(its).");
}

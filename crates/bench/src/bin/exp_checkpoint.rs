//! **Checkpoint experiment** — what freezing and thawing a camera
//! session costs, and proof that recovery is lossless: per-back-end
//! `EBSS` snapshot sizes and checkpoint/encode/restore latencies with
//! bit-exact resume parity, then a crash-recovery drill — archive a
//! mixed-back-end fleet with [`FleetArchiver`], sever every session
//! mid-stream on a running engine via `detach_with_state`, drop all
//! live state, and rebuild each session from its last `EBSS` snapshot
//! plus the archived `EBST` tail (`seek_to_time`). The shipped +
//! recovered output must equal the unsevered run in every bit.
//!
//! ```text
//! cargo run --release -p ebbiot_bench --bin exp_checkpoint -- \
//!     [--cameras K] [--workers W] [--seconds S] [--seed N] \
//!     [--preset LT4|ENG] [--chunk E] [--dir PATH] [--keep] [--smoke]
//! ```
//!
//! Defaults: 6 cameras, 4 workers, 1 s per camera on LT4, 2048-event
//! archive chunks, archive under the system temp dir (removed unless
//! `--keep`). Emits `BENCH_checkpoint.json`; `--smoke` shrinks the run
//! to CI size and skips the artifact while keeping every parity assert.

use std::path::PathBuf;
use std::time::Instant;

use ebbiot_baselines::{registry, BACKENDS};
use ebbiot_bench::{ebbiot_config_for, JsonReport};
use ebbiot_core::FrameResult;
use ebbiot_engine::{Engine, EngineConfig, StreamTotals};
use ebbiot_eval::report::render_table;
use ebbiot_events::Event;
use ebbiot_sim::{DatasetPreset, FleetConfig};
use ebbiot_store::{read_snapshot, write_snapshot, FleetArchiver, FleetStore, StoreOptions};

struct Args {
    cameras: usize,
    workers: usize,
    seconds: f64,
    seed: u64,
    preset: DatasetPreset,
    chunk: usize,
    dir: Option<PathBuf>,
    keep: bool,
    smoke: bool,
}

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args {
        cameras: 6,
        workers: 4,
        seconds: 1.0,
        seed: 42,
        preset: DatasetPreset::Lt4,
        chunk: 2048,
        dir: None,
        keep: false,
        smoke: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_default();
        match arg.as_str() {
            "--cameras" => parsed.cameras = value().parse().expect("--cameras <usize>"),
            "--workers" => parsed.workers = value().parse().expect("--workers <usize>"),
            "--seconds" => parsed.seconds = value().parse().expect("--seconds <f64>"),
            "--seed" => parsed.seed = value().parse().expect("--seed <u64>"),
            "--chunk" => parsed.chunk = value().parse().expect("--chunk <usize>"),
            "--dir" => parsed.dir = Some(PathBuf::from(value())),
            "--keep" => parsed.keep = true,
            "--smoke" => parsed.smoke = true,
            "--preset" => {
                parsed.preset = match value().to_uppercase().as_str() {
                    "ENG" => DatasetPreset::Eng,
                    "LT4" => DatasetPreset::Lt4,
                    other => panic!("--preset must be ENG or LT4, got {other:?}"),
                }
            }
            other => panic!("unknown argument {other}"),
        }
    }
    parsed
}

fn assert_bits_eq(got: &[FrameResult], expect: &[FrameResult], context: &str) {
    assert_eq!(got.len(), expect.len(), "{context}: frame count diverged");
    for (g, e) in got.iter().zip(expect) {
        assert!(g.bits_eq(e), "{context}: frame {} diverged bit-wise", e.index);
    }
}

/// A chunk boundary near the middle where time strictly advances — the
/// only kind of cut `seek_to_time` can resume from without replaying or
/// skipping an event.
fn pick_cut(chunks: &[Vec<Event>]) -> usize {
    (1..chunks.len())
        .filter(|&k| chunks[k - 1].last().unwrap().t < chunks[k][0].t)
        .min_by_key(|&k| k.abs_diff(chunks.len() / 2))
        .expect("a strictly advancing chunk boundary exists")
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = parse_args(&argv);
    if args.smoke {
        args.cameras = args.cameras.min(2);
        args.workers = args.workers.min(2);
        args.seconds = args.seconds.min(0.25);
    }
    let workers = args.workers.min(args.cameras).max(1);
    let iters = if args.smoke { 3 } else { 50 };

    println!(
        "== Checkpoint: {} cameras x {:.2} s of {}, EBSS freeze/thaw + crash-recovery drill ==\n",
        args.cameras,
        args.seconds,
        args.preset.name()
    );

    let fleet = FleetConfig::new(args.preset, args.cameras)
        .with_seconds(args.seconds)
        .with_base_seed(args.seed)
        .generate();
    let config = ebbiot_config_for(args.preset, &fleet[0]).with_frame_us(fleet[0].frame_us);
    let mut report = JsonReport::new()
        .str("experiment", "checkpoint")
        .str("preset", args.preset.name())
        .u64("cameras", args.cameras as u64)
        .u64("workers", workers as u64)
        .f64("seconds_per_camera", args.seconds)
        .u64("chunk_events", args.chunk as u64);

    // ------------------------------------------------------------------
    // 1. Per-back-end snapshot cost on camera 0, severed halfway, with
    //    a bit-exact resume assert behind every row.
    // ------------------------------------------------------------------
    let rec = &fleet[0];
    let half = rec.events.len() / 2;
    let mut rows = Vec::new();
    for spec in BACKENDS {
        let expect = spec.build(config.clone()).process_recording(&rec.events, rec.duration_us);

        let mut severed = spec.build(config.clone());
        let mut shipped = Vec::new();
        for chunk in rec.events[..half].chunks(args.chunk.max(1)) {
            shipped.extend(severed.push(chunk));
        }

        let started = Instant::now();
        let mut state = severed.checkpoint();
        for _ in 1..iters {
            state = severed.checkpoint();
        }
        let checkpoint_us = started.elapsed().as_secs_f64() * 1e6 / iters as f64;

        let started = Instant::now();
        let mut bytes = Vec::new();
        for _ in 0..iters {
            bytes.clear();
            write_snapshot(&mut bytes, "cam00", rec.geometry, 0, &state).expect("encode");
        }
        let encode_us = started.elapsed().as_secs_f64() * 1e6 / iters as f64;

        let started = Instant::now();
        let mut resumed = None;
        for _ in 0..iters {
            let (_, decoded) = read_snapshot(&bytes).expect("decode");
            resumed = Some(registry::restore_pipeline(config.clone(), &decoded).expect("restore"));
        }
        let restore_us = started.elapsed().as_secs_f64() * 1e6 / iters as f64;

        let mut resumed = resumed.expect("at least one restore iteration");
        let mut frames = shipped;
        for chunk in rec.events[half..].chunks(args.chunk.max(1)) {
            frames.extend(resumed.push(chunk));
        }
        frames.extend(resumed.finish(rec.duration_us));
        assert_bits_eq(&frames, &expect, &format!("{} resumed from EBSS", spec.name));

        rows.push(vec![
            spec.name.to_string(),
            bytes.len().to_string(),
            state.tracker.len().to_string(),
            format!("{checkpoint_us:.1}"),
            format!("{encode_us:.1}"),
            format!("{restore_us:.1}"),
            "bit-exact".to_string(),
        ]);
        report = report
            .u64(&format!("ebss_bytes_{}", spec.name), bytes.len() as u64)
            .f64(&format!("checkpoint_us_{}", spec.name), checkpoint_us)
            .f64(&format!("encode_us_{}", spec.name), encode_us)
            .f64(&format!("restore_us_{}", spec.name), restore_us);
    }
    println!(
        "{}",
        render_table(
            &[
                "Backend",
                "EBSS bytes",
                "Tracker bytes",
                "ckpt us",
                "encode us",
                "restore us",
                "resume"
            ],
            &rows
        )
    );

    // ------------------------------------------------------------------
    // 2. Crash-recovery drill: archive the whole fleet, sever every
    //    session mid-stream on a running mixed-back-end engine, snapshot
    //    each hand-off into the archive's snapshot area, drop all live
    //    state, then recover from disk alone and prove nothing is lost.
    // ------------------------------------------------------------------
    let dir = args.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("ebbiot_checkpoint_{}", std::process::id()))
    });
    // Cap the archive chunk so even a smoke-sized recording spans
    // several chunks — the drill needs a mid-stream boundary to cut at.
    let shortest = fleet.iter().map(|r| r.events.len()).min().unwrap_or(1);
    let archive_chunk = args.chunk.max(1).min((shortest / 8).max(1));
    let archiver = FleetArchiver::create(&dir, StoreOptions { chunk_events: archive_chunk })
        .expect("create archive");
    for rec in &fleet {
        let mut stream =
            archiver.begin(&rec.name, rec.geometry, rec.duration_us).expect("begin archive");
        for chunk in rec.events.chunks(archive_chunk) {
            stream.push_events(chunk).expect("archive events");
        }
        stream.finish(rec.duration_us).expect("seal archive");
    }
    let store = FleetStore::open(&dir).expect("open archive");
    let backend_of = |camera: usize| &BACKENDS[camera % BACKENDS.len()];

    // The live engine, severed camera by camera at its own cut point.
    let chunks_of: Vec<Vec<Vec<Event>>> = (0..fleet.len())
        .map(|k| {
            let mut reader = store.mapped_reader(k).expect("open camera");
            let mut chunks = Vec::new();
            while let Some(chunk) = reader.next_chunk().expect("read chunk") {
                chunks.push(chunk.to_vec());
            }
            chunks
        })
        .collect();
    let engine = Engine::new(
        EngineConfig { workers, queue_capacity: 32, ..EngineConfig::default() },
        Vec::new(),
    );
    let streams: Vec<_> =
        (0..fleet.len()).map(|k| engine.attach(backend_of(k).build(config.clone()))).collect();
    for (k, chunks) in chunks_of.iter().enumerate() {
        for chunk in &chunks[..pick_cut(chunks)] {
            engine.push(streams[k], chunk.clone());
        }
    }
    let mut shipped = Vec::new();
    for (k, chunks) in chunks_of.iter().enumerate() {
        let cut = pick_cut(chunks);
        let handoff = engine.detach_with_state(streams[k]);
        store.write_camera_snapshot(k, chunks[cut][0].t, &handoff.state).expect("write snapshot");
        shipped.push(handoff.frames);
    }
    drop(engine); // the crash: only the archive directory survives

    // Recovery from disk alone.
    let recovery_started = Instant::now();
    let engine = Engine::new(
        EngineConfig { workers, queue_capacity: 32, ..EngineConfig::default() },
        Vec::new(),
    );
    let mut tail_events = 0u64;
    let resumed: Vec<_> = (0..fleet.len())
        .map(|k| {
            let (header, state) =
                store.latest_snapshot(k).expect("scan snapshots").expect("snapshot exists");
            let pipeline =
                registry::restore_pipeline(config.clone(), &state).expect("restore session");
            let id = engine.attach_with_state(pipeline, StreamTotals::default());
            let mut reader = store.mapped_reader(k).expect("reopen camera");
            reader.seek_to_time(header.checkpoint_t);
            while let Some(chunk) = reader.next_chunk().expect("read tail") {
                tail_events += chunk.len() as u64;
                engine.push(id, chunk.to_vec());
            }
            engine.finish_stream(id, fleet[k].duration_us);
            id
        })
        .collect();
    let output = engine.join();
    let recovery_elapsed = recovery_started.elapsed();

    let mut drill_rows = Vec::new();
    let mut identical = true;
    for (k, rec) in fleet.iter().enumerate() {
        let spec = backend_of(k);
        let expect: Vec<FrameResult> =
            spec.build(config.clone()).process_recording(&rec.events, rec.duration_us);
        let mut recovered = shipped[k].clone();
        recovered.extend(output.streams[resumed[k].0].iter().cloned());
        assert_bits_eq(&recovered, &expect, &format!("camera {k} ({})", spec.name));
        identical &= recovered.len() == expect.len();
        drill_rows.push(vec![
            rec.name.clone(),
            spec.name.to_string(),
            shipped[k].len().to_string(),
            (recovered.len() - shipped[k].len()).to_string(),
            "bit-exact".to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Camera", "Backend", "Shipped frames", "Recovered frames", "vs unsevered"],
            &drill_rows
        )
    );
    let recovery_rate = tail_events as f64 / recovery_elapsed.as_secs_f64().max(1e-9);
    println!(
        "drill: {} cameras severed and recovered in {:.3} s ({:.1} k tail ev/s) — lossless: {identical}",
        fleet.len(),
        recovery_elapsed.as_secs_f64(),
        recovery_rate / 1e3
    );

    if args.smoke {
        println!("--smoke: skipping BENCH_checkpoint.json");
    } else {
        report
            .u64("drill_tail_events", tail_events)
            .f64("drill_recovery_seconds", recovery_elapsed.as_secs_f64())
            .f64("drill_tail_events_per_sec", recovery_rate)
            .bool("identical", identical)
            .write(std::path::Path::new("BENCH_checkpoint.json"))
            .expect("write BENCH_checkpoint.json");
        println!("wrote BENCH_checkpoint.json");
    }

    if args.keep || args.dir.is_some() {
        println!("archive kept at {}", dir.display());
    } else {
        std::fs::remove_dir_all(&dir).expect("remove archive dir");
    }
    assert!(identical, "recovery diverged from the unsevered run");
}

//! Accuracy ablations for the design choices DESIGN.md calls out
//! (complementing the wall-clock `benches/ablations.rs`):
//!
//! 1. proposal refinement off (paper) vs on (extension) — effect on the
//!    Fig. 4 ordering,
//! 2. histogram RPN vs CCA RPN,
//! 3. OT occlusion look-ahead on vs off (identity metrics on a scripted
//!    crossing),
//! 4. ROE on vs off against a flicker distractor.
//!
//! ```text
//! cargo run --release -p ebbiot-bench --bin exp_ablations [--seconds S] [--seed N]
//! ```

use ebbiot_bench::{gt_boxes, parse_harness_args};
use ebbiot_core::{
    rpn::RpnConfig, tracker::OtConfig, EbbiotConfig, EbbiotPipeline, RegionOfExclusion, RpnMode,
};
use ebbiot_eval::{evaluate_frames, report::render_table, IdentifiedBox, MotAccumulator};
use ebbiot_events::stream::FrameWindows;
use ebbiot_frame::BoundingBox;
use ebbiot_sim::{BackgroundNoise, DatasetPreset, DavisConfig, DavisSimulator, ScenarioBuilder};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (seconds, seed, _) = parse_harness_args(&args);
    let rec = DatasetPreset::Lt4.config().with_duration_s(seconds.unwrap_or(20.0)).generate(seed);
    let gt = gt_boxes(&rec);
    println!("Workload: {rec}\n");

    // ------------------------------------------------------------------
    // 1 + 2: RPN variants on the same recording.
    // ------------------------------------------------------------------
    println!("== RPN ablations (F1 at IoU 0.4 / 0.5) ==\n");
    let variants: Vec<(&str, RpnConfig)> = vec![
        ("histogram (paper)", RpnConfig::paper_default()),
        ("histogram + refinement", RpnConfig::refined()),
        (
            "CCA (future work)",
            RpnConfig { mode: RpnMode::ConnectedComponents, ..RpnConfig::paper_default() },
        ),
        (
            "CCA + refinement",
            RpnConfig {
                mode: RpnMode::ConnectedComponents,
                refine_boxes: true,
                ..RpnConfig::paper_default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, rpn) in variants {
        let mut cfg = EbbiotConfig::paper_default(rec.geometry);
        cfg.rpn = rpn;
        let mut pipeline = EbbiotPipeline::new(cfg);
        let frames = pipeline.process_recording(&rec.events, rec.duration_us);
        let pred: Vec<Vec<BoundingBox>> =
            frames.iter().map(|f| f.tracks.iter().map(|t| t.bbox).collect()).collect();
        let f1 = |thr: f32| evaluate_frames(&gt, &pred, thr).pr.f1();
        rows.push(vec![name.to_string(), format!("{:.3}", f1(0.4)), format!("{:.3}", f1(0.5))]);
    }
    println!("{}", render_table(&["RPN variant", "F1 @0.4", "F1 @0.5"], &rows));

    // ------------------------------------------------------------------
    // 3: occlusion look-ahead on a scripted crossing.
    // ------------------------------------------------------------------
    println!("\n== OT occlusion look-ahead (scripted crossing, IoU 0.3) ==\n");
    let scene = ScenarioBuilder::crossing_cars();
    let duration = 4_500_000u64;
    let events = DavisSimulator::new(DavisConfig::default()).simulate(
        &scene,
        duration,
        BackgroundNoise::new(0.05),
        &mut StdRng::seed_from_u64(seed),
    );
    let mut rows = Vec::new();
    for (name, lookahead) in [("with look-ahead (n = 2)", 2u32), ("without (n = 0)", 0)] {
        let mut cfg = EbbiotConfig::paper_default(scene.geometry);
        cfg.ot = OtConfig { occlusion_lookahead: lookahead, ..cfg.ot };
        let mut pipeline = EbbiotPipeline::new(cfg);
        let mut mot = MotAccumulator::new();
        for window in FrameWindows::with_span(&events, 66_000, duration) {
            let result = pipeline.process_frame(window.events);
            let gt_boxes: Vec<IdentifiedBox> = scene
                .objects
                .iter()
                .filter_map(|o| {
                    o.bbox_at(window.midpoint()).and_then(|b| {
                        let c = b.clipped_to(240.0, 180.0);
                        (c.area() > 25.0).then(|| IdentifiedBox::new(u64::from(o.id), c))
                    })
                })
                .collect();
            let pred: Vec<IdentifiedBox> =
                result.tracks.iter().map(|t| IdentifiedBox::new(t.track_id, t.bbox)).collect();
            mot.add_frame(&gt_boxes, &pred, 0.3);
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", mot.mota()),
            format!("{}", mot.id_switches()),
            format!("{}", mot.fragmentations()),
            format!("{}", mot.misses()),
        ]);
    }
    println!(
        "{}",
        render_table(&["OT variant", "MOTA", "ID switches", "fragmentations", "misses"], &rows)
    );

    // ------------------------------------------------------------------
    // 4: ROE against a flicker distractor.
    // ------------------------------------------------------------------
    println!("\n== ROE ablation (flickering foliage + one car, IoU 0.3) ==\n");
    let scene = ScenarioBuilder::flicker_and_car();
    let duration = 4_500_000u64;
    let events = DavisSimulator::new(DavisConfig::default()).simulate(
        &scene,
        duration,
        BackgroundNoise::new(0.05),
        &mut StdRng::seed_from_u64(seed + 1),
    );
    let gt_frames: Vec<Vec<BoundingBox>> = FrameWindows::with_span(&events, 66_000, duration)
        .map(|w| {
            scene
                .objects
                .iter()
                .filter_map(|o| o.bbox_at(w.midpoint()))
                .map(|b| b.clipped_to(240.0, 180.0))
                .filter(|b| b.area() > 25.0)
                .collect()
        })
        .collect();
    let mut rows = Vec::new();
    for (name, roe) in [
        ("with ROE", RegionOfExclusion::new(vec![BoundingBox::new(2.0, 5.0, 52.0, 38.0)])),
        ("without ROE", RegionOfExclusion::none()),
    ] {
        let cfg = EbbiotConfig::paper_default(scene.geometry).with_roe(roe);
        let mut pipeline = EbbiotPipeline::new(cfg);
        let frames = pipeline.process_recording(&events, duration);
        let pred: Vec<Vec<BoundingBox>> =
            frames.iter().map(|f| f.tracks.iter().map(|t| t.bbox).collect()).collect();
        let e = evaluate_frames(&gt_frames, &pred, 0.3);
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", e.pr.precision),
            format!("{:.3}", e.pr.recall),
            format!("{}", e.proposals),
        ]);
    }
    println!("{}", render_table(&["Variant", "Precision", "Recall", "total boxes"], &rows));
}

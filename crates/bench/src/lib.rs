//! Shared harness utilities for the experiment binaries and benches.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of
//! the paper (see DESIGN.md's per-experiment index). This library holds
//! the glue: running each tracker pipeline over a simulated recording and
//! extracting per-frame box lists in the shape the evaluator wants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod breakdown;
pub mod net;

use ebbiot_baselines::registry::{self, BackendSpec};
use ebbiot_core::{EbbiotConfig, RegionOfExclusion};
use ebbiot_engine::{Engine, FleetOptions, FleetRun, FleetStream};
use ebbiot_eval::{sweep_thresholds, RecordingEval};
use ebbiot_frame::BoundingBox;
use ebbiot_sim::{DatasetPreset, SimulatedRecording};

/// Per-frame tracker boxes, the evaluator's input shape.
pub type FrameBoxes = Vec<Vec<BoundingBox>>;

/// Builds the EBBIOT configuration for a recording, deriving the ROE from
/// the preset's flicker distractors (the paper's manually drawn ROE; our
/// "manual" knowledge comes from the preset definition, not from the
/// events).
#[must_use]
pub fn ebbiot_config_for(preset: DatasetPreset, rec: &SimulatedRecording) -> EbbiotConfig {
    let roe_boxes: Vec<BoundingBox> = preset
        .config()
        .flickers
        .iter()
        .map(|f| {
            let b = f.region;
            // One RPN cell of margin so cell-aligned proposals of the
            // flicker are reliably caught.
            BoundingBox::new(
                f32::from(b.x_min) - 6.0,
                f32::from(b.y_min) - 3.0,
                f32::from(b.width()) + 12.0,
                f32::from(b.height()) + 6.0,
            )
        })
        .collect();
    EbbiotConfig::paper_default(rec.geometry).with_roe(RegionOfExclusion::new(roe_boxes))
}

/// Runs one registered back-end over a recording, returning per-frame
/// boxes. The harness enumerates back-ends through
/// [`ebbiot_baselines::registry::BACKENDS`] instead of hand-rolled match
/// arms, so a newly registered tracker appears in every experiment
/// automatically.
#[must_use]
pub fn run_backend(
    spec: &BackendSpec,
    preset: DatasetPreset,
    rec: &SimulatedRecording,
) -> FrameBoxes {
    let config = ebbiot_config_for(preset, rec).with_frame_us(rec.frame_us);
    let mut pipeline = spec.build(config);
    pipeline
        .process_recording(&rec.events, rec.duration_us)
        .into_iter()
        .map(|f| f.tracks.into_iter().map(|t| t.bbox).collect())
        .collect()
}

/// Runs a back-end looked up by registry name or display label.
#[must_use]
pub fn run_backend_named(
    name: &str,
    preset: DatasetPreset,
    rec: &SimulatedRecording,
) -> Option<FrameBoxes> {
    registry::find_backend(name).map(|spec| run_backend(spec, preset, rec))
}

/// Runs the EBBIOT pipeline over a recording, returning per-frame boxes.
#[must_use]
pub fn run_ebbiot(preset: DatasetPreset, rec: &SimulatedRecording) -> FrameBoxes {
    run_backend_named("ebbiot", preset, rec).expect("registered")
}

/// Runs the EBBI + Kalman-filter baseline.
#[must_use]
pub fn run_ebbi_kf(preset: DatasetPreset, rec: &SimulatedRecording) -> FrameBoxes {
    run_backend_named("ebbi-kf", preset, rec).expect("registered")
}

/// Runs the NN-filt + EBMS baseline.
#[must_use]
pub fn run_nn_ebms(preset: DatasetPreset, rec: &SimulatedRecording) -> FrameBoxes {
    run_backend_named("nn-ebms", preset, rec).expect("registered")
}

/// Extracts per-frame ground-truth boxes from a recording.
#[must_use]
pub fn gt_boxes(rec: &SimulatedRecording) -> FrameBoxes {
    rec.ground_truth.iter().map(|f| f.boxes.iter().map(|b| b.bbox).collect()).collect()
}

/// Evaluates one tracker output against a recording's ground truth over
/// the Fig. 4 threshold grid.
#[must_use]
pub fn fig4_sweep(rec: &SimulatedRecording, predictions: &FrameBoxes) -> Vec<RecordingEval> {
    sweep_thresholds(&gt_boxes(rec), predictions, &ebbiot_eval::sweep::fig4_thresholds())
}

/// Runs one registered back-end over a whole camera fleet through the
/// concurrent engine, feeding each recording's events in interleaved
/// chunks. Output is bit-for-bit what [`run_backend`]-style sequential
/// processing of each recording yields, regardless of
/// `options.workers` — that is the engine's determinism guarantee.
#[must_use]
pub fn run_fleet_backend(
    spec: &BackendSpec,
    preset: DatasetPreset,
    fleet: &[SimulatedRecording],
    options: &FleetOptions,
) -> FleetRun {
    assert!(!fleet.is_empty(), "fleet needs at least one camera");
    let config = ebbiot_config_for(preset, &fleet[0]).with_frame_us(fleet[0].frame_us);
    let pipelines = spec.build_fleet(&config, fleet.len());
    let streams: Vec<FleetStream<'_>> =
        fleet.iter().map(|r| FleetStream { events: &r.events, span_us: r.duration_us }).collect();
    Engine::run_fleet(pipelines, &streams, options)
}

/// Sequentially processes the same fleet, one camera after another —
/// the single-core baseline `exp_fleet` compares the engine against.
/// Returns per-camera frame results in the same shape as
/// [`FleetRun`]'s `output.streams`.
#[must_use]
pub fn run_fleet_sequential(
    spec: &BackendSpec,
    preset: DatasetPreset,
    fleet: &[SimulatedRecording],
) -> Vec<Vec<ebbiot_core::FrameResult>> {
    assert!(!fleet.is_empty(), "fleet needs at least one camera");
    let config = ebbiot_config_for(preset, &fleet[0]).with_frame_us(fleet[0].frame_us);
    fleet
        .iter()
        .map(|rec| spec.build(config.clone()).process_recording(&rec.events, rec.duration_us))
        .collect()
}

/// A traffic-like synthetic EBBI for kernel benchmarking: a few
/// vehicle-sized blobs plus uniform salt noise at roughly `density`.
/// Shared by `exp_hotpath` and the `kernels` criterion bench so both
/// measure the same input distribution.
#[must_use]
pub fn synthetic_traffic_ebbi(
    geometry: ebbiot_events::SensorGeometry,
    density: f64,
    rng: &mut rand::rngs::StdRng,
) -> ebbiot_frame::BinaryImage {
    use rand::Rng;
    let mut img = ebbiot_frame::BinaryImage::new(geometry);
    let (w, h) = (geometry.width(), geometry.height());
    for _ in 0..4 {
        let bw = rng.random_range(12u16..40);
        let bh = rng.random_range(8u16..20);
        let x = rng.random_range(0..w.saturating_sub(bw).max(1));
        let y = rng.random_range(0..h.saturating_sub(bh).max(1));
        img.fill_box(&ebbiot_frame::PixelBox::new(x, y, (x + bw).min(w), (y + bh).min(h)));
    }
    let noise = (geometry.num_pixels() as f64 * density) as usize;
    for _ in 0..noise {
        img.set(rng.random_range(0..w), rng.random_range(0..h), true);
    }
    img
}

/// An 8x8 tiling of tracker-sized boxes across the frame, the shared
/// workload for the box-counting kernel measurements.
#[must_use]
pub fn tracker_box_tiling(geometry: ebbiot_events::SensorGeometry) -> Vec<ebbiot_frame::PixelBox> {
    (0..64u16)
        .map(|i| {
            let x = (i % 8) * (geometry.width() / 8);
            let y = (i / 8) * (geometry.height() / 8);
            ebbiot_frame::PixelBox::new(x, y, x + geometry.width() / 6, y + geometry.height() / 6)
        })
        .collect()
}

/// Minimal ordered JSON-object builder for the machine-readable
/// `BENCH_*.json` artifacts the experiment binaries emit (the
/// workspace is offline — no serde). Insertion order is preserved so
/// diffs between runs stay stable.
#[derive(Debug, Default, Clone)]
pub struct JsonReport {
    fields: Vec<(String, String)>,
}

impl JsonReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, key: &str, rendered: String) -> Self {
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds an integer field.
    #[must_use]
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.push(key, value.to_string())
    }

    /// Adds a float field (non-finite values become `null`).
    #[must_use]
    pub fn f64(self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() { format!("{value:.6}") } else { "null".into() };
        self.push(key, rendered)
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.push(key, value.to_string())
    }

    /// Adds a string field (escaping quotes and backslashes).
    #[must_use]
    pub fn str(self, key: &str, value: &str) -> Self {
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        self.push(key, format!("\"{escaped}\""))
    }

    /// Renders the report as a single JSON object.
    #[must_use]
    pub fn render(&self) -> String {
        let body: Vec<String> =
            self.fields.iter().map(|(k, v)| format!("  \"{k}\": {v}")).collect();
        format!("{{\n{}\n}}\n", body.join(",\n"))
    }

    /// Writes the rendered report to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Parses `--seconds <f>`, `--seed <u>` and `--full` from argv, returning
/// `(seconds_override, seed, full)`.
#[must_use]
pub fn parse_harness_args(args: &[String]) -> (Option<f64>, u64, bool) {
    let mut seconds = None;
    let mut seed = 42;
    let mut full = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seconds" => {
                seconds = it.next().and_then(|v| v.parse().ok());
            }
            "--seed" => {
                if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                    seed = v;
                }
            }
            "--full" => full = true,
            _ => {}
        }
    }
    (seconds, seed, full)
}

/// Generates a recording for a preset honouring harness args: `--full`
/// restores Table I durations, `--seconds` overrides, default is the
/// preset's 1/10-scaled duration capped at `default_cap_s` for quick runs.
#[must_use]
pub fn generate_for_harness(
    preset: DatasetPreset,
    seconds: Option<f64>,
    seed: u64,
    full: bool,
    default_cap_s: f64,
) -> SimulatedRecording {
    let cfg = preset.config();
    let cfg = if full {
        cfg.with_full_duration(preset)
    } else if let Some(s) = seconds {
        cfg.with_duration_s(s)
    } else {
        let scaled_s = cfg.duration_us as f64 / 1e6;
        cfg.with_duration_s(scaled_s.min(default_cap_s))
    };
    cfg.generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing_defaults_and_overrides() {
        let (s, seed, full) = parse_harness_args(&[]);
        assert_eq!((s, seed, full), (None, 42, false));
        let args: Vec<String> =
            ["--seconds", "12.5", "--seed", "7", "--full"].iter().map(|s| s.to_string()).collect();
        let (s, seed, full) = parse_harness_args(&args);
        assert_eq!(s, Some(12.5));
        assert_eq!(seed, 7);
        assert!(full);
    }

    #[test]
    fn harness_generation_respects_cap() {
        let rec = generate_for_harness(DatasetPreset::Lt4, None, 1, false, 2.0);
        assert_eq!(rec.duration_us, 2_000_000);
        let rec = generate_for_harness(DatasetPreset::Lt4, Some(1.0), 1, false, 2.0);
        assert_eq!(rec.duration_us, 1_000_000);
    }

    #[test]
    fn pipelines_produce_frame_aligned_outputs() {
        let rec = generate_for_harness(DatasetPreset::Lt4, Some(2.0), 3, false, 2.0);
        let gt = gt_boxes(&rec);
        let eb = run_ebbiot(DatasetPreset::Lt4, &rec);
        let kf = run_ebbi_kf(DatasetPreset::Lt4, &rec);
        let ms = run_nn_ebms(DatasetPreset::Lt4, &rec);
        assert_eq!(gt.len(), eb.len());
        assert_eq!(gt.len(), kf.len());
        assert_eq!(gt.len(), ms.len());
    }

    #[test]
    fn fleet_engine_matches_sequential_baseline() {
        let fleet =
            ebbiot_sim::FleetConfig::new(DatasetPreset::Lt4, 2).with_seconds(1.0).generate();
        let spec = registry::find_backend("ebbiot").unwrap();
        let sequential = run_fleet_sequential(spec, DatasetPreset::Lt4, &fleet);
        let run = run_fleet_backend(
            spec,
            DatasetPreset::Lt4,
            &fleet,
            &FleetOptions { workers: 2, queue_capacity: 4, chunk_events: 512 },
        );
        assert_eq!(run.output.streams, sequential);
    }

    #[test]
    fn json_report_renders_ordered_valid_json() {
        let json = JsonReport::new()
            .u64("events", 1200)
            .f64("ratio", 2.5)
            .f64("bad", f64::NAN)
            .bool("identical", true)
            .str("backend", "ebbi\"ot")
            .render();
        assert_eq!(
            json,
            "{\n  \"events\": 1200,\n  \"ratio\": 2.500000,\n  \"bad\": null,\n  \
             \"identical\": true,\n  \"backend\": \"ebbi\\\"ot\"\n}\n"
        );
    }

    #[test]
    fn roe_covers_eng_flicker() {
        let rec = generate_for_harness(DatasetPreset::Eng, Some(1.0), 3, false, 1.0);
        let cfg = ebbiot_config_for(DatasetPreset::Eng, &rec);
        assert_eq!(cfg.roe.regions().len(), 1);
        let r = cfg.roe.regions()[0];
        assert!(r.x < 4.0 && r.x_max() > 44.0);
    }
}

//! Stage/contention breakdown shared by `exp_fleet` and `exp_server`:
//! instrumented fleet runs, the tables that localize where parallel
//! speedup goes, and the flat `BENCH_*.json` fields that track it
//! across PRs (the "reading the fleet breakdown" cookbook in
//! ARCHITECTURE.md §7 walks through the output).

use std::sync::Arc;

use ebbiot_baselines::registry::BackendSpec;
use ebbiot_core::{FrameResult, StageTelemetry};
use ebbiot_engine::{Engine, EngineTelemetry, FleetOptions, FleetRun, FleetStream, Snapshot};
use ebbiot_sim::{DatasetPreset, SimulatedRecording};
use ebbiot_telemetry::{Histogram, Registry};

use crate::{ebbiot_config_for, JsonReport};

/// Column headers of [`worker_rows`].
pub const WORKER_HEADER: [&str; 8] =
    ["Worker", "Busy ms", "Acquire ms", "Idle ms", "Queue-wait ms", "Busy %", "Chunks", "Steals"];

/// Column headers of [`stage_rows`].
pub const STAGE_HEADER: [&str; 5] = ["Stage", "Calls", "Total ms", "Mean µs", "Max ≤ µs"];

/// Like [`crate::run_fleet_backend`], but with the full telemetry story
/// attached: the engine registers its contention metrics in `registry`
/// and every pipeline records per-stage durations into one shared
/// [`StageTelemetry`] (returned alongside the run). Output is still
/// bit-for-bit the sequential result — telemetry observes, never steers.
#[must_use]
pub fn run_fleet_backend_instrumented(
    spec: &BackendSpec,
    preset: DatasetPreset,
    fleet: &[SimulatedRecording],
    options: &FleetOptions,
    registry: &Arc<Registry>,
) -> (FleetRun, StageTelemetry) {
    assert!(!fleet.is_empty(), "fleet needs at least one camera");
    let config = ebbiot_config_for(preset, &fleet[0]).with_frame_us(fleet[0].frame_us);
    let stage = StageTelemetry::register(registry);
    let pipelines = spec
        .build_fleet(&config, fleet.len())
        .into_iter()
        .map(|p| p.with_stage_telemetry(stage.clone()))
        .collect();
    let streams: Vec<FleetStream<'_>> =
        fleet.iter().map(|r| FleetStream { events: &r.events, span_us: r.duration_us }).collect();
    let run = Engine::run_fleet_with_registry(pipelines, &streams, options, Arc::clone(registry));
    (run, stage)
}

/// Sequential per-camera baseline with per-stage telemetry attached —
/// the workload the telemetry-overhead measurement times against its
/// uninstrumented twin [`crate::run_fleet_sequential`].
#[must_use]
pub fn run_fleet_sequential_instrumented(
    spec: &BackendSpec,
    preset: DatasetPreset,
    fleet: &[SimulatedRecording],
    stage: &StageTelemetry,
) -> Vec<Vec<FrameResult>> {
    assert!(!fleet.is_empty(), "fleet needs at least one camera");
    let config = ebbiot_config_for(preset, &fleet[0]).with_frame_us(fleet[0].frame_us);
    fleet
        .iter()
        .map(|rec| {
            spec.build(config.clone())
                .with_stage_telemetry(stage.clone())
                .process_recording(&rec.events, rec.duration_us)
        })
        .collect()
}

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Per-worker contention table: where each worker's wall clock went.
/// Headers in [`WORKER_HEADER`]. After `join`,
/// Busy + Acquire + Idle == wall exactly; a low busy share with high
/// queue waits is the contention signature of an over-subscribed core,
/// while a high acquire share means batching is too fine
/// (`EngineConfig::batch_chunks`).
#[must_use]
pub fn worker_rows(snapshot: &Snapshot) -> Vec<Vec<String>> {
    snapshot
        .workers
        .iter()
        .map(|w| {
            let wall = w.busy_ns + w.acquire_ns + w.idle_ns;
            let busy_pct = if wall > 0 { 100.0 * w.busy_ns as f64 / wall as f64 } else { 0.0 };
            vec![
                w.id.to_string(),
                ms(w.busy_ns),
                ms(w.acquire_ns),
                ms(w.idle_ns),
                ms(w.queue_wait_ns),
                format!("{busy_pct:.1}"),
                w.chunks.to_string(),
                w.steals.to_string(),
            ]
        })
        .collect()
}

/// Per-stage timing table over one [`StageTelemetry`]'s histograms.
/// Headers in [`STAGE_HEADER`]; "Max ≤ µs" is the upper bound of the
/// highest non-empty log2 bucket (the histograms store bounds, not
/// exact maxima).
#[must_use]
pub fn stage_rows(stage: &StageTelemetry) -> Vec<Vec<String>> {
    stage
        .stages()
        .iter()
        .map(|(label, hist)| {
            vec![
                (*label).to_string(),
                hist.count().to_string(),
                ms(hist.sum()),
                format!("{:.2}", hist.mean() / 1e3),
                format!("{:.1}", hist.max_bound() as f64 / 1e3),
            ]
        })
        .collect()
}

/// One-line summary of a latency/occupancy histogram for the console.
#[must_use]
pub fn histogram_summary(hist: &Histogram, unit: &str) -> String {
    format!("n={}, mean {:.2} {unit}, max ≤ {} {unit}", hist.count(), hist.mean(), hist.max_bound())
}

/// Appends the contention breakdown to a `BENCH_*.json` report as flat
/// keys: per-worker busy/acquire/idle/queue-wait and steals, per-stream
/// queue high-water, wait totals and migrations, scheduler steal/batch
/// statistics, per-stage means, and the chunk-latency / queue-depth
/// / collector-occupancy distributions' count+mean.
#[must_use]
pub fn append_contention_fields(
    mut report: JsonReport,
    snapshot: &Snapshot,
    stage: &StageTelemetry,
    engine: &EngineTelemetry,
) -> JsonReport {
    for w in &snapshot.workers {
        let key = |suffix: &str| format!("worker{:02}_{suffix}", w.id);
        report = report
            .u64(&key("busy_ns"), w.busy_ns)
            .u64(&key("acquire_ns"), w.acquire_ns)
            .u64(&key("idle_ns"), w.idle_ns)
            .u64(&key("queue_wait_ns"), w.queue_wait_ns)
            .u64(&key("chunks"), w.chunks)
            .u64(&key("steals"), w.steals);
    }
    for s in &snapshot.streams {
        let key = |suffix: &str| format!("{}_{suffix}", s.id);
        report = report
            .u64(&key("queue_high_water"), s.queue_high_water as u64)
            .u64(&key("queue_wait_ns"), s.queue_wait_ns)
            .u64(&key("producer_block_ns"), s.producer_block_ns)
            .u64(&key("migrations"), s.migrations);
    }
    let sched = snapshot.scheduler;
    report = report
        .u64("sched_steals", sched.steals)
        .u64("sched_batches", sched.batches)
        .f64("sched_batch_mean_chunks", sched.batch_mean)
        .u64("sched_batch_max_le_chunks", sched.batch_max_le)
        .u64("sched_ready_high_water", sched.ready_high_water as u64);
    for (label, hist) in stage.stages() {
        report = report
            .u64(&format!("stage_{label}_calls"), hist.count())
            .f64(&format!("stage_{label}_mean_ns"), hist.mean());
    }
    report
        .u64("chunk_queue_wait_count", engine.queue_wait.count())
        .f64("chunk_queue_wait_mean_ns", engine.queue_wait.mean())
        .u64("chunk_queue_wait_max_le_ns", engine.queue_wait.max_bound())
        .f64("queue_depth_mean_chunks", engine.queue_depth.mean())
        .f64("collector_buffered_mean_frames", engine.collector_buffered.mean())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_fleet_sequential;
    use ebbiot_baselines::registry;
    use ebbiot_sim::FleetConfig;

    #[test]
    fn instrumented_fleet_run_matches_sequential_and_counts_frames() {
        let fleet = FleetConfig::new(DatasetPreset::Lt4, 2).with_seconds(0.5).generate();
        let spec = registry::find_backend("ebbiot").unwrap();
        let registry = Arc::new(Registry::new());
        let (run, stage) = run_fleet_backend_instrumented(
            spec,
            DatasetPreset::Lt4,
            &fleet,
            &FleetOptions { workers: 2, queue_capacity: 4, chunk_events: 512 },
            &registry,
        );
        let sequential = run_fleet_sequential(spec, DatasetPreset::Lt4, &fleet);
        assert_eq!(run.output.streams, sequential, "telemetry is observation-only");
        assert_eq!(stage.frames_observed(), run.frames(), "one tracker stage call per frame");

        let workers = worker_rows(&run.output.snapshot);
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[0].len(), WORKER_HEADER.len());
        let stages = stage_rows(&stage);
        assert_eq!(stages.len(), 5);
        assert_eq!(stages[0].len(), STAGE_HEADER.len());

        let engine = EngineTelemetry::register(Arc::clone(&registry));
        let json = append_contention_fields(
            JsonReport::new().str("experiment", "test"),
            &run.output.snapshot,
            &stage,
            &engine,
        )
        .render();
        assert!(json.contains("\"worker00_busy_ns\""));
        assert!(json.contains("\"worker00_acquire_ns\""));
        assert!(json.contains("\"worker01_steals\""));
        assert!(json.contains("\"cam00_queue_high_water\""));
        assert!(json.contains("\"cam01_queue_wait_ns\""));
        assert!(json.contains("\"cam00_migrations\""));
        assert!(json.contains("\"sched_steals\""));
        assert!(json.contains("\"sched_batches\""));
        assert!(json.contains("\"stage_tracker_calls\""));
        assert!(json.contains("\"chunk_queue_wait_count\""));
    }
}

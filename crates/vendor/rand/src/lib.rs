//! Self-contained, deterministic stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so
//! this workspace vendors the small slice of the rand 0.9 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `random`, `random_range` and `random_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, tiny,
//! and deterministic across platforms, which is all the simulator and the
//! test-suite need. It is **not** cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range. Panics on an empty range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable from their "standard" distribution.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = StandardUniform::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10u16..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.random_range(0u64..=5);
            assert!(i <= 5);
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}

//! Self-contained stand-in for the `criterion` benchmark crate.
//!
//! The build environment has no network access to a crates registry, so
//! this workspace vendors the slice of the criterion API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`],
//! [`BatchSize`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is a simple adaptive wall-clock loop (warm-up, then run
//! until ~`MEASURE_BUDGET` elapses) reporting mean ns/iter — enough to
//! compare pipeline variants locally; it makes no statistical claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const MAX_ITERS: u64 = 100_000_000;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _parent: self, throughput: None }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, None, f);
        self
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload, for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-iteration workload annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched setup amortizes across iterations (accepted for API
/// compatibility; this shim always runs setup once per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over an adaptive number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let _ = routine(); // warm-up, untimed
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < MEASURE_BUDGET && iters < MAX_ITERS {
            let start = Instant::now();
            let out = routine();
            elapsed += start.elapsed();
            drop(out);
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let _ = routine(setup()); // warm-up, untimed
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < MEASURE_BUDGET && iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            elapsed += start.elapsed();
            drop(out);
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("  {id}: no iterations recorded");
        return;
    }
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    let rate = throughput.map_or(String::new(), |t| match t {
        Throughput::Elements(n) => {
            format!(", {:.1} Melem/s", n as f64 / ns_per_iter * 1e3)
        }
        Throughput::Bytes(n) => format!(", {:.1} MB/s", n as f64 / ns_per_iter * 1e3),
    });
    println!("  {id}: {ns_per_iter:.0} ns/iter ({} iters{rate})", bencher.iters);
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        assert!(b.iters > 0);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher::default();
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }
}

//! Self-contained stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so
//! this workspace vendors the slice of the proptest API its test-suites
//! use: the [`proptest!`] macro, the [`strategy::Strategy`] trait with
//! `prop_map`, range / tuple / [`collection::vec`] / [`array::uniform3`]
//! strategies, [`strategy::any`], and the `prop_assert*` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases drawn
//! from a generator seeded deterministically from the test's full module
//! path, so failures reproduce across runs. There is no shrinking — a
//! failing case panics with the regular assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{rngs::StdRng, SeedableRng};

/// Test-runner configuration (case count only).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use core::marker::PhantomData;
    use core::ops::Range;
    use rand::{rngs::StdRng, Rng, SampleRange};

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T> Strategy for Range<T>
    where
        Range<T>: SampleRange<Output = T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical "anything" strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.random()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for any value of `T` (see [`any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use core::ops::Range;
    use rand::{rngs::StdRng, Rng};

    /// Strategy producing `Vec`s (see [`vec()`](fn@vec)).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.len.is_empty() { 0 } else { rng.random_range(self.len.clone()) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` with a length drawn from `len`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// Strategy producing `Option<S::Value>` (see [`of`]).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            // Upstream defaults to 50% `Some`; the inner strategy is
            // drawn only when needed so `None` cases stay cheap.
            if rng.random() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `None` or `Some` of a value drawn from `inner`, evenly split.
    #[must_use]
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Strategy producing `[S::Value; N]` (see [`uniform`]).
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut StdRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// Arrays of `N` values drawn from `element`.
    #[must_use]
    pub fn uniform<S: Strategy, const N: usize>(element: S) -> UniformArray<S, N> {
        UniformArray { element }
    }

    /// Arrays of 2 values drawn from `element`.
    #[must_use]
    pub fn uniform2<S: Strategy>(element: S) -> UniformArray<S, 2> {
        uniform(element)
    }

    /// Arrays of 3 values drawn from `element`.
    #[must_use]
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
        uniform(element)
    }

    /// Arrays of 4 values drawn from `element`.
    #[must_use]
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        uniform(element)
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
#[must_use]
pub fn __seeded_rng(test_path: &str) -> StdRng {
    // FNV-1a over the fully qualified test name: stable across runs and
    // platforms, distinct per test.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $( $p:pat_param in $s:expr ),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::__seeded_rng(concat!(module_path!(), "::", stringify!($name)));
                for _ in 0..config.cases {
                    $( let $p = $crate::strategy::Strategy::generate(&($s), &mut rng); )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn maps_apply(n in (0u64..10).prop_map(|n| n * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 20);
        }

        #[test]
        fn arrays_and_tuples_compose(
            a in crate::array::uniform3(0i32..4),
            (x, y) in (0u8..2, any::<bool>()),
        ) {
            prop_assert!(a.iter().all(|&e| e < 4));
            prop_assert!(x < 2);
            let _ = y;
        }
    }

    #[test]
    fn seeding_is_per_test_and_stable() {
        let mut a = crate::__seeded_rng("mod::test_a");
        let mut b = crate::__seeded_rng("mod::test_a");
        let mut c = crate::__seeded_rng("mod::test_b");
        use rand::Rng;
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        assert_ne!(b.random::<u64>(), c.random::<u64>());
    }
}

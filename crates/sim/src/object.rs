//! Object classes and their physical/statistical parameters.
//!
//! Table-free version of the paper's scene description: "typical objects in
//! the scene include humans, bikes, cars, vans, trucks and buses", "sizes
//! of various moving objects vary by an order of magnitude" and
//! "velocities also range over a wide range (sub-pixel to 5-6
//! pixels/frame)". Sizes below are apparent pixel sizes at the ENG
//! recording's 12 mm lens; the 6 mm LT4 lens halves them (wider field of
//! view), which the presets apply via `lens_scale`.

/// The object classes observed at the paper's traffic junction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectClass {
    /// Pedestrian: small and slow — the paper explicitly does *not* track
    /// these well at `tF` = 66 ms and proposes a two-timescale extension.
    Human,
    /// Bicycle or motorbike.
    Bike,
    /// Passenger car.
    Car,
    /// Van.
    Van,
    /// Truck.
    Truck,
    /// Bus: long flat sides, the canonical fragmentation case of Fig. 3.
    Bus,
}

impl ObjectClass {
    /// All classes, in size order.
    #[must_use]
    pub const fn all() -> [ObjectClass; 6] {
        [
            ObjectClass::Human,
            ObjectClass::Bike,
            ObjectClass::Car,
            ObjectClass::Van,
            ObjectClass::Truck,
            ObjectClass::Bus,
        ]
    }

    /// Nominal apparent size `(width, height)` in pixels at a 12 mm lens
    /// on the DAVIS240 looking side-on at the road.
    #[must_use]
    pub const fn nominal_size(self) -> (f32, f32) {
        match self {
            ObjectClass::Human => (7.0, 16.0),
            ObjectClass::Bike => (18.0, 13.0),
            ObjectClass::Car => (40.0, 18.0),
            ObjectClass::Van => (46.0, 23.0),
            ObjectClass::Truck => (62.0, 27.0),
            ObjectClass::Bus => (85.0, 32.0),
        }
    }

    /// Speed range in pixels/second (12 mm lens). At `tF` = 66 ms,
    /// 15 px/s ≈ 1 px/frame and 90 px/s ≈ 6 px/frame — the paper's
    /// vehicle range. Humans move at sub-pixel speeds per frame.
    #[must_use]
    pub const fn speed_range_px_s(self) -> (f32, f32) {
        match self {
            ObjectClass::Human => (4.0, 10.0),
            ObjectClass::Bike => (25.0, 60.0),
            ObjectClass::Car => (30.0, 90.0),
            ObjectClass::Van => (30.0, 80.0),
            ObjectClass::Truck => (20.0, 60.0),
            ObjectClass::Bus => (15.0, 50.0),
        }
    }

    /// Relative interior texture activity in events per interior pixel per
    /// pixel of travel. Large vehicles have "a lot of plane surface on
    /// their sides that do not generate much events" (§II-C) — this is
    /// what makes their EBBIs fragment.
    #[must_use]
    pub const fn interior_activity(self) -> f32 {
        match self {
            ObjectClass::Human => 0.12,
            ObjectClass::Bike => 0.10,
            ObjectClass::Car => 0.030,
            ObjectClass::Van => 0.022,
            ObjectClass::Truck => 0.015,
            ObjectClass::Bus => 0.010,
        }
    }

    /// Relative strength of the object's contrast edges. Vehicles have
    /// hard, high-contrast metal boundaries; humans are non-rigid and low
    /// contrast (clothing), so their edges fire sparsely — the physical
    /// reason the paper's 66 ms EBBI cannot track them and proposes the
    /// two-timescale extension.
    #[must_use]
    pub const fn edge_strength(self) -> f64 {
        match self {
            ObjectClass::Human => 0.35,
            ObjectClass::Bike => 0.75,
            ObjectClass::Car | ObjectClass::Van | ObjectClass::Truck | ObjectClass::Bus => 1.0,
        }
    }

    /// Short display label.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            ObjectClass::Human => "human",
            ObjectClass::Bike => "bike",
            ObjectClass::Car => "car",
            ObjectClass::Van => "van",
            ObjectClass::Truck => "truck",
            ObjectClass::Bus => "bus",
        }
    }

    /// Whether the paper's single-timescale EBBIOT is expected to track
    /// this class ("we have not tracked slow and small objects like
    /// humans").
    #[must_use]
    pub const fn is_vehicle(self) -> bool {
        !matches!(self, ObjectClass::Human)
    }
}

impl core::fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_span_an_order_of_magnitude() {
        let (hw, hh) = ObjectClass::Human.nominal_size();
        let (bw, bh) = ObjectClass::Bus.nominal_size();
        assert!(bw * bh >= 10.0 * hw * hh, "paper: sizes vary by an order of magnitude");
    }

    #[test]
    fn vehicle_speeds_reach_paper_range() {
        // 5-6 px/frame at 66 ms is ~75-90 px/s.
        let (_, max_car) = ObjectClass::Car.speed_range_px_s();
        assert!(max_car >= 75.0);
        // Humans are sub-pixel per frame: < 15 px/s.
        let (_, max_human) = ObjectClass::Human.speed_range_px_s();
        assert!(max_human < 15.0);
    }

    #[test]
    fn bigger_vehicles_have_sparser_interiors() {
        let classes = ObjectClass::all();
        for pair in classes.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if a.is_vehicle() {
                assert!(
                    a.interior_activity() >= b.interior_activity(),
                    "{a} should be at least as textured as {b}"
                );
            }
        }
    }

    #[test]
    fn all_lists_each_class_once() {
        let mut all = ObjectClass::all().to_vec();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn only_humans_are_not_vehicles() {
        for c in ObjectClass::all() {
            assert_eq!(c.is_vehicle(), c != ObjectClass::Human);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = ObjectClass::all().iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
        assert_eq!(ObjectClass::Bus.to_string(), "bus");
    }

    #[test]
    fn speed_ranges_are_well_formed() {
        for c in ObjectClass::all() {
            let (lo, hi) = c.speed_range_px_s();
            assert!(lo > 0.0 && hi > lo, "{c}");
        }
    }
}

//! Stationary-NVS traffic-scene simulator.
//!
//! The EBBIOT paper evaluates on 1.1 hours of DAVIS recordings of a traffic
//! junction (Table I: ENG, 12 mm lens, 2998.4 s, 107.5 M events; LT4, 6 mm,
//! 999.5 s, 12.5 M events) with manually annotated ground-truth tracks.
//! Those recordings are proprietary and the sensor is hardware, so this
//! crate substitutes a simulator that reproduces the *statistical
//! structure* the pipeline cares about:
//!
//! * moving objects (humans, bikes, cars, vans, trucks, buses) whose sizes
//!   span an order of magnitude and whose speeds range from sub-pixel to
//!   ~6 px/frame, entering on lanes with a side-view geometry,
//! * contrast-edge event generation: leading/trailing edges fire dense
//!   events, outlines fire moderately, flat interiors fire sparsely — the
//!   fragmentation problem of §II-C emerges naturally for large vehicles,
//! * lane-based z-order occlusion (a near-lane bus masks a far-lane car),
//! * salt-and-pepper background noise at a configurable per-pixel rate,
//!   plus optional stationary "flicker" distractors standing in for the
//!   paper's wind-blown trees (handled by the tracker's ROE),
//! * exact per-frame ground-truth boxes, replacing manual annotation.
//!
//! Entry points: [`DatasetPreset`] regenerates ENG/LT4-like recordings for
//! the experiment harnesses; [`SCENARIO_MATRIX`] enumerates the named,
//! seeded stress scenarios behind the accuracy gate (see ARCHITECTURE.md
//! §6 "Scenario matrix & accuracy gate"); [`FleetConfig`] generates K
//! independently seeded camera recordings for the engine's fleet
//! experiments; [`TrafficGenerator`] and [`DavisSimulator`] expose the
//! pieces for custom scenes.
//!
//! # Example
//!
//! ```
//! use ebbiot_sim::DatasetPreset;
//!
//! let rec = DatasetPreset::Lt4.config().with_duration_s(2.0).generate(7);
//! assert!(!rec.events.is_empty());
//! assert_eq!(rec.geometry, ebbiot_events::SensorGeometry::davis240());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod generator;
pub mod ground_truth;
pub mod matrix;
pub mod noise;
pub mod object;
pub mod preset;
pub mod recording;
pub mod scenario;
pub mod scene;
pub mod sensor;
pub mod spool;
pub mod trajectory;

pub use fleet::FleetConfig;
pub use generator::{LaneConfig, TrafficConfig, TrafficGenerator};
pub use ground_truth::{GroundTruthBox, GroundTruthConfig, GroundTruthFrame};
pub use matrix::{find_scenario, scenario_names, ScenarioSpec, ScriptedScenario, SCENARIO_MATRIX};
pub use noise::BackgroundNoise;
pub use object::ObjectClass;
pub use preset::{DatasetPreset, SimulationConfig};
pub use recording::SimulatedRecording;
pub use scenario::ScenarioBuilder;
pub use scene::{Flicker, Scene, SceneObject, Stall};
pub use sensor::{DavisConfig, DavisSimulator};
pub use spool::{spool_fleet, spool_recording};
pub use trajectory::LinearTrajectory;

//! Scripted scenario builders.
//!
//! The integration tests, ablation harnesses and examples repeatedly need
//! the same hand-crafted situations: a single crossing vehicle, two
//! vehicles meeting mid-frame, a convoy, a fragmenting bus, a flickering
//! distractor. This module provides them as one-liners so scenario
//! definitions live in a single audited place.

use ebbiot_events::{SensorGeometry, Timestamp};
use ebbiot_frame::PixelBox;

use crate::{Flicker, LinearTrajectory, ObjectClass, Scene, SceneObject};

/// Fluent scene builder for scripted scenarios.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scene: Scene,
    next_id: u32,
}

impl ScenarioBuilder {
    /// Starts an empty scenario on the given sensor.
    #[must_use]
    pub fn new(geometry: SensorGeometry) -> Self {
        Self { scene: Scene::new(geometry), next_id: 1 }
    }

    /// Starts an empty scenario on the DAVIS240.
    #[must_use]
    pub fn davis240() -> Self {
        Self::new(SensorGeometry::davis240())
    }

    /// Adds a vehicle of `class` entering from the left at `t0`, travelling
    /// right at `speed_px_s` with its vertical centre on `y_center`.
    #[must_use]
    pub fn entering_left(
        mut self,
        class: ObjectClass,
        y_center: f32,
        speed_px_s: f32,
        t0: Timestamp,
        z_order: u8,
    ) -> Self {
        let (w, h) = class.nominal_size();
        self.scene.objects.push(SceneObject {
            id: self.next_id,
            class,
            width: w,
            height: h,
            trajectory: LinearTrajectory::horizontal(-w, y_center - h / 2.0, speed_px_s, t0),
            z_order,
            stall: None,
        });
        self.next_id += 1;
        self
    }

    /// Adds a vehicle entering from the right, travelling left.
    #[must_use]
    pub fn entering_right(
        mut self,
        class: ObjectClass,
        y_center: f32,
        speed_px_s: f32,
        t0: Timestamp,
        z_order: u8,
    ) -> Self {
        let (w, h) = class.nominal_size();
        let width = f32::from(self.scene.geometry.width());
        self.scene.objects.push(SceneObject {
            id: self.next_id,
            class,
            width: w,
            height: h,
            trajectory: LinearTrajectory::horizontal(width, y_center - h / 2.0, -speed_px_s, t0),
            z_order,
            stall: None,
        });
        self.next_id += 1;
        self
    }

    /// Adds a stationary flicker distractor (wind-blown foliage).
    #[must_use]
    pub fn flicker(mut self, region: PixelBox, rate_hz_per_pixel: f64) -> Self {
        self.scene.flickers.push(Flicker { region, rate_hz_per_pixel });
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> Scene {
        self.scene
    }

    // ------------------------------------------------------------------
    // Canonical scenarios.
    // ------------------------------------------------------------------

    /// One car crossing left-to-right at 60 px/s (~4 px/frame).
    #[must_use]
    pub fn single_car() -> Scene {
        Self::davis240().entering_left(ObjectClass::Car, 90.0, 60.0, 0, 1).build()
    }

    /// Two cars on different lanes crossing mid-frame in opposite
    /// directions; the nearer (z = 2) briefly occludes the farther.
    #[must_use]
    pub fn crossing_cars() -> Scene {
        Self::davis240()
            .entering_left(ObjectClass::Car, 85.0, 60.0, 0, 1)
            .entering_right(ObjectClass::Car, 95.0, 60.0, 0, 2)
            .build()
    }

    /// A bus (long, flat-sided — the Fig. 3 fragmentation case) crossing
    /// slowly.
    #[must_use]
    pub fn fragmenting_bus() -> Scene {
        Self::davis240().entering_left(ObjectClass::Bus, 80.0, 35.0, 0, 1).build()
    }

    /// A convoy: three vehicles on one lane with ~1.5 s headway.
    #[must_use]
    pub fn convoy() -> Scene {
        Self::davis240()
            .entering_left(ObjectClass::Car, 90.0, 60.0, 0, 1)
            .entering_left(ObjectClass::Van, 90.0, 60.0, 1_500_000, 1)
            .entering_left(ObjectClass::Truck, 90.0, 55.0, 3_000_000, 1)
            .build()
    }

    /// A slow pedestrian plus a fast car — the two-timescale motivation.
    #[must_use]
    pub fn car_and_pedestrian() -> Scene {
        Self::davis240()
            .entering_left(ObjectClass::Car, 70.0, 55.0, 0, 1)
            .entering_left(ObjectClass::Human, 130.0, 7.0, 0, 2)
            .build()
    }

    /// Foliage flicker in the top-left corner plus one crossing car — the
    /// ROE scenario.
    #[must_use]
    pub fn flicker_and_car() -> Scene {
        Self::davis240()
            .entering_left(ObjectClass::Car, 120.0, 60.0, 0, 1)
            .flicker(PixelBox::new(8, 8, 48, 40), 12.0)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let scene = ScenarioBuilder::davis240()
            .entering_left(ObjectClass::Car, 90.0, 60.0, 0, 1)
            .entering_right(ObjectClass::Bus, 60.0, 40.0, 0, 2)
            .build();
        assert_eq!(scene.objects[0].id, 1);
        assert_eq!(scene.objects[1].id, 2);
    }

    #[test]
    fn entering_left_starts_fully_off_screen_moving_right() {
        let scene = ScenarioBuilder::single_car();
        let car = &scene.objects[0];
        let b = car.bbox_at(0).unwrap();
        assert!(b.x_max() <= 0.0);
        assert!(car.trajectory.vx > 0.0);
    }

    #[test]
    fn entering_right_starts_off_screen_moving_left() {
        let scene =
            ScenarioBuilder::davis240().entering_right(ObjectClass::Van, 90.0, 50.0, 0, 1).build();
        let v = &scene.objects[0];
        let b = v.bbox_at(0).unwrap();
        assert!(b.x >= 240.0);
        assert!(v.trajectory.vx < 0.0);
    }

    #[test]
    fn y_center_is_respected() {
        let scene =
            ScenarioBuilder::davis240().entering_left(ObjectClass::Car, 100.0, 60.0, 0, 1).build();
        let b = scene.objects[0].bbox_at(0).unwrap();
        let (_, cy) = b.center();
        assert!((cy - 100.0).abs() < 1e-4);
    }

    #[test]
    fn crossing_cars_actually_cross() {
        let scene = ScenarioBuilder::crossing_cars();
        // Both fully visible at 2 s; x-ranges overlap near the middle
        // somewhere between 2 and 3 s.
        let mut overlapped = false;
        for t in (0..4_000_000).step_by(66_000) {
            let a = scene.objects[0].bbox_at(t);
            let b = scene.objects[1].bbox_at(t);
            if let (Some(a), Some(b)) = (a, b) {
                if a.intersection(&b).is_some() {
                    overlapped = true;
                }
            }
        }
        assert!(overlapped, "the cars' boxes overlap during the crossing");
    }

    #[test]
    fn convoy_preserves_headway() {
        let scene = ScenarioBuilder::convoy();
        assert_eq!(scene.objects.len(), 3);
        for w in scene.objects.windows(2) {
            assert!(w[1].trajectory.t0_us - w[0].trajectory.t0_us >= 1_500_000);
        }
    }

    #[test]
    fn flicker_scenario_has_both_parts() {
        let scene = ScenarioBuilder::flicker_and_car();
        assert_eq!(scene.objects.len(), 1);
        assert_eq!(scene.flickers.len(), 1);
        assert!(scene.flickers[0].rate_hz_per_pixel > 0.0);
    }

    #[test]
    fn car_and_pedestrian_speeds_differ_by_an_order() {
        let scene = ScenarioBuilder::car_and_pedestrian();
        let car_speed = scene.objects[0].trajectory.speed();
        let ped_speed = scene.objects[1].trajectory.speed();
        assert!(car_speed > 5.0 * ped_speed);
    }
}

//! Object motion models.

use ebbiot_events::Timestamp;

/// Constant-velocity trajectory in pixel coordinates.
///
/// Objects at a surveilled junction move essentially linearly through the
/// field of view; the paper's trackers all assume near-constant velocity
/// over a frame, and the evaluation scenes are side views of straight
/// road, so a linear model (with per-object speed diversity) is faithful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearTrajectory {
    /// Minimum-corner x position at `t0_us`.
    pub start_x: f32,
    /// Minimum-corner y position at `t0_us`.
    pub start_y: f32,
    /// Velocity in px/s along x (signed: negative means right-to-left).
    pub vx: f32,
    /// Velocity in px/s along y (usually 0 for road traffic).
    pub vy: f32,
    /// Activation time: the object does not exist before this.
    pub t0_us: Timestamp,
}

impl LinearTrajectory {
    /// Creates a horizontal trajectory (vy = 0).
    #[must_use]
    pub const fn horizontal(start_x: f32, y: f32, vx: f32, t0_us: Timestamp) -> Self {
        Self { start_x, start_y: y, vx, vy: 0.0, t0_us }
    }

    /// Minimum-corner position at time `t_us`; `None` before activation.
    #[must_use]
    pub fn position(&self, t_us: Timestamp) -> Option<(f32, f32)> {
        if t_us < self.t0_us {
            return None;
        }
        let dt_s = (t_us - self.t0_us) as f32 / 1e6;
        Some((self.start_x + self.vx * dt_s, self.start_y + self.vy * dt_s))
    }

    /// Displacement over `[t_us, t_us + dt_us]` in pixels (0 before
    /// activation).
    #[must_use]
    pub fn displacement(&self, dt_us: u64) -> (f32, f32) {
        let dt_s = dt_us as f32 / 1e6;
        (self.vx * dt_s, self.vy * dt_s)
    }

    /// Speed magnitude in px/s.
    #[must_use]
    pub fn speed(&self) -> f32 {
        (self.vx * self.vx + self.vy * self.vy).sqrt()
    }

    /// Time at which the object's min-corner x reaches `x`, or `None` for
    /// a stationary-in-x trajectory or a crossing before activation.
    #[must_use]
    pub fn time_at_x(&self, x: f32) -> Option<Timestamp> {
        if self.vx == 0.0 {
            return None;
        }
        let dt_s = (x - self.start_x) / self.vx;
        if dt_s < 0.0 {
            return None;
        }
        Some(self.t0_us + (dt_s * 1e6) as Timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_before_activation_is_none() {
        let t = LinearTrajectory::horizontal(0.0, 50.0, 30.0, 1_000_000);
        assert_eq!(t.position(999_999), None);
        assert!(t.position(1_000_000).is_some());
    }

    #[test]
    fn position_integrates_velocity() {
        let t = LinearTrajectory::horizontal(-40.0, 80.0, 60.0, 0);
        let (x, y) = t.position(500_000).unwrap();
        assert!((x - (-10.0)).abs() < 1e-3);
        assert!((y - 80.0).abs() < 1e-6);
    }

    #[test]
    fn negative_velocity_moves_left() {
        let t = LinearTrajectory::horizontal(240.0, 80.0, -75.0, 0);
        let (x, _) = t.position(1_000_000).unwrap();
        assert!((x - 165.0).abs() < 1e-3);
    }

    #[test]
    fn displacement_scales_with_dt() {
        let t = LinearTrajectory::horizontal(0.0, 0.0, 45.0, 0);
        let (dx, dy) = t.displacement(66_000);
        assert!((dx - 2.97).abs() < 1e-3, "3 px/frame at 45 px/s");
        assert_eq!(dy, 0.0);
    }

    #[test]
    fn speed_combines_axes() {
        let t = LinearTrajectory { start_x: 0.0, start_y: 0.0, vx: 3.0, vy: 4.0, t0_us: 0 };
        assert!((t.speed() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn time_at_x_inverts_position() {
        let t = LinearTrajectory::horizontal(-40.0, 0.0, 80.0, 2_000_000);
        let at = t.time_at_x(0.0).unwrap();
        assert_eq!(at, 2_500_000);
        let (x, _) = t.position(at).unwrap();
        assert!(x.abs() < 1e-3);
    }

    #[test]
    fn time_at_x_none_for_unreachable() {
        let t = LinearTrajectory::horizontal(0.0, 0.0, 50.0, 0);
        assert_eq!(t.time_at_x(-10.0), None, "behind the start");
        let still = LinearTrajectory::horizontal(0.0, 0.0, 0.0, 0);
        assert_eq!(still.time_at_x(10.0), None);
    }
}

//! DAVIS-style event generation from a moving-object scene.
//!
//! Contrast-change physics, reduced to what matters for a side-view
//! surveillance scene:
//!
//! * **Leading/trailing edges** — when an object's front (rear) edge
//!   crosses a pixel column, that column's covered rows see a large
//!   contrast step and fire ON (OFF) events with high probability,
//!   sometimes more than once (the `beta > 1` of Eq. 2).
//! * **Outlines** — the top/bottom silhouette rows shimmer as the textured
//!   boundary translates: a moderate event rate per pixel of travel.
//! * **Interiors** — flat painted surfaces produce little contrast change;
//!   a low per-class rate ([`crate::ObjectClass::interior_activity`]) that makes
//!   large vehicles fragment on the EBBI exactly as §II-C describes.
//! * **Occlusion** — events are suppressed where a strictly nearer object
//!   covers the pixel at the moment of firing.
//! * **Flicker distractors and background noise** are added on top.
//!
//! Determinism: all sampling flows from the caller's RNG, so a fixed seed
//! reproduces a recording bit-for-bit.

use ebbiot_events::{stream, Event, Polarity, SensorGeometry, Timestamp};
use rand::Rng;

use crate::{noise::sample_poisson, BackgroundNoise, Scene, SceneObject};

/// Tunable constants of the sensor model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DavisConfig {
    /// Simulation step in microseconds. Smaller steps give finer timestamp
    /// interpolation at linear cost. Default 2 ms (33 steps per 66 ms
    /// frame).
    pub step_us: u64,
    /// Probability that a pixel swept by a leading/trailing edge fires.
    pub edge_fire_prob: f64,
    /// Probability that a fired edge pixel fires *again* (geometric
    /// continuation, capped at 3 events) — models multiple threshold
    /// crossings per edge and produces the `beta > 1` of Eq. 2.
    pub extra_fire_prob: f64,
    /// Events per outline (top/bottom row) pixel per pixel of travel.
    pub outline_activity: f64,
    /// Timestamp jitter applied to every generated event, in microseconds.
    pub jitter_us: u64,
    /// Spatial thickness of the contrast edge in pixels. Real DAVIS edges
    /// are 2-4 px thick (finite pixel latency, bumper/shading structure at
    /// the vehicle boundary); firing only the exact crossing column would
    /// make slow (~1 px/frame) objects paint 1-px strips that a 3x3
    /// median erases, which real recordings do not show.
    pub edge_thickness_px: u16,
    /// Spacing of internal vertical structure lines ("ribs": door seams,
    /// windows, wheel arches) in pixels. Moving vehicles show these as
    /// weaker internal edges; without them a long vehicle's EBBI would be
    /// only its front and rear strips, fragmenting far more than real
    /// recordings (the paper's Fig. 3 shows gaps of a few pixels, not the
    /// whole body length).
    pub rib_spacing_px: f32,
    /// Fire-probability scale of rib edges relative to boundary edges.
    pub rib_fire_scale: f64,
}

impl Default for DavisConfig {
    fn default() -> Self {
        Self {
            step_us: 2_000,
            edge_fire_prob: 0.90,
            extra_fire_prob: 0.35,
            outline_activity: 0.40,
            jitter_us: 300,
            edge_thickness_px: 3,
            rib_spacing_px: 6.0,
            rib_fire_scale: 0.55,
        }
    }
}

/// The simulator: renders a [`Scene`] into a time-ordered event stream.
#[derive(Debug, Clone)]
pub struct DavisSimulator {
    config: DavisConfig,
}

impl DavisSimulator {
    /// Creates a simulator with the given sensor model.
    #[must_use]
    pub fn new(config: DavisConfig) -> Self {
        assert!(config.step_us > 0, "simulation step must be non-zero");
        Self { config }
    }

    /// The sensor model in use.
    #[must_use]
    pub const fn config(&self) -> &DavisConfig {
        &self.config
    }

    /// Simulates `[0, duration_us)`, returning a time-ordered stream of
    /// object, flicker and background-noise events.
    #[must_use]
    pub fn simulate(
        &self,
        scene: &Scene,
        duration_us: u64,
        noise: BackgroundNoise,
        rng: &mut impl Rng,
    ) -> Vec<Event> {
        let mut events: Vec<Event> = Vec::new();
        let mut t = 0u64;
        while t < duration_us {
            let step = self.config.step_us.min(duration_us - t);
            for obj in &scene.objects {
                self.render_object_step(scene, obj, t, step, &mut events, rng);
            }
            self.render_flickers(scene, t, step, &mut events, rng);
            t += step;
        }
        let noise_events = noise.sample(scene.geometry, 0, duration_us, rng);
        events.sort_unstable();
        stream::merge_ordered(&events, &noise_events)
    }

    /// Renders one object over `[t, t + step)`.
    fn render_object_step(
        &self,
        scene: &Scene,
        obj: &SceneObject,
        t: Timestamp,
        step: u64,
        out: &mut Vec<Event>,
        rng: &mut impl Rng,
    ) {
        // Stall-aware positions: during a stall dx is zero, so the edge
        // and interior terms vanish and the object falls silent, exactly
        // like a real stopped vehicle in front of a DVS.
        let Some((x0, y0)) = obj.position_at(t) else { return };
        let Some((x1, _)) = obj.position_at(t + step) else { return };
        let geom = scene.geometry;
        let (w, h) = (obj.width, obj.height);

        // Quick reject: object nowhere near the frame during this step.
        let reach = x0.min(x1) - 1.0;
        let extent = x0.max(x1) + w + 1.0;
        if extent < 0.0
            || reach > f32::from(geom.width())
            || y0 + h < 0.0
            || y0 > f32::from(geom.height())
        {
            return;
        }

        let dx = x1 - x0;
        let speed_px = dx.abs();

        // --- Leading and trailing vertical edges ------------------------
        // Columns whose boundary the front/rear edge crosses in this step.
        let (front0, front1) = if dx >= 0.0 { (x0 + w, x1 + w) } else { (x1 + w, x0 + w) };
        let (rear0, rear1) = if dx >= 0.0 { (x0, x1) } else { (x1, x0) };
        let front_pol = Polarity::On; // contrast rises as the body enters
        let rear_pol = Polarity::Off; // and falls as it leaves

        // Per-class contrast: vehicles have hard metal edges, humans are
        // soft and low contrast (they stay below the fast pipeline's
        // median filter, as in the paper).
        let strength = obj.class.edge_strength();
        // The edge band extends *into* the body: leftward (-1) from the
        // right edge (x + w), rightward (+1) from the left edge (x).
        self.render_edge_sweep(
            scene, obj, t, step, front0, front1, y0, h, front_pol, dx, -1, strength, out, rng, geom,
        );
        self.render_edge_sweep(
            scene, obj, t, step, rear0, rear1, y0, h, rear_pol, dx, 1, strength, out, rng, geom,
        );

        // Internal structure lines (door seams, windows, wheels) sweep as
        // weaker edges, filling the silhouette the way real vehicle
        // recordings do. Positions are deterministic per object.
        if self.config.rib_spacing_px > 0.0 && w > self.config.rib_spacing_px {
            let n_ribs = (w / self.config.rib_spacing_px) as u32;
            for r in 1..=n_ribs {
                let off = r as f32 * self.config.rib_spacing_px;
                if off >= w - 1.0 {
                    break;
                }
                let (r0, r1) = if dx >= 0.0 { (x0 + off, x1 + off) } else { (x1 + off, x0 + off) };
                let pol = if r % 2 == 0 { Polarity::On } else { Polarity::Off };
                self.render_edge_sweep(
                    scene,
                    obj,
                    t,
                    step,
                    r0,
                    r1,
                    y0 + 1.0,
                    (h - 2.0).max(1.0),
                    pol,
                    dx,
                    1,
                    self.config.rib_fire_scale * strength,
                    out,
                    rng,
                    geom,
                );
            }
        }

        // --- Top/bottom outline rows ------------------------------------
        if speed_px > 0.0 {
            let p_fire = (self.config.outline_activity * strength * f64::from(speed_px)).min(1.0);
            for row in [y0, y0 + h - 1.0] {
                let ry = row.floor();
                if ry < 0.0 || ry >= f32::from(geom.height()) {
                    continue;
                }
                let col_start = x0.min(x1).floor().max(0.0) as u16;
                let col_end = (x0.max(x1) + w).ceil().min(f32::from(geom.width())) as u16;
                for cx in col_start..col_end {
                    if rng.random_bool(p_fire) {
                        self.emit(
                            scene,
                            obj,
                            cx,
                            ry as u16,
                            t + rng.random_range(0..step.max(1)),
                            random_polarity(rng),
                            out,
                            rng,
                        );
                    }
                }
            }
        }

        // --- Sparse interior texture ------------------------------------
        if speed_px > 0.0 && w > 2.0 && h > 2.0 {
            let interior_area = f64::from((w - 2.0) * (h - 2.0));
            let mean =
                f64::from(obj.class.interior_activity()) * f64::from(speed_px) * interior_area;
            let count = sample_poisson(mean, rng);
            for _ in 0..count {
                let px = x0 + 1.0 + rng.random_range(0.0..(w - 2.0));
                let py = y0 + 1.0 + rng.random_range(0.0..(h - 2.0));
                if px < 0.0
                    || py < 0.0
                    || px >= f32::from(geom.width())
                    || py >= f32::from(geom.height())
                {
                    continue;
                }
                self.emit(
                    scene,
                    obj,
                    px as u16,
                    py as u16,
                    t + rng.random_range(0..step.max(1)),
                    random_polarity(rng),
                    out,
                    rng,
                );
            }
        }
    }

    /// Fires events along a vertical edge sweeping from column `e0` to
    /// `e1` (in continuous coordinates) between `t` and `t + step`.
    #[allow(clippy::too_many_arguments)]
    fn render_edge_sweep(
        &self,
        scene: &Scene,
        obj: &SceneObject,
        t: Timestamp,
        step: u64,
        e0: f32,
        e1: f32,
        y0: f32,
        h: f32,
        polarity: Polarity,
        dx: f32,
        band_dir: i64,
        fire_scale: f64,
        out: &mut Vec<Event>,
        rng: &mut impl Rng,
        geom: SensorGeometry,
    ) {
        // Integer columns whose left boundary lies in (e0, e1].
        let first = e0.floor() as i64 + 1;
        let last = e1.floor() as i64;
        if last < first {
            return;
        }
        let row_start = y0.floor().max(0.0) as u16;
        let row_end = (y0 + h).ceil().min(f32::from(geom.height())) as u16;
        for col in first..=last {
            // Fraction of the step at which the edge crosses this column.
            let frac = if dx.abs() < f32::EPSILON {
                0.5
            } else {
                (((col as f32) - e0) / (e1 - e0)).clamp(0.0, 1.0)
            };
            let t_cross = t + (frac * step as f32) as u64;
            // The band: the crossing column plus edge_thickness - 1
            // columns extending into the body, with decaying fire
            // probability (the edge's contrast gradient).
            for k in 0..i64::from(self.config.edge_thickness_px.max(1)) {
                let band_col = col + band_dir * k;
                if band_col < 0 || band_col >= i64::from(geom.width()) {
                    continue;
                }
                let p_fire = self.config.edge_fire_prob * fire_scale * 0.55f64.powi(k as i32);
                for row in row_start..row_end {
                    if !rng.random_bool(p_fire) {
                        continue;
                    }
                    self.emit(scene, obj, band_col as u16, row, t_cross, polarity, out, rng);
                    // Geometric extra fires (beta > 1), capped at 2 extras.
                    let mut extras = 0u64;
                    while extras < 2 && rng.random_bool(self.config.extra_fire_prob) {
                        extras += 1;
                        let jt = t_cross + extras * (self.config.jitter_us + 1);
                        self.emit(scene, obj, band_col as u16, row, jt, polarity, out, rng);
                    }
                }
            }
        }
    }

    /// Emits a single event after occlusion and bounds checks, applying
    /// timestamp jitter.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        scene: &Scene,
        obj: &SceneObject,
        x: u16,
        y: u16,
        t: Timestamp,
        polarity: Polarity,
        out: &mut Vec<Event>,
        rng: &mut impl Rng,
    ) {
        if !scene.geometry.contains(x, y) {
            return;
        }
        if scene.occluded_at(f32::from(x) + 0.5, f32::from(y) + 0.5, obj.z_order, t) {
            return;
        }
        let jitter =
            if self.config.jitter_us > 0 { rng.random_range(0..=self.config.jitter_us) } else { 0 };
        out.push(Event::new(x, y, t + jitter, polarity));
    }

    /// Renders flicker distractors for one step.
    fn render_flickers(
        &self,
        scene: &Scene,
        t: Timestamp,
        step: u64,
        out: &mut Vec<Event>,
        rng: &mut impl Rng,
    ) {
        for fl in &scene.flickers {
            let mean = fl.rate_hz_per_pixel * f64::from(fl.region.area()) * step as f64 / 1e6;
            let count = sample_poisson(mean, rng);
            for _ in 0..count {
                let x = rng.random_range(fl.region.x_min..fl.region.x_max);
                let y = rng.random_range(fl.region.y_min..fl.region.y_max);
                if scene.geometry.contains(x, y) {
                    out.push(Event::new(
                        x,
                        y,
                        t + rng.random_range(0..step.max(1)),
                        random_polarity(rng),
                    ));
                }
            }
        }
    }
}

fn random_polarity(rng: &mut impl Rng) -> Polarity {
    if rng.random_bool(0.5) {
        Polarity::On
    } else {
        Polarity::Off
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Flicker, LinearTrajectory, ObjectClass};
    use ebbiot_frame::PixelBox;
    use rand::{rngs::StdRng, SeedableRng};

    fn geom() -> SensorGeometry {
        SensorGeometry::davis240()
    }

    fn car_scene(vx: f32) -> Scene {
        let mut scene = Scene::new(geom());
        let (w, h) = ObjectClass::Car.nominal_size();
        scene.objects.push(SceneObject {
            id: 1,
            class: ObjectClass::Car,
            width: w,
            height: h,
            trajectory: LinearTrajectory::horizontal(20.0, 80.0, vx, 0),
            z_order: 1,
            stall: None,
        });
        scene
    }

    fn simulate(scene: &Scene, dur_us: u64, seed: u64) -> Vec<Event> {
        DavisSimulator::new(DavisConfig::default()).simulate(
            scene,
            dur_us,
            BackgroundNoise::none(),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn moving_car_generates_events_near_its_box() {
        let scene = car_scene(60.0);
        let events = simulate(&scene, 500_000, 1);
        assert!(events.len() > 500, "got {}", events.len());
        // All events within the union of the car's boxes over the window,
        // padded by a pixel for rasterization.
        let b0 = scene.objects[0].bbox_at(0).unwrap();
        let b1 = scene.objects[0].bbox_at(500_000).unwrap();
        let hull = b0.enclosing(&b1);
        for e in &events {
            assert!(
                f32::from(e.x) >= hull.x - 1.5 && f32::from(e.x) <= hull.x_max() + 1.5,
                "event x {} outside hull {hull}",
                e.x
            );
            assert!(f32::from(e.y) >= hull.y - 1.5 && f32::from(e.y) <= hull.y_max() + 1.5);
        }
    }

    #[test]
    fn stationary_object_is_silent() {
        let scene = car_scene(0.0);
        let events = simulate(&scene, 500_000, 2);
        assert!(events.is_empty(), "no contrast change without motion, got {}", events.len());
    }

    #[test]
    fn stalled_object_goes_quiet_then_resumes() {
        use crate::Stall;
        let mut scene = car_scene(60.0);
        scene.objects[0].stall = Some(Stall { at_us: 300_000, for_us: 400_000 });
        let events = simulate(&scene, 1_000_000, 13);
        let during = events.iter().filter(|e| e.t >= 320_000 && e.t < 680_000).count();
        let before = events.iter().filter(|e| e.t < 300_000).count();
        let after = events.iter().filter(|e| e.t >= 700_000).count();
        assert!(before > 100, "moving before the stall: {before}");
        assert!(after > 100, "moving after the stall: {after}");
        assert_eq!(during, 0, "silent while stalled, got {during} events");
    }

    #[test]
    fn output_is_time_ordered() {
        let scene = car_scene(75.0);
        let events = simulate(&scene, 300_000, 3);
        assert!(stream::is_time_ordered(&events));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let scene = car_scene(60.0);
        assert_eq!(simulate(&scene, 200_000, 9), simulate(&scene, 200_000, 9));
    }

    #[test]
    fn different_seeds_differ() {
        let scene = car_scene(60.0);
        assert_ne!(simulate(&scene, 200_000, 9), simulate(&scene, 200_000, 10));
    }

    #[test]
    fn faster_objects_make_more_events() {
        let slow = simulate(&car_scene(20.0), 500_000, 4).len();
        let fast = simulate(&car_scene(80.0), 500_000, 4).len();
        assert!(fast > 2 * slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn leading_edge_is_on_trailing_edge_is_off() {
        let scene = car_scene(60.0);
        let events = simulate(&scene, 500_000, 5);
        // Classify events by position relative to the box centre at their
        // timestamp; front half should be predominantly ON.
        let obj = &scene.objects[0];
        let mut front_on = 0u32;
        let mut front_total = 0u32;
        let mut rear_on = 0u32;
        let mut rear_total = 0u32;
        for e in &events {
            let b = obj.bbox_at(e.t).unwrap();
            let (cx, _) = b.center();
            // Only count events hugging the edges.
            if f32::from(e.x) > b.x_max() - 3.0 {
                front_total += 1;
                if e.polarity == Polarity::On {
                    front_on += 1;
                }
            } else if f32::from(e.x) < b.x + 3.0 {
                rear_total += 1;
                if e.polarity == Polarity::On {
                    rear_on += 1;
                }
            }
            let _ = cx;
        }
        assert!(front_total > 50 && rear_total > 50);
        assert!(front_on as f64 / front_total as f64 > 0.7, "front mostly ON");
        assert!((rear_on as f64) / (rear_total as f64) < 0.3, "rear mostly OFF");
    }

    #[test]
    fn bus_interior_is_sparser_than_edges() {
        let mut scene = Scene::new(geom());
        let (w, h) = ObjectClass::Bus.nominal_size();
        scene.objects.push(SceneObject {
            id: 1,
            class: ObjectClass::Bus,
            width: w,
            height: h,
            trajectory: LinearTrajectory::horizontal(40.0, 70.0, 45.0, 0),
            z_order: 1,
            stall: None,
        });
        let events = simulate(&scene, 66_000, 6);
        let obj = &scene.objects[0];
        let mut edge = 0u32;
        let mut interior = 0u32;
        for e in &events {
            let b = obj.bbox_at(e.t).unwrap();
            let ex = f32::from(e.x);
            let ey = f32::from(e.y);
            if ex > b.x + 4.0 && ex < b.x_max() - 4.0 && ey > b.y + 2.0 && ey < b.y_max() - 2.0 {
                interior += 1;
            } else {
                edge += 1;
            }
        }
        // Fragmentation requires the interior to be much quieter *per
        // pixel* than the boundary band (the interior region is ~5x
        // larger in area, so compare densities, not raw counts).
        let (w, h) = (obj.width, obj.height);
        let total_area = w * h;
        let interior_area = (w - 8.0) * (h - 4.0);
        let edge_area = total_area - interior_area;
        let edge_density = edge as f32 / edge_area;
        let interior_density = interior as f32 / interior_area;
        assert!(
            edge_density > 2.0 * interior_density,
            "edge {edge_density:.2} ev/px vs interior {interior_density:.2} ev/px"
        );
    }

    #[test]
    fn occluded_far_object_is_masked() {
        let mut scene = Scene::new(geom());
        let (w, h) = ObjectClass::Car.nominal_size();
        // Far car (z=1) and near bus (z=2) travelling together, bus ahead
        // by nothing — same x span, so the far car is fully covered.
        scene.objects.push(SceneObject {
            id: 1,
            class: ObjectClass::Car,
            width: w,
            height: h,
            trajectory: LinearTrajectory::horizontal(50.0, 80.0, 60.0, 0),
            z_order: 1,
            stall: None,
        });
        let (bw, bh) = ObjectClass::Bus.nominal_size();
        scene.objects.push(SceneObject {
            id: 2,
            class: ObjectClass::Bus,
            width: bw,
            height: bh,
            trajectory: LinearTrajectory::horizontal(40.0, 75.0, 60.0, 0),
            z_order: 2,
            stall: None,
        });
        let events = simulate(&scene, 200_000, 7);
        // No event should come from a pixel covered by the bus but outside
        // it, attributable to the car: approximate check — the car spans
        // x in [50, 90] at t=0, fully inside the bus's [40, 125]; its own
        // silhouette adds nothing visible. We simply check all events lie
        // within the bus hull.
        let bus = &scene.objects[1];
        let hb0 = bus.bbox_at(0).unwrap();
        let hb1 = bus.bbox_at(200_000).unwrap();
        let hull = hb0.enclosing(&hb1);
        for e in &events {
            assert!(
                hull.contains_point(f32::from(e.x), f32::from(e.y))
                    || f32::from(e.x) >= hull.x - 1.5 && f32::from(e.x) <= hull.x_max() + 1.5
            );
        }
    }

    #[test]
    fn flicker_generates_events_inside_region_only() {
        let mut scene = Scene::new(geom());
        scene
            .flickers
            .push(Flicker { region: PixelBox::new(10, 10, 30, 40), rate_hz_per_pixel: 50.0 });
        let events = simulate(&scene, 200_000, 8);
        assert!(!events.is_empty());
        for e in &events {
            assert!((10..30).contains(&e.x) && (10..40).contains(&e.y));
        }
    }

    #[test]
    fn sub_pixel_speed_produces_sparse_events() {
        // A human at 6 px/s crosses one pixel per ~11 frames.
        let mut scene = Scene::new(geom());
        let (w, h) = ObjectClass::Human.nominal_size();
        scene.objects.push(SceneObject {
            id: 1,
            class: ObjectClass::Human,
            width: w,
            height: h,
            trajectory: LinearTrajectory::horizontal(100.0, 80.0, 6.0, 0),
            z_order: 1,
            stall: None,
        });
        let events = simulate(&scene, 66_000, 11);
        // Over one frame the human covers 0.4 px: far fewer events than a
        // vehicle would make; often just outline shimmer.
        assert!(events.len() < 60, "humans are quiet: {}", events.len());
    }

    #[test]
    fn noise_is_merged_in_order() {
        let scene = car_scene(60.0);
        let sim = DavisSimulator::new(DavisConfig::default());
        let events = sim.simulate(
            &scene,
            200_000,
            BackgroundNoise::new(0.2),
            &mut StdRng::seed_from_u64(12),
        );
        assert!(stream::is_time_ordered(&events));
        // Noise puts events outside the car hull.
        let outside = events.iter().filter(|e| e.y < 60 || e.y > 110).count();
        assert!(outside > 100, "background noise spreads over the array: {outside}");
    }
}

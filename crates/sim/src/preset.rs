//! Dataset presets matching Table I of the paper.
//!
//! | Location | Lens  | Duration | Events  |
//! |----------|-------|----------|---------|
//! | ENG      | 12 mm | 2998.4 s | 107.5 M |
//! | LT4      |  6 mm |  999.5 s |  12.5 M |
//!
//! The presets reproduce the *structure*: sensor geometry, lens-dependent
//! apparent object scale, traffic mix, and event-rate order of magnitude
//! (ENG ≈ 36 k ev/s with busier traffic and a flickering-foliage
//! distractor; LT4 ≈ 12.5 k ev/s, quieter and wider). Durations default to
//! 1/10 of the paper's so the experiment harnesses run in CI time;
//! [`SimulationConfig::with_full_duration`] restores the paper's values.

use ebbiot_events::{Micros, SensorGeometry, DEFAULT_FRAME_DURATION_US};
use ebbiot_frame::PixelBox;
use rand::{rngs::StdRng, SeedableRng};

use crate::{
    ground_truth::{ground_truth_frames, GroundTruthConfig},
    BackgroundNoise, DavisConfig, DavisSimulator, Flicker, LaneConfig, ObjectClass,
    SimulatedRecording, TrafficConfig, TrafficGenerator,
};

/// The two recording sites of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetPreset {
    /// ENG: 12 mm lens, long busy recording, foliage distractor.
    Eng,
    /// LT4: 6 mm lens, shorter and quieter, wider field of view.
    Lt4,
}

impl DatasetPreset {
    /// Both presets.
    #[must_use]
    pub const fn all() -> [DatasetPreset; 2] {
        [DatasetPreset::Eng, DatasetPreset::Lt4]
    }

    /// Site name as in Table I.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            DatasetPreset::Eng => "ENG",
            DatasetPreset::Lt4 => "LT4",
        }
    }

    /// Lens focal length in millimetres (Table I).
    #[must_use]
    pub const fn lens_mm(self) -> f32 {
        match self {
            DatasetPreset::Eng => 12.0,
            DatasetPreset::Lt4 => 6.0,
        }
    }

    /// The paper's recording duration in seconds (Table I).
    #[must_use]
    pub const fn paper_duration_s(self) -> f64 {
        match self {
            DatasetPreset::Eng => 2998.4,
            DatasetPreset::Lt4 => 999.5,
        }
    }

    /// The paper's event count (Table I).
    #[must_use]
    pub const fn paper_event_count(self) -> u64 {
        match self {
            DatasetPreset::Eng => 107_500_000,
            DatasetPreset::Lt4 => 12_500_000,
        }
    }

    /// The paper's mean event rate in events/second.
    #[must_use]
    pub fn paper_event_rate_hz(self) -> f64 {
        self.paper_event_count() as f64 / self.paper_duration_s()
    }

    /// Builds the simulation configuration for this site (duration scaled
    /// to 1/10 of the paper's; see [`SimulationConfig::with_full_duration`]).
    #[must_use]
    pub fn config(self) -> SimulationConfig {
        match self {
            DatasetPreset::Eng => SimulationConfig {
                name: "ENG".into(),
                lens_mm: 12.0,
                geometry: SensorGeometry::davis240(),
                duration_us: (self.paper_duration_s() / 10.0 * 1e6) as Micros,
                frame_us: DEFAULT_FRAME_DURATION_US,
                traffic: TrafficConfig {
                    lanes: vec![
                        LaneConfig { y_center: 68.0, direction: 1, z_order: 1 },
                        LaneConfig { y_center: 104.0, direction: -1, z_order: 2 },
                        LaneConfig { y_center: 140.0, direction: -1, z_order: 3 },
                    ],
                    arrivals_hz: vec![
                        (ObjectClass::Car, 0.22),
                        (ObjectClass::Van, 0.06),
                        (ObjectClass::Truck, 0.04),
                        (ObjectClass::Bus, 0.025),
                        (ObjectClass::Bike, 0.07),
                        (ObjectClass::Human, 0.04),
                    ],
                    lens_scale: 1.0,
                    size_jitter: 0.12,
                    speed_scale: 1.0,
                    min_headway_us: 1_200_000,
                },
                noise: BackgroundNoise::new(0.18),
                davis: DavisConfig::default(),
                ground_truth: GroundTruthConfig::default(),
                // Wind-blown foliage in the top-left of the ENG view —
                // the distractor the paper's ROE masks out.
                flickers: vec![Flicker {
                    region: PixelBox::new(4, 4, 44, 34),
                    rate_hz_per_pixel: 9.0,
                }],
            },
            DatasetPreset::Lt4 => SimulationConfig {
                name: "LT4".into(),
                lens_mm: 6.0,
                geometry: SensorGeometry::davis240(),
                duration_us: (self.paper_duration_s() / 10.0 * 1e6) as Micros,
                frame_us: DEFAULT_FRAME_DURATION_US,
                traffic: TrafficConfig {
                    lanes: vec![
                        LaneConfig { y_center: 80.0, direction: 1, z_order: 1 },
                        LaneConfig { y_center: 108.0, direction: -1, z_order: 2 },
                    ],
                    arrivals_hz: vec![
                        (ObjectClass::Car, 0.16),
                        (ObjectClass::Van, 0.04),
                        (ObjectClass::Truck, 0.03),
                        (ObjectClass::Bus, 0.02),
                        (ObjectClass::Bike, 0.05),
                        (ObjectClass::Human, 0.03),
                    ],
                    lens_scale: 0.55,
                    size_jitter: 0.12,
                    speed_scale: 1.0,
                    min_headway_us: 1_000_000,
                },
                noise: BackgroundNoise::new(0.07),
                davis: DavisConfig::default(),
                ground_truth: GroundTruthConfig::default(),
                flickers: vec![],
            },
        }
    }
}

/// A complete, self-contained simulation description.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// Recording name.
    pub name: String,
    /// Emulated lens focal length, millimetres.
    pub lens_mm: f32,
    /// Sensor geometry.
    pub geometry: SensorGeometry,
    /// Recording duration, microseconds.
    pub duration_us: Micros,
    /// Frame duration `tF` for ground-truth annotation, microseconds.
    pub frame_us: Micros,
    /// Traffic mix.
    pub traffic: TrafficConfig,
    /// Background noise model.
    pub noise: BackgroundNoise,
    /// Sensor event-generation model.
    pub davis: DavisConfig,
    /// Annotation policy.
    pub ground_truth: GroundTruthConfig,
    /// Stationary flicker distractors.
    pub flickers: Vec<Flicker>,
}

impl SimulationConfig {
    /// Overrides the duration (seconds), builder style.
    #[must_use]
    pub fn with_duration_s(mut self, seconds: f64) -> Self {
        self.duration_us = (seconds * 1e6) as Micros;
        self
    }

    /// Restores the paper's full Table I duration for this site.
    #[must_use]
    pub fn with_full_duration(mut self, preset: DatasetPreset) -> Self {
        self.duration_us = (preset.paper_duration_s() * 1e6) as Micros;
        self
    }

    /// Runs the simulation with the given seed, producing a recording with
    /// events and ground truth.
    #[must_use]
    pub fn generate(&self, seed: u64) -> SimulatedRecording {
        let mut rng = StdRng::seed_from_u64(seed);
        let generator = TrafficGenerator::new(self.geometry, self.traffic.clone());
        let mut scene = generator.generate(self.duration_us, &mut rng);
        scene.flickers = self.flickers.clone();
        let sim = DavisSimulator::new(self.davis);
        let events = sim.simulate(&scene, self.duration_us, self.noise, &mut rng);
        let ground_truth =
            ground_truth_frames(&scene, self.duration_us, self.frame_us, &self.ground_truth);
        SimulatedRecording {
            name: self.name.clone(),
            lens_mm: self.lens_mm,
            geometry: self.geometry,
            frame_us: self.frame_us,
            events,
            ground_truth,
            duration_us: self.duration_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_match_table1() {
        assert_eq!(DatasetPreset::Eng.name(), "ENG");
        assert_eq!(DatasetPreset::Eng.lens_mm(), 12.0);
        assert!((DatasetPreset::Eng.paper_duration_s() - 2998.4).abs() < 1e-9);
        assert_eq!(DatasetPreset::Eng.paper_event_count(), 107_500_000);
        assert_eq!(DatasetPreset::Lt4.paper_event_count(), 12_500_000);
        // Rates: ENG ~35.9 k ev/s, LT4 ~12.5 k ev/s.
        assert!((DatasetPreset::Eng.paper_event_rate_hz() - 35_852.0).abs() < 100.0);
        assert!((DatasetPreset::Lt4.paper_event_rate_hz() - 12_506.0).abs() < 100.0);
    }

    #[test]
    fn default_durations_are_one_tenth() {
        let eng = DatasetPreset::Eng.config();
        assert!((eng.duration_us as f64 / 1e6 - 299.84).abs() < 0.01);
        let lt4 = DatasetPreset::Lt4.config();
        assert!((lt4.duration_us as f64 / 1e6 - 99.95).abs() < 0.01);
    }

    #[test]
    fn with_duration_overrides() {
        let cfg = DatasetPreset::Eng.config().with_duration_s(5.0);
        assert_eq!(cfg.duration_us, 5_000_000);
        let full = DatasetPreset::Lt4.config().with_full_duration(DatasetPreset::Lt4);
        assert_eq!(full.duration_us, 999_500_000);
    }

    #[test]
    fn lt4_has_wider_view_smaller_objects() {
        let eng = DatasetPreset::Eng.config();
        let lt4 = DatasetPreset::Lt4.config();
        assert!(lt4.traffic.lens_scale < eng.traffic.lens_scale);
        assert!(lt4.noise.rate_hz_per_pixel < eng.noise.rate_hz_per_pixel);
    }

    #[test]
    fn short_generation_produces_consistent_recording() {
        let rec = DatasetPreset::Lt4.config().with_duration_s(3.0).generate(11);
        assert_eq!(rec.name, "LT4");
        assert_eq!(rec.duration_us, 3_000_000);
        assert!(ebbiot_events::stream::is_time_ordered(&rec.events));
        assert!(!rec.events.is_empty());
        // Ground truth covers ceil(3.0 / 0.066) frames.
        assert_eq!(rec.ground_truth.len(), 46);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = DatasetPreset::Lt4.config().with_duration_s(2.0);
        assert_eq!(cfg.generate(5), cfg.generate(5));
        assert_ne!(cfg.generate(5).events, cfg.generate(6).events);
    }

    #[test]
    fn eng_event_rate_is_in_paper_band() {
        // 20 s slice; the long-run rate fluctuates with traffic draws, so
        // accept a broad band around the paper's 35.9 k ev/s.
        let rec = DatasetPreset::Eng.config().with_duration_s(20.0).generate(3);
        let rate = rec.event_rate_hz();
        assert!(
            (10_000.0..90_000.0).contains(&rate),
            "ENG rate {rate} should be within ~3x of the paper's 35.9 k ev/s"
        );
    }

    #[test]
    fn lt4_event_rate_is_in_paper_band() {
        let rec = DatasetPreset::Lt4.config().with_duration_s(20.0).generate(3);
        let rate = rec.event_rate_hz();
        assert!(
            (3_000.0..40_000.0).contains(&rate),
            "LT4 rate {rate} should be within ~3x of the paper's 12.5 k ev/s"
        );
    }
}

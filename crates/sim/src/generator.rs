//! Random traffic generation: Poisson arrivals on lanes.

use ebbiot_events::{SensorGeometry, Timestamp};
use rand::Rng;

use crate::{LinearTrajectory, ObjectClass, Scene, SceneObject};

/// One traffic lane in the side-view scene.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneConfig {
    /// Vertical centre of objects travelling on this lane (pixel row).
    pub y_center: f32,
    /// Travel direction: `+1` = left-to-right, `-1` = right-to-left.
    pub direction: i8,
    /// Depth order of the lane: larger = nearer camera = occludes.
    pub z_order: u8,
}

/// Traffic mix and optics for a recording site.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Lanes of the observed road.
    pub lanes: Vec<LaneConfig>,
    /// Mean arrival rate per class, in arrivals/second over all lanes.
    pub arrivals_hz: Vec<(ObjectClass, f64)>,
    /// Apparent-size multiplier from the lens (1.0 at 12 mm, ~0.5 at 6 mm).
    pub lens_scale: f32,
    /// Uniform +- jitter applied to nominal object sizes.
    pub size_jitter: f32,
    /// Multiplier on class speed ranges (slower site traffic < 1.0).
    pub speed_scale: f32,
    /// Minimum headway between consecutive spawns on the same lane, in
    /// microseconds (prevents physically impossible overlapping spawns).
    pub min_headway_us: u64,
}

impl TrafficConfig {
    /// A simple two-lane bidirectional road with a moderate mix — the
    /// starting point the presets specialize.
    #[must_use]
    pub fn two_lane_default() -> Self {
        Self {
            lanes: vec![
                LaneConfig { y_center: 70.0, direction: 1, z_order: 1 },
                LaneConfig { y_center: 110.0, direction: -1, z_order: 2 },
            ],
            arrivals_hz: vec![
                (ObjectClass::Car, 0.20),
                (ObjectClass::Van, 0.05),
                (ObjectClass::Truck, 0.03),
                (ObjectClass::Bus, 0.02),
                (ObjectClass::Bike, 0.06),
                (ObjectClass::Human, 0.03),
            ],
            lens_scale: 1.0,
            size_jitter: 0.12,
            speed_scale: 1.0,
            min_headway_us: 1_200_000,
        }
    }
}

/// Generates scenes by sampling Poisson arrival processes per class.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    config: TrafficConfig,
    geometry: SensorGeometry,
}

impl TrafficGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics when the config has no lanes or no classes.
    #[must_use]
    pub fn new(geometry: SensorGeometry, config: TrafficConfig) -> Self {
        assert!(!config.lanes.is_empty(), "need at least one lane");
        assert!(!config.arrivals_hz.is_empty(), "need at least one class");
        Self { config, geometry }
    }

    /// The traffic configuration.
    #[must_use]
    pub const fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Samples a scene covering `[0, duration_us)`.
    ///
    /// Arrivals whose crossing would extend past the horizon are still
    /// included (they are simply cut off by the recording end, as in a
    /// real capture).
    #[must_use]
    pub fn generate(&self, duration_us: Timestamp, rng: &mut impl Rng) -> Scene {
        let mut scene = Scene::new(self.geometry);

        // Phase 1: sample every class's Poisson arrival process.
        let mut arrivals: Vec<(Timestamp, ObjectClass, usize)> = Vec::new();
        for &(class, rate_hz) in &self.config.arrivals_hz {
            if rate_hz <= 0.0 {
                continue;
            }
            let mut t = 0f64;
            loop {
                // Exponential inter-arrival time.
                let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                t += -u.ln() / rate_hz * 1e6;
                if t >= duration_us as f64 {
                    break;
                }
                let lane_idx = rng.random_range(0..self.config.lanes.len());
                arrivals.push((t as Timestamp, class, lane_idx));
            }
        }

        // Phase 2: apply the per-lane headway constraint in global time
        // order (a later arrival too close behind any earlier spawn on the
        // same lane is dropped, like a driver who never joined the road).
        arrivals.sort_by_key(|&(t0, class, lane)| (t0, class, lane));
        let mut last_spawn: Vec<Option<u64>> = vec![None; self.config.lanes.len()];
        let mut next_id = 1u32;
        for (t0, class, lane_idx) in arrivals {
            if let Some(last) = last_spawn[lane_idx] {
                if t0.saturating_sub(last) < self.config.min_headway_us {
                    continue;
                }
            }
            last_spawn[lane_idx] = Some(t0);
            scene.objects.push(self.spawn(class, lane_idx, t0, next_id, rng));
            next_id += 1;
        }
        scene
    }

    fn spawn(
        &self,
        class: ObjectClass,
        lane_idx: usize,
        t0: Timestamp,
        id: u32,
        rng: &mut impl Rng,
    ) -> SceneObject {
        let lane = self.config.lanes[lane_idx];
        let (nw, nh) = class.nominal_size();
        let j = self.config.size_jitter;
        // random_range needs a non-degenerate range when j = 0.
        let wf = if j <= 0.0 { 1.0 } else { 1.0 + rng.random_range(-j..j) };
        let hf = if j <= 0.0 { 1.0 } else { 1.0 + rng.random_range(-j..j) };
        let width = (nw * wf * self.config.lens_scale).max(2.0);
        let height = (nh * hf * self.config.lens_scale).max(2.0);
        let (lo, hi) = class.speed_range_px_s();
        let speed = rng.random_range(lo..hi) * self.config.speed_scale * self.config.lens_scale;
        let (start_x, vx) = if lane.direction >= 0 {
            (-width, speed)
        } else {
            (f32::from(self.geometry.width()), -speed)
        };
        SceneObject {
            id,
            class,
            width,
            height,
            trajectory: LinearTrajectory::horizontal(start_x, lane.y_center - height / 2.0, vx, t0),
            z_order: lane.z_order,
            stall: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn generator() -> TrafficGenerator {
        TrafficGenerator::new(SensorGeometry::davis240(), TrafficConfig::two_lane_default())
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn arrival_counts_scale_with_duration_and_rate() {
        let g = generator();
        // Total rate 0.39 Hz; over 600 s expect ~234 arrivals (minus a few
        // headway rejections).
        let scene = g.generate(600_000_000, &mut rng(1));
        let n = scene.objects.len();
        assert!(n > 150 && n < 300, "got {n}");
    }

    #[test]
    fn all_spawns_start_off_screen_and_cross() {
        let g = generator();
        let scene = g.generate(120_000_000, &mut rng(2));
        assert!(!scene.objects.is_empty());
        for o in &scene.objects {
            let b = o.bbox_at(o.trajectory.t0_us).unwrap();
            assert!(b.x_max() <= 0.0 || b.x >= 240.0, "object {} starts off screen, got {b}", o.id);
            // And it points into the frame.
            if b.x_max() <= 0.0 {
                assert!(o.trajectory.vx > 0.0);
            } else {
                assert!(o.trajectory.vx < 0.0);
            }
        }
    }

    #[test]
    fn lanes_assign_direction_and_depth() {
        let g = generator();
        let scene = g.generate(300_000_000, &mut rng(3));
        for o in &scene.objects {
            if o.trajectory.vx > 0.0 {
                assert_eq!(o.z_order, 1, "left-to-right is the far lane");
            } else {
                assert_eq!(o.z_order, 2);
            }
        }
    }

    #[test]
    fn ids_are_unique_and_objects_time_sorted() {
        let g = generator();
        let scene = g.generate(300_000_000, &mut rng(4));
        let mut ids: Vec<u32> = scene.objects.iter().map(|o| o.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "ids unique");
        for w in scene.objects.windows(2) {
            assert!(w[0].trajectory.t0_us <= w[1].trajectory.t0_us);
        }
    }

    #[test]
    fn headway_constraint_spaces_same_lane_spawns() {
        let g = generator();
        let scene = g.generate(600_000_000, &mut rng(5));
        // Group by z (lane proxy) and check spawn spacing.
        for z in [1u8, 2] {
            let mut times: Vec<u64> = scene
                .objects
                .iter()
                .filter(|o| o.z_order == z)
                .map(|o| o.trajectory.t0_us)
                .collect();
            times.sort_unstable();
            for w in times.windows(2) {
                assert!(w[1] - w[0] >= 1_200_000, "headway violated: {} -> {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn lens_scale_shrinks_objects_and_speeds() {
        let mut cfg = TrafficConfig::two_lane_default();
        cfg.lens_scale = 0.5;
        let g = TrafficGenerator::new(SensorGeometry::davis240(), cfg);
        let scene = g.generate(300_000_000, &mut rng(6));
        let cars: Vec<_> = scene.objects.iter().filter(|o| o.class == ObjectClass::Car).collect();
        assert!(!cars.is_empty());
        for c in cars {
            assert!(c.width < 26.0, "half-scale car width, got {}", c.width);
            assert!(c.trajectory.speed() < 50.0);
        }
    }

    #[test]
    fn deterministic_generation() {
        let g = generator();
        let a = g.generate(60_000_000, &mut rng(7));
        let b = g.generate(60_000_000, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rate_class_never_spawns() {
        let mut cfg = TrafficConfig::two_lane_default();
        cfg.arrivals_hz = vec![(ObjectClass::Car, 0.0), (ObjectClass::Bus, 0.1)];
        let g = TrafficGenerator::new(SensorGeometry::davis240(), cfg);
        let scene = g.generate(300_000_000, &mut rng(8));
        assert!(scene.objects.iter().all(|o| o.class == ObjectClass::Bus));
        assert!(!scene.objects.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_lanes_panic() {
        let mut cfg = TrafficConfig::two_lane_default();
        cfg.lanes.clear();
        let _ = TrafficGenerator::new(SensorGeometry::davis240(), cfg);
    }
}

//! Scene model: objects on lanes, z-order occlusion, flicker distractors.

use ebbiot_events::{Micros, SensorGeometry, Timestamp};
use ebbiot_frame::{BoundingBox, PixelBox};

use crate::{LinearTrajectory, ObjectClass};

/// A temporary mid-trajectory stop: the object freezes at `at_us` for
/// `for_us` microseconds, then resumes along the same line (the motion
/// is time-warped, not re-targeted). Because an event camera only fires
/// on relative motion, a stalled object emits no edge events — the
/// tracker must survive the silence and re-acquire the same identity
/// when motion resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// When the object stops, in absolute scene time.
    pub at_us: Timestamp,
    /// How long it stays stopped.
    pub for_us: Micros,
}

/// One moving object in the scene.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneObject {
    /// Stable identifier, used by ground truth.
    pub id: u32,
    /// Object class.
    pub class: ObjectClass,
    /// Apparent width in pixels.
    pub width: f32,
    /// Apparent height in pixels.
    pub height: f32,
    /// Motion model.
    pub trajectory: LinearTrajectory,
    /// Depth order: larger values are nearer the camera and occlude
    /// smaller ones (a side view of multi-lane traffic).
    pub z_order: u8,
    /// Optional mid-trajectory stop (see [`Stall`]).
    pub stall: Option<Stall>,
}

impl SceneObject {
    /// Scene time remapped through the optional [`Stall`]: identity
    /// before the stall, frozen at its start during it, shifted by its
    /// length afterwards. Monotone non-decreasing, so span scans stay
    /// valid.
    #[must_use]
    pub fn warped_time(&self, t_us: Timestamp) -> Timestamp {
        match self.stall {
            None => t_us,
            Some(s) if t_us < s.at_us => t_us,
            Some(s) if t_us < s.at_us.saturating_add(s.for_us) => s.at_us,
            Some(s) => t_us - s.for_us,
        }
    }

    /// Stall-aware position at `t_us`, or `None` before activation.
    #[must_use]
    pub fn position_at(&self, t_us: Timestamp) -> Option<(f32, f32)> {
        self.trajectory.position(self.warped_time(t_us))
    }

    /// Bounding box at `t_us`, or `None` before activation.
    #[must_use]
    pub fn bbox_at(&self, t_us: Timestamp) -> Option<BoundingBox> {
        let (x, y) = self.position_at(t_us)?;
        Some(BoundingBox::new(x, y, self.width, self.height))
    }

    /// Whether any part of the object is on the sensor array at `t_us`.
    #[must_use]
    pub fn on_screen_at(&self, t_us: Timestamp, geometry: SensorGeometry) -> bool {
        let frame =
            BoundingBox::new(0.0, 0.0, f32::from(geometry.width()), f32::from(geometry.height()));
        self.bbox_at(t_us).is_some_and(|b| b.intersection(&frame).is_some())
    }

    /// Time span `[first, last]` during which the object is on screen, or
    /// `None` if it never enters. Brute-force scan at `step_us`
    /// granularity; used by tests and the generator's self-checks.
    #[must_use]
    pub fn on_screen_span(
        &self,
        geometry: SensorGeometry,
        horizon_us: Timestamp,
        step_us: u64,
    ) -> Option<(Timestamp, Timestamp)> {
        let mut first = None;
        let mut last = None;
        let mut t = self.trajectory.t0_us;
        while t <= horizon_us {
            if self.on_screen_at(t, geometry) {
                if first.is_none() {
                    first = Some(t);
                }
                last = Some(t);
            } else if first.is_some() {
                break; // linear motion: once off screen, gone for good
            }
            t += step_us;
        }
        first.zip(last)
    }
}

/// A stationary flickering region — the simulator's stand-in for the
/// paper's "distractors such as trees which create spurious events",
/// which the tracker handles with a region of exclusion (ROE).
#[derive(Debug, Clone, PartialEq)]
pub struct Flicker {
    /// The flickering pixels.
    pub region: PixelBox,
    /// Event rate per pixel of the region, in Hz.
    pub rate_hz_per_pixel: f64,
}

/// A complete scene: geometry, moving objects, distractors.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// Sensor geometry the scene is rendered onto.
    pub geometry: SensorGeometry,
    /// Moving objects.
    pub objects: Vec<SceneObject>,
    /// Stationary flicker distractors.
    pub flickers: Vec<Flicker>,
}

impl Scene {
    /// Creates an empty scene.
    #[must_use]
    pub fn new(geometry: SensorGeometry) -> Self {
        Self { geometry, objects: Vec::new(), flickers: Vec::new() }
    }

    /// Objects active (on screen) at `t_us`.
    pub fn active_objects(&self, t_us: Timestamp) -> impl Iterator<Item = &SceneObject> + '_ {
        self.objects.iter().filter(move |o| o.on_screen_at(t_us, self.geometry))
    }

    /// Whether the point `(x, y)` is covered at `t_us` by any object with
    /// z-order strictly greater than `z` — i.e. whether an event from an
    /// object at depth `z` would be occluded there.
    #[must_use]
    pub fn occluded_at(&self, x: f32, y: f32, z: u8, t_us: Timestamp) -> bool {
        self.objects
            .iter()
            .any(|o| o.z_order > z && o.bbox_at(t_us).is_some_and(|b| b.contains_point(x, y)))
    }

    /// Approximate visible fraction of `obj` at `t_us`: 1 minus the
    /// largest overlap fraction from any nearer object (exact for the
    /// common single-occluder case; conservative otherwise).
    #[must_use]
    pub fn visible_fraction(&self, obj: &SceneObject, t_us: Timestamp) -> f32 {
        let Some(bbox) = obj.bbox_at(t_us) else { return 0.0 };
        let mut max_cover = 0.0f32;
        for other in &self.objects {
            if other.id == obj.id || other.z_order <= obj.z_order {
                continue;
            }
            if let Some(ob) = other.bbox_at(t_us) {
                max_cover = max_cover.max(bbox.overlap_fraction(&ob));
            }
        }
        (1.0 - max_cover).max(0.0)
    }

    /// The largest timestamp at which any object is still on screen,
    /// scanned up to `horizon_us`. Returns 0 for sceneless configs.
    #[must_use]
    pub fn last_activity(&self, horizon_us: Timestamp, step_us: u64) -> Timestamp {
        self.objects
            .iter()
            .filter_map(|o| o.on_screen_span(self.geometry, horizon_us, step_us))
            .map(|(_, last)| last)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn car(id: u32, y: f32, vx: f32, t0: Timestamp, z: u8) -> SceneObject {
        let (w, h) = ObjectClass::Car.nominal_size();
        SceneObject {
            id,
            class: ObjectClass::Car,
            width: w,
            height: h,
            trajectory: LinearTrajectory::horizontal(-w, y, vx, t0),
            z_order: z,
            stall: None,
        }
    }

    fn geom() -> SensorGeometry {
        SensorGeometry::davis240()
    }

    #[test]
    fn bbox_tracks_trajectory() {
        let c = car(1, 80.0, 60.0, 0, 1);
        let b = c.bbox_at(1_000_000).unwrap();
        assert!((b.x - 20.0).abs() < 1e-3);
        assert_eq!(b.y, 80.0);
        assert_eq!(b.w, 40.0);
    }

    #[test]
    fn off_screen_before_entry_and_after_exit() {
        let c = car(1, 80.0, 60.0, 0, 1);
        assert!(!c.on_screen_at(0, geom()), "starts fully left of frame");
        assert!(c.on_screen_at(1_000_000, geom()));
        // Exits after travelling 240 + 40 px at 60 px/s ≈ 4.67 s.
        assert!(!c.on_screen_at(5_000_000, geom()));
    }

    #[test]
    fn on_screen_span_brackets_crossing() {
        let c = car(1, 80.0, 60.0, 0, 1);
        let (first, last) = c.on_screen_span(geom(), 10_000_000, 33_000).unwrap();
        assert!(first > 0 && first < 1_000_000);
        assert!(last > 4_000_000 && last < 5_000_000);
    }

    #[test]
    fn never_entering_object_has_no_span() {
        let mut c = car(1, 80.0, -60.0, 0, 1); // starts left, moves further left
        c.trajectory.start_x = -100.0;
        assert_eq!(c.on_screen_span(geom(), 5_000_000, 33_000), None);
    }

    #[test]
    fn active_objects_filters_by_time() {
        let mut scene = Scene::new(geom());
        scene.objects.push(car(1, 60.0, 60.0, 0, 1));
        scene.objects.push(car(2, 100.0, 60.0, 3_000_000, 2));
        assert_eq!(scene.active_objects(1_000_000).count(), 1);
        // At t = 4 s both are on screen (car 1 exits at ~4.67 s).
        assert_eq!(scene.active_objects(4_000_000).count(), 2);
        assert_eq!(scene.active_objects(5_000_000).count(), 1, "car 1 exited, car 2 active");
    }

    #[test]
    fn occlusion_requires_strictly_nearer_object() {
        let mut scene = Scene::new(geom());
        let near = car(1, 80.0, 60.0, 0, 2);
        scene.objects.push(near.clone());
        let t = 1_000_000;
        let b = near.bbox_at(t).unwrap();
        let (cx, cy) = b.center();
        assert!(scene.occluded_at(cx, cy, 1, t), "z=1 occluded by z=2");
        assert!(!scene.occluded_at(cx, cy, 2, t), "same depth never occludes");
        assert!(!scene.occluded_at(cx, cy, 3, t));
    }

    #[test]
    fn visible_fraction_drops_under_occlusion() {
        let mut scene = Scene::new(geom());
        // Two same-speed cars at the same y but different depth, offset so
        // the near one half-covers the far one.
        let far = car(1, 80.0, 60.0, 0, 1);
        let mut near = car(2, 80.0, 60.0, 0, 2);
        near.trajectory.start_x = far.trajectory.start_x + 20.0; // half overlap
        scene.objects.push(far.clone());
        scene.objects.push(near);
        let v = scene.visible_fraction(&far, 1_000_000);
        assert!((v - 0.5).abs() < 0.05, "roughly half visible, got {v}");
        // The near car itself is fully visible.
        let near_ref = scene.objects[1].clone();
        assert!((scene.visible_fraction(&near_ref, 1_000_000) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stall_freezes_then_resumes_shifted() {
        let mut c = car(1, 80.0, 60.0, 0, 1);
        c.stall = Some(Stall { at_us: 1_000_000, for_us: 500_000 });
        let before = c.bbox_at(900_000).unwrap();
        let plain = car(1, 80.0, 60.0, 0, 1);
        assert_eq!(before, plain.bbox_at(900_000).unwrap(), "identical before the stall");
        // Frozen throughout the stall window.
        let frozen = c.bbox_at(1_000_000).unwrap();
        assert_eq!(c.bbox_at(1_250_000).unwrap(), frozen);
        assert_eq!(c.bbox_at(1_499_999).unwrap(), frozen);
        // Resumes exactly where it stopped, shifted by the stall length.
        assert_eq!(c.bbox_at(1_500_000).unwrap(), frozen);
        assert_eq!(c.bbox_at(2_000_000).unwrap(), plain.bbox_at(1_500_000).unwrap());
    }

    #[test]
    fn no_stall_is_the_identity_warp() {
        let c = car(1, 80.0, 60.0, 0, 1);
        for t in [0, 123_456, 4_000_000] {
            assert_eq!(c.warped_time(t), t);
        }
    }

    #[test]
    fn last_activity_finds_final_exit() {
        let mut scene = Scene::new(geom());
        scene.objects.push(car(1, 60.0, 60.0, 0, 1));
        scene.objects.push(car(2, 100.0, 60.0, 2_000_000, 2));
        let last = scene.last_activity(20_000_000, 33_000);
        assert!(last > 6_000_000 && last < 7_000_000, "second car exits ~6.67 s");
    }
}

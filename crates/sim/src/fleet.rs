//! Fleet generation: K independently seeded cameras of one site preset.
//!
//! The engine crate multiplexes many camera streams; this helper
//! produces its inputs — `K` recordings of the same [`DatasetPreset`]
//! with per-camera seeds, so every camera sees different traffic while
//! the whole fleet stays reproducible from one base seed.

use crate::{DatasetPreset, SimulatedRecording};

/// A fleet of identical-site cameras with per-camera seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// The site preset every camera uses.
    pub preset: DatasetPreset,
    /// Number of cameras.
    pub cameras: usize,
    /// Per-camera recording duration, seconds.
    pub seconds: f64,
    /// Base seed; camera `k` uses [`FleetConfig::camera_seed`]`(k)`.
    pub base_seed: u64,
}

impl FleetConfig {
    /// A `cameras`-strong fleet of `preset` sites, 2 s per camera,
    /// base seed 42.
    #[must_use]
    pub const fn new(preset: DatasetPreset, cameras: usize) -> Self {
        Self { preset, cameras, seconds: 2.0, base_seed: 42 }
    }

    /// Overrides the per-camera duration, builder style.
    #[must_use]
    pub const fn with_seconds(mut self, seconds: f64) -> Self {
        self.seconds = seconds;
        self
    }

    /// Overrides the base seed, builder style.
    #[must_use]
    pub const fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// The seed camera `k` simulates with. Spread multiplicatively so
    /// neighbouring cameras don't share low-bit RNG structure.
    #[must_use]
    pub const fn camera_seed(&self, camera: usize) -> u64 {
        self.base_seed.wrapping_add((camera as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The name camera `k` records under (`"<SITE>-cam<k>"`).
    #[must_use]
    pub fn camera_name(&self, camera: usize) -> String {
        format!("{}-cam{camera:02}", self.preset.name())
    }

    /// Generates camera `k` alone — bit-identical to entry `k` of
    /// [`FleetConfig::generate`]. Network clients simulating one camera
    /// per connection use this so every connection thread generates
    /// only its own traffic.
    ///
    /// # Panics
    ///
    /// Panics when `camera >= self.cameras`.
    #[must_use]
    pub fn generate_one(&self, camera: usize) -> SimulatedRecording {
        assert!(camera < self.cameras, "camera {camera} out of range ({} cameras)", self.cameras);
        let mut rec =
            self.preset.config().with_duration_s(self.seconds).generate(self.camera_seed(camera));
        rec.name = self.camera_name(camera);
        rec
    }

    /// Generates the fleet: one recording per camera, named
    /// `"<SITE>-cam<k>"`.
    #[must_use]
    pub fn generate(&self) -> Vec<SimulatedRecording> {
        (0..self.cameras).map(|k| self.generate_one(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_one_recording_per_camera() {
        let fleet = FleetConfig::new(DatasetPreset::Lt4, 3).with_seconds(1.0).generate();
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet[0].name, "LT4-cam00");
        assert_eq!(fleet[2].name, "LT4-cam02");
        for rec in &fleet {
            assert_eq!(rec.duration_us, 1_000_000);
            assert!(ebbiot_events::stream::is_time_ordered(&rec.events));
        }
    }

    #[test]
    fn cameras_see_different_traffic_but_are_reproducible() {
        let cfg = FleetConfig::new(DatasetPreset::Lt4, 2).with_seconds(1.0);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b, "same base seed, same fleet");
        assert_ne!(a[0].events, a[1].events, "cameras are independently seeded");
        let other = cfg.with_base_seed(7).generate();
        assert_ne!(a[0].events, other[0].events);
    }

    #[test]
    fn generate_one_matches_the_full_fleet_entry() {
        let cfg = FleetConfig::new(DatasetPreset::Lt4, 3).with_seconds(0.5);
        let fleet = cfg.generate();
        for (k, expected) in fleet.iter().enumerate() {
            assert_eq!(&cfg.generate_one(k), expected, "camera {k}");
            assert_eq!(cfg.camera_name(k), expected.name);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn generate_one_rejects_out_of_range_cameras() {
        let _ = FleetConfig::new(DatasetPreset::Lt4, 2).generate_one(2);
    }

    #[test]
    fn camera_seeds_are_distinct() {
        let cfg = FleetConfig::new(DatasetPreset::Eng, 16);
        let mut seeds: Vec<u64> = (0..16).map(|k| cfg.camera_seed(k)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16);
    }
}

//! Fleet generation: K independently seeded cameras of one site preset.
//!
//! The engine crate multiplexes many camera streams; this helper
//! produces its inputs — `K` recordings of the same [`DatasetPreset`]
//! with per-camera seeds, so every camera sees different traffic while
//! the whole fleet stays reproducible from one base seed.

use crate::{DatasetPreset, SimulatedRecording};

/// A fleet of identical-site cameras with per-camera seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// The site preset every camera uses.
    pub preset: DatasetPreset,
    /// Number of cameras.
    pub cameras: usize,
    /// Per-camera recording duration, seconds.
    pub seconds: f64,
    /// Base seed; camera `k` uses [`FleetConfig::camera_seed`]`(k)`.
    pub base_seed: u64,
}

impl FleetConfig {
    /// A `cameras`-strong fleet of `preset` sites, 2 s per camera,
    /// base seed 42.
    #[must_use]
    pub const fn new(preset: DatasetPreset, cameras: usize) -> Self {
        Self { preset, cameras, seconds: 2.0, base_seed: 42 }
    }

    /// Overrides the per-camera duration, builder style.
    #[must_use]
    pub const fn with_seconds(mut self, seconds: f64) -> Self {
        self.seconds = seconds;
        self
    }

    /// Overrides the base seed, builder style.
    #[must_use]
    pub const fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// The seed camera `k` simulates with. Spread multiplicatively so
    /// neighbouring cameras don't share low-bit RNG structure.
    #[must_use]
    pub const fn camera_seed(&self, camera: usize) -> u64 {
        self.base_seed.wrapping_add((camera as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Generates the fleet: one recording per camera, named
    /// `"<SITE>-cam<k>"`.
    #[must_use]
    pub fn generate(&self) -> Vec<SimulatedRecording> {
        (0..self.cameras)
            .map(|k| {
                let mut rec = self
                    .preset
                    .config()
                    .with_duration_s(self.seconds)
                    .generate(self.camera_seed(k));
                rec.name = format!("{}-cam{k:02}", self.preset.name());
                rec
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_has_one_recording_per_camera() {
        let fleet = FleetConfig::new(DatasetPreset::Lt4, 3).with_seconds(1.0).generate();
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet[0].name, "LT4-cam00");
        assert_eq!(fleet[2].name, "LT4-cam02");
        for rec in &fleet {
            assert_eq!(rec.duration_us, 1_000_000);
            assert!(ebbiot_events::stream::is_time_ordered(&rec.events));
        }
    }

    #[test]
    fn cameras_see_different_traffic_but_are_reproducible() {
        let cfg = FleetConfig::new(DatasetPreset::Lt4, 2).with_seconds(1.0);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b, "same base seed, same fleet");
        assert_ne!(a[0].events, a[1].events, "cameras are independently seeded");
        let other = cfg.with_base_seed(7).generate();
        assert_ne!(a[0].events, other[0].events);
    }

    #[test]
    fn camera_seeds_are_distinct() {
        let cfg = FleetConfig::new(DatasetPreset::Eng, 16);
        let mut seeds: Vec<u64> = (0..16).map(|k| cfg.camera_seed(k)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16);
    }
}

//! Ground-truth box generation.
//!
//! The paper's recordings "were manually annotated to generate the Ground
//! Truth tracker annotations". The simulator knows object positions
//! exactly, so annotation is replaced by geometry: for each frame window
//! `[start, end)` the ground-truth box of an object is the hull of its
//! silhouette over the window (what an annotator looking at the event
//! frame would draw), clipped to the array.

use ebbiot_events::{Micros, SensorGeometry, Timestamp};
use ebbiot_frame::BoundingBox;

use crate::{ObjectClass, Scene};

/// One annotated object in one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthBox {
    /// Stable object (track) identifier.
    pub object_id: u32,
    /// Object class.
    pub class: ObjectClass,
    /// The annotated box, clipped to the sensor array.
    pub bbox: BoundingBox,
    /// Approximate unoccluded fraction at the frame midpoint (1.0 = fully
    /// visible).
    pub visibility: f32,
}

/// All annotations for one frame instant.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthFrame {
    /// Frame index (matches `FrameWindow::index`).
    pub index: usize,
    /// Frame midpoint timestamp.
    pub t_mid: Timestamp,
    /// Annotated boxes.
    pub boxes: Vec<GroundTruthBox>,
}

/// Annotation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruthConfig {
    /// Minimum clipped box area (px^2) for an annotation to be emitted —
    /// objects barely entering the frame are not annotated.
    pub min_area: f32,
    /// Minimum visible fraction for an annotation to be emitted — objects
    /// almost fully hidden behind nearer traffic are not annotated.
    pub min_visibility: f32,
    /// Whether humans are annotated. The paper's evaluation tracks
    /// vehicles ("we have not tracked slow and small objects like
    /// humans"), so the presets default to `false` while keeping humans in
    /// the scene as distractors.
    pub include_humans: bool,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        Self { min_area: 25.0, min_visibility: 0.25, include_humans: false }
    }
}

/// Builds per-frame ground truth for `[0, duration_us)` at `frame_us`
/// granularity.
#[must_use]
pub fn ground_truth_frames(
    scene: &Scene,
    duration_us: Micros,
    frame_us: Micros,
    config: &GroundTruthConfig,
) -> Vec<GroundTruthFrame> {
    assert!(frame_us > 0, "frame duration must be non-zero");
    let num_frames = duration_us.div_ceil(frame_us) as usize;
    let mut frames = Vec::with_capacity(num_frames);
    for index in 0..num_frames {
        let start = index as u64 * frame_us;
        let end = start + frame_us;
        let t_mid = start + frame_us / 2;
        let mut boxes = Vec::new();
        for obj in &scene.objects {
            if !config.include_humans && obj.class == ObjectClass::Human {
                continue;
            }
            let hull = match (obj.bbox_at(start), obj.bbox_at(end)) {
                (Some(a), Some(b)) => a.enclosing(&b),
                (None, Some(b)) => b,
                (Some(a), None) => a,
                (None, None) => continue,
            };
            let clipped = hull
                .clipped_to(f32::from(scene.geometry.width()), f32::from(scene.geometry.height()));
            if clipped.area() < config.min_area {
                continue;
            }
            let visibility = scene.visible_fraction(obj, t_mid);
            if visibility < config.min_visibility {
                continue;
            }
            boxes.push(GroundTruthBox {
                object_id: obj.id,
                class: obj.class,
                bbox: clipped,
                visibility,
            });
        }
        frames.push(GroundTruthFrame { index, t_mid, boxes });
    }
    frames
}

/// Number of distinct annotated tracks (the per-recording weight used by
/// the paper's weighted precision/recall average).
#[must_use]
pub fn count_tracks(frames: &[GroundTruthFrame]) -> usize {
    let mut ids: Vec<u32> =
        frames.iter().flat_map(|f| f.boxes.iter().map(|b| b.object_id)).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

/// Returns the geometry-wide frame box, a convenience for clipping.
#[must_use]
pub fn frame_box(geometry: SensorGeometry) -> BoundingBox {
    BoundingBox::new(0.0, 0.0, f32::from(geometry.width()), f32::from(geometry.height()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearTrajectory, SceneObject};
    use ebbiot_events::SensorGeometry;

    fn geom() -> SensorGeometry {
        SensorGeometry::davis240()
    }

    fn scene_with(objects: Vec<SceneObject>) -> Scene {
        let mut s = Scene::new(geom());
        s.objects = objects;
        s
    }

    fn car(id: u32, x: f32, y: f32, vx: f32, t0: Timestamp, z: u8) -> SceneObject {
        let (w, h) = ObjectClass::Car.nominal_size();
        SceneObject {
            id,
            class: ObjectClass::Car,
            width: w,
            height: h,
            trajectory: LinearTrajectory::horizontal(x, y, vx, t0),
            z_order: z,
            stall: None,
        }
    }

    #[test]
    fn frames_cover_duration() {
        let scene = scene_with(vec![]);
        let frames = ground_truth_frames(&scene, 660_000, 66_000, &GroundTruthConfig::default());
        assert_eq!(frames.len(), 10);
        assert_eq!(frames[0].index, 0);
        assert_eq!(frames[9].t_mid, 9 * 66_000 + 33_000);
    }

    #[test]
    fn gt_box_is_the_window_hull() {
        let scene = scene_with(vec![car(1, 100.0, 80.0, 60.0, 0, 1)]);
        let frames = ground_truth_frames(&scene, 66_000, 66_000, &GroundTruthConfig::default());
        let b = &frames[0].boxes[0].bbox;
        // Car travels 3.96 px in one frame: hull is 40 + 3.96 wide.
        assert!((b.x - 100.0).abs() < 1e-3);
        assert!((b.w - 43.96).abs() < 0.01);
        assert!((b.h - 18.0).abs() < 1e-3);
    }

    #[test]
    fn tiny_clipped_slivers_are_not_annotated() {
        // Car just barely entering: 0.5 px visible.
        let scene = scene_with(vec![car(1, -39.5, 80.0, 0.0, 0, 1)]);
        let frames = ground_truth_frames(&scene, 66_000, 66_000, &GroundTruthConfig::default());
        assert!(frames[0].boxes.is_empty(), "0.5 x 18 px is below min_area");
    }

    #[test]
    fn humans_excluded_by_default_config() {
        let (w, h) = ObjectClass::Human.nominal_size();
        let human = SceneObject {
            id: 7,
            class: ObjectClass::Human,
            width: w,
            height: h,
            trajectory: LinearTrajectory::horizontal(100.0, 80.0, 5.0, 0),
            z_order: 1,
            stall: None,
        };
        let scene = scene_with(vec![human]);
        let default_frames =
            ground_truth_frames(&scene, 66_000, 66_000, &GroundTruthConfig::default());
        assert!(default_frames[0].boxes.is_empty());
        let with_humans = GroundTruthConfig { include_humans: true, ..Default::default() };
        let frames = ground_truth_frames(&scene, 66_000, 66_000, &with_humans);
        assert_eq!(frames[0].boxes.len(), 1);
        assert_eq!(frames[0].boxes[0].class, ObjectClass::Human);
    }

    #[test]
    fn heavily_occluded_objects_are_skipped() {
        // Far car fully covered by a near car at the same position.
        let far = car(1, 100.0, 80.0, 60.0, 0, 1);
        let near = car(2, 100.0, 80.0, 60.0, 0, 2);
        let scene = scene_with(vec![far, near]);
        let frames = ground_truth_frames(&scene, 66_000, 66_000, &GroundTruthConfig::default());
        let ids: Vec<u32> = frames[0].boxes.iter().map(|b| b.object_id).collect();
        assert_eq!(ids, vec![2], "only the near car is annotated");
    }

    #[test]
    fn partially_occluded_objects_keep_visibility_estimate() {
        let far = car(1, 100.0, 80.0, 60.0, 0, 1);
        let mut near = car(2, 120.0, 80.0, 60.0, 0, 2); // covers right half
        near.trajectory.start_x = 120.0;
        let scene = scene_with(vec![far, near]);
        let frames = ground_truth_frames(&scene, 66_000, 66_000, &GroundTruthConfig::default());
        let far_box = frames[0].boxes.iter().find(|b| b.object_id == 1).unwrap();
        assert!(far_box.visibility > 0.4 && far_box.visibility < 0.6);
    }

    #[test]
    fn count_tracks_counts_distinct_ids() {
        let scene =
            scene_with(vec![car(1, 100.0, 60.0, 60.0, 0, 1), car(2, 100.0, 100.0, 60.0, 0, 2)]);
        let frames = ground_truth_frames(&scene, 330_000, 66_000, &GroundTruthConfig::default());
        assert_eq!(count_tracks(&frames), 2);
    }

    #[test]
    fn object_entering_mid_recording_appears_later() {
        let scene = scene_with(vec![car(1, 0.0, 80.0, 60.0, 200_000, 1)]);
        let frames = ground_truth_frames(&scene, 660_000, 66_000, &GroundTruthConfig::default());
        assert!(frames[0].boxes.is_empty(), "not yet active");
        assert!(!frames[5].boxes.is_empty(), "active by frame 5");
    }
}

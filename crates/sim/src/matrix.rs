//! The named scenario matrix: seeded, scripted scenes with ground truth,
//! used by the accuracy gate (`exp_accuracy`) and the regression tests.
//!
//! [`ScenarioBuilder`] gives individual tests
//! one-liner scenes; this module goes one step further and packages a
//! *scene plus its simulation parameters* (duration, noise level, sensor
//! model, annotation policy) into a named, registry-enumerable
//! [`ScriptedScenario`]. Every scenario is fully deterministic per seed:
//! `generate(seed)` always returns a bit-identical
//! [`SimulatedRecording`].
//!
//! The registry ([`SCENARIO_MATRIX`]) stresses one tracking failure mode
//! per entry — dense crossings, long occlusions, mid-frame stalls, event
//! rate bursts, night-level noise, flicker distractors — plus a geometry
//! sweep (DAVIS240, DAVIS346, HD) whose edge-hugging objects exercise
//! the partial-edge-cell RPN path on sensors whose dimensions are not
//! multiples of the `(s1, s2)` cell size.
//!
//! To add a scenario: write a `fn() -> ScriptedScenario` builder here,
//! append a [`ScenarioSpec`] to [`SCENARIO_MATRIX`], and add a floors
//! row in `ebbiot_bench::accuracy` (see ARCHITECTURE.md §6).

use ebbiot_events::{Micros, SensorGeometry, DEFAULT_FRAME_DURATION_US};
use ebbiot_frame::PixelBox;
use rand::{rngs::StdRng, SeedableRng};

use crate::{
    ground_truth::{ground_truth_frames, GroundTruthConfig},
    BackgroundNoise, DavisConfig, DavisSimulator, LinearTrajectory, ObjectClass, ScenarioBuilder,
    Scene, SceneObject, SimulatedRecording, Stall,
};

/// A named, seeded scenario: a scripted scene plus everything needed to
/// simulate it into a [`SimulatedRecording`] with ground truth.
#[derive(Debug, Clone)]
pub struct ScriptedScenario {
    /// Registry name (kebab-case, stable across releases).
    pub name: &'static str,
    /// The scripted scene.
    pub scene: Scene,
    /// Full evaluation duration, microseconds.
    pub duration_us: Micros,
    /// CI-sized duration used by `--smoke` runs, microseconds.
    pub smoke_duration_us: Micros,
    /// Frame duration for ground-truth annotation, microseconds.
    pub frame_us: Micros,
    /// Background noise model.
    pub noise: BackgroundNoise,
    /// Sensor event-generation model.
    pub davis: DavisConfig,
    /// Annotation policy.
    pub ground_truth: GroundTruthConfig,
}

impl ScriptedScenario {
    /// Simulates the full-duration recording for `seed`. Bit-identical
    /// across calls with the same seed.
    #[must_use]
    pub fn generate(&self, seed: u64) -> SimulatedRecording {
        self.generate_with_duration(seed, self.duration_us)
    }

    /// Simulates the CI-sized (`--smoke`) recording for `seed`.
    #[must_use]
    pub fn generate_smoke(&self, seed: u64) -> SimulatedRecording {
        self.generate_with_duration(seed, self.smoke_duration_us)
    }

    /// Simulates `duration_us` of the scenario for `seed`.
    #[must_use]
    pub fn generate_with_duration(&self, seed: u64, duration_us: Micros) -> SimulatedRecording {
        let mut rng = StdRng::seed_from_u64(seed);
        let sim = DavisSimulator::new(self.davis);
        let events = sim.simulate(&self.scene, duration_us, self.noise, &mut rng);
        let ground_truth =
            ground_truth_frames(&self.scene, duration_us, self.frame_us, &self.ground_truth);
        SimulatedRecording {
            name: self.name.to_string(),
            lens_mm: 6.0,
            geometry: self.scene.geometry,
            frame_us: self.frame_us,
            events,
            ground_truth,
            duration_us,
        }
    }
}

/// One registry entry: a named scenario and how to build it.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Stable registry name.
    pub name: &'static str,
    /// One-line description of the failure mode the scenario stresses.
    pub summary: &'static str,
    /// Builds the scenario.
    pub build: fn() -> ScriptedScenario,
}

/// All registered scenarios, in gate-report order.
pub const SCENARIO_MATRIX: &[ScenarioSpec] = &[
    ScenarioSpec {
        name: "dense-crossing",
        summary: "four vehicles crossing mid-frame in opposite directions",
        build: dense_crossing,
    },
    ScenarioSpec {
        name: "long-occlusion",
        summary: "a near bus slowly overtakes and covers a far car",
        build: long_occlusion,
    },
    ScenarioSpec {
        name: "mid-stall",
        summary: "a car stops mid-frame (event silence), then resumes",
        build: mid_stall,
    },
    ScenarioSpec {
        name: "burst-rate",
        summary: "simultaneous multi-lane arrival waves with quiet gaps",
        build: burst_rate,
    },
    ScenarioSpec {
        name: "night-noise",
        summary: "one car under heavy background noise",
        build: night_noise,
    },
    ScenarioSpec {
        name: "flicker-distractor",
        summary: "two flicker regions (ROE material) plus crossing traffic",
        build: flicker_distractor,
    },
    ScenarioSpec {
        name: "geometry-davis240",
        summary: "edge-hugging cars on the 240x180 baseline geometry",
        build: geometry_davis240,
    },
    ScenarioSpec {
        name: "geometry-davis346",
        summary: "edge-hugging cars on 346x260 (partial RPN edge cells)",
        build: geometry_davis346,
    },
    ScenarioSpec {
        name: "geometry-hd",
        summary: "scaled-up cars on 1280x720 (partial right-edge cells)",
        build: geometry_hd,
    },
];

/// Looks a scenario up by registry name.
#[must_use]
pub fn find_scenario(name: &str) -> Option<&'static ScenarioSpec> {
    SCENARIO_MATRIX.iter().find(|s| s.name == name)
}

/// All registry names, in gate-report order.
#[must_use]
pub fn scenario_names() -> Vec<&'static str> {
    SCENARIO_MATRIX.iter().map(|s| s.name).collect()
}

/// Common wrapper: scene + durations + noise, defaults elsewhere.
fn scripted(
    name: &'static str,
    scene: Scene,
    duration_us: Micros,
    smoke_duration_us: Micros,
    noise_hz_per_pixel: f64,
) -> ScriptedScenario {
    ScriptedScenario {
        name,
        scene,
        duration_us,
        smoke_duration_us,
        frame_us: DEFAULT_FRAME_DURATION_US,
        noise: BackgroundNoise::new(noise_hz_per_pixel),
        davis: DavisConfig::default(),
        ground_truth: GroundTruthConfig::default(),
    }
}

fn dense_crossing() -> ScriptedScenario {
    let scene = ScenarioBuilder::davis240()
        .entering_left(ObjectClass::Car, 70.0, 65.0, 0, 1)
        .entering_right(ObjectClass::Car, 85.0, 60.0, 200_000, 2)
        .entering_left(ObjectClass::Van, 120.0, 55.0, 400_000, 2)
        .entering_right(ObjectClass::Car, 135.0, 70.0, 0, 3)
        .build();
    scripted("dense-crossing", scene, 5_500_000, 2_000_000, 0.05)
}

fn long_occlusion() -> ScriptedScenario {
    // The far car (z = 1) enters first at 45 px/s; the near bus (z = 2)
    // enters 1.2 s later at 75 px/s, catches it and — being 85 px long
    // against the car's 40 — covers it completely for well over a
    // second before pulling clear.
    let scene = ScenarioBuilder::davis240()
        .entering_left(ObjectClass::Car, 95.0, 45.0, 0, 1)
        .entering_left(ObjectClass::Bus, 100.0, 75.0, 1_200_000, 2)
        .build();
    scripted("long-occlusion", scene, 6_500_000, 2_500_000, 0.05)
}

fn mid_stall() -> ScriptedScenario {
    let mut scene =
        ScenarioBuilder::davis240().entering_left(ObjectClass::Car, 90.0, 70.0, 0, 1).build();
    // Stop 1.5 s in (the car is ~65 px into the frame), stay silent for
    // 0.8 s, then resume. An event camera sees *nothing* of a stopped
    // object, so the tracker must coast or re-acquire without an
    // identity switch.
    scene.objects[0].stall = Some(Stall { at_us: 1_500_000, for_us: 800_000 });
    scripted("mid-stall", scene, 5_200_000, 2_500_000, 0.05)
}

fn burst_rate() -> ScriptedScenario {
    // Two three-lane arrival waves separated by a quiet gap: the event
    // rate swings from near-zero to its maximum within one frame.
    let scene = ScenarioBuilder::davis240()
        .entering_left(ObjectClass::Car, 70.0, 65.0, 0, 1)
        .entering_right(ObjectClass::Van, 105.0, 60.0, 0, 2)
        .entering_left(ObjectClass::Car, 140.0, 70.0, 0, 3)
        .entering_left(ObjectClass::Car, 70.0, 70.0, 2_500_000, 1)
        .entering_right(ObjectClass::Car, 105.0, 65.0, 2_500_000, 2)
        .entering_left(ObjectClass::Van, 140.0, 60.0, 2_500_000, 3)
        .build();
    scripted("burst-rate", scene, 7_500_000, 2_000_000, 0.05)
}

fn night_noise() -> ScriptedScenario {
    let scene =
        ScenarioBuilder::davis240().entering_left(ObjectClass::Car, 90.0, 60.0, 0, 1).build();
    // ~0.65 Hz/px background: an order of magnitude above the presets,
    // the shot-noise regime of a night scene.
    scripted("night-noise", scene, 5_000_000, 2_000_000, 0.65)
}

fn flicker_distractor() -> ScriptedScenario {
    let scene = ScenarioBuilder::davis240()
        .entering_left(ObjectClass::Car, 120.0, 60.0, 0, 1)
        .entering_right(ObjectClass::Van, 90.0, 55.0, 500_000, 2)
        .flicker(PixelBox::new(8, 8, 48, 40), 12.0)
        .flicker(PixelBox::new(196, 16, 232, 52), 8.0)
        .build();
    scripted("flicker-distractor", scene, 5_500_000, 2_000_000, 0.05)
}

fn geometry_davis240() -> ScriptedScenario {
    // y-centres put the car boxes flush against the top and bottom
    // sensor rows (car height 18 -> y in [0, 18] and [162, 180]).
    let scene = ScenarioBuilder::davis240()
        .entering_left(ObjectClass::Car, 9.0, 65.0, 0, 1)
        .entering_left(ObjectClass::Car, 171.0, 60.0, 300_000, 1)
        .build();
    scripted("geometry-davis240", scene, 5_500_000, 2_000_000, 0.05)
}

fn geometry_davis346() -> ScriptedScenario {
    // 346 x 260 is divisible by neither s1 = 6 nor s2 = 3: the rightmost
    // RPN cell is 4 px wide and the bottom cell 2 px tall. Edge-hugging
    // cars sweep straight through those partial cells — the strip the
    // pre-PR 5 RPN was blind to.
    let scene = ScenarioBuilder::new(SensorGeometry::davis346())
        .entering_left(ObjectClass::Car, 9.0, 80.0, 0, 1)
        .entering_left(ObjectClass::Car, 251.0, 75.0, 300_000, 1)
        .build();
    scripted("geometry-davis346", scene, 5_500_000, 2_000_000, 0.05)
}

fn geometry_hd() -> ScriptedScenario {
    // 1280 = 6 * 213 + 2: the right-edge RPN column is a 2 px sliver.
    // Objects are scaled ~3x to keep apparent size proportionate to the
    // wider field of view.
    let geometry = SensorGeometry::new(1280, 720);
    let mut scene = Scene::new(geometry);
    let (nw, nh) = ObjectClass::Car.nominal_size();
    let (w, h) = (nw * 3.0, nh * 3.0);
    scene.objects.push(SceneObject {
        id: 1,
        class: ObjectClass::Car,
        width: w,
        height: h,
        trajectory: LinearTrajectory::horizontal(-w, 0.0, 260.0, 0),
        z_order: 1,
        stall: None,
    });
    scene.objects.push(SceneObject {
        id: 2,
        class: ObjectClass::Car,
        width: w,
        height: h,
        trajectory: LinearTrajectory::horizontal(-w, 720.0 - h, 240.0, 300_000),
        z_order: 1,
        stall: None,
    });
    scripted("geometry-hd", scene, 5_600_000, 1_800_000, 0.02)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_eight_unique_scenarios() {
        assert!(SCENARIO_MATRIX.len() >= 8, "matrix size {}", SCENARIO_MATRIX.len());
        let names = scenario_names();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "scenario names must be unique");
    }

    #[test]
    fn find_scenario_resolves_every_registered_name() {
        for spec in SCENARIO_MATRIX {
            assert_eq!(find_scenario(spec.name).unwrap().name, spec.name);
        }
        assert!(find_scenario("no-such-scenario").is_none());
    }

    #[test]
    fn every_scenario_builds_and_names_match() {
        for spec in SCENARIO_MATRIX {
            let scenario = (spec.build)();
            assert_eq!(scenario.name, spec.name);
            assert!(!scenario.scene.objects.is_empty(), "{}", spec.name);
            assert!(scenario.smoke_duration_us < scenario.duration_us, "{}", spec.name);
            assert!(scenario.frame_us > 0, "{}", spec.name);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let scenario = (find_scenario("dense-crossing").unwrap().build)();
        let a = scenario.generate_with_duration(7, 500_000);
        let b = scenario.generate_with_duration(7, 500_000);
        assert_eq!(a, b);
        let c = scenario.generate_with_duration(8, 500_000);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn smoke_recording_is_a_shorter_run() {
        let scenario = (find_scenario("night-noise").unwrap().build)();
        let smoke = scenario.generate_smoke(3);
        assert_eq!(smoke.duration_us, scenario.smoke_duration_us);
        assert!(!smoke.events.is_empty());
        assert!(!smoke.ground_truth.is_empty());
    }

    #[test]
    fn mid_stall_scenario_has_a_stall_window() {
        let scenario = (find_scenario("mid-stall").unwrap().build)();
        let stall = scenario.scene.objects[0].stall.expect("stall configured");
        assert!(stall.at_us > 0 && stall.for_us > 0);
        assert!(
            stall.at_us + stall.for_us < scenario.smoke_duration_us,
            "the stall must fit inside the smoke run"
        );
    }

    #[test]
    fn geometry_sweep_covers_non_divisible_sensors() {
        let g346 = (find_scenario("geometry-davis346").unwrap().build)().scene.geometry;
        assert_eq!((g346.width(), g346.height()), (346, 260));
        assert!(!g346.width().is_multiple_of(6) && !g346.height().is_multiple_of(3));
        let hd = (find_scenario("geometry-hd").unwrap().build)().scene.geometry;
        assert_eq!((hd.width(), hd.height()), (1280, 720));
        assert!(!hd.width().is_multiple_of(6));
    }

    #[test]
    fn edge_hugging_objects_touch_the_sensor_border() {
        for name in ["geometry-davis240", "geometry-davis346", "geometry-hd"] {
            let scenario = (find_scenario(name).unwrap().build)();
            let h = f32::from(scenario.scene.geometry.height());
            let touches_top = scenario
                .scene
                .objects
                .iter()
                .any(|o| o.bbox_at(1_000_000).is_some_and(|b| b.y <= 0.5));
            let touches_bottom = scenario
                .scene
                .objects
                .iter()
                .any(|o| o.bbox_at(1_000_000).is_some_and(|b| b.y_max() >= h - 0.5));
            assert!(touches_top && touches_bottom, "{name} must hug both borders");
        }
    }
}

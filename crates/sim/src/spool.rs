//! Spool-to-disk helpers: write simulated recordings into the `EBST`
//! store so heavy traffic can be generated once and replayed many
//! times without re-simulation.

use std::path::Path;

use ebbiot_store::{
    FleetStore, RecordingWriter, StoreError, StoreOptions, StoreSummary, StoredCamera,
};

use crate::{FleetConfig, SimulatedRecording};

/// Writes one recording to an `EBST` file at `path`.
///
/// The store header carries the recording's name, geometry and
/// duration, so a later replay finishes with the same span as
/// in-memory processing.
///
/// # Errors
///
/// Returns any [`StoreError`] from the writer (I/O, or the recording
/// violating order/bounds invariants — impossible for simulator
/// output).
pub fn spool_recording(
    path: &Path,
    recording: &SimulatedRecording,
    options: StoreOptions,
) -> Result<StoreSummary, StoreError> {
    let mut writer = RecordingWriter::create(
        path,
        recording.geometry,
        &recording.name,
        recording.duration_us,
        options,
    )?;
    writer.push_events(&recording.events)?;
    let (_, summary) = writer.finish()?;
    Ok(summary)
}

/// Spools a whole fleet into `dir` as a [`FleetStore`] (one `EBST`
/// file per camera plus a manifest).
///
/// # Errors
///
/// Returns the first [`StoreError`] encountered.
pub fn spool_fleet(
    dir: &Path,
    fleet: &[SimulatedRecording],
    options: StoreOptions,
) -> Result<FleetStore, StoreError> {
    let cameras: Vec<StoredCamera<'_>> = fleet
        .iter()
        .map(|rec| StoredCamera {
            name: &rec.name,
            geometry: rec.geometry,
            span_us: rec.duration_us,
            events: &rec.events,
        })
        .collect();
    FleetStore::write(dir, &cameras, options)
}

impl FleetConfig {
    /// Generates the fleet and spools it into `dir` in one step — the
    /// write-once half of the write-once/replay-many workflow.
    ///
    /// # Errors
    ///
    /// Returns the first [`StoreError`] encountered while writing.
    pub fn spool_to(&self, dir: &Path, options: StoreOptions) -> Result<FleetStore, StoreError> {
        spool_fleet(dir, &self.generate(), options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetPreset;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ebbiot_spool_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spooled_fleet_reads_back_identically() {
        let dir = temp_dir("fleet");
        let config = FleetConfig::new(DatasetPreset::Lt4, 2).with_seconds(0.3);
        let fleet = config.generate();
        let store = config.spool_to(&dir, StoreOptions { chunk_events: 1_000 }).unwrap();

        assert_eq!(store.cameras(), 2);
        assert_eq!(store.total_events(), fleet.iter().map(|r| r.events.len() as u64).sum());
        for (k, rec) in fleet.iter().enumerate() {
            let mut reader = store.reader(k).unwrap();
            assert_eq!(reader.name(), rec.name);
            assert_eq!(reader.geometry(), rec.geometry);
            assert_eq!(reader.span_us(), rec.duration_us);
            assert_eq!(reader.read_recording().unwrap().events, rec.events);
        }
        // Reopening from the manifest sees the same fleet.
        assert_eq!(FleetStore::open(&dir).unwrap(), store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_recording_spool_reports_compression() {
        let dir = temp_dir("single");
        std::fs::create_dir_all(&dir).unwrap();
        let rec = DatasetPreset::Lt4.config().with_duration_s(0.3).generate(3);
        let path = dir.join("rec.ebst");
        let summary = spool_recording(&path, &rec, StoreOptions::default()).unwrap();
        assert_eq!(summary.events, rec.events.len() as u64);
        assert!(
            summary.bytes_per_event() < 14.0,
            "EBST should beat 14 B/event, got {:.2}",
            summary.bytes_per_event()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

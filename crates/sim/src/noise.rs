//! Background-activity noise model.
//!
//! NVS pixels emit spurious events at a low rate even in a static scene
//! (§II-A); on the EBBI these appear as salt-and-pepper noise, which is
//! exactly what the median filter is there to remove, and in event-domain
//! pipelines they are what the NN-filter must reject. The model is
//! homogeneous Poisson per pixel, with uniform random polarity.

use ebbiot_events::{Event, Polarity, SensorGeometry, Timestamp};
use rand::Rng;

/// Homogeneous per-pixel Poisson background noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundNoise {
    /// Noise rate per pixel in events/second. Real DAVIS background rates
    /// are on the order of 0.05–0.5 Hz/pixel depending on biases.
    pub rate_hz_per_pixel: f64,
}

impl BackgroundNoise {
    /// Creates the noise model.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite rates.
    #[must_use]
    pub fn new(rate_hz_per_pixel: f64) -> Self {
        assert!(
            rate_hz_per_pixel.is_finite() && rate_hz_per_pixel >= 0.0,
            "noise rate must be a non-negative finite number"
        );
        Self { rate_hz_per_pixel }
    }

    /// No noise at all.
    #[must_use]
    pub fn none() -> Self {
        Self { rate_hz_per_pixel: 0.0 }
    }

    /// Expected number of noise events over the window.
    #[must_use]
    pub fn expected_events(&self, geometry: SensorGeometry, duration_us: u64) -> f64 {
        self.rate_hz_per_pixel * geometry.num_pixels() as f64 * duration_us as f64 / 1e6
    }

    /// Samples noise events for `[t_start, t_start + duration_us)`,
    /// returned time-ordered.
    #[must_use]
    pub fn sample(
        &self,
        geometry: SensorGeometry,
        t_start: Timestamp,
        duration_us: u64,
        rng: &mut impl Rng,
    ) -> Vec<Event> {
        let mean = self.expected_events(geometry, duration_us);
        let count = sample_poisson(mean, rng);
        let mut events = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let x = rng.random_range(0..geometry.width());
            let y = rng.random_range(0..geometry.height());
            let t = t_start + rng.random_range(0..duration_us.max(1));
            let polarity = if rng.random_bool(0.5) { Polarity::On } else { Polarity::Off };
            events.push(Event::new(x, y, t, polarity));
        }
        events.sort_unstable();
        events
    }
}

/// Samples a Poisson-distributed count with the given mean.
///
/// Knuth's product method below mean 30, normal approximation (rounded,
/// clamped at zero) above — accurate to well under a percent for the
/// window sizes the simulator uses.
#[must_use]
pub fn sample_poisson(mean: f64, rng: &mut impl Rng) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product: f64 = rng.random();
        let mut count = 0u64;
        while product > limit {
            product *= rng.random::<f64>();
            count += 1;
        }
        count
    } else {
        // Box–Muller normal approximation N(mean, mean).
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        let v = mean + mean.sqrt() * z;
        if v < 0.0 {
            0
        } else {
            v.round() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zero_rate_produces_no_events() {
        let n = BackgroundNoise::none();
        let events = n.sample(SensorGeometry::davis240(), 0, 1_000_000, &mut rng());
        assert!(events.is_empty());
    }

    #[test]
    fn expected_events_scales_with_everything() {
        let n = BackgroundNoise::new(0.1);
        let g = SensorGeometry::davis240();
        assert!((n.expected_events(g, 1_000_000) - 4_320.0).abs() < 1e-6);
        assert!((n.expected_events(g, 500_000) - 2_160.0).abs() < 1e-6);
    }

    #[test]
    fn sampled_count_is_near_expectation() {
        let n = BackgroundNoise::new(0.1);
        let g = SensorGeometry::davis240();
        let mut r = rng();
        let total: usize = (0..20).map(|_| n.sample(g, 0, 1_000_000, &mut r).len()).sum();
        let mean = total as f64 / 20.0;
        assert!((mean - 4_320.0).abs() < 300.0, "mean {mean} should be ~4320");
    }

    #[test]
    fn samples_are_ordered_in_window_and_in_bounds() {
        let n = BackgroundNoise::new(0.2);
        let g = SensorGeometry::new(64, 48);
        let events = n.sample(g, 5_000_000, 200_000, &mut rng());
        assert!(!events.is_empty());
        assert!(ebbiot_events::stream::is_time_ordered(&events));
        for e in &events {
            assert!(g.contains_event(e));
            assert!(e.t >= 5_000_000 && e.t < 5_200_000);
        }
    }

    #[test]
    fn polarity_is_roughly_balanced() {
        let n = BackgroundNoise::new(0.5);
        let g = SensorGeometry::davis240();
        let events = n.sample(g, 0, 1_000_000, &mut rng());
        let on = events.iter().filter(|e| e.polarity == Polarity::On).count();
        let frac = on as f64 / events.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "ON fraction {frac}");
    }

    #[test]
    fn poisson_small_mean_statistics() {
        let mut r = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| sample_poisson(3.0, &mut r)).sum();
        let mean = total as f64 / f64::from(n);
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_statistics() {
        let mut r = rng();
        let n = 5_000;
        let samples: Vec<u64> = (0..n).map(|_| sample_poisson(500.0, &mut r)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / f64::from(n);
        assert!((mean - 500.0).abs() < 2.0, "mean {mean}");
        let var = samples.iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / f64::from(n);
        assert!((var - 500.0).abs() < 50.0, "variance {var} should be ~mean");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        assert_eq!(sample_poisson(0.0, &mut rng()), 0);
        assert_eq!(sample_poisson(-1.0, &mut rng()), 0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let n = BackgroundNoise::new(0.1);
        let g = SensorGeometry::davis240();
        let a = n.sample(g, 0, 100_000, &mut StdRng::seed_from_u64(7));
        let b = n.sample(g, 0, 100_000, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}

//! A fully generated recording: events + ground truth + metadata.

use ebbiot_events::{Event, Micros, SensorGeometry, StreamStats};

use crate::ground_truth::{count_tracks, GroundTruthFrame};

/// A simulated recording, the unit the evaluation harness consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedRecording {
    /// Recording name (e.g. "ENG", "LT4").
    pub name: String,
    /// Lens focal length being emulated, in millimetres.
    pub lens_mm: f32,
    /// Sensor geometry.
    pub geometry: SensorGeometry,
    /// Frame duration `tF` the ground truth was annotated at.
    pub frame_us: Micros,
    /// Time-ordered event stream.
    pub events: Vec<Event>,
    /// Per-frame ground-truth annotations.
    pub ground_truth: Vec<GroundTruthFrame>,
    /// Recording duration in microseconds.
    pub duration_us: Micros,
}

impl SimulatedRecording {
    /// Stream statistics (for Table I regeneration).
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        StreamStats::from_events(&self.events)
    }

    /// Recording duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.duration_us as f64 / 1e6
    }

    /// Number of distinct ground-truth tracks (the weighting factor for
    /// the paper's multi-recording precision/recall average).
    #[must_use]
    pub fn num_tracks(&self) -> usize {
        count_tracks(&self.ground_truth)
    }

    /// Total number of annotated ground-truth boxes across all frames.
    #[must_use]
    pub fn num_gt_boxes(&self) -> usize {
        self.ground_truth.iter().map(|f| f.boxes.len()).sum()
    }

    /// Mean event rate in events/second over the nominal duration.
    #[must_use]
    pub fn event_rate_hz(&self) -> f64 {
        if self.duration_us == 0 {
            0.0
        } else {
            self.events.len() as f64 / (self.duration_us as f64 / 1e6)
        }
    }
}

impl core::fmt::Display for SimulatedRecording {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: {} mm lens, {:.1} s, {} events ({:.1} k ev/s), {} tracks",
            self.name,
            self.lens_mm,
            self.duration_s(),
            self.events.len(),
            self.event_rate_hz() / 1e3,
            self.num_tracks()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::GroundTruthFrame;
    use ebbiot_events::Event;

    fn tiny_recording() -> SimulatedRecording {
        SimulatedRecording {
            name: "TEST".into(),
            lens_mm: 12.0,
            geometry: SensorGeometry::davis240(),
            frame_us: 66_000,
            events: vec![Event::on(0, 0, 0), Event::on(1, 1, 500_000)],
            ground_truth: vec![GroundTruthFrame { index: 0, t_mid: 33_000, boxes: vec![] }],
            duration_us: 1_000_000,
        }
    }

    #[test]
    fn rates_and_durations() {
        let r = tiny_recording();
        assert!((r.duration_s() - 1.0).abs() < 1e-9);
        assert!((r.event_rate_hz() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_gt_has_no_tracks() {
        let r = tiny_recording();
        assert_eq!(r.num_tracks(), 0);
        assert_eq!(r.num_gt_boxes(), 0);
    }

    #[test]
    fn display_mentions_name_and_rate() {
        let r = tiny_recording();
        let s = r.to_string();
        assert!(s.contains("TEST"));
        assert!(s.contains("2 events"));
    }

    #[test]
    fn stats_reflect_events() {
        let r = tiny_recording();
        assert_eq!(r.stats().num_events, 2);
    }
}

//! Property-based tests for the simulator: physical invariants of the
//! generated streams and ground truth.

use ebbiot_events::{stream, SensorGeometry};
use ebbiot_frame::BoundingBox;
use ebbiot_sim::{
    ground_truth::{ground_truth_frames, GroundTruthConfig},
    BackgroundNoise, DavisConfig, DavisSimulator, LinearTrajectory, ObjectClass, Scene,
    SceneObject,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn geometry() -> SensorGeometry {
    SensorGeometry::davis240()
}

#[derive(Debug, Clone)]
struct ObjSpec {
    class_idx: usize,
    y: f32,
    vx: f32,
    t0: u64,
    z: u8,
}

fn arb_objects() -> impl Strategy<Value = Vec<ObjSpec>> {
    proptest::collection::vec(
        (0usize..6, 20.0f32..150.0, -90.0f32..90.0, 0u64..500_000, 1u8..4),
        0..4,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(class_idx, y, vx, t0, z)| ObjSpec { class_idx, y, vx, t0, z })
            .collect()
    })
}

fn scene_of(specs: &[ObjSpec]) -> Scene {
    let mut scene = Scene::new(geometry());
    for (i, s) in specs.iter().enumerate() {
        let class = ObjectClass::all()[s.class_idx];
        let (w, h) = class.nominal_size();
        let start_x = if s.vx >= 0.0 { -w } else { 240.0 };
        scene.objects.push(SceneObject {
            id: i as u32 + 1,
            class,
            width: w,
            height: h,
            trajectory: LinearTrajectory::horizontal(start_x, s.y, s.vx, s.t0),
            z_order: s.z,
            stall: None,
        });
    }
    scene
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulated_streams_are_ordered_and_in_bounds(specs in arb_objects(), seed in 0u64..1_000) {
        let scene = scene_of(&specs);
        let sim = DavisSimulator::new(DavisConfig::default());
        let events = sim.simulate(
            &scene,
            1_000_000,
            BackgroundNoise::new(0.05),
            &mut StdRng::seed_from_u64(seed),
        );
        prop_assert!(stream::is_time_ordered(&events));
        for e in &events {
            prop_assert!(geometry().contains_event(e));
            prop_assert!(e.t < 1_001_000, "timestamps within duration + jitter");
        }
    }

    #[test]
    fn simulation_is_deterministic(specs in arb_objects(), seed in 0u64..1_000) {
        let scene = scene_of(&specs);
        let sim = DavisSimulator::new(DavisConfig::default());
        let a = sim.simulate(&scene, 500_000, BackgroundNoise::new(0.05),
            &mut StdRng::seed_from_u64(seed));
        let b = sim.simulate(&scene, 500_000, BackgroundNoise::new(0.05),
            &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ground_truth_boxes_are_clipped_and_cover_active_objects(
        specs in arb_objects()
    ) {
        let scene = scene_of(&specs);
        let frames = ground_truth_frames(&scene, 2_000_000, 66_000, &GroundTruthConfig::default());
        prop_assert_eq!(frames.len(), 2_000_000usize.div_ceil(66_000));
        let frame_box = BoundingBox::new(0.0, 0.0, 240.0, 180.0);
        for f in &frames {
            for b in &f.boxes {
                prop_assert!(b.bbox.x >= 0.0 && b.bbox.y >= 0.0);
                prop_assert!(b.bbox.x_max() <= 240.0 + 1e-3);
                prop_assert!(b.bbox.y_max() <= 180.0 + 1e-3);
                prop_assert!(b.bbox.area() >= 25.0, "min-area annotation policy");
                prop_assert!((0.0..=1.0 + 1e-6).contains(&b.visibility));
                prop_assert!(b.bbox.intersection(&frame_box).is_some());
                prop_assert!(b.class != ObjectClass::Human, "humans excluded by default");
            }
        }
    }

    #[test]
    fn gt_box_contains_object_box_at_frame_midpoint(specs in arb_objects()) {
        let scene = scene_of(&specs);
        let frames =
            ground_truth_frames(&scene, 2_000_000, 66_000, &GroundTruthConfig::default());
        for f in &frames {
            for gt in &f.boxes {
                let obj = scene.objects.iter().find(|o| o.id == gt.object_id).unwrap();
                if let Some(ob) = obj.bbox_at(f.t_mid) {
                    let clipped = ob.clipped_to(240.0, 180.0);
                    // The annotation hull covers the instantaneous box.
                    let inter = gt.bbox.intersection_area(&clipped);
                    prop_assert!(
                        inter >= 0.95 * clipped.area().min(gt.bbox.area()),
                        "gt {} vs object {} at t={}",
                        gt.bbox,
                        clipped,
                        f.t_mid
                    );
                }
            }
        }
    }

    #[test]
    fn stationary_scenes_emit_only_noise(seed in 0u64..500, rate in 0.01f64..0.3) {
        let scene = Scene::new(geometry());
        let sim = DavisSimulator::new(DavisConfig::default());
        let events = sim.simulate(
            &scene,
            1_000_000,
            BackgroundNoise::new(rate),
            &mut StdRng::seed_from_u64(seed),
        );
        let expected = rate * 43_200.0;
        let got = events.len() as f64;
        // Poisson: allow 6 sigma.
        let sigma = expected.sqrt();
        prop_assert!((got - expected).abs() < 6.0 * sigma + 10.0,
            "noise count {got} vs expected {expected}");
    }
}

//! Analytic computes/memory cost models — Eqs. 1, 2, 5, 6, 7, 8 and the
//! Fig. 5 comparison.
//!
//! Every block of the paper's §II comes with an ops/frame and memory
//! budget; Fig. 5 then compares the three full pipelines relative to
//! EBBIOT. This crate types those equations, reproduces every in-text
//! number, and composes the pipeline totals:
//!
//! | Quantity          | Paper value      | Function |
//! |-------------------|------------------|----------|
//! | `C_EBBI`          | 125.2 kops/frame | [`ebbi::EbbiCost::computes`] |
//! | `M_EBBI`          | 10.8 kB          | [`ebbi::EbbiCost::memory_bits`] |
//! | `C_NN-filt`       | ≈276.4 kops      | [`nn_filter::NnFilterCost::computes`] |
//! | `M_NN-filt`       | 86.4 kB (8x)     | [`nn_filter::NnFilterCost::memory_bits`] |
//! | `C_RPN`           | 45.6 kops        | [`rpn::RpnCost::computes`] |
//! | `M_RPN`           | ≈1.6 kB          | [`rpn::RpnCost::memory_bits`] |
//! | `C_OT`            | ≈564             | [`trackers::OtCost::computes`] |
//! | `C_KF`            | 1200 (NT = 2)    | [`trackers::KfCost::computes`] |
//! | `M_KF`            | ≈1.1 kB          | [`trackers::KfCost::memory_bits`] |
//! | `C_EBMS`          | 252 kops         | [`trackers::EbmsCost::computes`] |
//! | `M_EBMS`          | 3.32 kb          | [`trackers::EbmsCost::memory_bits`] |
//!
//! and Fig. 5: EBMS ≈ 3x computes / ≈ 7x memory of EBBIOT, EBBI+KF ≈ 1x.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ebbi;
pub mod nn_filter;
pub mod params;
pub mod pipeline_totals;
pub mod rpn;
pub mod trackers;

pub use params::PaperParams;
pub use pipeline_totals::{fig5_comparison, Fig5Row, PipelineCost};

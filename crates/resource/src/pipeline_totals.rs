//! Whole-pipeline totals and the Fig. 5 comparison.
//!
//! "For EBBIOT and KF total memory and computes are calculated considering
//! memory and computes required for generating EBBI, RPN and tracker while
//! for EBMS we consider memory and computes of NN-filt and EBMS tracker."

use crate::{
    ebbi::EbbiCost,
    nn_filter::NnFilterCost,
    params::PaperParams,
    rpn::RpnCost,
    trackers::{EbmsCost, KfCost, OtCost},
};

/// Total computes and memory of one full pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineCost {
    /// Pipeline label.
    pub name: &'static str,
    /// Total ops/frame.
    pub computes: f64,
    /// Total memory in bits.
    pub memory_bits: u64,
}

impl PipelineCost {
    /// EBBIOT: EBBI + RPN + OT.
    #[must_use]
    pub fn ebbiot(params: PaperParams) -> Self {
        let ebbi = EbbiCost::new(params);
        let rpn = RpnCost::new(params);
        let ot = OtCost::new(params);
        Self {
            name: "EBBIOT",
            computes: ebbi.computes() + rpn.computes() + ot.computes(),
            memory_bits: ebbi.memory_bits() + rpn.memory_bits() + ot.memory_bits(),
        }
    }

    /// EBBI + KF: same front end, Kalman tracker.
    #[must_use]
    pub fn ebbi_kf(params: PaperParams) -> Self {
        let ebbi = EbbiCost::new(params);
        let rpn = RpnCost::new(params);
        let kf = KfCost::new(params);
        Self {
            name: "EBBI+KF",
            computes: ebbi.computes() + rpn.computes() + kf.computes(),
            memory_bits: ebbi.memory_bits() + rpn.memory_bits() + kf.memory_bits(),
        }
    }

    /// NN-filt + EBMS: the fully event-based pipeline.
    #[must_use]
    pub fn nn_ebms(params: PaperParams) -> Self {
        let nn = NnFilterCost::new(params);
        let ebms = EbmsCost::new(params);
        Self {
            name: "NN-filt+EBMS",
            computes: nn.computes() + ebms.computes(),
            memory_bits: nn.memory_bits() + ebms.memory_bits(),
        }
    }

    /// Memory in kilobytes.
    #[must_use]
    pub fn memory_kb(&self) -> f64 {
        self.memory_bits as f64 / 8.0 / 1000.0
    }
}

/// One row of Fig. 5: a pipeline's resources relative to EBBIOT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// Pipeline cost.
    pub cost: PipelineCost,
    /// Computes relative to EBBIOT (1.0 for EBBIOT itself).
    pub relative_computes: f64,
    /// Memory relative to EBBIOT.
    pub relative_memory: f64,
}

/// Builds the Fig. 5 comparison: EBBIOT, EBBI+KF, NN-filt+EBMS, each
/// relative to EBBIOT.
#[must_use]
pub fn fig5_comparison(params: PaperParams) -> Vec<Fig5Row> {
    let ebbiot = PipelineCost::ebbiot(params);
    let rows = [ebbiot, PipelineCost::ebbi_kf(params), PipelineCost::nn_ebms(params)];
    rows.into_iter()
        .map(|cost| Fig5Row {
            relative_computes: cost.computes / ebbiot.computes,
            relative_memory: cost.memory_bits as f64 / ebbiot.memory_bits as f64,
            cost,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PaperParams {
        PaperParams::paper()
    }

    #[test]
    fn ebbiot_total_computes() {
        let c = PipelineCost::ebbiot(params());
        // 125_280 + 48_000 + 564 = 173_844.
        assert!((c.computes - 173_844.0).abs() < 1.0);
    }

    #[test]
    fn ebbiot_total_memory_about_12_6_kb() {
        let c = PipelineCost::ebbiot(params());
        // 86_400 + 13_040 + 1_536 bits.
        assert_eq!(c.memory_bits, 100_976);
        assert!((c.memory_kb() - 12.6).abs() < 0.1);
    }

    #[test]
    fn fig5_ebms_is_about_3x_computes() {
        let rows = fig5_comparison(params());
        let ebms = rows.iter().find(|r| r.cost.name == "NN-filt+EBMS").unwrap();
        assert!(
            (2.8..3.3).contains(&ebms.relative_computes),
            "paper: 3X less computes; got {}",
            ebms.relative_computes
        );
    }

    #[test]
    fn fig5_ebms_is_about_7x_memory() {
        let rows = fig5_comparison(params());
        let ebms = rows.iter().find(|r| r.cost.name == "NN-filt+EBMS").unwrap();
        assert!(
            (6.5..7.5).contains(&ebms.relative_memory),
            "paper: 7X reduced memory; got {}",
            ebms.relative_memory
        );
    }

    #[test]
    fn fig5_kf_is_about_1x_everything() {
        let rows = fig5_comparison(params());
        let kf = rows.iter().find(|r| r.cost.name == "EBBI+KF").unwrap();
        assert!((kf.relative_computes - 1.0).abs() < 0.01, "{}", kf.relative_computes);
        assert!((1.0..1.15).contains(&kf.relative_memory), "{}", kf.relative_memory);
    }

    #[test]
    fn fig5_ebbiot_row_is_unity() {
        let rows = fig5_comparison(params());
        assert_eq!(rows[0].cost.name, "EBBIOT");
        assert_eq!(rows[0].relative_computes, 1.0);
        assert_eq!(rows[0].relative_memory, 1.0);
    }

    #[test]
    fn kf_pipeline_computes_exceed_ebbiot_by_kf_minus_ot() {
        let e = PipelineCost::ebbiot(params());
        let k = PipelineCost::ebbi_kf(params());
        assert!((k.computes - e.computes - (1_200.0 - 564.0)).abs() < 1e-6);
    }
}

//! Eq. 2 — nearest-neighbour filter cost (the event-domain alternative).

use crate::params::PaperParams;

/// Cost model of the NN filter:
///
/// ```text
/// C_NN-filt = (2 (p^2 - 1) + Bt) n    [ops/frame],  n = beta alpha A B
/// M_NN-filt = Bt A B                  [bits]
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnFilterCost {
    params: PaperParams,
}

impl NnFilterCost {
    /// Creates the model.
    #[must_use]
    pub const fn new(params: PaperParams) -> Self {
        Self { params }
    }

    /// Ops per event: `2 (p^2 - 1) + Bt`.
    #[must_use]
    pub fn computes_per_event(&self) -> f64 {
        f64::from(2 * (self.params.p * self.params.p - 1) + self.params.bt)
    }

    /// `C_NN-filt` in ops/frame.
    #[must_use]
    pub fn computes(&self) -> f64 {
        self.computes_per_event() * self.params.events_per_frame()
    }

    /// `M_NN-filt` in bits.
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        u64::from(self.params.bt) * u64::from(self.params.pixels())
    }

    /// Memory saving factor of the EBBI approach over this filter
    /// (`M_NN-filt / M_EBBI` — the paper's "8X memory savings").
    #[must_use]
    pub fn memory_saving_vs_ebbi(&self) -> f64 {
        self.memory_bits() as f64 / (2.0 * f64::from(self.params.pixels()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_match_paper_276_4k() {
        let c = NnFilterCost::new(PaperParams::paper());
        assert_eq!(c.computes_per_event(), 32.0);
        assert!((c.computes() - 276_480.0).abs() < 1.0, "got {}", c.computes());
    }

    #[test]
    fn memory_is_86_4_kb() {
        let c = NnFilterCost::new(PaperParams::paper());
        assert_eq!(c.memory_bits(), 691_200);
        assert!((c.memory_bits() as f64 / 8.0 / 1000.0 - 86.4).abs() < 1e-9);
    }

    #[test]
    fn saving_factor_is_8x() {
        let c = NnFilterCost::new(PaperParams::paper());
        assert!((c.memory_saving_vs_ebbi() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn computes_scale_with_event_rate() {
        let mut p = PaperParams::paper();
        p.beta = 4.0;
        let busy = NnFilterCost::new(p).computes();
        assert!((busy - 2.0 * 276_480.0).abs() < 1.0);
    }
}

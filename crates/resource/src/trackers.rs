//! Eqs. 6, 7, 8 — tracker cost models (OT, KF, EBMS).

use crate::params::PaperParams;

/// Eq. 6 — overlap tracker:
/// `C_OT = 134 NT^2 + gamma_3 N_3 + gamma_4 N_4 + gamma_5 N_5`,
/// where `gamma_j`/`N_j` are the probability and cost of tracker step `j`.
/// The first term (prediction + match matrix) dominates; the defaults for
/// the step terms reproduce the paper's `C_OT ≈ 564` at `NT = 2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OtCost {
    params: PaperParams,
    /// `(gamma_j, N_j)` for steps 3 (seed), 4 (update), 5 (shared).
    pub step_costs: [(f64, f64); 3],
}

impl OtCost {
    /// Creates the model with the calibrated step constants.
    #[must_use]
    pub const fn new(params: PaperParams) -> Self {
        Self { params, step_costs: [(0.2, 60.0), (0.5, 20.0), (0.1, 60.0)] }
    }

    /// `C_OT` in ops/frame.
    #[must_use]
    pub fn computes(&self) -> f64 {
        let nt = self.params.nt;
        let base = 134.0 * nt * nt;
        let tail: f64 = self.step_costs.iter().map(|&(g, n)| g * n).sum();
        base + tail
    }

    /// Tracker state memory in bits: 8 slots of (corner, size, velocity,
    /// bookkeeping) fits comfortably in registers — "negligible
    /// (< 0.5 kB)" per the paper.
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        // 6 fields x 32 bits per slot, 8 slots.
        6 * 32 * 8
    }
}

/// Eq. 7 — Kalman-filter tracker:
/// `C_KF = 4m^3 + 6m^2 n + 4mn^2 + 4n^3 + 3n^2` with `n = m = 2 NT`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KfCost {
    params: PaperParams,
}

impl KfCost {
    /// Creates the model.
    #[must_use]
    pub const fn new(params: PaperParams) -> Self {
        Self { params }
    }

    /// State dimension `n = 2 NT`.
    #[must_use]
    pub fn state_dim(&self) -> f64 {
        2.0 * self.params.nt
    }

    /// Measurement dimension `m = 2 NT`.
    #[must_use]
    pub fn measurement_dim(&self) -> f64 {
        2.0 * self.params.nt
    }

    /// `C_KF` in ops/frame.
    #[must_use]
    pub fn computes(&self) -> f64 {
        let n = self.state_dim();
        let m = self.measurement_dim();
        4.0 * m.powi(3) + 6.0 * m * m * n + 4.0 * m * n * n + 4.0 * n.powi(3) + 3.0 * n * n
    }

    /// `M_KF` in bits: 8 track slots of state (4), covariance (16) and
    /// bookkeeping (14) words at 32 bits — 1088 bytes, the paper's
    /// "≈ 1.1 kB".
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        (4 + 16 + 14) * 32 * 8
    }
}

/// Eq. 8 — event-based mean shift:
/// `C_EBMS = N_F [ 9 CL^2 + (169 + 16 gamma_merge) CL + 11 ]`,
/// `M_EBMS = 408 CL_max + 56` bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EbmsCost {
    params: PaperParams,
}

impl EbmsCost {
    /// Creates the model.
    #[must_use]
    pub const fn new(params: PaperParams) -> Self {
        Self { params }
    }

    /// Ops per filtered event.
    #[must_use]
    pub fn computes_per_event(&self) -> f64 {
        let cl = self.params.cl;
        9.0 * cl * cl + (169.0 + 16.0 * self.params.gamma_merge) * cl + 11.0
    }

    /// `C_EBMS` in ops/frame.
    #[must_use]
    pub fn computes(&self) -> f64 {
        self.params.nf * self.computes_per_event()
    }

    /// `M_EBMS` in bits.
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        408 * u64::from(self.params.cl_max) + 56
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PaperParams {
        PaperParams::paper()
    }

    #[test]
    fn ot_cost_matches_paper_564() {
        let c = OtCost::new(params());
        assert!((c.computes() - 564.0).abs() < 1e-9, "got {}", c.computes());
    }

    #[test]
    fn ot_memory_under_half_kb() {
        let c = OtCost::new(params());
        assert!(c.memory_bits() < 4_000, "got {} bits", c.memory_bits());
    }

    #[test]
    fn ot_first_term_dominates() {
        let c = OtCost::new(params());
        assert!(134.0 * 4.0 / c.computes() > 0.9);
    }

    #[test]
    fn kf_cost_matches_paper_1200() {
        let c = KfCost::new(params());
        assert_eq!(c.state_dim(), 4.0);
        assert!((c.computes() - 1_200.0).abs() < 1e-9, "got {}", c.computes());
    }

    #[test]
    fn kf_memory_is_about_1_1_kb() {
        let c = KfCost::new(params());
        assert_eq!(c.memory_bits() / 8, 1_088);
    }

    #[test]
    fn kf_cost_grows_cubically_with_tracks() {
        let mut p = params();
        p.nt = 4.0;
        let big = KfCost::new(p).computes();
        let small = KfCost::new(params()).computes();
        assert!(big / small > 7.0, "doubling NT ~8x the cost: {}", big / small);
    }

    #[test]
    fn ebms_cost_matches_paper_252k() {
        let c = EbmsCost::new(params());
        assert!((c.computes_per_event() - 388.2).abs() < 1e-9);
        assert!((c.computes() - 252_330.0).abs() < 1.0, "got {}", c.computes());
    }

    #[test]
    fn ebms_memory_matches_eq8() {
        let c = EbmsCost::new(params());
        assert_eq!(c.memory_bits(), 3_320);
    }

    #[test]
    fn ebms_is_500x_the_ot() {
        // The paper: "EBMS requires 252 kops per frame which is ≈ 500X
        // higher than EBBIOT['s tracker]".
        let ratio = EbmsCost::new(params()).computes() / OtCost::new(params()).computes();
        assert!((400.0..520.0).contains(&ratio), "ratio {ratio}");
    }
}

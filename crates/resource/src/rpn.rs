//! Eq. 5 — region-proposal cost.

use crate::params::{ceil_log2, PaperParams};

/// Cost model of the histogram RPN:
///
/// ```text
/// C_RPN = A B + 2 A B / (s1 s2)
/// M_RPN = (A B / (s1 s2)) ceil(log2(s1 s2))
///       + (A / s1) ceil(log2(B s1)) + (B / s2) ceil(log2(A s2))   [bits]
/// ```
///
/// Note: with the paper's parameters Eq. 5 evaluates to 48.0 kops/frame
/// while the in-text figure is 45.6 k (the text appears to count the two
/// histogram projections as one shared pass over the scaled image,
/// `A B + A B/(s1 s2) = 45.6 k`). Both bookkeepings are exposed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpnCost {
    params: PaperParams,
}

impl RpnCost {
    /// Creates the model.
    #[must_use]
    pub const fn new(params: PaperParams) -> Self {
        Self { params }
    }

    /// `C_RPN` per Eq. 5 as printed: `A B + 2 A B/(s1 s2)`.
    #[must_use]
    pub fn computes(&self) -> f64 {
        let ab = f64::from(self.params.pixels());
        let scale = f64::from(self.params.s1 * self.params.s2);
        ab + 2.0 * ab / scale
    }

    /// `C_RPN` with the shared-histogram-pass bookkeeping that matches
    /// the paper's in-text 45.6 k figure: `A B + A B/(s1 s2)`.
    #[must_use]
    pub fn computes_in_text(&self) -> f64 {
        let ab = f64::from(self.params.pixels());
        let scale = f64::from(self.params.s1 * self.params.s2);
        ab + ab / scale
    }

    /// `M_RPN` in bits per Eq. 5.
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        let p = &self.params;
        let cells = u64::from(p.pixels() / (p.s1 * p.s2));
        let scaled_image = cells * u64::from(ceil_log2(p.s1 * p.s2));
        let hx = u64::from(p.a / p.s1) * u64::from(ceil_log2(p.b * p.s1));
        let hy = u64::from(p.b / p.s2) * u64::from(ceil_log2(p.a * p.s2));
        scaled_image + hx + hy
    }

    /// `M_RPN` in kilobytes.
    #[must_use]
    pub fn memory_kb(&self) -> f64 {
        self.memory_bits() as f64 / 8.0 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_computes_48k_and_in_text_45_6k() {
        let c = RpnCost::new(PaperParams::paper());
        assert!((c.computes() - 48_000.0).abs() < 1e-9);
        assert!((c.computes_in_text() - 45_600.0).abs() < 1e-9);
    }

    #[test]
    fn memory_matches_paper_1_6kb() {
        let c = RpnCost::new(PaperParams::paper());
        // 2400 * 5 + 40 * 11 + 60 * 10 = 13_040 bits = 1.63 kB.
        assert_eq!(c.memory_bits(), 13_040);
        assert!((c.memory_kb() - 1.63).abs() < 0.01);
    }

    #[test]
    fn first_term_dominates_both() {
        let c = RpnCost::new(PaperParams::paper());
        let ab = 43_200.0;
        assert!(ab / c.computes() > 0.85, "A*B dominates computes");
        // Scaled image dominates memory.
        assert!(2_400 * 5 > c.memory_bits() as i64 / 2);
    }

    #[test]
    fn coarser_downsampling_cuts_second_term() {
        let mut p = PaperParams::paper();
        p.s1 = 12;
        let coarse = RpnCost::new(p);
        let fine = RpnCost::new(PaperParams::paper());
        assert!(coarse.computes() < fine.computes());
        assert!(coarse.memory_bits() < fine.memory_bits());
    }
}

//! The paper's parameter set, collected in one place.

/// All constants the paper's cost equations use, with §II defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperParams {
    /// Image width `A` (columns).
    pub a: u32,
    /// Image height `B` (rows).
    pub b: u32,
    /// Noise-filter patch size `p`.
    pub p: u32,
    /// Timestamp bits `Bt` for the NN filter.
    pub bt: u32,
    /// Fraction of active pixels `alpha` ("objects generally take up less
    /// than 10% of the image" -> conservative 0.1).
    pub alpha: f64,
    /// Average fires per active pixel `beta >= 1`.
    pub beta: f64,
    /// X downsampling factor `s1`.
    pub s1: u32,
    /// Y downsampling factor `s2`.
    pub s2: u32,
    /// Average number of valid trackers `NT`.
    pub nt: f64,
    /// Average filtered events per frame `N_F` for EBMS.
    pub nf: f64,
    /// Average active clusters `CL`.
    pub cl: f64,
    /// Cluster merge probability `gamma_merge`.
    pub gamma_merge: f64,
    /// Maximum clusters `CL_max`.
    pub cl_max: u32,
}

impl PaperParams {
    /// The paper's §II values: A=240, B=180, p=3, Bt=16, alpha=0.1,
    /// beta chosen so `n = beta*alpha*A*B` matches the C_NN-filt text
    /// (see below), s1=6, s2=3, NT=2, NF=650, CL=2, gamma=0.1, CLmax=8.
    ///
    /// On `beta`: the paper states `C_NN-filt ≈ 276.4 kops/frame` with
    /// `C_NN-filt = (2(p^2-1)+Bt) * n = 32 n`, giving `n = 8640 =
    /// 2 * 0.1 * 240 * 180`, i.e. `beta = 2`.
    #[must_use]
    pub const fn paper() -> Self {
        Self {
            a: 240,
            b: 180,
            p: 3,
            bt: 16,
            alpha: 0.1,
            beta: 2.0,
            s1: 6,
            s2: 3,
            nt: 2.0,
            nf: 650.0,
            cl: 2.0,
            gamma_merge: 0.1,
            cl_max: 8,
        }
    }

    /// Total pixels `A * B`.
    #[must_use]
    pub const fn pixels(&self) -> u32 {
        self.a * self.b
    }

    /// Average events per frame `n = beta * alpha * A * B` (Eq. 2).
    #[must_use]
    pub fn events_per_frame(&self) -> f64 {
        self.beta * self.alpha * f64::from(self.pixels())
    }
}

impl Default for PaperParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// `ceil(log2(n))` as the paper's bit-width operator `{⌈log2 .⌉}`.
#[must_use]
pub fn ceil_log2(n: u32) -> u32 {
    assert!(n > 0, "log2 of zero");
    if n <= 1 {
        1
    } else {
        32 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pixel_count() {
        assert_eq!(PaperParams::paper().pixels(), 43_200);
    }

    #[test]
    fn events_per_frame_matches_nn_filt_back_solve() {
        let p = PaperParams::paper();
        assert!((p.events_per_frame() - 8_640.0).abs() < 1e-9);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(16), 4);
        assert_eq!(ceil_log2(18), 5);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1080), 11);
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn ceil_log2_zero_panics() {
        let _ = ceil_log2(0);
    }
}

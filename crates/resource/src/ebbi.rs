//! Eq. 1 — EBBI creation + median filtering cost.

use crate::params::PaperParams;

/// Cost model of the EBBI + median-filter front end.
///
/// ```text
/// C_EBBI ≈ (alpha p^2 + 2) A B      [ops/frame]
/// M_EBBI = 2 A B                    [bits]
/// ```
///
/// The `alpha p^2` term is the median filter's counter increments over
/// active patch pixels; the `+2` covers the per-pixel threshold comparison
/// and the EBBI memory write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EbbiCost {
    params: PaperParams,
}

impl EbbiCost {
    /// Creates the model.
    #[must_use]
    pub const fn new(params: PaperParams) -> Self {
        Self { params }
    }

    /// `C_EBBI` in ops/frame.
    #[must_use]
    pub fn computes(&self) -> f64 {
        let p2 = f64::from(self.params.p * self.params.p);
        (self.params.alpha * p2 + 2.0) * f64::from(self.params.pixels())
    }

    /// `M_EBBI` in bits (two frames: original + filtered).
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        2 * u64::from(self.params.pixels())
    }

    /// `M_EBBI` in kilobytes.
    #[must_use]
    pub fn memory_kb(&self) -> f64 {
        self.memory_bits() as f64 / 8.0 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_match_paper_125_2k() {
        let c = EbbiCost::new(PaperParams::paper());
        assert!((c.computes() - 125_280.0).abs() < 1.0, "got {}", c.computes());
    }

    #[test]
    fn memory_matches_paper_10_8kb() {
        let c = EbbiCost::new(PaperParams::paper());
        assert_eq!(c.memory_bits(), 86_400);
        assert!((c.memory_kb() - 10.8).abs() < 1e-9);
    }

    #[test]
    fn computes_scale_with_alpha() {
        let mut p = PaperParams::paper();
        p.alpha = 0.2;
        let denser = EbbiCost::new(p).computes();
        let sparser = EbbiCost::new(PaperParams::paper()).computes();
        assert!(denser > sparser);
        // Only the alpha p^2 term scales.
        assert!((denser - sparser - 0.1 * 9.0 * 43_200.0).abs() < 1e-6);
    }

    #[test]
    fn memory_is_independent_of_activity() {
        let mut p = PaperParams::paper();
        p.alpha = 0.5;
        assert_eq!(EbbiCost::new(p).memory_bits(), 86_400);
    }
}

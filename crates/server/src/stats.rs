//! The STATS surface: a plain-TCP metrics listener.
//!
//! [`StatsServer`] serves the server's whole [`Registry`] as the
//! Prometheus-style text exposition, on a listener *separate* from the
//! EBWP ingest port. The protocol is deliberately trivial (spec in
//! ARCHITECTURE.md §7): the client connects and sends nothing; the
//! server writes one full exposition, flushes, and closes. Any TCP
//! client works — `nc host port`, a Prometheus scraper with the text
//! format, or [`scrape_stats`] below.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ebbiot_telemetry::{Counter, Gauge, Registry};

/// The server-level metrics (connection and session accounting).
#[derive(Debug, Clone)]
pub struct ServerTelemetry {
    /// EBWP connections accepted since start.
    pub connections: Arc<Counter>,
    /// Sessions currently being served.
    pub sessions_active: Arc<Gauge>,
    /// Sessions that ended with an error.
    pub session_errors: Arc<Counter>,
}

impl ServerTelemetry {
    /// Registers (or retrieves) the server metric family.
    #[must_use]
    pub fn register(registry: &Registry) -> Self {
        Self {
            connections: registry.counter("ebbiot_server_connections_total", &[]),
            sessions_active: registry.gauge("ebbiot_server_sessions_active", &[]),
            session_errors: registry.counter("ebbiot_server_session_errors_total", &[]),
        }
    }
}

/// A metrics listener: one exposition per connection, then close.
#[derive(Debug)]
pub struct StatsServer {
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl StatsServer {
    /// Binds the listener (port 0 for ephemeral) and starts serving
    /// `registry`'s exposition to every connection.
    ///
    /// # Errors
    ///
    /// Returns the bind/listen I/O error.
    pub fn bind<A: ToSocketAddrs>(addr: A, registry: Arc<Registry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ebbiot-stats".into())
                .spawn(move || {
                    for connection in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        let Ok(mut connection) = connection else { continue };
                        // Rendering is a lock-free read of every
                        // instrument; serving inline keeps this a single
                        // thread no matter how many scrapers poll.
                        let text = registry.render();
                        let _ = connection.write_all(text.as_bytes());
                        let _ = connection.flush();
                        let _ = connection.shutdown(Shutdown::Both);
                    }
                })
                .expect("spawn stats listener")
        };
        Ok(Self { local_addr, accept: Some(accept), stop })
    }

    /// The bound address (with the actual port when bound to port 0).
    #[must_use]
    pub const fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the listener and joins its thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr); // poke a blocked accept
        if let Some(accept) = self.accept.take() {
            accept.join().expect("stats listener panicked");
        }
    }
}

/// Scrapes one exposition from a [`StatsServer`] (connect, read to EOF).
///
/// # Errors
///
/// Returns the connect/read I/O error, or `InvalidData` for a
/// non-UTF-8 response.
pub fn scrape_stats<A: ToSocketAddrs>(addr: A) -> std::io::Result<String> {
    let mut connection = TcpStream::connect(addr)?;
    let mut bytes = Vec::new();
    connection.read_to_end(&mut bytes)?;
    String::from_utf8(bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_telemetry::validate_exposition;

    #[test]
    fn stats_server_serves_the_exposition_per_connection() {
        let registry = Arc::new(Registry::new());
        registry.counter("ebbiot_test_total", &[]).add(42);
        let server = StatsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let first = scrape_stats(addr).unwrap();
        assert!(first.contains("ebbiot_test_total 42"));
        assert!(validate_exposition(&first).unwrap() >= 1);

        // A later scrape sees updated values — it is live, not a dump.
        registry.counter("ebbiot_test_total", &[]).add(1);
        let second = scrape_stats(addr).unwrap();
        assert!(second.contains("ebbiot_test_total 43"));

        server.shutdown();
        assert!(scrape_stats(addr).is_err(), "listener is gone after shutdown");
    }

    #[test]
    fn server_telemetry_registers_the_families() {
        let registry = Registry::new();
        let telemetry = ServerTelemetry::register(&registry);
        telemetry.connections.inc();
        telemetry.sessions_active.inc();
        let text = registry.render();
        assert!(text.contains("# TYPE ebbiot_server_connections_total counter"));
        assert!(text.contains("ebbiot_server_sessions_active 1"));
        assert!(text.contains("# TYPE ebbiot_server_session_errors_total counter"));
    }
}

//! [`Session`]: the server-side per-connection state machine, decoupled
//! from any socket.
//!
//! A session consumes decoded [`Frame`]s and produces response frames;
//! the TCP layer ([`crate::server`]) is a thin loop around
//! [`read_frame`](crate::protocol::read_frame) → [`Session::on_frame`] →
//! [`write_frame`](crate::protocol::write_frame). Keeping the state
//! machine I/O-free is what lets the malformed-input tests (and the
//! doctest below) drive it without opening a single socket.

use std::sync::Arc;

use ebbiot_core::{DynPipeline, FrameResult, StageTelemetry};
use ebbiot_engine::{Engine, StreamId};
use ebbiot_store::{ArchiveStream, FleetArchiver};

use crate::protocol::{EventsRef, Finished, Frame, Hello, WireError};

/// Builds one pipeline per accepted session from its HELLO. The factory
/// decides the back-end and configuration; rejecting a HELLO (unknown
/// stream name, wrong geometry, …) is done by returning `Err` with a
/// human-readable reason that is sent to the client as an ERROR frame.
pub type PipelineFactory = dyn Fn(&Hello) -> Result<DynPipeline, String> + Send + Sync;

/// What a completed (or failed) session did — the server aggregates
/// these into its shutdown report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSummary {
    /// Stream name from HELLO (empty before HELLO was seen).
    pub name: String,
    /// Engine stream the session was attached to, if it got that far.
    pub stream: Option<StreamId>,
    /// Events accepted.
    pub events: u64,
    /// Frames sent back.
    pub frames: u64,
}

/// Per-connection ingestion state: HELLO → EVENTS/FLUSH… → FINISH.
///
/// On HELLO the session builds a pipeline via its factory and
/// [`Engine::attach`]es it to the shared running engine; every EVENTS
/// chunk is validated (CRC, geometry bounds, cross-chunk time order)
/// *before* it reaches the engine, so no network input can panic a
/// worker; FINISH drains the stream and detaches it. A session that
/// errors is [`Session::abort`]ed, which also detaches — a failed
/// connection never leaks an engine stream.
///
/// # Example
///
/// Drive a session in-process, no sockets involved:
///
/// ```
/// use std::sync::Arc;
/// use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
/// use ebbiot_engine::{Engine, EngineConfig};
/// use ebbiot_events::{Event, SensorGeometry};
/// use ebbiot_server::{EventsChunk, Frame, Hello, Session};
///
/// let engine = Arc::new(Engine::new(EngineConfig::with_workers(2), Vec::new()));
/// let factory = Arc::new(|hello: &Hello| {
///     Ok(EbbiotPipeline::new(EbbiotConfig::paper_default(hello.geometry)).boxed())
/// });
/// let mut session = Session::new(Arc::clone(&engine), factory, None);
///
/// // HELLO announces the sensor; EVENTS carries an EBST-encoded chunk.
/// let hello = Hello {
///     geometry: SensorGeometry::davis240(),
///     span_us: 132_000,
///     name: "demo".into(),
/// };
/// session.on_frame(Frame::Hello(hello)).unwrap();
/// let events: Vec<Event> =
///     (0..288).map(|i| Event::on(60 + (i % 24) as u16, 80 + (i / 24) as u16, i)).collect();
/// session.on_frame(Frame::Events(EventsChunk::encode(&events))).unwrap();
///
/// // FINISH flushes the tracker; the responses end with FINISHED.
/// let responses = session.on_frame(Frame::Finish { span_us: 132_000 }).unwrap();
/// assert!(matches!(responses.last(), Some(Frame::Finished(f)) if f.events == 288));
/// assert!(session.is_finished());
/// ```
pub struct Session {
    engine: Arc<Engine>,
    factory: Arc<PipelineFactory>,
    archiver: Option<FleetArchiver>,
    stage: Option<StageTelemetry>,
    state: State,
    summary: SessionSummary,
}

enum State {
    AwaitingHello,
    Streaming(Box<Active>),
    Finished,
    Failed,
}

struct Active {
    stream: StreamId,
    hello: Hello,
    /// `t_last` of the most recent chunk — the cross-chunk ordering
    /// floor the next chunk's `t_first` must not undercut.
    last_t_last: Option<u64>,
    archive: Option<ArchiveStream>,
}

impl Session {
    /// A fresh session over a shared running engine. When `archiver` is
    /// set, every accepted chunk is teed into a per-session `EBST` file
    /// that joins the archive's manifest on FINISH.
    #[must_use]
    pub fn new(
        engine: Arc<Engine>,
        factory: Arc<PipelineFactory>,
        archiver: Option<FleetArchiver>,
    ) -> Self {
        Self {
            engine,
            factory,
            archiver,
            stage: None,
            state: State::AwaitingHello,
            summary: SessionSummary { name: String::new(), stream: None, events: 0, frames: 0 },
        }
    }

    /// Attaches per-stage duration telemetry to the session's pipeline
    /// once it is built (on HELLO). The server shares one
    /// [`StageTelemetry`] across all sessions, so the histograms
    /// aggregate over the whole fleet. Observation-only: output is
    /// bit-identical with or without it.
    #[must_use]
    pub fn with_stage_telemetry(mut self, stage: StageTelemetry) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Whether the session completed a full HELLO → FINISH exchange.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        matches!(self.state, State::Finished)
    }

    /// What the session has done so far.
    #[must_use]
    pub fn summary(&self) -> &SessionSummary {
        &self.summary
    }

    /// Feeds one client frame through the state machine, returning the
    /// frames to send back (in order).
    ///
    /// # Errors
    ///
    /// Returns the first protocol, validation or engine-side error. The
    /// caller should report it to the client (as an ERROR frame) and
    /// then [`Session::abort`] — after an error the session accepts no
    /// further frames.
    pub fn on_frame(&mut self, frame: Frame) -> Result<Vec<Frame>, WireError> {
        let result = self.step(frame);
        if result.is_err() {
            self.abort();
            self.state = State::Failed;
        }
        result
    }

    fn step(&mut self, frame: Frame) -> Result<Vec<Frame>, WireError> {
        match (&mut self.state, frame) {
            (State::AwaitingHello, Frame::Hello(hello)) => {
                let mut pipeline = (self.factory)(&hello).map_err(WireError::Remote)?;
                pipeline.set_stage_telemetry(self.stage.clone());
                let archive = match &self.archiver {
                    Some(archiver) => {
                        Some(archiver.begin(&hello.name, hello.geometry, hello.span_us)?)
                    }
                    None => None,
                };
                let stream = self.engine.attach(pipeline);
                self.summary.name.clone_from(&hello.name);
                self.summary.stream = Some(stream);
                self.state = State::Streaming(Box::new(Active {
                    stream,
                    hello,
                    last_t_last: None,
                    archive,
                }));
                Ok(Vec::new())
            }
            (State::AwaitingHello, _) => {
                Err(WireError::Protocol { reason: "first frame must be HELLO" })
            }
            (State::Streaming(_), Frame::Hello(_)) => {
                Err(WireError::Protocol { reason: "second HELLO on one connection" })
            }
            (State::Streaming(active), Frame::Events(chunk)) => {
                let view = EventsRef {
                    count: chunk.count,
                    t_first: chunk.t_first,
                    t_last: chunk.t_last,
                    body: &chunk.body,
                };
                let frames = Self::ingest(&self.engine, active, &view)?;
                self.summary.events += u64::from(chunk.count);
                self.summary.frames += frames.len() as u64;
                Ok(if frames.is_empty() { Vec::new() } else { vec![Frame::Tracks(frames)] })
            }
            (State::Streaming(active), Frame::Flush) => {
                // Best-effort: returns what the tracker has emitted so
                // far (frames still in flight arrive with a later drain).
                let frames = self.engine.take_results(active.stream);
                self.summary.frames += frames.len() as u64;
                Ok(vec![Frame::Tracks(frames)])
            }
            (State::Streaming(_), Frame::Finish { span_us }) => {
                let State::Streaming(active) = std::mem::replace(&mut self.state, State::Finished)
                else {
                    unreachable!("matched Streaming above")
                };
                let (frames, high_water) = self.finish_stream(*active, span_us)?;
                self.summary.frames += frames.len() as u64;
                let mut responses = Vec::new();
                if !frames.is_empty() {
                    responses.push(Frame::Tracks(frames));
                }
                responses.push(Frame::Finished(Finished {
                    events: self.summary.events,
                    frames: self.summary.frames,
                    queue_high_water: high_water,
                }));
                Ok(responses)
            }
            (State::Streaming(_), Frame::Error(msg)) => Err(WireError::Remote(msg)),
            (State::Streaming(_), _) => {
                Err(WireError::Protocol { reason: "server-to-client frame sent by client" })
            }
            (State::Finished, _) => Err(WireError::Protocol { reason: "frame after FINISH" }),
            (State::Failed, _) => {
                Err(WireError::Protocol { reason: "frame after a session error" })
            }
        }
    }

    /// Feeds one EVENTS frame as a borrowed [`EventsRef`] — the
    /// zero-copy hot path the TCP loop uses: the chunk body is still
    /// sitting in the connection's read buffer and is decoded from
    /// there straight into the `Vec` the engine takes by value.
    /// Equivalent to `on_frame(Frame::Events(...))` in every observable
    /// way (responses, summary, error and failure-state behaviour).
    ///
    /// # Errors
    ///
    /// Returns the first protocol, validation or engine-side error;
    /// like [`Session::on_frame`], the session is aborted and accepts
    /// no further frames afterwards.
    pub fn on_events(&mut self, chunk: &EventsRef<'_>) -> Result<Vec<Frame>, WireError> {
        let result = match &mut self.state {
            State::Streaming(active) => Self::ingest(&self.engine, active, chunk),
            State::AwaitingHello => {
                Err(WireError::Protocol { reason: "first frame must be HELLO" })
            }
            State::Finished => Err(WireError::Protocol { reason: "frame after FINISH" }),
            State::Failed => Err(WireError::Protocol { reason: "frame after a session error" }),
        };
        match result {
            Ok(frames) => {
                self.summary.events += u64::from(chunk.count);
                self.summary.frames += frames.len() as u64;
                Ok(if frames.is_empty() { Vec::new() } else { vec![Frame::Tracks(frames)] })
            }
            Err(e) => {
                self.abort();
                self.state = State::Failed;
                Err(e)
            }
        }
    }

    /// Validates and pushes one chunk, returning newly available frames.
    fn ingest(
        engine: &Engine,
        active: &mut Active,
        chunk: &EventsRef<'_>,
    ) -> Result<Vec<FrameResult>, WireError> {
        if let Some(prev) = active.last_t_last {
            if chunk.t_first < prev {
                return Err(WireError::OutOfOrder { prev_t_last: prev, t_first: chunk.t_first });
            }
        }
        // Decode validates varint integrity, count/window consistency
        // and pixel bounds against the HELLO geometry. Only validated,
        // time-ordered events ever reach the engine — a hostile client
        // must not be able to panic a shared worker. The Vec moves into
        // the engine, so there is nothing to reuse across chunks.
        let mut decoded = Vec::new();
        chunk.decode_into(&mut decoded, active.hello.geometry)?;
        if let Some(archive) = &mut active.archive {
            archive.push_events(&decoded)?;
        }
        active.last_t_last = Some(chunk.t_last);
        // Blocking push: a full stream queue stalls this session's
        // reader thread, which stalls the socket — back-pressure reaches
        // the client as TCP flow control.
        engine.push(active.stream, decoded);
        Ok(engine.take_results(active.stream))
    }

    /// Finishes, drains and detaches the stream; tees the archive out.
    fn finish_stream(
        &self,
        active: Active,
        span_us: u64,
    ) -> Result<(Vec<FrameResult>, u32), WireError> {
        self.engine.finish_stream(active.stream, span_us);
        self.engine.wait_finished(active.stream);
        let frames = self.engine.detach(active.stream);
        let high_water = self.engine.queue_high_water(active.stream) as u32;
        if let Some(archive) = active.archive {
            // The FINISH span is authoritative; the HELLO hint only
            // pre-filled the header until now.
            archive.finish(span_us)?;
        }
        Ok((frames, high_water))
    }

    /// Tears the session down after an error or disconnect: a stream
    /// still attached is finished (span 0), drained and detached, so
    /// the shared engine never accumulates abandoned pipelines. Safe to
    /// call in any state; idempotent.
    pub fn abort(&mut self) {
        if let State::Streaming(active) = std::mem::replace(&mut self.state, State::Failed) {
            self.engine.finish_stream(active.stream, 0);
            self.engine.wait_finished(active.stream);
            let _ = self.engine.detach(active.stream);
            // The partial archive file is left behind but never enters
            // the manifest — see `FleetArchiver`.
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::EventsChunk;
    use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
    use ebbiot_engine::EngineConfig;
    use ebbiot_events::{Event, SensorGeometry};

    fn engine() -> Arc<Engine> {
        Arc::new(Engine::new(EngineConfig::with_workers(2), Vec::new()))
    }

    fn factory() -> Arc<PipelineFactory> {
        Arc::new(|hello: &Hello| {
            Ok(EbbiotPipeline::new(EbbiotConfig::paper_default(hello.geometry)).boxed())
        })
    }

    fn hello(name: &str) -> Frame {
        Frame::Hello(Hello { geometry: SensorGeometry::davis240(), span_us: 0, name: name.into() })
    }

    /// Dense block of events surviving the median filter.
    fn block(t0: u64) -> Vec<Event> {
        let mut events = Vec::new();
        for dy in 0..12u16 {
            for dx in 0..24u16 {
                events.push(Event::on(60 + dx, 80 + dy, t0 + u64::from(dy)));
            }
        }
        events
    }

    #[test]
    fn full_session_matches_direct_pipeline_output() {
        let engine = engine();
        let mut session = Session::new(Arc::clone(&engine), factory(), None);
        assert!(session.on_frame(hello("parity")).unwrap().is_empty());

        let mut collected = Vec::new();
        for k in 0..4u64 {
            for frame in
                session.on_frame(Frame::Events(EventsChunk::encode(&block(k * 66_000)))).unwrap()
            {
                match frame {
                    Frame::Tracks(frames) => collected.extend(frames),
                    other => panic!("unexpected response {other:?}"),
                }
            }
        }
        let responses = session.on_frame(Frame::Finish { span_us: 5 * 66_000 }).unwrap();
        let Some(Frame::Finished(done)) = responses.last() else { panic!("missing FINISHED") };
        assert_eq!(done.events, 4 * 288);
        for frame in &responses[..responses.len() - 1] {
            match frame {
                Frame::Tracks(frames) => collected.extend(frames.iter().cloned()),
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!(done.frames, collected.len() as u64);
        assert!(session.is_finished());

        let mut reference =
            EbbiotPipeline::new(EbbiotConfig::paper_default(SensorGeometry::davis240()));
        let mut expected = Vec::new();
        for k in 0..4u64 {
            expected.extend(reference.push(&block(k * 66_000)));
        }
        expected.extend(reference.finish(5 * 66_000));
        let expected: Vec<FrameResult> = expected;
        assert_eq!(collected, expected, "session output is bit-for-bit the pipeline's");
    }

    #[test]
    fn on_events_is_observably_identical_to_on_frame() {
        let engine = engine();
        let mut by_frame = Session::new(Arc::clone(&engine), factory(), None);
        let mut by_view = Session::new(Arc::clone(&engine), factory(), None);
        by_frame.on_frame(hello("a")).unwrap();
        by_view.on_frame(hello("b")).unwrap();
        for k in 0..3u64 {
            let chunk = EventsChunk::encode(&block(k * 66_000));
            let view = EventsRef {
                count: chunk.count,
                t_first: chunk.t_first,
                t_last: chunk.t_last,
                body: &chunk.body,
            };
            let via_view = by_view.on_events(&view).unwrap();
            let via_frame = by_frame.on_frame(Frame::Events(chunk)).unwrap();
            assert_eq!(via_view, via_frame, "chunk {k}");
        }
        let f1 = by_frame.on_frame(Frame::Finish { span_us: 4 * 66_000 }).unwrap();
        let f2 = by_view.on_frame(Frame::Finish { span_us: 4 * 66_000 }).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(by_frame.summary().events, by_view.summary().events);
        assert_eq!(by_frame.summary().frames, by_view.summary().frames);
    }

    #[test]
    fn on_events_errors_fail_the_session_like_on_frame() {
        let engine = engine();
        let mut session = Session::new(Arc::clone(&engine), factory(), None);
        // Before HELLO: protocol error, session dead afterwards.
        let chunk = EventsChunk::encode(&block(0));
        let view = EventsRef {
            count: chunk.count,
            t_first: chunk.t_first,
            t_last: chunk.t_last,
            body: &chunk.body,
        };
        let err = session.on_events(&view).unwrap_err();
        assert!(matches!(err, WireError::Protocol { reason } if reason.contains("HELLO")));
        assert!(session.on_frame(hello("late")).is_err());

        // Out-of-order chunks through the view path abort the stream.
        let mut session = Session::new(engine, factory(), None);
        session.on_frame(hello("ooo")).unwrap();
        let late = EventsChunk::encode(&block(66_000));
        let early = EventsChunk::encode(&block(0));
        let late_view = EventsRef {
            count: late.count,
            t_first: late.t_first,
            t_last: late.t_last,
            body: &late.body,
        };
        let early_view = EventsRef {
            count: early.count,
            t_first: early.t_first,
            t_last: early.t_last,
            body: &early.body,
        };
        session.on_events(&late_view).unwrap();
        assert!(matches!(
            session.on_events(&early_view).unwrap_err(),
            WireError::OutOfOrder { .. }
        ));
        assert!(session.on_frame(Frame::Flush).is_err(), "failed session accepts nothing");
    }

    #[test]
    fn events_before_hello_is_a_protocol_error() {
        let mut session = Session::new(engine(), factory(), None);
        let err = session.on_frame(Frame::Events(EventsChunk::encode(&block(0)))).unwrap_err();
        assert!(matches!(err, WireError::Protocol { reason } if reason.contains("HELLO")));
        // And the session is dead afterwards.
        assert!(session.on_frame(hello("late")).is_err());
    }

    #[test]
    fn second_hello_and_post_finish_frames_are_rejected() {
        let engine = engine();
        let mut session = Session::new(Arc::clone(&engine), factory(), None);
        session.on_frame(hello("a")).unwrap();
        assert!(matches!(
            session.on_frame(hello("b")).unwrap_err(),
            WireError::Protocol { reason } if reason.contains("second HELLO")
        ));

        let mut session = Session::new(engine, factory(), None);
        session.on_frame(hello("c")).unwrap();
        session.on_frame(Frame::Finish { span_us: 0 }).unwrap();
        assert!(matches!(
            session.on_frame(Frame::Flush).unwrap_err(),
            WireError::Protocol { reason } if reason.contains("after FINISH")
        ));
    }

    #[test]
    fn out_of_order_chunks_are_rejected_without_panicking_the_engine() {
        let engine = engine();
        let mut session = Session::new(Arc::clone(&engine), factory(), None);
        session.on_frame(hello("ooo")).unwrap();
        session.on_frame(Frame::Events(EventsChunk::encode(&block(66_000)))).unwrap();
        let err = session.on_frame(Frame::Events(EventsChunk::encode(&block(0)))).unwrap_err();
        assert!(matches!(err, WireError::OutOfOrder { .. }), "{err}");
        drop(session);
        // The engine survives and still serves new sessions.
        let mut next = Session::new(engine, factory(), None);
        next.on_frame(hello("next")).unwrap();
        let responses = next.on_frame(Frame::Finish { span_us: 66_000 }).unwrap();
        assert!(matches!(responses.last(), Some(Frame::Finished(_))));
    }

    #[test]
    fn out_of_geometry_events_are_rejected() {
        let engine = engine();
        let mut session = Session::new(Arc::clone(&engine), factory(), None);
        session
            .on_frame(Frame::Hello(Hello {
                geometry: SensorGeometry::new(32, 32),
                span_us: 0,
                name: "small".into(),
            }))
            .unwrap();
        // block() writes around (60..84, 80..92) — outside 32x32.
        let err = session.on_frame(Frame::Events(EventsChunk::encode(&block(0)))).unwrap_err();
        assert!(matches!(err, WireError::Store(StoreError::OutOfBounds { .. })), "{err}");
    }

    use ebbiot_store::StoreError;

    #[test]
    fn factory_rejection_reaches_the_client_as_remote_error() {
        let engine = engine();
        let rejecting: Arc<PipelineFactory> =
            Arc::new(|_hello: &Hello| Err("unknown stream".to_string()));
        let mut session = Session::new(engine, rejecting, None);
        let err = session.on_frame(hello("nope")).unwrap_err();
        assert!(matches!(err, WireError::Remote(msg) if msg == "unknown stream"));
    }

    #[test]
    fn flush_returns_a_tracks_frame_even_when_empty() {
        let engine = engine();
        let mut session = Session::new(Arc::clone(&engine), factory(), None);
        session.on_frame(hello("flush")).unwrap();
        let responses = session.on_frame(Frame::Flush).unwrap();
        assert!(matches!(responses.as_slice(), [Frame::Tracks(frames)] if frames.is_empty()));
        session.on_frame(Frame::Finish { span_us: 0 }).unwrap();
    }

    #[test]
    fn dropped_sessions_detach_their_engine_stream() {
        let engine = engine();
        {
            let mut session = Session::new(Arc::clone(&engine), factory(), None);
            session.on_frame(hello("dropped")).unwrap();
            session.on_frame(Frame::Events(EventsChunk::encode(&block(0)))).unwrap();
        } // dropped mid-stream
        let snap = engine.snapshot();
        assert_eq!(snap.streams.len(), 1);
        assert!(snap.streams[0].detached, "abort detached the abandoned stream");
    }
}

//! The `EBWP` wire protocol: frame envelope, payload codecs and errors.
//!
//! Everything byte-level lives here; [`read_frame`] and [`write_frame`]
//! are the only I/O entry points, and both sides of the connection use
//! the same [`Frame`] type. The full byte-offset specification is in
//! the [crate docs](crate) and in `ARCHITECTURE.md` at the workspace
//! root.

use std::io::{self, Read, Write};

use ebbiot_core::{FrameResult, TrackBox};
use ebbiot_events::{Event, Micros, SensorGeometry};
use ebbiot_frame::BoundingBox;
use ebbiot_store::format::{crc32, decode_chunk_payload_fast, encode_chunk_payload};
use ebbiot_store::StoreError;

/// Magic bytes opening a HELLO payload.
pub const MAGIC: [u8; 4] = *b"EBWP";
/// Current protocol version.
pub const VERSION: u16 = 1;
/// Size of the frame envelope (kind byte + payload length).
pub const ENVELOPE_BYTES: usize = 5;
/// Size of the HELLO payload before the stream name — deliberately the
/// same 20-byte layout as an `EBST` file header, with the magic swapped.
pub const HELLO_FIXED_BYTES: usize = 20;
/// Size of the EVENTS payload before the delta-varint body.
pub const EVENTS_FIXED_BYTES: usize = 24;
/// Size of a FINISHED payload.
pub const FINISHED_BYTES: usize = 20;
/// Encoded size of one frame summary before its tracks.
pub const TRACKS_FRAME_FIXED_BYTES: usize = 36;
/// Encoded size of one track box.
pub const TRACK_BYTES: usize = 33;
/// Upper bound on a frame payload; larger length prefixes are rejected
/// before any allocation, bounding what a hostile peer can make the
/// server reserve.
pub const MAX_FRAME_BYTES: usize = 1 << 23;

/// Frame kind byte for HELLO.
pub const KIND_HELLO: u8 = 0x01;
/// Frame kind byte for EVENTS.
pub const KIND_EVENTS: u8 = 0x02;
/// Frame kind byte for FLUSH.
pub const KIND_FLUSH: u8 = 0x03;
/// Frame kind byte for FINISH.
pub const KIND_FINISH: u8 = 0x04;
/// Frame kind byte for TRACKS.
pub const KIND_TRACKS: u8 = 0x81;
/// Frame kind byte for FINISHED.
pub const KIND_FINISHED: u8 = 0x82;
/// Frame kind byte for ERROR.
pub const KIND_ERROR: u8 = 0x83;

/// Everything that can go wrong speaking `EBWP`.
#[derive(Debug)]
pub enum WireError {
    /// An underlying socket/stream failure.
    Io(io::Error),
    /// The connection ended in the middle of a frame or mid-session.
    Truncated,
    /// A frame's length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// The frame's kind byte.
        kind: u8,
        /// The declared payload length.
        len: u32,
    },
    /// An unassigned frame kind byte.
    UnknownKind(u8),
    /// HELLO magic did not match [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version in HELLO.
    UnsupportedVersion(u16),
    /// An EVENTS body does not match its declared CRC-32.
    ChunkCrcMismatch,
    /// A payload is structurally invalid.
    Malformed {
        /// Which frame kind was malformed.
        frame: &'static str,
        /// What was wrong.
        reason: &'static str,
    },
    /// An EVENTS chunk began before the previous chunk ended.
    OutOfOrder {
        /// `t_last` of the previous chunk.
        prev_t_last: u64,
        /// `t_first` of the offending chunk.
        t_first: u64,
    },
    /// A frame arrived that the session state machine does not allow
    /// (EVENTS before HELLO, a second HELLO, anything after FINISH, …).
    Protocol {
        /// What rule was broken.
        reason: &'static str,
    },
    /// A store-layer failure: chunk decode (corruption, out-of-bounds
    /// events) or the archival tee.
    Store(StoreError),
    /// The peer reported an error and is closing the connection.
    Remote(String),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Truncated => write!(f, "connection closed mid-frame or mid-session"),
            WireError::FrameTooLarge { kind, len } => {
                write!(f, "frame 0x{kind:02x} declares {len} payload bytes (cap {MAX_FRAME_BYTES})")
            }
            WireError::UnknownKind(kind) => write!(f, "unknown frame kind 0x{kind:02x}"),
            WireError::BadMagic(m) => write!(f, "bad EBWP magic bytes {m:?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported EBWP version {v}"),
            WireError::ChunkCrcMismatch => write!(f, "EVENTS body fails its CRC32"),
            WireError::Malformed { frame, reason } => write!(f, "malformed {frame} frame: {reason}"),
            WireError::OutOfOrder { prev_t_last, t_first } => write!(
                f,
                "EVENTS chunk starts at t={t_first} before the previous chunk ended at t={prev_t_last}"
            ),
            WireError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            WireError::Store(e) => write!(f, "store error: {e}"),
            WireError::Remote(msg) => write!(f, "peer reported: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

impl From<StoreError> for WireError {
    fn from(e: StoreError) -> Self {
        WireError::Store(e)
    }
}

/// The client's session-opening announcement: who is streaming and on
/// what sensor array. Byte-compatible with an `EBST` file header (magic
/// aside), so a stored recording's identity maps 1:1 onto a session's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Sensor geometry every subsequent chunk is validated against.
    pub geometry: SensorGeometry,
    /// Nominal recording span hint in microseconds (0 = unknown); the
    /// authoritative span arrives with FINISH.
    pub span_us: Micros,
    /// Stream name (e.g. `"LT4-cam03"`); may be empty.
    pub name: String,
}

/// One EVENTS frame: an `EBST`-encoded chunk of time-ordered events.
///
/// The body is exactly the store's delta-varint chunk payload
/// ([`ebbiot_store::format::encode_chunk_payload`]), so bytes spooled
/// to disk and bytes sent over a socket share one codec (and one set of
/// corruption checks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventsChunk {
    /// Number of events in the body (> 0).
    pub count: u32,
    /// Timestamp of the first event.
    pub t_first: u64,
    /// Timestamp of the last event.
    pub t_last: u64,
    /// Delta-varint body; its CRC-32 was already verified on read.
    pub body: Vec<u8>,
}

impl EventsChunk {
    /// Encodes a non-empty, time-ordered slice of events.
    ///
    /// # Panics
    ///
    /// Panics when `events` is empty or not time-ordered — clients
    /// chunk a validated stream, they never frame arbitrary input.
    #[must_use]
    pub fn encode(events: &[Event]) -> Self {
        assert!(!events.is_empty(), "EVENTS chunks are never empty");
        let mut body = Vec::new();
        encode_chunk_payload(&mut body, events);
        Self {
            count: events.len() as u32,
            t_first: events[0].t,
            t_last: events[events.len() - 1].t,
            body,
        }
    }

    /// Decodes and validates the body against `geometry` into `out`
    /// (cleared first): CRC was checked on read; this checks varint
    /// integrity, the event count, the `t_first`/`t_last` window and
    /// pixel bounds.
    ///
    /// # Errors
    ///
    /// Returns the store codec's corruption errors as
    /// [`WireError::Store`].
    pub fn decode_into(
        &self,
        out: &mut Vec<Event>,
        geometry: SensorGeometry,
    ) -> Result<(), WireError> {
        decode_chunk_payload_fast(
            out,
            &self.body,
            0,
            geometry,
            self.count,
            self.t_first,
            self.t_last,
        )?;
        Ok(())
    }
}

/// A borrowed view of one EVENTS frame: the fixed fields plus the
/// delta-varint body **still sitting in the [`FrameReader`]'s read
/// buffer**. Its CRC-32 was verified in place on read; no byte of the
/// body was copied to produce this view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventsRef<'a> {
    /// Number of events in the body (> 0).
    pub count: u32,
    /// Timestamp of the first event.
    pub t_first: u64,
    /// Timestamp of the last event.
    pub t_last: u64,
    /// Delta-varint body, borrowed from the connection read buffer.
    pub body: &'a [u8],
}

impl EventsRef<'_> {
    /// Decodes and validates the body against `geometry` into `out`
    /// (cleared first) — same checks as [`EventsChunk::decode_into`],
    /// straight out of the read buffer.
    ///
    /// # Errors
    ///
    /// Returns the store codec's corruption errors as
    /// [`WireError::Store`].
    pub fn decode_into(
        &self,
        out: &mut Vec<Event>,
        geometry: SensorGeometry,
    ) -> Result<(), WireError> {
        decode_chunk_payload_fast(
            out,
            self.body,
            0,
            geometry,
            self.count,
            self.t_first,
            self.t_last,
        )?;
        Ok(())
    }

    /// Copies the view into an owned [`EventsChunk`].
    #[must_use]
    pub fn to_owned(&self) -> EventsChunk {
        EventsChunk {
            count: self.count,
            t_first: self.t_first,
            t_last: self.t_last,
            body: self.body.to_vec(),
        }
    }
}

/// One frame as produced by [`FrameReader::read_from`]: EVENTS stays a
/// borrowed [`EventsRef`] into the reader's buffer, everything else is
/// decoded to an owned [`Frame`] (control frames are small and rare).
#[derive(Debug)]
pub enum FrameRef<'a> {
    /// An EVENTS frame, body borrowed from the read buffer.
    Events(EventsRef<'a>),
    /// Any other frame kind, decoded to its owned form.
    Control(Frame),
}

impl FrameRef<'_> {
    /// Converts to an owned [`Frame`], copying an EVENTS body out of
    /// the read buffer. This is the compatibility bridge [`read_frame`]
    /// is built on; the server's hot loop never calls it.
    #[must_use]
    pub fn into_owned(self) -> Frame {
        match self {
            FrameRef::Events(events) => Frame::Events(events.to_owned()),
            FrameRef::Control(frame) => frame,
        }
    }
}

/// The server's session-closing summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finished {
    /// Events the server accepted over the session.
    pub events: u64,
    /// Frames the server sent back over the session.
    pub frames: u64,
    /// High-water mark of the session's engine queue — how far the
    /// client ran ahead of the tracker before back-pressure bit.
    pub queue_high_water: u32,
}

/// One `EBWP` frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: open a session (must be the first frame).
    Hello(Hello),
    /// Client → server: one chunk of events.
    Events(EventsChunk),
    /// Client → server: request the tracker results available so far.
    Flush,
    /// Client → server: end of stream, with the authoritative span.
    Finish {
        /// Span handed to the pipeline's `finish` (trailing silence
        /// still advances the tracker).
        span_us: Micros,
    },
    /// Server → client: a batch of tracker frame results, in emission
    /// order.
    Tracks(Vec<FrameResult>),
    /// Server → client: session summary; the last frame of a
    /// successful session.
    Finished(Finished),
    /// Either direction: fatal error description; the sender closes the
    /// connection after it.
    Error(String),
}

impl Frame {
    /// The frame's kind byte.
    #[must_use]
    pub const fn kind(&self) -> u8 {
        match self {
            Frame::Hello(_) => KIND_HELLO,
            Frame::Events(_) => KIND_EVENTS,
            Frame::Flush => KIND_FLUSH,
            Frame::Finish { .. } => KIND_FINISH,
            Frame::Tracks(_) => KIND_TRACKS,
            Frame::Finished(_) => KIND_FINISHED,
            Frame::Error(_) => KIND_ERROR,
        }
    }
}

// --- little-endian cursor helpers ---------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    frame: &'static str,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(WireError::Malformed { frame: self.frame, reason: "payload too short" })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed { frame: self.frame, reason: "trailing payload bytes" })
        }
    }
}

// --- frame encoding -----------------------------------------------------

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    match frame {
        Frame::Hello(hello) => {
            out.extend_from_slice(&MAGIC);
            out.extend_from_slice(&VERSION.to_le_bytes());
            out.extend_from_slice(&hello.geometry.width().to_le_bytes());
            out.extend_from_slice(&hello.geometry.height().to_le_bytes());
            let name_len = u16::try_from(hello.name.len()).expect("HELLO name fits u16");
            out.extend_from_slice(&name_len.to_le_bytes());
            out.extend_from_slice(&hello.span_us.to_le_bytes());
            out.extend_from_slice(hello.name.as_bytes());
        }
        Frame::Events(chunk) => {
            out.extend_from_slice(&chunk.count.to_le_bytes());
            out.extend_from_slice(&chunk.t_first.to_le_bytes());
            out.extend_from_slice(&chunk.t_last.to_le_bytes());
            out.extend_from_slice(&crc32(&chunk.body).to_le_bytes());
            out.extend_from_slice(&chunk.body);
        }
        Frame::Flush => {}
        Frame::Finish { span_us } => out.extend_from_slice(&span_us.to_le_bytes()),
        Frame::Tracks(frames) => {
            out.extend_from_slice(&(frames.len() as u32).to_le_bytes());
            for f in frames {
                out.extend_from_slice(&(f.index as u64).to_le_bytes());
                out.extend_from_slice(&f.t_start.to_le_bytes());
                out.extend_from_slice(&f.duration.to_le_bytes());
                out.extend_from_slice(&(f.num_proposals as u32).to_le_bytes());
                out.extend_from_slice(&(f.num_events as u32).to_le_bytes());
                out.extend_from_slice(&(f.tracks.len() as u32).to_le_bytes());
                for t in &f.tracks {
                    out.extend_from_slice(&t.track_id.to_le_bytes());
                    for v in [t.bbox.x, t.bbox.y, t.bbox.w, t.bbox.h, t.velocity.0, t.velocity.1] {
                        out.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                    out.push(u8::from(t.occluded));
                }
            }
        }
        Frame::Finished(done) => {
            out.extend_from_slice(&done.events.to_le_bytes());
            out.extend_from_slice(&done.frames.to_le_bytes());
            out.extend_from_slice(&done.queue_high_water.to_le_bytes());
        }
        Frame::Error(msg) => out.extend_from_slice(msg.as_bytes()),
    }
    out
}

/// Writes one frame (envelope + payload) to `sink`. The caller flushes.
///
/// # Errors
///
/// Returns the sink's I/O error.
///
/// # Panics
///
/// Panics when the encoded payload exceeds [`MAX_FRAME_BYTES`] (callers
/// bound their chunk and batch sizes) or a HELLO name exceeds `u16`.
pub fn write_frame<W: Write>(sink: &mut W, frame: &Frame) -> io::Result<()> {
    let payload = encode_payload(frame);
    assert!(payload.len() <= MAX_FRAME_BYTES, "frame payload of {} bytes", payload.len());
    sink.write_all(&[frame.kind()])?;
    sink.write_all(&(payload.len() as u32).to_le_bytes())?;
    sink.write_all(&payload)
}

// --- frame decoding -----------------------------------------------------

fn decode_hello(payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor { buf: payload, pos: 0, frame: "HELLO" };
    let magic: [u8; 4] = c.take(4)?.try_into().expect("len 4");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = c.u16()?;
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let width = c.u16()?;
    let height = c.u16()?;
    if width == 0 || height == 0 {
        return Err(WireError::Malformed { frame: "HELLO", reason: "zero sensor geometry" });
    }
    let name_len = c.u16()?;
    let span_us = c.u64()?;
    let name = String::from_utf8(c.take(usize::from(name_len))?.to_vec())
        .map_err(|_| WireError::Malformed { frame: "HELLO", reason: "name is not UTF-8" })?;
    c.finish()?;
    Ok(Frame::Hello(Hello { geometry: SensorGeometry::new(width, height), span_us, name }))
}

/// Parses an EVENTS payload in place: fixed fields, then the CRC-32
/// checked directly over the borrowed body — no copy anywhere.
fn decode_events_ref(payload: &[u8]) -> Result<EventsRef<'_>, WireError> {
    let mut c = Cursor { buf: payload, pos: 0, frame: "EVENTS" };
    let count = c.u32()?;
    if count == 0 {
        return Err(WireError::Malformed { frame: "EVENTS", reason: "zero event count" });
    }
    let t_first = c.u64()?;
    let t_last = c.u64()?;
    if t_last < t_first {
        return Err(WireError::Malformed { frame: "EVENTS", reason: "t_last before t_first" });
    }
    let crc = c.u32()?;
    let body = c.take(c.remaining())?;
    if crc32(body) != crc {
        return Err(WireError::ChunkCrcMismatch);
    }
    Ok(EventsRef { count, t_first, t_last, body })
}

fn decode_finish(payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor { buf: payload, pos: 0, frame: "FINISH" };
    let span_us = c.u64()?;
    c.finish()?;
    Ok(Frame::Finish { span_us })
}

fn decode_tracks(payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor { buf: payload, pos: 0, frame: "TRACKS" };
    let malformed = |reason| WireError::Malformed { frame: "TRACKS", reason };
    let frame_count = c.u32()? as usize;
    // Every declared frame costs at least its fixed part; reject counts
    // the payload cannot possibly hold before any allocation.
    if c.remaining() / TRACKS_FRAME_FIXED_BYTES < frame_count {
        return Err(malformed("payload too short for frame count"));
    }
    let mut frames = Vec::with_capacity(frame_count);
    for _ in 0..frame_count {
        let index = usize::try_from(c.u64()?).map_err(|_| malformed("frame index overflow"))?;
        let t_start = c.u64()?;
        let duration = c.u64()?;
        let num_proposals = c.u32()? as usize;
        let num_events = c.u32()? as usize;
        let track_count = c.u32()? as usize;
        if c.remaining() / TRACK_BYTES < track_count {
            return Err(malformed("payload too short for track count"));
        }
        let mut tracks = Vec::with_capacity(track_count);
        for _ in 0..track_count {
            let track_id = c.u64()?;
            let fields = [c.f32()?, c.f32()?, c.f32()?, c.f32()?, c.f32()?, c.f32()?];
            let [x, y, w, h, vx, vy] = fields;
            if fields.iter().any(|v| !v.is_finite()) || w < 0.0 || h < 0.0 {
                return Err(malformed("non-finite or negative box fields"));
            }
            let occluded = match c.u8()? {
                0 => false,
                1 => true,
                _ => return Err(malformed("reserved track flag bits set")),
            };
            tracks.push(TrackBox {
                track_id,
                bbox: BoundingBox::new(x, y, w, h),
                velocity: (vx, vy),
                occluded,
            });
        }
        frames.push(FrameResult { index, t_start, duration, tracks, num_proposals, num_events });
    }
    c.finish()?;
    Ok(Frame::Tracks(frames))
}

fn decode_finished(payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor { buf: payload, pos: 0, frame: "FINISHED" };
    let events = c.u64()?;
    let frames = c.u64()?;
    let queue_high_water = c.u32()?;
    c.finish()?;
    Ok(Frame::Finished(Finished { events, frames, queue_high_water }))
}

/// Reusable frame reader: owns one payload buffer that every frame of
/// a connection is read into, so the hot EVENTS path costs **zero
/// copies and zero per-frame allocations** — the CRC is checked and the
/// chunk decoded straight out of this buffer via the borrowed
/// [`FrameRef::Events`] view.
///
/// [`read_frame`] is the owned-`Frame` convenience wrapper over this
/// type; servers keep one `FrameReader` per connection instead.
#[derive(Debug, Default)]
pub struct FrameReader {
    payload: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer; it grows to the largest frame
    /// seen (capped by [`MAX_FRAME_BYTES`]) and is then reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one frame from `source` into the internal buffer.
    /// `Ok(None)` is a clean end of stream (EOF exactly on a frame
    /// boundary); EOF anywhere inside a frame is
    /// [`WireError::Truncated`]. An EVENTS frame is returned as a
    /// borrowed [`EventsRef`]; every other kind is decoded to an owned
    /// [`Frame`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error, or a decode error for a malformed frame.
    /// No input — truncated, corrupt or hostile — panics or
    /// over-allocates: payload lengths are capped by
    /// [`MAX_FRAME_BYTES`] before any allocation.
    pub fn read_from<R: Read>(
        &mut self,
        source: &mut R,
    ) -> Result<Option<FrameRef<'_>>, WireError> {
        let mut envelope = [0u8; ENVELOPE_BYTES];
        // Distinguish clean EOF (no bytes at all) from a torn envelope.
        loop {
            match source.read(&mut envelope[..1]) {
                Ok(0) => return Ok(None),
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        source.read_exact(&mut envelope[1..])?;
        let kind = envelope[0];
        let len = u32::from_le_bytes(envelope[1..5].try_into().expect("len 4"));
        if len as usize > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooLarge { kind, len });
        }
        self.payload.resize(len as usize, 0);
        source.read_exact(&mut self.payload)?;
        let payload = &self.payload[..];
        match kind {
            KIND_EVENTS => return decode_events_ref(payload).map(|e| Some(FrameRef::Events(e))),
            KIND_HELLO => decode_hello(payload),
            KIND_FLUSH => {
                if payload.is_empty() {
                    Ok(Frame::Flush)
                } else {
                    Err(WireError::Malformed { frame: "FLUSH", reason: "non-empty payload" })
                }
            }
            KIND_FINISH => decode_finish(payload),
            KIND_TRACKS => decode_tracks(payload),
            KIND_FINISHED => decode_finished(payload),
            KIND_ERROR => Ok(Frame::Error(String::from_utf8_lossy(payload).into_owned())),
            other => Err(WireError::UnknownKind(other)),
        }
        .map(|frame| Some(FrameRef::Control(frame)))
    }
}

/// Reads one frame from `source` into an owned [`Frame`]. `Ok(None)` is
/// a clean end of stream (EOF exactly on a frame boundary); EOF
/// anywhere inside a frame is [`WireError::Truncated`].
///
/// This is the convenience wrapper over [`FrameReader`] (one internal
/// buffer per call, EVENTS bodies copied out); connection loops that
/// care about throughput hold a [`FrameReader`] and consume
/// [`FrameRef`]s instead.
///
/// # Errors
///
/// Returns an I/O error, or a decode error for a malformed frame. No
/// input — truncated, corrupt or hostile — panics or over-allocates:
/// payload lengths are capped by [`MAX_FRAME_BYTES`] before any
/// allocation.
pub fn read_frame<R: Read>(source: &mut R) -> Result<Option<Frame>, WireError> {
    Ok(FrameReader::new().read_from(source)?.map(FrameRef::into_owned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_events::Polarity;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::new(3, 4, 100, Polarity::On),
            Event::new(5, 4, 100, Polarity::Off),
            Event::new(0, 0, 250, Polarity::On),
        ]
    }

    fn roundtrip(frame: &Frame) -> Frame {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, frame).unwrap();
        let mut cursor = io::Cursor::new(bytes);
        let back = read_frame(&mut cursor).unwrap().expect("one frame");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF after the frame");
        back
    }

    #[test]
    fn every_frame_kind_round_trips() {
        let geometry = SensorGeometry::new(64, 48);
        let hello = Frame::Hello(Hello { geometry, span_us: 2_000_000, name: "LT4-cam03".into() });
        let events = Frame::Events(EventsChunk::encode(&sample_events()));
        let finish = Frame::Finish { span_us: 123_456 };
        let tracks = Frame::Tracks(vec![FrameResult {
            index: 7,
            t_start: 462_000,
            duration: 66_000,
            tracks: vec![TrackBox {
                track_id: 42,
                bbox: BoundingBox::new(1.5, 2.25, 10.0, 8.0),
                velocity: (-0.5, 3.75),
                occluded: true,
            }],
            num_proposals: 3,
            num_events: 288,
        }]);
        let finished = Frame::Finished(Finished { events: 1_000, frames: 30, queue_high_water: 5 });
        let error = Frame::Error("boom".into());
        for frame in [hello, events, finish, Frame::Flush, tracks, finished, error] {
            assert_eq!(roundtrip(&frame), frame);
        }
    }

    #[test]
    fn events_chunk_decodes_back_to_the_source_events() {
        let events = sample_events();
        let chunk = EventsChunk::encode(&events);
        assert_eq!(chunk.count, 3);
        assert_eq!((chunk.t_first, chunk.t_last), (100, 250));
        let mut decoded = Vec::new();
        chunk.decode_into(&mut decoded, SensorGeometry::new(64, 48)).unwrap();
        assert_eq!(decoded, events);
    }

    #[test]
    fn events_decode_rejects_out_of_bounds_geometry() {
        let chunk = EventsChunk::encode(&sample_events());
        let mut decoded = Vec::new();
        let err = chunk.decode_into(&mut decoded, SensorGeometry::new(4, 4)).unwrap_err();
        assert!(matches!(err, WireError::Store(StoreError::OutOfBounds { .. })), "{err}");
    }

    #[test]
    fn frame_reader_returns_borrowed_events_and_owned_controls() {
        let events = sample_events();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Frame::Events(EventsChunk::encode(&events))).unwrap();
        write_frame(&mut bytes, &Frame::Flush).unwrap();
        write_frame(&mut bytes, &Frame::Events(EventsChunk::encode(&events[..2]))).unwrap();
        let mut cursor = io::Cursor::new(bytes);
        let mut reader = FrameReader::new();

        let Some(FrameRef::Events(chunk)) = reader.read_from(&mut cursor).unwrap() else {
            panic!("expected EVENTS")
        };
        assert_eq!((chunk.count, chunk.t_first, chunk.t_last), (3, 100, 250));
        let mut decoded = Vec::new();
        chunk.decode_into(&mut decoded, SensorGeometry::new(64, 48)).unwrap();
        assert_eq!(decoded, events);
        assert_eq!(chunk.to_owned(), EventsChunk::encode(&events));

        assert!(matches!(
            reader.read_from(&mut cursor).unwrap(),
            Some(FrameRef::Control(Frame::Flush))
        ));
        // The buffer is reused for the second, smaller EVENTS frame.
        let Some(FrameRef::Events(chunk)) = reader.read_from(&mut cursor).unwrap() else {
            panic!("expected EVENTS")
        };
        assert_eq!(chunk.count, 2);
        assert!(reader.read_from(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn frame_reader_rejects_what_read_frame_rejects() {
        // Corrupt EVENTS body: same CRC error through both entry points.
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Frame::Events(EventsChunk::encode(&sample_events()))).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x40;
        let err = FrameReader::new().read_from(&mut io::Cursor::new(bytes.clone())).unwrap_err();
        assert!(matches!(err, WireError::ChunkCrcMismatch), "{err}");
        // Truncations anywhere are Truncated, never a panic.
        for cut in 1..bytes.len() {
            let err = FrameReader::new()
                .read_from(&mut io::Cursor::new(bytes[..cut].to_vec()))
                .unwrap_err();
            assert!(matches!(err, WireError::Truncated | WireError::ChunkCrcMismatch), "cut {cut}");
        }
    }

    #[test]
    fn corrupt_events_body_fails_crc() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Frame::Events(EventsChunk::encode(&sample_events()))).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x40; // flip a bit in the varint body
        let err = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, WireError::ChunkCrcMismatch), "{err}");
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &Frame::Finish { span_us: 99 }).unwrap();
        for cut in 1..bytes.len() {
            let err = read_frame(&mut io::Cursor::new(bytes[..cut].to_vec())).unwrap_err();
            assert!(matches!(err, WireError::Truncated), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = vec![KIND_EVENTS];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, WireError::FrameTooLarge { kind: KIND_EVENTS, .. }), "{err}");
    }

    #[test]
    fn unknown_kind_and_bad_hello_are_rejected() {
        let mut bytes = vec![0x7f];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bytes)).unwrap_err(),
            WireError::UnknownKind(0x7f)
        ));

        let hello = Frame::Hello(Hello {
            geometry: SensorGeometry::new(8, 8),
            span_us: 0,
            name: String::new(),
        });
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &hello).unwrap();
        bytes[ENVELOPE_BYTES] = b'X'; // corrupt the magic
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bytes)).unwrap_err(),
            WireError::BadMagic(_)
        ));

        let mut bytes = Vec::new();
        write_frame(&mut bytes, &hello).unwrap();
        bytes[ENVELOPE_BYTES + 4] = 9; // unsupported version
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bytes)).unwrap_err(),
            WireError::UnsupportedVersion(9)
        ));
    }

    #[test]
    fn tracks_decode_rejects_absurd_counts_and_bad_floats() {
        // frame_count far beyond the payload: rejected pre-allocation.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut bytes = vec![KIND_TRACKS];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bytes)).unwrap_err(),
            WireError::Malformed { frame: "TRACKS", .. }
        ));

        // A NaN box field must not reach BoundingBox::new (which panics).
        let good = Frame::Tracks(vec![FrameResult {
            index: 0,
            t_start: 0,
            duration: 66_000,
            tracks: vec![TrackBox {
                track_id: 1,
                bbox: BoundingBox::new(0.0, 0.0, 1.0, 1.0),
                velocity: (0.0, 0.0),
                occluded: false,
            }],
            num_proposals: 0,
            num_events: 0,
        }]);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &good).unwrap();
        // bbox.x sits right after envelope + frame_count + fixed frame
        // part + track_id.
        let x_off = ENVELOPE_BYTES + 4 + TRACKS_FRAME_FIXED_BYTES + 8;
        bytes[x_off..x_off + 4].copy_from_slice(&f32::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            read_frame(&mut io::Cursor::new(bytes)).unwrap_err(),
            WireError::Malformed { frame: "TRACKS", reason } if reason.contains("finite")
        ));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(WireError::UnknownKind(0x55).to_string().contains("0x55"));
        assert!(WireError::OutOfOrder { prev_t_last: 9, t_first: 3 }.to_string().contains("t=3"));
        assert!(WireError::Remote("nope".into()).to_string().contains("nope"));
    }
}

//! TCP ingestion server for event-camera fleets: the `EBWP` wire
//! protocol, the per-connection [`Session`] state machine and the
//! [`IngestServer`] accept loop.
//!
//! The paper targets fleets of stationary neuromorphic sensors feeding
//! low-complexity trackers. PRs 1–3 built the streaming pipeline, the
//! multi-camera engine and the on-disk store — but every event still
//! originated in-process. This crate is the serving layer: sensors (or
//! replayed recordings) connect over TCP, stream event chunks, and
//! receive their tracker output back on the same connection. Like the
//! engine and the store it uses nothing but `std`.
//!
//! * [`protocol`] — the framed `EBWP` codec, shared by both directions;
//! * [`session`] — the socket-free server-side state machine
//!   (HELLO → EVENTS… → FINISH), one engine stream per session;
//! * [`server`] — the TCP accept loop, one reader thread per
//!   connection, back-pressure via bounded engine queues + TCP flow
//!   control, optional archival tee into an
//!   [`ebbiot_store::FleetArchiver`];
//! * [`stats`] — the STATS surface: an optional second listener
//!   ([`StatsServer`], enabled via `ServerConfig::stats_addr`) serving
//!   the server's whole metrics registry — engine contention,
//!   per-stage pipeline timings, session counters — as the text
//!   exposition of `ARCHITECTURE.md` §7.
//!
//! Server output is **bit-for-bit identical** to processing the same
//! events in-process with `Engine::run_fleet` — enforced by
//! `tests/server_parity.rs` at the workspace root for every registered
//! back-end, and smoke-tested by the `exp_server` experiment binary.
//!
//! # The `EBWP` wire protocol (version 1)
//!
//! All integers are little-endian. A connection is a sequence of
//! *frames*, each a 5-byte envelope followed by a payload:
//!
//! ```text
//! envelope  kind u8 | len u32 | payload [u8; len]      (len ≤ 8 MiB)
//! ```
//!
//! Client → server frames:
//!
//! ```text
//! HELLO  (0x01)  magic [u8;4] = "EBWP" | version u16 = 1
//!                | width u16 | height u16 | name_len u16
//!                | span_us u64 | name [u8; name_len]
//!                (same 20-byte layout as an EBST file header)
//! EVENTS (0x02)  count u32 | t_first u64 | t_last u64 | crc32 u32
//!                | body: EBST delta-varint chunk payload
//! FLUSH  (0x03)  (empty) — request the tracker frames available so far
//! FINISH (0x04)  span_us u64 — end of stream, authoritative span
//! ```
//!
//! Server → client frames:
//!
//! ```text
//! TRACKS   (0x81)  frame_count u32, then per frame:
//!                  index u64 | t_start u64 | duration u64
//!                  | num_proposals u32 | num_events u32 | track_count u32,
//!                  then per track:
//!                  track_id u64 | x u32 | y u32 | w u32 | h u32
//!                  | vx u32 | vy u32 | flags u8
//!                  (x..vy are f32 bit patterns; flags bit 0 = occluded,
//!                  the rest reserved and must be zero)
//! FINISHED (0x82)  events u64 | frames u64 | queue_high_water u32
//! ERROR    (0x83)  UTF-8 message; sender closes after it
//! ```
//!
//! A session is `HELLO (EVENTS | FLUSH)* FINISH`; the server may send
//! TRACKS frames after any client frame and always ends a successful
//! session with FINISHED. EVENTS bodies reuse the `EBST` chunk codec
//! byte-for-byte ([`ebbiot_store::format::encode_chunk_payload`]):
//! `varint(Δt)`, `varint(zigzag(Δx))`,
//! `varint(zigzag(Δy) << 1 | polarity)` against a per-chunk predecessor
//! — so a stored chunk and a wire chunk are the same bytes, protected
//! by the same CRC-32 and validated by the same decoder. Chunks must be
//! mutually time-ordered (`t_first ≥` previous `t_last`); violations,
//! CRC mismatches, out-of-geometry events and state-machine violations
//! all close the connection with an ERROR frame — the serving engine is
//! never panicked by network input.
//!
//! The EVENTS receive path is zero-copy: [`FrameReader`] keeps one
//! payload buffer per connection, reads each frame into it, and hands
//! the session an [`EventsRef`] **borrowing** those bytes — the CRC
//! check and the varint decode
//! ([`ebbiot_store::format::decode_chunk_payload_fast`]) run directly
//! out of the connection buffer into the `Vec<Event>` that is then
//! moved into the engine. No per-frame allocation, no intermediate
//! copy of wire bytes or events.
//!
//! The field-by-field specification (with byte offsets and varint /
//! zigzag rules) also lives in `ARCHITECTURE.md` at the workspace root,
//! next to the `EBST` on-disk format it shares its chunk codec with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;
pub mod server;
pub mod session;
pub mod stats;

pub use protocol::{
    read_frame, write_frame, EventsChunk, EventsRef, Finished, Frame, FrameReader, FrameRef, Hello,
    WireError, MAX_FRAME_BYTES, VERSION,
};
pub use server::{IngestServer, ServerConfig, ServerReport, SessionReport};
pub use session::{PipelineFactory, Session, SessionSummary};
pub use stats::{scrape_stats, ServerTelemetry, StatsServer};

//! [`IngestServer`]: the TCP accept loop and per-connection threads
//! around [`Session`].

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use ebbiot_core::StageTelemetry;
use ebbiot_engine::{Engine, EngineConfig, Snapshot};
use ebbiot_store::{FleetArchiver, StoreOptions};
use ebbiot_telemetry::Registry;

use crate::protocol::{write_frame, Frame, FrameReader, FrameRef, WireError};
use crate::session::{PipelineFactory, Session, SessionSummary};
use crate::stats::{ServerTelemetry, StatsServer};

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server sizing and archival knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine worker threads shared by every session's stream.
    pub workers: usize,
    /// Per-stream bound on chunks in flight; once a session's queue is
    /// full its reader thread blocks, which propagates back-pressure to
    /// the client socket as TCP flow control.
    pub queue_capacity: usize,
    /// When set, every session is teed into a [`FleetArchiver`] at this
    /// directory — ingest once, replay forever.
    pub archive_dir: Option<PathBuf>,
    /// Chunking of the archival tee's `EBST` files.
    pub archive_options: StoreOptions,
    /// When set, a [`StatsServer`] is bound here (use port 0 for an
    /// ephemeral port) serving the server's full metrics registry —
    /// engine contention, per-stage pipeline timings and session
    /// counters — as the text exposition of ARCHITECTURE.md §7.
    pub stats_addr: Option<SocketAddr>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let EngineConfig { workers, queue_capacity, .. } = EngineConfig::default();
        Self {
            workers,
            queue_capacity,
            archive_dir: None,
            archive_options: StoreOptions::default(),
            stats_addr: None,
        }
    }
}

/// One session's outcome in the server's shutdown report.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The peer's socket address.
    pub peer: String,
    /// What the session ingested and returned.
    pub summary: SessionSummary,
    /// `None` for a clean HELLO → FINISH exchange, else the error the
    /// connection was closed with.
    pub error: Option<String>,
}

/// Everything the server did, from [`IngestServer::shutdown`].
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// The engine's final statistics (per stream == per session).
    pub snapshot: Snapshot,
    /// Per-connection outcomes, in completion order.
    pub sessions: Vec<SessionReport>,
}

#[derive(Default)]
struct ServerShared {
    /// Handles of spawned session threads (drained on shutdown).
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Completed sessions' reports.
    reports: Mutex<Vec<SessionReport>>,
}

/// A TCP ingestion server speaking `EBWP`.
///
/// One accept-loop thread plus one reader thread per connection; every
/// connection becomes a [`Session`] attached to one shared multi-stream
/// [`Engine`], so concurrent cameras are tracked by the same worker
/// pool that `Engine::run_fleet` uses — and produce bit-for-bit the
/// same output (`tests/server_parity.rs` at the workspace root).
///
/// ```no_run
/// use std::sync::Arc;
/// use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
/// use ebbiot_server::{IngestServer, ServerConfig};
///
/// let server = IngestServer::bind(
///     "127.0.0.1:0",
///     ServerConfig::default(),
///     Arc::new(|hello: &ebbiot_server::Hello| {
///         Ok(EbbiotPipeline::new(EbbiotConfig::paper_default(hello.geometry)).boxed())
///     }),
/// )?;
/// println!("serving EBWP on {}", server.local_addr());
/// # Ok::<(), ebbiot_server::WireError>(())
/// ```
pub struct IngestServer {
    engine: Arc<Engine>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    shared: Arc<ServerShared>,
    registry: Arc<Registry>,
    stats: Option<StatsServer>,
}

impl IngestServer {
    /// Binds a listener (use port 0 for an ephemeral port), spawns the
    /// shared engine and the accept loop, and starts serving.
    ///
    /// # Errors
    ///
    /// Returns a bind/listen I/O error, or the archiver's creation
    /// error when `config.archive_dir` is set.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: ServerConfig,
        factory: Arc<PipelineFactory>,
    ) -> Result<Self, WireError> {
        let listener = TcpListener::bind(addr).map_err(WireError::Io)?;
        let local_addr = listener.local_addr().map_err(WireError::Io)?;
        let archiver = match &config.archive_dir {
            Some(dir) => Some(FleetArchiver::create(dir, config.archive_options)?),
            None => None,
        };
        // One registry aggregates everything the server knows: engine
        // contention, per-stage pipeline timings (shared across all
        // sessions) and connection/session counters.
        let registry = Arc::new(Registry::new());
        let engine = Arc::new(Engine::with_registry(
            EngineConfig {
                workers: config.workers,
                queue_capacity: config.queue_capacity,
                ..EngineConfig::default()
            },
            Vec::new(),
            Arc::clone(&registry),
        ));
        let telemetry = ServerTelemetry::register(&registry);
        let stage = StageTelemetry::register(&registry);
        let stats = match config.stats_addr {
            Some(stats_addr) => {
                Some(StatsServer::bind(stats_addr, Arc::clone(&registry)).map_err(WireError::Io)?)
            }
            None => None,
        };
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ServerShared::default());

        let accept = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ebwp-accept".into())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        &engine,
                        &factory,
                        archiver.as_ref(),
                        &stop,
                        &shared,
                        &telemetry,
                        &stage,
                    );
                })
                .expect("spawn accept loop")
        };
        Ok(Self { engine, local_addr, accept: Some(accept), stop, shared, registry, stats })
    }

    /// The bound address (with the actual port when bound to port 0).
    #[must_use]
    pub const fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The STATS listener's address, when `config.stats_addr` was set.
    #[must_use]
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.stats.as_ref().map(StatsServer::local_addr)
    }

    /// The server's metrics registry (engine, pipeline stages, server
    /// counters) — what the STATS listener renders.
    #[must_use]
    pub const fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Live engine statistics: one stream per session ever attached.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.engine.snapshot()
    }

    /// Reports of the sessions completed so far.
    #[must_use]
    pub fn session_reports(&self) -> Vec<SessionReport> {
        lock(&self.shared.reports).clone()
    }

    /// Stops accepting, waits for in-flight sessions to end (clients
    /// must disconnect or finish), drains the engine and returns the
    /// final report.
    ///
    /// # Panics
    ///
    /// Re-raises an engine worker panic, like [`Engine::join`].
    #[must_use]
    pub fn shutdown(mut self) -> ServerReport {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so a blocked `accept` observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept loop panicked");
        }
        for handle in lock(&self.shared.handles).drain(..) {
            handle.join().expect("session thread panicked");
        }
        if let Some(stats) = self.stats.take() {
            stats.shutdown();
        }
        let engine = Arc::into_inner(self.engine).expect("sessions all ended");
        let output = engine.join();
        ServerReport { snapshot: output.snapshot, sessions: lock(&self.shared.reports).clone() }
    }
}

#[allow(clippy::too_many_arguments)] // one call site, spawned by `bind`
fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<Engine>,
    factory: &Arc<PipelineFactory>,
    archiver: Option<&FleetArchiver>,
    stop: &Arc<AtomicBool>,
    shared: &Arc<ServerShared>,
    telemetry: &ServerTelemetry,
    stage: &StageTelemetry,
) {
    for connection in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return; // the waking connection (or a raced client) is dropped
        }
        let Ok(connection) = connection else { continue };
        telemetry.connections.inc();
        let session = Session::new(Arc::clone(engine), Arc::clone(factory), archiver.cloned())
            .with_stage_telemetry(stage.clone());
        let shared_for_session = Arc::clone(shared);
        let telemetry_for_session = telemetry.clone();
        let handle = std::thread::Builder::new()
            .name("ebwp-session".into())
            .spawn(move || {
                telemetry_for_session.sessions_active.inc();
                let report = serve_connection(connection, session);
                if report.error.is_some() {
                    telemetry_for_session.session_errors.inc();
                }
                telemetry_for_session.sessions_active.dec();
                lock(&shared_for_session.reports).push(report);
            })
            .expect("spawn session thread");
        lock(&shared.handles).push(handle);
    }
}

/// Runs one connection to completion: frames in, responses out, an
/// ERROR frame (best effort) on the way down.
fn serve_connection(connection: TcpStream, mut session: Session) -> SessionReport {
    let peer = connection.peer_addr().map_or_else(|_| "unknown".to_string(), |a| a.to_string());
    let result = drive(&connection, &mut session);
    if let Err(err) = &result {
        // Tell the client why before hanging up; the socket may already
        // be gone, so ignore failures.
        let mut writer = BufWriter::new(&connection);
        let _ = write_frame(&mut writer, &Frame::Error(err.to_string()));
        let _ = writer.flush();
        session.abort();
    }
    SessionReport {
        peer,
        summary: session.summary().clone(),
        error: result.err().map(|e| e.to_string()),
    }
}

fn drive(connection: &TcpStream, session: &mut Session) -> Result<(), WireError> {
    connection.set_nodelay(true).map_err(WireError::Io)?;
    let mut reader = BufReader::new(connection);
    let mut writer = BufWriter::new(connection);
    // One payload buffer for the whole connection: EVENTS chunks are
    // CRC-checked and decoded straight out of it (`Session::on_events`),
    // never copied into an intermediate Vec.
    let mut frames = FrameReader::new();
    loop {
        let responses = match frames.read_from(&mut reader)? {
            Some(FrameRef::Events(chunk)) => session.on_events(&chunk)?,
            Some(FrameRef::Control(frame)) => session.on_frame(frame)?,
            // EOF: fine after FINISH (we already returned), an error in
            // the middle of a session.
            None => return Err(WireError::Truncated),
        };
        for response in &responses {
            write_frame(&mut writer, response).map_err(WireError::Io)?;
        }
        writer.flush().map_err(WireError::Io)?;
        if session.is_finished() {
            return Ok(());
        }
    }
}

//! Hostile-input property tests for the `EBWP` protocol and session:
//! truncated frames, corrupted bytes, bad CRCs, out-of-geometry events
//! and ordering violations must all surface as `WireError`s — never a
//! panic, never a hung engine, and never a leaked engine stream.
//!
//! These mirror the `ebbiot_events` codec proptests: the wire is just
//! another untrusted byte source.

use std::io::Cursor;
use std::sync::Arc;

use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
use ebbiot_engine::{Engine, EngineConfig};
use ebbiot_events::{Event, Polarity, SensorGeometry};
use ebbiot_server::{
    read_frame, write_frame, EventsChunk, Frame, Hello, PipelineFactory, Session, WireError,
};
use proptest::prelude::*;

const W: u16 = 240;
const H: u16 = 180;

fn arb_event() -> impl Strategy<Value = Event> {
    (0u64..600_000, 0..W, 0..H, any::<bool>()).prop_map(|(t, x, y, on)| {
        Event::new(x, y, t, if on { Polarity::On } else { Polarity::Off })
    })
}

fn arb_ordered_events(max_len: usize) -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec(arb_event(), 1..max_len).prop_map(|mut v| {
        ebbiot_events::stream::sort_by_time(&mut v);
        v
    })
}

fn encode_frames(frames: &[Frame]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for frame in frames {
        write_frame(&mut bytes, frame).unwrap();
    }
    bytes
}

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(
        EngineConfig { workers: 1, queue_capacity: 4, ..EngineConfig::default() },
        Vec::new(),
    ))
}

fn factory() -> Arc<PipelineFactory> {
    Arc::new(|hello: &Hello| {
        Ok(EbbiotPipeline::new(EbbiotConfig::paper_default(hello.geometry)).boxed())
    })
}

/// Feeds raw bytes through the real decode → session path, exactly like
/// the TCP loop does, returning the first error (if any).
fn drive_session(bytes: &[u8]) -> Result<(), WireError> {
    let engine = engine();
    let mut session = Session::new(Arc::clone(&engine), factory(), None);
    let mut cursor = Cursor::new(bytes.to_vec());
    loop {
        match read_frame(&mut cursor)? {
            Some(frame) => {
                let _responses = session.on_frame(frame)?;
                if session.is_finished() {
                    return Ok(());
                }
            }
            None => return Err(WireError::Truncated),
        }
    }
}

fn hello_frame(name: &str) -> Frame {
    Frame::Hello(Hello { geometry: SensorGeometry::new(W, H), span_us: 500_000, name: name.into() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // A well-formed session always completes, whatever the traffic.
    #[test]
    fn well_formed_sessions_always_finish(events in arb_ordered_events(400)) {
        let span = events.last().unwrap().t + 1;
        let mut frames = vec![hello_frame("ok")];
        for chunk in events.chunks(97) {
            frames.push(Frame::Events(EventsChunk::encode(chunk)));
        }
        frames.push(Frame::Finish { span_us: span });
        prop_assert!(drive_session(&encode_frames(&frames)).is_ok());
    }

    // Truncating a valid session's bytes at *any* point errors cleanly
    // (no panic, no hang) — the reader thread would report it and the
    // session is aborted.
    #[test]
    fn truncation_at_any_cut_point_errors_cleanly(
        events in arb_ordered_events(60),
        cut_frac in 0.0f64..1.0,
    ) {
        let span = events.last().unwrap().t + 1;
        let bytes = encode_frames(&[
            hello_frame("cut"),
            Frame::Events(EventsChunk::encode(&events)),
            Frame::Finish { span_us: span },
        ]);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(drive_session(&bytes[..cut]).is_err());
    }

    // Flipping any single byte of a valid session either still
    // completes (the flip hit a don't-care bit such as an ERROR
    // message byte) or errors cleanly — it never panics the engine.
    #[test]
    fn single_byte_corruption_never_panics(
        events in arb_ordered_events(60),
        victim_frac in 0.0f64..1.0,
        flip in 1u8..255,
    ) {
        let span = events.last().unwrap().t + 1;
        let mut bytes = encode_frames(&[
            hello_frame("flip"),
            Frame::Events(EventsChunk::encode(&events)),
            Frame::Finish { span_us: span },
        ]);
        let victim = ((bytes.len() - 1) as f64 * victim_frac) as usize;
        bytes[victim] ^= flip;
        // Either outcome is fine; what matters is that we got *an*
        // outcome (drive_session returned instead of panicking/hanging).
        let _ = drive_session(&bytes);
    }

    // Arbitrary garbage never panics the frame reader or the session.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = drive_session(&bytes);
    }

    // Events outside the HELLO geometry are rejected before reaching
    // the engine, wherever in the array they fall.
    #[test]
    fn out_of_geometry_events_are_rejected(
        events in arb_ordered_events(50),
        oob_x in W..W + 100,
        oob_y in 0..H,
    ) {
        // Patch one event out of bounds *after* encoding would break the
        // CRC, so build the chunk from events that are themselves OOB:
        // encode against a larger array, declare the paper's array.
        let mut patched = events;
        let n = patched.len();
        patched[n / 2] = Event::on(oob_x, oob_y, patched[n / 2].t);
        let bytes = encode_frames(&[
            hello_frame("oob"),
            Frame::Events(EventsChunk::encode(&patched)),
            Frame::Finish { span_us: 1 },
        ]);
        let err = drive_session(&bytes).unwrap_err();
        prop_assert!(
            matches!(err, WireError::Store(_)),
            "expected out-of-bounds store error, got {err}"
        );
    }

    // Chunks that rewind time across EVENTS frames are rejected with
    // OutOfOrder — the engine never sees them (an unvalidated push
    // would panic a shared worker).
    #[test]
    fn cross_chunk_time_rewind_is_rejected(events in arb_ordered_events(80), rewind in 1u64..1_000_000) {
        let late: Vec<Event> =
            events.iter().map(|e| Event::new(e.x, e.y, e.t + rewind, e.polarity)).collect();
        let bytes = encode_frames(&[
            hello_frame("rewind"),
            Frame::Events(EventsChunk::encode(&late)),
            Frame::Events(EventsChunk::encode(&events)), // starts before late ended
            Frame::Finish { span_us: 1 },
        ]);
        let err = drive_session(&bytes).unwrap_err();
        prop_assert!(matches!(err, WireError::OutOfOrder { .. }), "got {err}");
    }

    // HELLO/chunk ordering violations: EVENTS or FINISH first, HELLO
    // twice, a server-side frame from the client — all protocol errors.
    // (EVENTS *after* FINISH never reaches the session over TCP — the
    // server stops reading at FINISH — and is covered by the session
    // unit tests.)
    #[test]
    fn state_machine_violations_are_protocol_errors(events in arb_ordered_events(30), which in 0usize..4) {
        let events_frame = Frame::Events(EventsChunk::encode(&events));
        let frames = match which {
            0 => vec![events_frame],
            1 => vec![Frame::Finish { span_us: 7 }],
            2 => vec![hello_frame("a"), hello_frame("b")],
            _ => vec![hello_frame("c"), Frame::Tracks(Vec::new())],
        };
        let err = drive_session(&encode_frames(&frames)).unwrap_err();
        prop_assert!(matches!(err, WireError::Protocol { .. }), "case {which}: got {err}");
    }

    // A corrupted EVENTS body (CRC intact over corrupt bytes is
    // statistically impossible for a flip, so flip body bytes only)
    // is caught by the CRC before any decode.
    #[test]
    fn events_body_corruption_is_caught_by_crc(
        events in arb_ordered_events(50),
        flip in 1u8..255,
        pos_frac in 0.0f64..1.0,
    ) {
        let chunk = EventsChunk::encode(&events);
        let body_len = chunk.body.len();
        let mut corrupt = chunk.clone();
        corrupt.body[((body_len - 1) as f64 * pos_frac) as usize] ^= flip;
        let bytes = encode_frames(&[hello_frame("crc"), Frame::Events(corrupt)]);
        // write_frame recomputes the CRC over the corrupt body, so the
        // frame parses; corruption surfaces in decode. Flip the stored
        // CRC path instead: corrupt the raw bytes after encoding.
        let mut raw = encode_frames(&[hello_frame("crc2"), Frame::Events(chunk)]);
        let n = raw.len();
        raw[n - 1] ^= flip; // last body byte, after the CRC was written
        let err = drive_session(&raw).unwrap_err();
        prop_assert!(matches!(err, WireError::ChunkCrcMismatch), "got {err}");
        // The re-CRC'd corrupt body decodes or errors, but never panics.
        let _ = drive_session(&bytes);
    }
}

/// Sessions that die mid-stream (disconnect, protocol error) never leak
/// engine streams — exercised over many failure shapes.
#[test]
fn failed_sessions_never_leak_engine_streams() {
    let engine = engine();
    for k in 0..20u64 {
        let mut session = Session::new(Arc::clone(&engine), factory(), None);
        let _ = session.on_frame(hello_frame(&format!("s{k}")));
        if k % 2 == 0 {
            let events = vec![Event::on(10, 10, 100 + k)];
            let _ = session.on_frame(Frame::Events(EventsChunk::encode(&events)));
        }
        if k % 3 == 0 {
            // Protocol violation kills the session.
            let _ = session.on_frame(hello_frame("again"));
        }
        drop(session); // disconnect
    }
    let snapshot = engine.snapshot();
    assert_eq!(snapshot.streams.len(), 20);
    assert!(snapshot.streams.iter().all(|s| s.detached), "all sessions detached: {snapshot:?}");
}

//! Property tests pinning the batched word-parallel chunk decoder
//! ([`decode_chunk_payload_fast`]) to the scalar reference
//! ([`decode_chunk_payload`]): identical events out on every valid
//! payload, and identical errors on every corrupt one — hostile tails,
//! 1-byte and 10-byte varints, chunk-boundary truncation, bit flips and
//! lying frame metadata. The slice-by-8 CRC gets the same treatment
//! against its one-byte-at-a-time reference.

use ebbiot_events::{Event, Polarity, SensorGeometry};
use ebbiot_store::format::{
    crc32, crc32_reference, decode_chunk_payload, decode_chunk_payload_fast, encode_chunk_payload,
};
use ebbiot_store::StoreError;
use proptest::prelude::*;

const W: u16 = 240;
const H: u16 = 180;

/// A time-ordered in-bounds chunk whose varint widths span the whole
/// range: `dt_shift` scales the time deltas from always-1-byte varints
/// (`dt < 128`) up to forced 10-byte varints (`dt >= 1 << 63`).
fn arb_chunk(max_len: usize) -> impl Strategy<Value = Vec<Event>> {
    let step = (0u64..128, 0u32..64, 0..W, 0..H, any::<bool>());
    (proptest::collection::vec(step, 1..max_len), 0u32..8).prop_map(|(steps, width_mix)| {
        let mut t = 0u64;
        steps
            .into_iter()
            .map(|(dt, dt_shift, x, y, on)| {
                // Mix varint widths within one chunk: shift some deltas
                // into the 2..10-byte LEB128 range, saturating so the
                // running timestamp never overflows.
                let shift = (dt_shift * width_mix) % 64;
                t = t.saturating_add(dt << shift);
                Event::new(x, y, t, if on { Polarity::On } else { Polarity::Off })
            })
            .collect()
    })
}

/// Encodes a chunk and returns `(payload, count, t_first, t_last)` —
/// the frame fields a well-formed `EBST` chunk or `EBWP` EVENTS frame
/// would carry for it.
fn encode(events: &[Event]) -> (Vec<u8>, u32, u64, u64) {
    let mut payload = Vec::new();
    encode_chunk_payload(&mut payload, events);
    let count = u32::try_from(events.len()).unwrap();
    (payload, count, events[0].t, events[events.len() - 1].t)
}

/// Both decoders on the same input; errors compared by debug rendering
/// (variant and payload), results by value.
fn both(
    payload: &[u8],
    geometry: SensorGeometry,
    count: u32,
    t_first: u64,
    t_last: u64,
) -> (Result<Vec<Event>, StoreError>, Result<Vec<Event>, StoreError>) {
    let mut scalar = Vec::new();
    let mut fast = Vec::new();
    let a = decode_chunk_payload(&mut scalar, payload, 3, geometry, count, t_first, t_last)
        .map(|()| scalar);
    let b = decode_chunk_payload_fast(&mut fast, payload, 3, geometry, count, t_first, t_last)
        .map(|()| fast);
    (a, b)
}

fn assert_parity(payload: &[u8], geometry: SensorGeometry, count: u32, t_first: u64, t_last: u64) {
    let (scalar, fast) = both(payload, geometry, count, t_first, t_last);
    match (scalar, fast) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "decoded events diverge"),
        (Err(a), Err(b)) => assert_eq!(format!("{a:?}"), format!("{b:?}"), "errors diverge"),
        (a, b) => panic!("acceptance diverges: scalar {a:?} vs fast {b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Valid payloads: both decoders accept and produce the original
    // events, across the full 1..=10-byte varint width range.
    #[test]
    fn fast_decoder_matches_scalar_on_valid_chunks(events in arb_chunk(200)) {
        let geometry = SensorGeometry::new(W, H);
        let (payload, count, t_first, t_last) = encode(&events);
        let (scalar, fast) = both(&payload, geometry, count, t_first, t_last);
        prop_assert_eq!(scalar.unwrap(), events.clone());
        prop_assert_eq!(fast.unwrap(), events);
    }

    // Truncation at *every* byte boundary of a valid payload — the
    // hostile-tail sweep. Both decoders must agree byte for byte,
    // including truncations that land mid-varint or mid-event.
    #[test]
    fn truncated_payloads_are_rejected_identically(events in arb_chunk(40)) {
        let geometry = SensorGeometry::new(W, H);
        let (payload, count, t_first, t_last) = encode(&events);
        for cut in 0..payload.len() {
            assert_parity(&payload[..cut], geometry, count, t_first, t_last);
        }
    }

    // Single-byte corruption anywhere in the payload: whatever the
    // scalar decoder makes of it (accept, reject, reject later), the
    // fast decoder must make of it too.
    #[test]
    fn bit_flips_are_handled_identically(
        events in arb_chunk(100),
        at in any::<u64>(),
        xor in 0u8..255,
    ) {
        let geometry = SensorGeometry::new(W, H);
        let (mut payload, count, t_first, t_last) = encode(&events);
        let at = usize::try_from(at).unwrap_or(usize::MAX) % payload.len();
        payload[at] ^= xor + 1;
        assert_parity(&payload, geometry, count, t_first, t_last);
    }

    // Lying frame metadata (count / t_first / t_last off by some
    // delta) against a well-formed payload.
    #[test]
    fn wrong_frame_metadata_is_rejected_identically(
        events in arb_chunk(60),
        dcount in -2i64..3,
        dfirst in -2i64..3,
        dlast in -2i64..3,
    ) {
        let geometry = SensorGeometry::new(W, H);
        let (payload, count, t_first, t_last) = encode(&events);
        let count = u32::try_from(i64::from(count).saturating_add(dcount).max(0)).unwrap();
        let t_first = t_first.saturating_add_signed(dfirst);
        let t_last = t_last.saturating_add_signed(dlast);
        assert_parity(&payload, geometry, count, t_first, t_last);
    }

    // A smaller sensor than the events were generated for: bounds
    // violations must surface identically, at the same event.
    #[test]
    fn out_of_geometry_events_are_rejected_identically(
        events in arb_chunk(60),
        w in 1..W,
        h in 1..H,
    ) {
        let (payload, count, t_first, t_last) = encode(&events);
        assert_parity(&payload, SensorGeometry::new(w, h), count, t_first, t_last);
    }

    // Arbitrary garbage bytes with arbitrary frame metadata: the fast
    // path must never accept (or panic on) anything the scalar
    // reference rejects, and vice versa.
    #[test]
    fn arbitrary_bytes_are_handled_identically(
        payload in proptest::collection::vec(any::<u8>(), 0..400),
        count in 0u32..200,
        t_first in 0u64..1 << 48,
        span in 0u64..1 << 20,
    ) {
        let geometry = SensorGeometry::new(W, H);
        assert_parity(&payload, geometry, count, t_first, t_first.saturating_add(span));
    }

    // Slice-by-8 CRC == one-byte-at-a-time reference on arbitrary
    // bytes (lengths cross the 8-byte fold boundary both ways).
    #[test]
    fn crc32_matches_reference(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(crc32(&bytes), crc32_reference(&bytes));
    }
}

/// Deterministic corner cases the generators only hit probabilistically.
#[test]
fn varint_width_extremes_decode_identically() {
    let geometry = SensorGeometry::new(W, H);
    // Forced 10-byte time-delta varint: dt >= 1 << 63.
    let ten = vec![Event::on(0, 0, 1), Event::off(W - 1, H - 1, 1 + (1u64 << 63))];
    // All 1-byte varints: dt < 128, |dx|, |dy| < 64.
    let one = vec![Event::on(10, 10, 0), Event::off(11, 9, 127)];
    for events in [ten, one] {
        let (payload, count, t_first, t_last) = encode(&events);
        let (scalar, fast) = both(&payload, geometry, count, t_first, t_last);
        assert_eq!(scalar.unwrap(), events.clone());
        assert_eq!(fast.unwrap(), events);
        // And every truncation of it.
        for cut in 0..payload.len() {
            assert_parity(&payload[..cut], geometry, count, t_first, t_last);
        }
    }
}

//! Property tests hardening the `EBSS` snapshot decoder against
//! malformed and hostile input: truncation at every cut point, single
//! bit and byte flips anywhere in the file, lying section lengths,
//! wrong magic/version/trailer bytes, and entirely arbitrary byte
//! soup. Every case must surface as a [`SnapshotError`] (or decode to
//! something observably different) — never a panic, and never the
//! original state reconstructed from damaged bytes.

use ebbiot_core::SessionState;
use ebbiot_events::{Event, OpsCounter, Polarity, SensorGeometry};
use ebbiot_store::snapshot::{SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
use ebbiot_store::{read_snapshot, write_snapshot, SnapshotError};
use proptest::prelude::*;

/// A synthetic but structurally realistic session state. The tracker
/// blob is opaque to the EBSS layer, so arbitrary bytes stand in for a
/// real back-end serialization.
fn arb_state() -> impl Strategy<Value = SessionState> {
    let event = (0u64..1_000_000, 0u16..240, 0u16..180, any::<bool>());
    (
        (0usize..3).prop_map(|i| ["ebbiot", "ebbi-kf", "nn-ebms"][i]),
        0u64..10_000,
        0u64..10_000,
        proptest::collection::vec(event, 0..40),
        proptest::option::of(0u64..1_000_000),
        (any::<bool>(), proptest::collection::vec(any::<u8>(), 0..200)),
    )
        .prop_map(|(backend, frames, sum, events, last, (with_ops, tracker))| {
            let mut pending: Vec<Event> = events
                .into_iter()
                .map(|(t, x, y, on)| {
                    Event::new(x, y, t, if on { Polarity::On } else { Polarity::Off })
                })
                .collect();
            pending.sort_by_key(|e| e.t);
            SessionState {
                backend: backend.to_string(),
                frames_processed: frames,
                next_index: frames,
                active_tracker_sum: sum,
                pending,
                last_pushed_t: last,
                frontend_ops: with_ops.then_some(
                    [OpsCounter { comparisons: 7, additions: 3, multiplications: 1, mem_writes: 9 };
                        4],
                ),
                tracker,
            }
        })
}

fn encode(state: &SessionState) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, "cam05", SensorGeometry::new(240, 180), 123_456, state)
        .expect("valid state encodes");
    bytes
}

/// Fixed header prefix up to the variable-length names: magic(4) +
/// version(2) + width(2) + height(2) + backend_len(2) + name_len(2) +
/// checkpoint_t(8).
const HEADER_FIXED: usize = 22;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Round trip sanity: what the writer emits, the reader restores
    // exactly (header and state), for arbitrary session shapes.
    #[test]
    fn round_trip_is_exact(state in arb_state()) {
        let bytes = encode(&state);
        let (header, decoded) = read_snapshot(&bytes).expect("own output decodes");
        prop_assert_eq!(&header.backend, &state.backend);
        prop_assert_eq!(header.checkpoint_t, 123_456);
        prop_assert_eq!(decoded, state);
    }

    // Truncation at EVERY cut point is rejected, never a panic and
    // never a partial state.
    #[test]
    fn truncation_at_every_cut_point_errors(state in arb_state()) {
        let bytes = encode(&state);
        for cut in 0..bytes.len() {
            prop_assert!(
                read_snapshot(&bytes[..cut]).is_err(),
                "truncation to {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
    }

    // A single flipped bit anywhere either errors or decodes to
    // something observably different — corrupt bytes never silently
    // reproduce the original session.
    #[test]
    fn single_bit_flips_never_reproduce_the_original(
        state in arb_state(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let bytes = encode(&state);
        let original = read_snapshot(&bytes).expect("own output decodes");
        let mut bad = bytes.clone();
        let at = pos % bad.len();
        bad[at] ^= 1 << bit;
        match read_snapshot(&bad) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(
                decoded, original,
                "flipped bit {bit} at byte {at} decoded back to the original"
            ),
        }
    }

    // Whole-byte overwrites inside the CRC-framed body (anything past
    // the header) must fail the section CRC or framing.
    #[test]
    fn byte_flips_in_the_body_are_rejected(
        state in arb_state(),
        offset in any::<usize>(),
        xor in (0u8..255).prop_map(|b| b + 1),
    ) {
        let bytes = encode(&state);
        let body_start = HEADER_FIXED + state.backend.len() + "cam05".len();
        let at = body_start + offset % (bytes.len() - body_start);
        let mut bad = bytes.clone();
        bad[at] ^= xor;
        prop_assert!(
            read_snapshot(&bad).is_err(),
            "body byte {at} xor {xor:#04x} must not decode"
        );
    }

    // Arbitrary byte soup never panics the decoder (and, without the
    // magic, never decodes).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let result = read_snapshot(&bytes);
        if bytes.len() < 4 || bytes[..4] != SNAPSHOT_MAGIC {
            prop_assert!(result.is_err());
        }
    }

    // Lying section length fields: growing or shrinking the declared
    // PIPE length desynchronizes the framing and must be rejected.
    #[test]
    fn lying_section_lengths_are_rejected(
        state in arb_state(),
        delta in (0usize..4).prop_map(|i| [1u32, u32::MAX, 8, 0x7FFF_FFFF][i]),
    ) {
        let bytes = encode(&state);
        let len_at = HEADER_FIXED + state.backend.len() + "cam05".len() + 4;
        let mut bad = bytes.clone();
        let declared = u32::from_le_bytes(bad[len_at..len_at + 4].try_into().unwrap());
        bad[len_at..len_at + 4].copy_from_slice(&declared.wrapping_add(delta).to_le_bytes());
        prop_assert!(read_snapshot(&bad).is_err(), "lying PIPE length +{delta} must not decode");
    }
}

#[test]
fn wrong_magic_is_rejected_with_the_found_bytes() {
    let state = SessionState {
        backend: "ebbiot".into(),
        frames_processed: 1,
        next_index: 1,
        active_tracker_sum: 0,
        pending: Vec::new(),
        last_pushed_t: Some(5),
        frontend_ops: None,
        tracker: vec![9; 16],
    };
    let mut bytes = encode(&state);
    bytes[..4].copy_from_slice(b"EBST"); // right family, wrong format
    match read_snapshot(&bytes) {
        Err(SnapshotError::BadMagic(found)) => assert_eq!(&found, b"EBST"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_version_is_rejected() {
    let state = SessionState {
        backend: "ebbiot".into(),
        frames_processed: 0,
        next_index: 0,
        active_tracker_sum: 0,
        pending: Vec::new(),
        last_pushed_t: None,
        frontend_ops: None,
        tracker: Vec::new(),
    };
    let mut bytes = encode(&state);
    bytes[4..6].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    assert!(matches!(read_snapshot(&bytes), Err(SnapshotError::UnsupportedVersion(v)) if v == 2));
}

#[test]
fn non_utf8_names_are_rejected() {
    let state = SessionState {
        backend: "ebbiot".into(),
        frames_processed: 0,
        next_index: 0,
        active_tracker_sum: 0,
        pending: Vec::new(),
        last_pushed_t: None,
        frontend_ops: None,
        tracker: Vec::new(),
    };
    let mut bytes = encode(&state);
    bytes[HEADER_FIXED] = 0xFF; // first byte of the backend name
    assert!(matches!(read_snapshot(&bytes), Err(SnapshotError::BadName)));
}

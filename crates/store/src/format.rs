//! The `EBST` wire format: constants, varint/zigzag coding, CRC32 and
//! the chunk payload codec.
//!
//! See the [crate docs](crate) for the full layout specification. This
//! module owns everything byte-level; the [`writer`](crate::writer) and
//! [`reader`](crate::reader) modules only frame and stream it.

use ebbiot_events::{Event, Polarity, SensorGeometry, Timestamp};

/// Magic bytes opening an `EBST` file.
pub const MAGIC: [u8; 4] = *b"EBST";
/// Magic bytes closing the footer (read backwards from EOF).
pub const END_MAGIC: [u8; 4] = *b"EBSX";
/// Current format version.
pub const VERSION: u16 = 1;
/// Size of the fixed header prefix (magic, version, width, height,
/// name length, span), excluding the variable-length stream name.
pub const HEADER_FIXED_BYTES: usize = 20;
/// Size of one chunk frame (count, t\_first, t\_last, payload length,
/// CRC32), excluding the payload itself.
pub const CHUNK_FRAME_BYTES: usize = 28;
/// Size of one chunk-index entry (offset, count, t\_first, t\_last).
pub const INDEX_ENTRY_BYTES: usize = 28;
/// Size of the trailing footer (total events, index offset, chunk
/// count, index CRC32, end magic).
pub const FOOTER_BYTES: usize = 28;
/// Upper bound on encoded bytes per event (worst-case varints for the
/// timestamp delta plus both coordinate deltas); used to reject
/// nonsensical payload lengths before allocating.
pub const MAX_EVENT_BYTES: usize = 10 + 3 + 3;

/// Everything that can go wrong reading or writing a store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// Input ended before a complete header.
    TruncatedHeader,
    /// Header magic did not match [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported format version.
    UnsupportedVersion(u16),
    /// The stream name was not valid UTF-8.
    BadName,
    /// The stream name exceeds the `u16` length field.
    NameTooLong(usize),
    /// The trailing footer is missing, truncated or mis-magicked.
    BadFooter,
    /// The chunk index does not match its stored CRC32.
    IndexCrcMismatch,
    /// A chunk payload does not match its stored CRC32.
    ChunkCrcMismatch {
        /// Zero-based chunk number.
        chunk: usize,
    },
    /// A chunk's frame or payload is internally inconsistent.
    CorruptChunk {
        /// Zero-based chunk number.
        chunk: usize,
        /// What was inconsistent.
        reason: &'static str,
    },
    /// A decoded event lies outside the header's sensor geometry.
    OutOfBounds {
        /// Zero-based chunk number.
        chunk: usize,
        /// Decoded column, possibly negative after a corrupt delta.
        x: i64,
        /// Decoded row, possibly negative after a corrupt delta.
        y: i64,
    },
    /// A fleet manifest is missing, malformed, or a stream name cannot
    /// be represented in it.
    BadManifest {
        /// What was wrong.
        reason: &'static str,
    },
    /// Events handed to the writer were not time-ordered.
    NotTimeOrdered,
    /// An event handed to the writer lies outside the store's geometry.
    EventOutOfBounds {
        /// Offending column.
        x: u16,
        /// Offending row.
        y: u16,
    },
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::TruncatedHeader => write!(f, "input shorter than an EBST header"),
            StoreError::BadMagic(m) => write!(f, "bad EBST magic bytes {m:?}"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported EBST version {v}"),
            StoreError::BadName => write!(f, "stream name is not valid UTF-8"),
            StoreError::NameTooLong(n) => write!(f, "stream name of {n} bytes exceeds u16"),
            StoreError::BadFooter => write!(f, "missing or corrupt EBST footer"),
            StoreError::IndexCrcMismatch => write!(f, "chunk index fails its CRC32"),
            StoreError::ChunkCrcMismatch { chunk } => {
                write!(f, "chunk {chunk} payload fails its CRC32")
            }
            StoreError::CorruptChunk { chunk, reason } => {
                write!(f, "chunk {chunk} is corrupt: {reason}")
            }
            StoreError::OutOfBounds { chunk, x, y } => {
                write!(f, "chunk {chunk} decodes event at ({x}, {y}) outside the sensor array")
            }
            StoreError::BadManifest { reason } => write!(f, "bad fleet manifest: {reason}"),
            StoreError::NotTimeOrdered => write!(f, "events written out of timestamp order"),
            StoreError::EventOutOfBounds { x, y } => {
                write!(f, "event at ({x}, {y}) outside the store's sensor array")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One chunk's entry in the trailing index: where it starts and what
/// time span it covers, enough to seek without decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Byte offset of the chunk frame from the start of the file.
    pub offset: u64,
    /// Number of events in the chunk (always > 0).
    pub count: u32,
    /// Timestamp of the chunk's first event.
    pub t_first: Timestamp,
    /// Timestamp of the chunk's last event.
    pub t_last: Timestamp,
}

/// The decoded stream header of an `EBST` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreHeader {
    /// Sensor geometry the events were recorded on.
    pub geometry: SensorGeometry,
    /// Nominal recording span in microseconds (what replay hands to
    /// `finish`); 0 when unknown.
    pub span_us: u64,
    /// Stream name (e.g. `"LT4-cam03"`); may be empty.
    pub name: String,
}

// --- varint / zigzag ---------------------------------------------------

/// Appends `v` as a little-endian base-128 varint (LEB128, ≤ 10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint from `buf` at `*pos`, advancing `*pos`.
///
/// Returns `None` on a truncated or over-long (> 10 byte) encoding.
#[must_use]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Maps a signed delta onto an unsigned varint-friendly value
/// (0, -1, 1, -2, … → 0, 1, 2, 3, …).
#[must_use]
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// --- CRC32 -------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

// --- chunk payload codec ----------------------------------------------

/// Encodes one chunk's events into `out` (cleared first).
///
/// Within a chunk the stream is delta-coded against a running
/// predecessor: the timestamp delta (from `t_first` for the first
/// event) as a plain varint, the column delta zigzagged, and the row
/// delta zigzagged with the polarity bit packed into bit 0. Chunks are
/// therefore self-contained — decoding needs nothing but the frame's
/// `t_first`.
///
/// # Panics
///
/// Panics when `events` is empty or not time-ordered — the writer
/// validates both before framing a chunk.
pub fn encode_chunk_payload(out: &mut Vec<u8>, events: &[Event]) {
    out.clear();
    let mut prev_t = events.first().expect("chunks are never empty").t;
    let (mut prev_x, mut prev_y) = (0i64, 0i64);
    for e in events {
        assert!(e.t >= prev_t, "chunk events must be time-ordered");
        write_varint(out, e.t - prev_t);
        write_varint(out, zigzag(i64::from(e.x) - prev_x));
        write_varint(out, zigzag(i64::from(e.y) - prev_y) << 1 | u64::from(e.polarity.bit()));
        prev_t = e.t;
        prev_x = i64::from(e.x);
        prev_y = i64::from(e.y);
    }
}

/// Decodes a chunk payload into `out` (cleared first), validating
/// bounds against `geometry` and consistency with the frame's `count`,
/// `t_first` and `t_last`.
///
/// # Errors
///
/// Returns [`StoreError::CorruptChunk`] or [`StoreError::OutOfBounds`]
/// (tagged with `chunk`) on the first inconsistency.
pub fn decode_chunk_payload(
    out: &mut Vec<Event>,
    payload: &[u8],
    chunk: usize,
    geometry: SensorGeometry,
    count: u32,
    t_first: Timestamp,
    t_last: Timestamp,
) -> Result<(), StoreError> {
    let corrupt = |reason| StoreError::CorruptChunk { chunk, reason };
    // Each event costs at least 3 payload bytes (three one-byte
    // varints), so an attacker-controlled `count` far beyond the
    // payload is corruption — reject it *before* reserving memory for
    // it.
    if (payload.len() as u64) < u64::from(count) * 3 {
        return Err(corrupt("payload too short for event count"));
    }
    out.clear();
    out.reserve(count as usize);
    let mut pos = 0usize;
    let mut t = t_first;
    let (mut x, mut y) = (0i64, 0i64);
    for i in 0..count {
        let dt = read_varint(payload, &mut pos).ok_or_else(|| corrupt("truncated varint"))?;
        let dx = read_varint(payload, &mut pos).ok_or_else(|| corrupt("truncated varint"))?;
        let dyp = read_varint(payload, &mut pos).ok_or_else(|| corrupt("truncated varint"))?;
        t = t.checked_add(dt).ok_or_else(|| corrupt("timestamp overflow"))?;
        if i == 0 && dt != 0 {
            return Err(corrupt("first event does not start at t_first"));
        }
        x = x.checked_add(unzigzag(dx)).ok_or_else(|| corrupt("column delta overflow"))?;
        y = y.checked_add(unzigzag(dyp >> 1)).ok_or_else(|| corrupt("row delta overflow"))?;
        let polarity = Polarity::from_bit((dyp & 1) as u8);
        let on_array = (0..i64::from(geometry.width())).contains(&x)
            && (0..i64::from(geometry.height())).contains(&y);
        if !on_array {
            return Err(StoreError::OutOfBounds { chunk, x, y });
        }
        out.push(Event::new(x as u16, y as u16, t, polarity));
    }
    if pos != payload.len() {
        return Err(corrupt("trailing bytes after last event"));
    }
    if t != t_last {
        return Err(corrupt("last event does not end at t_last"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundary_values() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None, "continuation with no next byte");
        let mut pos = 0;
        assert_eq!(read_varint(&[0xff; 11], &mut pos), None, "over-long encoding");
        let mut pos = 0;
        // 10th byte with a value that would push past 64 bits.
        let mut buf = vec![0xff; 9];
        buf.push(0x02);
        assert_eq!(read_varint(&buf, &mut pos), None, "u64 overflow");
    }

    #[test]
    fn zigzag_is_involutive_and_small_for_small_magnitudes() {
        for v in [0i64, 1, -1, 2, -2, 239, -239, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    fn sample() -> Vec<Event> {
        vec![
            Event::on(10, 20, 1_000),
            Event::off(11, 20, 1_000),
            Event::on(0, 0, 1_005),
            Event::off(239, 179, 66_000),
        ]
    }

    #[test]
    fn chunk_payload_round_trips() {
        let events = sample();
        let mut payload = Vec::new();
        encode_chunk_payload(&mut payload, &events);
        let mut decoded = Vec::new();
        decode_chunk_payload(
            &mut decoded,
            &payload,
            0,
            SensorGeometry::davis240(),
            events.len() as u32,
            events[0].t,
            events.last().unwrap().t,
        )
        .unwrap();
        assert_eq!(decoded, events);
        // Dense traffic-like deltas stay far below the flat 14 B/event.
        assert!(payload.len() < events.len() * 8, "{} bytes", payload.len());
    }

    #[test]
    fn decode_rejects_out_of_bounds_after_corruption() {
        let events = sample();
        let mut payload = Vec::new();
        encode_chunk_payload(&mut payload, &events);
        let mut decoded = Vec::new();
        let err = decode_chunk_payload(
            &mut decoded,
            &payload,
            3,
            SensorGeometry::new(8, 8), // smaller array than encoded for
            events.len() as u32,
            events[0].t,
            events.last().unwrap().t,
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::OutOfBounds { chunk: 3, .. }), "{err}");
    }

    #[test]
    fn decode_rejects_truncated_and_trailing_payloads() {
        let events = sample();
        let mut payload = Vec::new();
        encode_chunk_payload(&mut payload, &events);
        let geometry = SensorGeometry::davis240();
        let (n, t0, t1) = (events.len() as u32, events[0].t, events.last().unwrap().t);
        let mut decoded = Vec::new();

        let err = decode_chunk_payload(
            &mut decoded,
            &payload[..payload.len() - 1],
            0,
            geometry,
            n,
            t0,
            t1,
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::CorruptChunk { .. }), "{err}");

        let mut trailing = payload.clone();
        trailing.push(0);
        let err =
            decode_chunk_payload(&mut decoded, &trailing, 0, geometry, n, t0, t1).unwrap_err();
        assert!(matches!(err, StoreError::CorruptChunk { reason, .. }
                if reason.contains("trailing")));
    }

    #[test]
    fn decode_rejects_absurd_event_counts_before_allocating() {
        // A corrupt frame can claim u32::MAX events with a tiny
        // payload; that must be an error, not a ~68 GB reserve.
        let mut decoded = Vec::new();
        let err = decode_chunk_payload(
            &mut decoded,
            &[0, 0, 0],
            0,
            SensorGeometry::davis240(),
            u32::MAX,
            0,
            0,
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::CorruptChunk { reason, .. }
                if reason.contains("too short")));
        assert_eq!(decoded.capacity(), 0, "nothing was reserved");
    }

    #[test]
    fn decode_rejects_span_mismatch() {
        let events = sample();
        let mut payload = Vec::new();
        encode_chunk_payload(&mut payload, &events);
        let mut decoded = Vec::new();
        let err = decode_chunk_payload(
            &mut decoded,
            &payload,
            0,
            SensorGeometry::davis240(),
            events.len() as u32,
            events[0].t,
            events.last().unwrap().t + 7,
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::CorruptChunk { reason, .. }
                if reason.contains("t_last")));
    }

    #[test]
    fn error_display_is_informative() {
        let e = StoreError::OutOfBounds { chunk: 2, x: -3, y: 400 };
        assert!(e.to_string().contains("chunk 2"));
        assert!(StoreError::BadFooter.to_string().contains("footer"));
    }
}

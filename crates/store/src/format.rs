//! The `EBST` wire format: constants, varint/zigzag coding, CRC32 and
//! the chunk payload codec.
//!
//! See the [crate docs](crate) for the full layout specification. This
//! module owns everything byte-level; the [`writer`](crate::writer) and
//! [`reader`](crate::reader) modules only frame and stream it.

use ebbiot_events::{Event, Polarity, SensorGeometry, Timestamp};

/// Magic bytes opening an `EBST` file.
pub const MAGIC: [u8; 4] = *b"EBST";
/// Magic bytes closing the footer (read backwards from EOF).
pub const END_MAGIC: [u8; 4] = *b"EBSX";
/// Current format version.
pub const VERSION: u16 = 1;
/// Size of the fixed header prefix (magic, version, width, height,
/// name length, span), excluding the variable-length stream name.
pub const HEADER_FIXED_BYTES: usize = 20;
/// Size of one chunk frame (count, t\_first, t\_last, payload length,
/// CRC32), excluding the payload itself.
pub const CHUNK_FRAME_BYTES: usize = 28;
/// Size of one chunk-index entry (offset, count, t\_first, t\_last).
pub const INDEX_ENTRY_BYTES: usize = 28;
/// Size of the trailing footer (total events, index offset, chunk
/// count, index CRC32, end magic).
pub const FOOTER_BYTES: usize = 28;
/// Upper bound on encoded bytes per event (worst-case varints for the
/// timestamp delta plus both coordinate deltas); used to reject
/// nonsensical payload lengths before allocating.
pub const MAX_EVENT_BYTES: usize = 10 + 3 + 3;

/// Everything that can go wrong reading or writing a store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// Input ended before a complete header.
    TruncatedHeader,
    /// Header magic did not match [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported format version.
    UnsupportedVersion(u16),
    /// The stream name was not valid UTF-8.
    BadName,
    /// The stream name exceeds the `u16` length field.
    NameTooLong(usize),
    /// The trailing footer is missing, truncated or mis-magicked.
    BadFooter,
    /// The chunk index does not match its stored CRC32.
    IndexCrcMismatch,
    /// A chunk payload does not match its stored CRC32.
    ChunkCrcMismatch {
        /// Zero-based chunk number.
        chunk: usize,
    },
    /// A chunk's frame or payload is internally inconsistent.
    CorruptChunk {
        /// Zero-based chunk number.
        chunk: usize,
        /// What was inconsistent.
        reason: &'static str,
    },
    /// A decoded event lies outside the header's sensor geometry.
    OutOfBounds {
        /// Zero-based chunk number.
        chunk: usize,
        /// Decoded column, possibly negative after a corrupt delta.
        x: i64,
        /// Decoded row, possibly negative after a corrupt delta.
        y: i64,
    },
    /// A fleet manifest is missing, malformed, or a stream name cannot
    /// be represented in it.
    BadManifest {
        /// What was wrong.
        reason: &'static str,
    },
    /// Events handed to the writer were not time-ordered.
    NotTimeOrdered,
    /// An event handed to the writer lies outside the store's geometry.
    EventOutOfBounds {
        /// Offending column.
        x: u16,
        /// Offending row.
        y: u16,
    },
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::TruncatedHeader => write!(f, "input shorter than an EBST header"),
            StoreError::BadMagic(m) => write!(f, "bad EBST magic bytes {m:?}"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported EBST version {v}"),
            StoreError::BadName => write!(f, "stream name is not valid UTF-8"),
            StoreError::NameTooLong(n) => write!(f, "stream name of {n} bytes exceeds u16"),
            StoreError::BadFooter => write!(f, "missing or corrupt EBST footer"),
            StoreError::IndexCrcMismatch => write!(f, "chunk index fails its CRC32"),
            StoreError::ChunkCrcMismatch { chunk } => {
                write!(f, "chunk {chunk} payload fails its CRC32")
            }
            StoreError::CorruptChunk { chunk, reason } => {
                write!(f, "chunk {chunk} is corrupt: {reason}")
            }
            StoreError::OutOfBounds { chunk, x, y } => {
                write!(f, "chunk {chunk} decodes event at ({x}, {y}) outside the sensor array")
            }
            StoreError::BadManifest { reason } => write!(f, "bad fleet manifest: {reason}"),
            StoreError::NotTimeOrdered => write!(f, "events written out of timestamp order"),
            StoreError::EventOutOfBounds { x, y } => {
                write!(f, "event at ({x}, {y}) outside the store's sensor array")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One chunk's entry in the trailing index: where it starts and what
/// time span it covers, enough to seek without decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Byte offset of the chunk frame from the start of the file.
    pub offset: u64,
    /// Number of events in the chunk (always > 0).
    pub count: u32,
    /// Timestamp of the chunk's first event.
    pub t_first: Timestamp,
    /// Timestamp of the chunk's last event.
    pub t_last: Timestamp,
}

/// The decoded stream header of an `EBST` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreHeader {
    /// Sensor geometry the events were recorded on.
    pub geometry: SensorGeometry,
    /// Nominal recording span in microseconds (what replay hands to
    /// `finish`); 0 when unknown.
    pub span_us: u64,
    /// Stream name (e.g. `"LT4-cam03"`); may be empty.
    pub name: String,
}

// --- varint / zigzag ---------------------------------------------------

/// Appends `v` as a little-endian base-128 varint (LEB128, ≤ 10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint from `buf` at `*pos`, advancing `*pos`.
///
/// Returns `None` on a truncated or over-long (> 10 byte) encoding.
#[must_use]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Continuation-bit mask over eight little-endian varint bytes.
const VARINT_CONT: u64 = 0x8080_8080_8080_8080;

/// Branch-light varint read via one unaligned little-endian `u64` load
/// and trailing-zero dispatch on the continuation bits. The caller must
/// guarantee **at least 8 readable bytes** at `*pos`; varints longer
/// than 8 bytes (values ≥ 2^56) fall back to [`read_varint`], which
/// also owns the overflow/over-length rejection.
///
/// Bit-for-bit equivalent to [`read_varint`] whenever both apply: same
/// `Some`/`None` outcome, same value, same `*pos` advance — the decode
/// parity suite depends on that.
#[inline]
fn read_varint_word(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let p = *pos;
    let word = u64::from_le_bytes(buf[p..p + 8].try_into().expect("len 8"));
    let stops = !word & VARINT_CONT;
    if stops == 0 {
        // 9- or 10-byte encoding (or corruption): rare, let the byte
        // loop handle it together with its overflow checks.
        return read_varint(buf, pos);
    }
    // First byte with a clear continuation bit ends the varint.
    let len = (stops.trailing_zeros() >> 3) + 1; // 1..=8
    let keep = word & (u64::MAX >> (64 - 8 * len));
    // Strip the continuation bits: byte i contributes its low 7 bits at
    // bit position 7*i, i.e. (keep >> 8i & 0x7f) << 7i == keep >> i
    // masked to the 7-bit lane. Constant 8 ops, no per-byte branch.
    let value = (keep & 0x7f)
        | ((keep >> 1) & (0x7f << 7))
        | ((keep >> 2) & (0x7f << 14))
        | ((keep >> 3) & (0x7f << 21))
        | ((keep >> 4) & (0x7f << 28))
        | ((keep >> 5) & (0x7f << 35))
        | ((keep >> 6) & (0x7f << 42))
        | ((keep >> 7) & (0x7f << 49));
    *pos = p + len as usize;
    Some(value)
}

/// Maps a signed delta onto an unsigned varint-friendly value
/// (0, -1, 1, -2, … → 0, 1, 2, 3, …).
#[must_use]
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// --- CRC32 -------------------------------------------------------------

/// Slice-by-8 lookup tables: `CRC_TABLES[0]` is the classic one-byte
/// table; `CRC_TABLES[k][b]` is the CRC of byte `b` followed by `k`
/// zero bytes, which is what lets eight input bytes be folded per
/// iteration instead of one.
const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut i = 0;
    while i < 256 {
        let mut crc = tables[0][i];
        let mut k = 1;
        while k < 8 {
            crc = tables[0][(crc & 0xff) as usize] ^ (crc >> 8);
            tables[k][i] = crc;
            k += 1;
        }
        i += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
///
/// Folds eight bytes per table round (slice-by-8) — it runs over every
/// chunk payload and index on both the store and wire paths, so it is
/// hot. Bit-identical to [`crc32_reference`], which the property tests
/// enforce.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("len 4")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("len 4"));
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Byte-at-a-time CRC-32 — the obviously-correct reference the
/// slice-by-8 [`crc32`] is property-tested against. Not used on any hot
/// path.
#[must_use]
pub fn crc32_reference(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = CRC_TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

// --- chunk payload codec ----------------------------------------------

/// Encodes one chunk's events into `out` (cleared first).
///
/// Within a chunk the stream is delta-coded against a running
/// predecessor: the timestamp delta (from `t_first` for the first
/// event) as a plain varint, the column delta zigzagged, and the row
/// delta zigzagged with the polarity bit packed into bit 0. Chunks are
/// therefore self-contained — decoding needs nothing but the frame's
/// `t_first`.
///
/// # Panics
///
/// Panics when `events` is empty or not time-ordered — the writer
/// validates both before framing a chunk.
pub fn encode_chunk_payload(out: &mut Vec<u8>, events: &[Event]) {
    out.clear();
    let mut prev_t = events.first().expect("chunks are never empty").t;
    let (mut prev_x, mut prev_y) = (0i64, 0i64);
    for e in events {
        assert!(e.t >= prev_t, "chunk events must be time-ordered");
        write_varint(out, e.t - prev_t);
        write_varint(out, zigzag(i64::from(e.x) - prev_x));
        write_varint(out, zigzag(i64::from(e.y) - prev_y) << 1 | u64::from(e.polarity.bit()));
        prev_t = e.t;
        prev_x = i64::from(e.x);
        prev_y = i64::from(e.y);
    }
}

/// Decodes a chunk payload into `out` (cleared first), validating
/// bounds against `geometry` and consistency with the frame's `count`,
/// `t_first` and `t_last`.
///
/// This is the **scalar reference decoder** — one byte-loop varint at a
/// time, kept deliberately simple. Hot paths (the store reader and the
/// `EBWP` EVENTS path) use [`decode_chunk_payload_fast`], which is
/// property-tested bit-exact against this function, accepted payloads
/// and rejected ones alike.
///
/// # Errors
///
/// Returns [`StoreError::CorruptChunk`] or [`StoreError::OutOfBounds`]
/// (tagged with `chunk`) on the first inconsistency.
pub fn decode_chunk_payload(
    out: &mut Vec<Event>,
    payload: &[u8],
    chunk: usize,
    geometry: SensorGeometry,
    count: u32,
    t_first: Timestamp,
    t_last: Timestamp,
) -> Result<(), StoreError> {
    let corrupt = |reason| StoreError::CorruptChunk { chunk, reason };
    // Each event costs at least 3 payload bytes (three one-byte
    // varints), so an attacker-controlled `count` far beyond the
    // payload is corruption — reject it *before* reserving memory for
    // it.
    if (payload.len() as u64) < u64::from(count) * 3 {
        return Err(corrupt("payload too short for event count"));
    }
    out.clear();
    out.reserve(count as usize);
    let mut pos = 0usize;
    let mut t = t_first;
    let (mut x, mut y) = (0i64, 0i64);
    for i in 0..count {
        let dt = read_varint(payload, &mut pos).ok_or_else(|| corrupt("truncated varint"))?;
        let dx = read_varint(payload, &mut pos).ok_or_else(|| corrupt("truncated varint"))?;
        let dyp = read_varint(payload, &mut pos).ok_or_else(|| corrupt("truncated varint"))?;
        t = t.checked_add(dt).ok_or_else(|| corrupt("timestamp overflow"))?;
        if i == 0 && dt != 0 {
            return Err(corrupt("first event does not start at t_first"));
        }
        x = x.checked_add(unzigzag(dx)).ok_or_else(|| corrupt("column delta overflow"))?;
        y = y.checked_add(unzigzag(dyp >> 1)).ok_or_else(|| corrupt("row delta overflow"))?;
        let polarity = Polarity::from_bit((dyp & 1) as u8);
        let on_array = (0..i64::from(geometry.width())).contains(&x)
            && (0..i64::from(geometry.height())).contains(&y);
        if !on_array {
            return Err(StoreError::OutOfBounds { chunk, x, y });
        }
        out.push(Event::new(x as u16, y as u16, t, polarity));
    }
    if pos != payload.len() {
        return Err(corrupt("trailing bytes after last event"));
    }
    if t != t_last {
        return Err(corrupt("last event does not end at t_last"));
    }
    Ok(())
}

/// Batched, branch-light variant of [`decode_chunk_payload`]: the hot
/// decoder behind [`ChunkReader`](crate::ChunkReader) and the `EBWP`
/// EVENTS path.
///
/// While at least [`MAX_EVENT_BYTES`] × 2 bytes remain, the three
/// varints of an event are read via unaligned `u64` loads and
/// trailing-zero dispatch (`read_varint_word`) with the slice bound
/// hoisted to one per-event check; the payload tail falls back to the
/// byte loop. Decodes straight into the reused `out` buffer with one
/// upfront `reserve`.
///
/// Bit-for-bit equivalent to the scalar reference: identical events for
/// every valid payload and the identical error (variant, reason and
/// position of first rejection) for every corrupt one —
/// `tests/decode_parity.rs` proves both properties over random and
/// hostile inputs.
///
/// # Errors
///
/// Exactly those of [`decode_chunk_payload`].
pub fn decode_chunk_payload_fast(
    out: &mut Vec<Event>,
    payload: &[u8],
    chunk: usize,
    geometry: SensorGeometry,
    count: u32,
    t_first: Timestamp,
    t_last: Timestamp,
) -> Result<(), StoreError> {
    let corrupt = |reason| StoreError::CorruptChunk { chunk, reason };
    if (payload.len() as u64) < u64::from(count) * 3 {
        return Err(corrupt("payload too short for event count"));
    }
    out.clear();
    out.reserve(count as usize);
    // Hoisted per-chunk constants: geometry as i64 bounds and the
    // fast-loop watermark. Three varints cost at most 10 + 3 + 3 bytes
    // (MAX_EVENT_BYTES), but each word read wants ≥ 8 readable bytes
    // after a ≤ 10-byte predecessor, so 2 × MAX_EVENT_BYTES is a safe
    // (and still tight) floor for a whole event.
    let width = i64::from(geometry.width());
    let height = i64::from(geometry.height());
    let mut pos = 0usize;
    let mut t = t_first;
    let (mut x, mut y) = (0i64, 0i64);
    let mut i = 0u32;
    while i < count {
        let (dt, dx, dyp);
        if payload.len() - pos >= 2 * MAX_EVENT_BYTES {
            let word = u64::from_le_bytes(payload[pos..pos + 8].try_into().expect("len 8"));
            if word & 0x0080_8080 == 0 {
                // The modal event: all three varints are single-byte
                // (dt < 128, |dx| ≤ 63, |dy| ≤ 31 with the polarity
                // bit) — decode the whole triple from the one load.
                dt = word & 0x7f;
                dx = (word >> 8) & 0x7f;
                dyp = (word >> 16) & 0x7f;
                pos += 3;
            } else {
                dt = read_varint_word(payload, &mut pos)
                    .ok_or_else(|| corrupt("truncated varint"))?;
                dx = read_varint_word(payload, &mut pos)
                    .ok_or_else(|| corrupt("truncated varint"))?;
                dyp = read_varint_word(payload, &mut pos)
                    .ok_or_else(|| corrupt("truncated varint"))?;
            }
        } else {
            dt = read_varint(payload, &mut pos).ok_or_else(|| corrupt("truncated varint"))?;
            dx = read_varint(payload, &mut pos).ok_or_else(|| corrupt("truncated varint"))?;
            dyp = read_varint(payload, &mut pos).ok_or_else(|| corrupt("truncated varint"))?;
        }
        t = t.checked_add(dt).ok_or_else(|| corrupt("timestamp overflow"))?;
        if i == 0 && dt != 0 {
            return Err(corrupt("first event does not start at t_first"));
        }
        x = x.checked_add(unzigzag(dx)).ok_or_else(|| corrupt("column delta overflow"))?;
        y = y.checked_add(unzigzag(dyp >> 1)).ok_or_else(|| corrupt("row delta overflow"))?;
        if !((0..width).contains(&x) && (0..height).contains(&y)) {
            return Err(StoreError::OutOfBounds { chunk, x, y });
        }
        out.push(Event::new(x as u16, y as u16, t, Polarity::from_bit((dyp & 1) as u8)));
        i += 1;
    }
    if pos != payload.len() {
        return Err(corrupt("trailing bytes after last event"));
    }
    if t != t_last {
        return Err(corrupt("last event does not end at t_last"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundary_values() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None, "continuation with no next byte");
        let mut pos = 0;
        assert_eq!(read_varint(&[0xff; 11], &mut pos), None, "over-long encoding");
        let mut pos = 0;
        // 10th byte with a value that would push past 64 bits.
        let mut buf = vec![0xff; 9];
        buf.push(0x02);
        assert_eq!(read_varint(&buf, &mut pos), None, "u64 overflow");
    }

    #[test]
    fn zigzag_is_involutive_and_small_for_small_magnitudes() {
        for v in [0i64, 1, -1, 2, -2, 239, -239, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_reference(b""), 0);
        assert_eq!(crc32_reference(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_slice_by_8_matches_reference_across_lengths() {
        // Every length 0..64 exercises all remainder sizes around the
        // 8-byte folding boundary.
        let bytes: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(97) ^ (i >> 3)) as u8).collect();
        for len in 0..=bytes.len() {
            assert_eq!(crc32(&bytes[..len]), crc32_reference(&bytes[..len]), "len {len}");
        }
    }

    #[test]
    fn varint_word_read_matches_byte_loop() {
        // Boundary values at every varint length, padded so the word
        // loader always has 8 readable bytes.
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            (1 << 28) - 1,
            1 << 35,
            (1 << 56) - 1,
            (1 << 56),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            buf.resize(buf.len() + 10, 0x55);
            let (mut fast_pos, mut slow_pos) = (0usize, 0usize);
            assert_eq!(read_varint_word(&buf, &mut fast_pos), Some(v));
            assert_eq!(read_varint(&buf, &mut slow_pos), Some(v));
            assert_eq!(fast_pos, slow_pos, "value {v}");
        }
        // Non-canonical (padded) encodings decode identically too.
        let buf = [0x80, 0x80, 0x00, 0, 0, 0, 0, 0, 0, 0];
        let (mut fast_pos, mut slow_pos) = (0usize, 0usize);
        assert_eq!(read_varint_word(&buf, &mut fast_pos), Some(0));
        assert_eq!(read_varint(&buf, &mut slow_pos), Some(0));
        assert_eq!(fast_pos, slow_pos);
    }

    fn sample() -> Vec<Event> {
        vec![
            Event::on(10, 20, 1_000),
            Event::off(11, 20, 1_000),
            Event::on(0, 0, 1_005),
            Event::off(239, 179, 66_000),
        ]
    }

    #[test]
    fn chunk_payload_round_trips() {
        let events = sample();
        let mut payload = Vec::new();
        encode_chunk_payload(&mut payload, &events);
        let mut decoded = Vec::new();
        decode_chunk_payload(
            &mut decoded,
            &payload,
            0,
            SensorGeometry::davis240(),
            events.len() as u32,
            events[0].t,
            events.last().unwrap().t,
        )
        .unwrap();
        assert_eq!(decoded, events);
        // Dense traffic-like deltas stay far below the flat 14 B/event.
        assert!(payload.len() < events.len() * 8, "{} bytes", payload.len());
    }

    #[test]
    fn decode_rejects_out_of_bounds_after_corruption() {
        let events = sample();
        let mut payload = Vec::new();
        encode_chunk_payload(&mut payload, &events);
        let mut decoded = Vec::new();
        let err = decode_chunk_payload(
            &mut decoded,
            &payload,
            3,
            SensorGeometry::new(8, 8), // smaller array than encoded for
            events.len() as u32,
            events[0].t,
            events.last().unwrap().t,
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::OutOfBounds { chunk: 3, .. }), "{err}");
    }

    #[test]
    fn decode_rejects_truncated_and_trailing_payloads() {
        let events = sample();
        let mut payload = Vec::new();
        encode_chunk_payload(&mut payload, &events);
        let geometry = SensorGeometry::davis240();
        let (n, t0, t1) = (events.len() as u32, events[0].t, events.last().unwrap().t);
        let mut decoded = Vec::new();

        let err = decode_chunk_payload(
            &mut decoded,
            &payload[..payload.len() - 1],
            0,
            geometry,
            n,
            t0,
            t1,
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::CorruptChunk { .. }), "{err}");

        let mut trailing = payload.clone();
        trailing.push(0);
        let err =
            decode_chunk_payload(&mut decoded, &trailing, 0, geometry, n, t0, t1).unwrap_err();
        assert!(matches!(err, StoreError::CorruptChunk { reason, .. }
                if reason.contains("trailing")));
    }

    #[test]
    fn decode_rejects_absurd_event_counts_before_allocating() {
        // A corrupt frame can claim u32::MAX events with a tiny
        // payload; that must be an error, not a ~68 GB reserve.
        let mut decoded = Vec::new();
        let err = decode_chunk_payload(
            &mut decoded,
            &[0, 0, 0],
            0,
            SensorGeometry::davis240(),
            u32::MAX,
            0,
            0,
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::CorruptChunk { reason, .. }
                if reason.contains("too short")));
        assert_eq!(decoded.capacity(), 0, "nothing was reserved");
    }

    #[test]
    fn decode_rejects_span_mismatch() {
        let events = sample();
        let mut payload = Vec::new();
        encode_chunk_payload(&mut payload, &events);
        let mut decoded = Vec::new();
        let err = decode_chunk_payload(
            &mut decoded,
            &payload,
            0,
            SensorGeometry::davis240(),
            events.len() as u32,
            events[0].t,
            events.last().unwrap().t + 7,
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::CorruptChunk { reason, .. }
                if reason.contains("t_last")));
    }

    #[test]
    fn error_display_is_informative() {
        let e = StoreError::OutOfBounds { chunk: 2, x: -3, y: 400 };
        assert!(e.to_string().contains("chunk 2"));
        assert!(StoreError::BadFooter.to_string().contains("footer"));
    }
}

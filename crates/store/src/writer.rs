//! [`RecordingWriter`]: streams events into a chunked `EBST` file.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use ebbiot_events::{codec::Recording, Event, Micros, SensorGeometry, Timestamp};

use crate::format::{
    crc32, encode_chunk_payload, ChunkMeta, StoreError, END_MAGIC, MAGIC, VERSION,
};

/// Store tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Events per chunk — the seek granularity and the most a reader
    /// ever holds in memory per stream. Clamped to at least 1.
    pub chunk_events: usize,
}

impl StoreOptions {
    /// Overrides the chunk size, builder style.
    #[must_use]
    pub const fn with_chunk_events(mut self, chunk_events: usize) -> Self {
        self.chunk_events = chunk_events;
        self
    }
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self { chunk_events: 16_384 }
    }
}

/// What a finished writer produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    /// Total events written.
    pub events: u64,
    /// Chunks written.
    pub chunks: usize,
    /// Total file size in bytes (header + chunks + index + footer).
    pub bytes: u64,
}

impl StoreSummary {
    /// Mean encoded bytes per event (whole file over event count).
    #[must_use]
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            self.bytes as f64
        } else {
            self.bytes as f64 / self.events as f64
        }
    }
}

/// Streams time-ordered events into an `EBST` sink, framing them into
/// delta-coded chunks and appending the seek index on
/// [`RecordingWriter::finish`].
///
/// The writer is append-only (`W: Write` suffices — no seeking): the
/// footer carries the index offset, so readers find the index from the
/// end of the file.
///
/// ```
/// use ebbiot_events::{Event, SensorGeometry};
/// use ebbiot_store::{RecordingWriter, StoreOptions};
///
/// let geometry = SensorGeometry::davis240();
/// let options = StoreOptions::default().with_chunk_events(100);
/// let mut writer = RecordingWriter::new(Vec::new(), geometry, "cam00", 66_000, options)?;
/// writer.push_events(&[Event::on(10, 20, 0), Event::off(11, 20, 900)])?;
/// let (bytes, summary) = writer.finish()?;
/// assert_eq!(summary.events, 2);
/// assert_eq!(&bytes[..4], b"EBST");
/// # Ok::<(), ebbiot_store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct RecordingWriter<W: Write> {
    sink: W,
    geometry: SensorGeometry,
    options: StoreOptions,
    /// Bytes written so far == offset of the next chunk.
    offset: u64,
    pending: Vec<Event>,
    payload: Vec<u8>,
    index: Vec<ChunkMeta>,
    last_t: Option<Timestamp>,
    total_events: u64,
}

impl RecordingWriter<BufWriter<File>> {
    /// Creates (truncating) an `EBST` file at `path`.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be created or the name
    /// does not fit the header.
    pub fn create(
        path: &Path,
        geometry: SensorGeometry,
        name: &str,
        span_us: Micros,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let file = BufWriter::new(File::create(path)?);
        Self::new(file, geometry, name, span_us, options)
    }
}

impl<W: Write> RecordingWriter<W> {
    /// Wraps `sink`, immediately writing the stream header.
    ///
    /// `span_us` is the nominal recording span replay hands to
    /// `finish` (0 when unknown).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NameTooLong`] for names over 65 535 bytes,
    /// or an I/O error from writing the header.
    pub fn new(
        mut sink: W,
        geometry: SensorGeometry,
        name: &str,
        span_us: Micros,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let name_len =
            u16::try_from(name.len()).map_err(|_| StoreError::NameTooLong(name.len()))?;
        sink.write_all(&MAGIC)?;
        sink.write_all(&VERSION.to_le_bytes())?;
        sink.write_all(&geometry.width().to_le_bytes())?;
        sink.write_all(&geometry.height().to_le_bytes())?;
        sink.write_all(&name_len.to_le_bytes())?;
        sink.write_all(&span_us.to_le_bytes())?;
        sink.write_all(name.as_bytes())?;
        Ok(Self {
            sink,
            geometry,
            options: StoreOptions { chunk_events: options.chunk_events.max(1) },
            offset: (crate::format::HEADER_FIXED_BYTES + name.len()) as u64,
            pending: Vec::new(),
            payload: Vec::new(),
            index: Vec::new(),
            last_t: None,
            total_events: 0,
        })
    }

    /// The geometry events are validated against.
    #[must_use]
    pub const fn geometry(&self) -> SensorGeometry {
        self.geometry
    }

    /// Events accepted so far (including any still buffered).
    #[must_use]
    pub const fn events_written(&self) -> u64 {
        self.total_events + self.pending.len() as u64
    }

    /// Appends a time-ordered slice of events, flushing full chunks to
    /// the sink as they fill. At most one chunk of events is ever
    /// buffered.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotTimeOrdered`] when `events` breaks
    /// timestamp order (within the slice or against earlier pushes),
    /// [`StoreError::EventOutOfBounds`] for pixels off the array, or an
    /// I/O error from the sink.
    pub fn push_events(&mut self, events: &[Event]) -> Result<(), StoreError> {
        for e in events {
            if self.last_t.is_some_and(|t| e.t < t) {
                return Err(StoreError::NotTimeOrdered);
            }
            if !self.geometry.contains_event(e) {
                return Err(StoreError::EventOutOfBounds { x: e.x, y: e.y });
            }
            self.last_t = Some(e.t);
            self.pending.push(*e);
            if self.pending.len() >= self.options.chunk_events {
                self.flush_chunk()?;
            }
        }
        Ok(())
    }

    /// Writes the buffered chunk (if any) as a frame + payload.
    fn flush_chunk(&mut self) -> Result<(), StoreError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        encode_chunk_payload(&mut self.payload, &self.pending);
        let meta = ChunkMeta {
            offset: self.offset,
            count: self.pending.len() as u32,
            t_first: self.pending[0].t,
            t_last: self.pending[self.pending.len() - 1].t,
        };
        self.sink.write_all(&meta.count.to_le_bytes())?;
        self.sink.write_all(&meta.t_first.to_le_bytes())?;
        self.sink.write_all(&meta.t_last.to_le_bytes())?;
        self.sink.write_all(&(self.payload.len() as u32).to_le_bytes())?;
        self.sink.write_all(&crc32(&self.payload).to_le_bytes())?;
        self.sink.write_all(&self.payload)?;
        self.offset += (crate::format::CHUNK_FRAME_BYTES + self.payload.len()) as u64;
        self.total_events += u64::from(meta.count);
        self.index.push(meta);
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final partial chunk, writes the seek index and the
    /// footer, flushes the sink and returns it with a summary.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the sink.
    pub fn finish(self) -> Result<(W, StoreSummary), StoreError> {
        let mut this = self;
        let summary = this.write_tail()?;
        Ok((this.sink, summary))
    }

    fn write_tail(&mut self) -> Result<StoreSummary, StoreError> {
        self.flush_chunk()?;
        let index_offset = self.offset;
        let mut index_bytes =
            Vec::with_capacity(self.index.len() * crate::format::INDEX_ENTRY_BYTES);
        for meta in &self.index {
            index_bytes.extend_from_slice(&meta.offset.to_le_bytes());
            index_bytes.extend_from_slice(&meta.count.to_le_bytes());
            index_bytes.extend_from_slice(&meta.t_first.to_le_bytes());
            index_bytes.extend_from_slice(&meta.t_last.to_le_bytes());
        }
        self.sink.write_all(&index_bytes)?;
        self.sink.write_all(&self.total_events.to_le_bytes())?;
        self.sink.write_all(&index_offset.to_le_bytes())?;
        self.sink.write_all(&(self.index.len() as u32).to_le_bytes())?;
        self.sink.write_all(&crc32(&index_bytes).to_le_bytes())?;
        self.sink.write_all(&END_MAGIC)?;
        self.sink.flush()?;
        let bytes = index_offset + index_bytes.len() as u64 + crate::format::FOOTER_BYTES as u64;
        let summary = StoreSummary { events: self.total_events, chunks: self.index.len(), bytes };
        Ok(summary)
    }
}

impl<W: Write + Seek> RecordingWriter<W> {
    /// Like [`RecordingWriter::finish`], but first patches the header's
    /// `span_us` field to `span_us` — for sources that only learn the
    /// authoritative span at the end of the stream (a network session's
    /// FINISH frame), while the append-only header was written with a
    /// provisional hint. Requires a seekable sink; plain `finish` never
    /// seeks.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the sink.
    pub fn finish_with_span(self, span_us: Micros) -> Result<(W, StoreSummary), StoreError> {
        let mut this = self;
        let summary = this.write_tail()?;
        // span_us sits at fixed offset 12 (after magic, version, width,
        // height, name_len — see the crate-level header spec).
        this.sink.seek(SeekFrom::Start(12))?;
        this.sink.write_all(&span_us.to_le_bytes())?;
        this.sink.seek(SeekFrom::End(0))?;
        this.sink.flush()?;
        Ok((this.sink, summary))
    }
}

/// Encodes a whole in-memory [`Recording`] to `EBST` bytes — the
/// lossless interop path from the flat `EAER` codec's `Recording` type.
///
/// # Errors
///
/// Returns a [`StoreError`] when the recording is not time-ordered or
/// out of bounds (both impossible for a `Recording` produced by
/// `decode_binary`, which validates the same invariants).
pub fn encode_recording(
    recording: &Recording,
    name: &str,
    span_us: Micros,
    options: StoreOptions,
) -> Result<Vec<u8>, StoreError> {
    let mut writer = RecordingWriter::new(Vec::new(), recording.geometry, name, span_us, options)?;
    writer.push_events(&recording.events)?;
    let (bytes, _) = writer.finish()?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_frames_chunks_and_counts_bytes() {
        let geom = SensorGeometry::davis240();
        let mut w = RecordingWriter::new(
            Vec::new(),
            geom,
            "cam",
            500_000,
            StoreOptions { chunk_events: 2 },
        )
        .unwrap();
        let events = vec![
            Event::on(1, 1, 0),
            Event::off(2, 1, 10),
            Event::on(3, 1, 20),
            Event::on(4, 1, 30),
        ];
        w.push_events(&events).unwrap();
        assert_eq!(w.events_written(), 4);
        let (bytes, summary) = w.finish().unwrap();
        assert_eq!(summary.events, 4);
        assert_eq!(summary.chunks, 2);
        assert_eq!(summary.bytes, bytes.len() as u64, "offset accounting matches the sink");
        assert_eq!(&bytes[..4], b"EBST");
        assert_eq!(&bytes[bytes.len() - 4..], b"EBSX");
    }

    #[test]
    fn writer_rejects_disorder_and_out_of_bounds() {
        let geom = SensorGeometry::new(8, 8);
        let mut w = RecordingWriter::new(Vec::new(), geom, "", 0, StoreOptions::default()).unwrap();
        w.push_events(&[Event::on(1, 1, 100)]).unwrap();
        assert!(matches!(w.push_events(&[Event::on(1, 1, 50)]), Err(StoreError::NotTimeOrdered)));
        assert!(matches!(
            w.push_events(&[Event::on(8, 0, 200)]),
            Err(StoreError::EventOutOfBounds { x: 8, y: 0 })
        ));
    }

    #[test]
    fn empty_recording_is_header_plus_footer() {
        let w = RecordingWriter::new(
            Vec::new(),
            SensorGeometry::new(4, 4),
            "e",
            0,
            StoreOptions::default(),
        )
        .unwrap();
        let (bytes, summary) = w.finish().unwrap();
        assert_eq!(summary.events, 0);
        assert_eq!(summary.chunks, 0);
        assert_eq!(
            bytes.len(),
            crate::format::HEADER_FIXED_BYTES + 1 + crate::format::FOOTER_BYTES
        );
    }

    #[test]
    fn long_names_are_rejected() {
        let name = "x".repeat(70_000);
        let err = RecordingWriter::new(
            Vec::new(),
            SensorGeometry::new(4, 4),
            &name,
            0,
            StoreOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::NameTooLong(70_000)));
    }
}

//! On-disk recording store and paced replay for event-camera fleets.
//!
//! The paper's IoVT argument is that event cameras slash bandwidth and
//! storage versus frame cameras. This crate makes disk a first-class
//! event source for the workspace: recordings are spooled once into the
//! chunked **`EBST`** format and replayed any number of times through
//! the streaming [`Pipeline`](ebbiot_core::Pipeline) or the
//! multi-camera [`Engine`](ebbiot_engine::Engine) — without the
//! recording ever being memory-resident, at maximum speed or paced
//! against the wall clock. Like `ebbiot_engine`, it uses nothing but
//! `std`.
//!
//! * [`RecordingWriter`] — append-only chunked writer (`W: Write`);
//! * [`ChunkReader`] — one-chunk-at-a-time reader with
//!   [`ChunkReader::seek_to_time`] over the chunk index, generic over a
//!   [`ChunkSource`] (streamed `BufReader` or resident `Cursor`);
//! * [`Replayer`] — drives a `Pipeline<T>` or a whole `Engine` from
//!   readers, in [`ReplayMode::MaxSpeed`] or [`ReplayMode::Paced`],
//!   sequentially or with per-stream decode-ahead threads
//!   ([`Replayer::replay_engine_parallel`]);
//! * [`FleetStore`] — one file per camera plus a manifest, the spool
//!   layout `ebbiot_sim`'s fleet generator writes;
//! * [`FleetArchiver`] — the streaming counterpart of
//!   [`FleetStore::write`] for concurrently arriving streams, used as
//!   `ebbiot_server`'s archival tee;
//! * [`snapshot`](mod@snapshot) — the versioned **`EBSS`** session
//!   snapshot format (checkpoint/restore of a live pipeline, see
//!   ARCHITECTURE.md §8), written into a fleet's `snapshots/` area by
//!   [`FleetStore::write_camera_snapshot`]. A snapshot plus the
//!   archived `EBST` tail from its `checkpoint_t` recovers a severed
//!   session bit-identically.
//!
//! The byte-level `EBST` specification also lives in
//! `ARCHITECTURE.md` at the workspace root, next to the `EBWP` wire
//! protocol that reuses its chunk payload codec.
//!
//! # The `EBST` format (version 1)
//!
//! All integers are little-endian. The file is header, then chunks,
//! then a seek index, then a fixed-size footer (so readers find the
//! index from EOF and writers never seek):
//!
//! ```text
//! header   magic     [u8; 4] = b"EBST"
//!          version   u16     = 1
//!          width     u16       sensor columns
//!          height    u16       sensor rows
//!          name_len  u16
//!          span_us   u64       nominal recording span (0 = unknown)
//!          name      [u8; name_len]   UTF-8 stream name
//! chunk*   count     u32       events in chunk (> 0)
//!          t_first   u64       timestamp of first event
//!          t_last    u64       timestamp of last event
//!          len       u32       payload bytes
//!          crc32     u32       CRC-32 (IEEE) of payload
//!          payload   [u8; len]
//! index    per chunk: offset u64, count u32, t_first u64, t_last u64
//! footer   events    u64       total event count
//!          index_off u64       file offset of the index
//!          chunks    u32       index entry count
//!          crc32     u32       CRC-32 of the index bytes
//!          magic     [u8; 4] = b"EBSX"
//! ```
//!
//! Chunk payloads are **delta-coded varints**, one triple per event
//! against a running predecessor (reset per chunk, so every chunk
//! decodes standalone — that is what makes seeking chunk-granular):
//!
//! * `varint(t - prev_t)` — timestamps are non-decreasing, so the
//!   delta is unsigned; `prev_t` starts at the chunk's `t_first`;
//! * `varint(zigzag(x - prev_x))` — column delta, `prev_x` starts 0;
//! * `varint(zigzag(y - prev_y) << 1 | polarity)` — row delta with the
//!   polarity bit packed into bit 0, `prev_y` starts 0.
//!
//! Varints are LEB128 (7 value bits per byte, high bit = continue);
//! zigzag folds signed deltas to unsigned (0, -1, 1, -2 → 0, 1, 2, 3).
//! Dense traffic recordings land around 4–6 bytes/event versus the
//! flat `EAER` codec's 14, and decoding validates CRC, bounds,
//! ordering and span, so corruption is detected rather than tracked.
//!
//! # The decode fast path
//!
//! Decoding is the store's hot loop, so two implementations of the
//! chunk codec live in [`format`](mod@format):
//!
//! * [`format::decode_chunk_payload`] — the byte-at-a-time **scalar
//!   reference** the rejection rules are written against;
//! * [`format::decode_chunk_payload_fast`] — the production decoder:
//!   while ≥ 32 bytes remain, varints are read via an unaligned `u64`
//!   load (continuation bits isolated with one mask, varint length
//!   from `trailing_zeros`, 7-bit groups extracted branch-free), with
//!   the scalar loop handling 9/10-byte varints and the payload tail.
//!
//! `crates/store/tests/decode_parity.rs` pins the two together by
//! property test: same events out of every valid payload, same error
//! out of every corrupt one (hostile tails, bit flips, truncation at
//! every byte boundary, lying frame metadata). CRC-32 is slice-by-8
//! with a one-byte [`format::crc32_reference`] under the same contract.
//!
//! Where the payload bytes live is a [`ChunkSource`] property:
//! streamed sources (`BufReader`) copy each payload into a reused
//! scratch buffer, resident sources (`Cursor`, from
//! [`ChunkReader::open_mapped`] / [`FleetStore::mapped_readers`])
//! lend the payload **in place** with no copy. Decoding goes straight
//! into a caller-supplied `Vec<Event>`
//! ([`ChunkReader::next_chunk_into`]) that replay then *moves* into
//! the engine, so events are materialised exactly once on the disk →
//! tracker path; [`Replayer::replay_engine_parallel`] additionally
//! overlaps decode with tracking (one decode-ahead thread per stream)
//! without perturbing push order — replayed output stays bit-for-bit
//! identical.
//!
//! # Example
//!
//! ```
//! use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
//! use ebbiot_events::{Event, SensorGeometry};
//! use ebbiot_store::{ChunkReader, RecordingWriter, Replayer, ReplayMode, StoreOptions};
//! use std::io::Cursor;
//!
//! // Spool a (tiny) recording to EBST bytes — normally a file.
//! let geometry = SensorGeometry::davis240();
//! let events: Vec<Event> =
//!     (0..600).map(|i| Event::on(60 + (i % 24) as u16, 80 + (i / 50) as u16, i * 100)).collect();
//! let mut writer =
//!     RecordingWriter::new(Vec::new(), geometry, "demo", 66_000, StoreOptions::default())?;
//! writer.push_events(&events)?;
//! let (bytes, summary) = writer.finish()?;
//! assert!(summary.bytes_per_event() < 14.0, "beats the flat codec");
//!
//! // Replay it through a pipeline, chunk by chunk.
//! let mut reader = ChunkReader::new(Cursor::new(bytes))?;
//! let mut pipeline = EbbiotPipeline::new(EbbiotConfig::paper_default(geometry));
//! let run = Replayer::new(ReplayMode::MaxSpeed).replay_pipeline(&mut reader, &mut pipeline)?;
//! assert_eq!(run.stats.events, 600);
//! # Ok::<(), ebbiot_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod fleet;
pub mod format;
pub mod reader;
pub mod replay;
pub mod snapshot;
pub mod writer;

pub use archive::{ArchiveStream, FleetArchiver};
pub use fleet::{FleetEntry, FleetStore, StoredCamera, MANIFEST_FILE};
pub use format::{ChunkMeta, StoreError, StoreHeader};
pub use reader::{ChunkReader, ChunkSource};
pub use replay::{EngineReplay, PipelineReplay, ReplayMode, ReplayStats, Replayer};
pub use snapshot::{
    read_snapshot, read_snapshot_file, write_snapshot, SnapshotError, SnapshotHeader,
};
pub use writer::{encode_recording, RecordingWriter, StoreOptions, StoreSummary};

use ebbiot_events::codec::Recording;

/// Decodes `EBST` bytes back into an in-memory [`Recording`] — the
/// lossless interop inverse of [`encode_recording`].
///
/// # Errors
///
/// Returns the first format or corruption error.
pub fn decode_recording(bytes: &[u8]) -> Result<Recording, StoreError> {
    ChunkReader::new(std::io::Cursor::new(bytes))?.read_recording()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_events::{codec, Event, SensorGeometry};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Random time-ordered in-bounds stream, the codec interop fixture.
    fn random_recording(seed: u64, n: usize) -> Recording {
        let mut rng = StdRng::seed_from_u64(seed);
        let geometry = SensorGeometry::davis240();
        let mut t = 0u64;
        let events = (0..n)
            .map(|_| {
                t += rng.random_range(0u64..500);
                Event::new(
                    rng.random_range(0..geometry.width()),
                    rng.random_range(0..geometry.height()),
                    t,
                    if rng.random_range(0..2) == 0 {
                        ebbiot_events::Polarity::On
                    } else {
                        ebbiot_events::Polarity::Off
                    },
                )
            })
            .collect();
        Recording { geometry, events }
    }

    #[test]
    fn recording_interop_is_lossless_both_ways() {
        for seed in 0..5u64 {
            let rec = random_recording(seed, 3_000);
            // EAER -> Recording -> EBST -> Recording is identity.
            let eaer = codec::encode_binary(rec.geometry, &rec.events);
            let from_eaer = codec::decode_binary(&eaer).unwrap();
            let ebst = encode_recording(&from_eaer, "interop", 0, StoreOptions::default()).unwrap();
            let back = decode_recording(&ebst).unwrap();
            assert_eq!(back, rec, "seed {seed}");
        }
    }

    #[test]
    fn ebst_is_smaller_than_flat_eaer_on_random_streams() {
        let rec = random_recording(7, 20_000);
        let eaer = codec::encode_binary(rec.geometry, &rec.events);
        let ebst = encode_recording(&rec, "", 0, StoreOptions::default()).unwrap();
        assert!(ebst.len() < eaer.len(), "EBST {} bytes vs EAER {} bytes", ebst.len(), eaer.len());
    }

    #[test]
    fn empty_recording_interop_round_trips() {
        let rec = Recording { geometry: SensorGeometry::new(10, 10), events: Vec::new() };
        let ebst = encode_recording(&rec, "empty", 5, StoreOptions::default()).unwrap();
        assert_eq!(decode_recording(&ebst).unwrap(), rec);
    }
}

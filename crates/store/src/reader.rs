//! [`ChunkReader`]: streams an `EBST` file back one chunk at a time.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use ebbiot_events::{codec::Recording, Event, Micros, SensorGeometry, Timestamp};

use crate::format::{
    crc32, decode_chunk_payload, ChunkMeta, StoreError, StoreHeader, CHUNK_FRAME_BYTES, END_MAGIC,
    FOOTER_BYTES, HEADER_FIXED_BYTES, INDEX_ENTRY_BYTES, MAGIC, MAX_EVENT_BYTES, VERSION,
};

/// Streams chunks of a stored recording without ever holding more than
/// one decoded chunk in memory.
///
/// Construction reads the header, footer and seek index (28 bytes per
/// chunk); event payloads are only read and decoded as
/// [`ChunkReader::next_chunk`] is called. [`ChunkReader::seek_to_time`]
/// repositions the cursor using the index alone.
#[derive(Debug)]
pub struct ChunkReader<R> {
    source: R,
    header: StoreHeader,
    index: Vec<ChunkMeta>,
    total_events: u64,
    /// Index position of the next chunk to decode.
    next: usize,
    /// Decode target, reused across chunks.
    buffer: Vec<Event>,
    /// Raw payload scratch, reused across chunks.
    raw: Vec<u8>,
    /// After a [`ChunkReader::seek_to_time`], events of the first
    /// decoded chunk strictly before this instant are trimmed.
    resume_from: Option<Timestamp>,
}

impl ChunkReader<BufReader<File>> {
    /// Opens an `EBST` file for chunked reading.
    ///
    /// # Errors
    ///
    /// Returns an I/O or format error (bad magic/version/footer, index
    /// CRC mismatch).
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> ChunkReader<R> {
    /// Wraps a seekable source, reading header, footer and index.
    ///
    /// # Errors
    ///
    /// Returns an I/O or format error (bad magic/version/footer, index
    /// CRC mismatch).
    pub fn new(mut source: R) -> Result<Self, StoreError> {
        // Header.
        source.seek(SeekFrom::Start(0))?;
        let mut fixed = [0u8; HEADER_FIXED_BYTES];
        read_exact_or(&mut source, &mut fixed, StoreError::TruncatedHeader)?;
        let magic: [u8; 4] = fixed[0..4].try_into().expect("len 4");
        if magic != MAGIC {
            return Err(StoreError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(fixed[4..6].try_into().expect("len 2"));
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let width = u16::from_le_bytes(fixed[6..8].try_into().expect("len 2"));
        let height = u16::from_le_bytes(fixed[8..10].try_into().expect("len 2"));
        if width == 0 || height == 0 {
            return Err(StoreError::TruncatedHeader);
        }
        let name_len = u16::from_le_bytes(fixed[10..12].try_into().expect("len 2"));
        let span_us = u64::from_le_bytes(fixed[12..20].try_into().expect("len 8"));
        let mut name_bytes = vec![0u8; usize::from(name_len)];
        read_exact_or(&mut source, &mut name_bytes, StoreError::TruncatedHeader)?;
        let name = String::from_utf8(name_bytes).map_err(|_| StoreError::BadName)?;
        let first_chunk_offset = (HEADER_FIXED_BYTES + usize::from(name_len)) as u64;

        // Footer.
        let file_len = source.seek(SeekFrom::End(0))?;
        if file_len < first_chunk_offset + FOOTER_BYTES as u64 {
            return Err(StoreError::BadFooter);
        }
        source.seek(SeekFrom::End(-(FOOTER_BYTES as i64)))?;
        let mut footer = [0u8; FOOTER_BYTES];
        read_exact_or(&mut source, &mut footer, StoreError::BadFooter)?;
        if footer[24..28] != END_MAGIC {
            return Err(StoreError::BadFooter);
        }
        let total_events = u64::from_le_bytes(footer[0..8].try_into().expect("len 8"));
        let index_offset = u64::from_le_bytes(footer[8..16].try_into().expect("len 8"));
        let chunk_count = u32::from_le_bytes(footer[16..20].try_into().expect("len 4")) as usize;
        let index_crc = u32::from_le_bytes(footer[20..24].try_into().expect("len 4"));

        // Index. Checked arithmetic throughout: every field here is
        // attacker-controlled and must fail as BadFooter, not overflow.
        let index_bytes_len = chunk_count
            .checked_mul(INDEX_ENTRY_BYTES)
            .filter(|&len| (len as u64) < file_len)
            .ok_or(StoreError::BadFooter)?;
        let footer_offset = file_len - FOOTER_BYTES as u64;
        if index_offset < first_chunk_offset
            || index_offset.checked_add(index_bytes_len as u64) != Some(footer_offset)
        {
            return Err(StoreError::BadFooter);
        }
        source.seek(SeekFrom::Start(index_offset))?;
        let mut index_bytes = vec![0u8; index_bytes_len];
        read_exact_or(&mut source, &mut index_bytes, StoreError::BadFooter)?;
        if crc32(&index_bytes) != index_crc {
            return Err(StoreError::IndexCrcMismatch);
        }
        let mut index = Vec::with_capacity(chunk_count);
        let mut indexed_events = 0u64;
        for (chunk, entry) in index_bytes.chunks_exact(INDEX_ENTRY_BYTES).enumerate() {
            let meta = ChunkMeta {
                offset: u64::from_le_bytes(entry[0..8].try_into().expect("len 8")),
                count: u32::from_le_bytes(entry[8..12].try_into().expect("len 4")),
                t_first: u64::from_le_bytes(entry[12..20].try_into().expect("len 8")),
                t_last: u64::from_le_bytes(entry[20..28].try_into().expect("len 8")),
            };
            let in_file = meta.offset >= first_chunk_offset && meta.offset < index_offset;
            let ordered = index.last().is_none_or(|prev: &ChunkMeta| {
                prev.offset < meta.offset && prev.t_last <= meta.t_first
            });
            if meta.count == 0 || meta.t_last < meta.t_first || !in_file || !ordered {
                return Err(StoreError::CorruptChunk { chunk, reason: "inconsistent index entry" });
            }
            indexed_events += u64::from(meta.count);
            index.push(meta);
        }
        if indexed_events != total_events {
            return Err(StoreError::BadFooter);
        }

        Ok(Self {
            source,
            header: StoreHeader { geometry: SensorGeometry::new(width, height), span_us, name },
            index,
            total_events,
            next: 0,
            buffer: Vec::new(),
            raw: Vec::new(),
            resume_from: None,
        })
    }

    /// The stored sensor geometry.
    #[must_use]
    pub fn geometry(&self) -> SensorGeometry {
        self.header.geometry
    }

    /// The nominal recording span from the header (0 when unknown).
    #[must_use]
    pub const fn span_us(&self) -> Micros {
        self.header.span_us
    }

    /// The stored stream name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.header.name
    }

    /// Total events in the recording (from the footer).
    #[must_use]
    pub const fn num_events(&self) -> u64 {
        self.total_events
    }

    /// Total chunks in the recording.
    #[must_use]
    pub fn num_chunks(&self) -> usize {
        self.index.len()
    }

    /// Index metadata of the next chunk [`ChunkReader::next_chunk`]
    /// would decode, or `None` at end of stream. Peeking costs no I/O —
    /// replay schedulers use it to pick the stream with the earliest
    /// pending chunk.
    #[must_use]
    pub fn peek_meta(&self) -> Option<&ChunkMeta> {
        self.index.get(self.next)
    }

    /// Decodes the next chunk into the reader's internal buffer and
    /// returns it, or `None` at end of stream. Only this one chunk is
    /// ever resident.
    ///
    /// # Errors
    ///
    /// Returns an I/O error or a corruption error (CRC mismatch, frame
    /// inconsistent with the index, out-of-bounds or disordered
    /// events).
    pub fn next_chunk(&mut self) -> Result<Option<&[Event]>, StoreError> {
        let Some(meta) = self.index.get(self.next).copied() else {
            return Ok(None);
        };
        let chunk = self.next;
        let corrupt = |reason| StoreError::CorruptChunk { chunk, reason };
        self.source.seek(SeekFrom::Start(meta.offset))?;
        let mut frame = [0u8; CHUNK_FRAME_BYTES];
        read_exact_or(&mut self.source, &mut frame, corrupt("truncated chunk frame"))?;
        let count = u32::from_le_bytes(frame[0..4].try_into().expect("len 4"));
        let t_first = u64::from_le_bytes(frame[4..12].try_into().expect("len 8"));
        let t_last = u64::from_le_bytes(frame[12..20].try_into().expect("len 8"));
        let payload_len = u32::from_le_bytes(frame[20..24].try_into().expect("len 4")) as usize;
        let payload_crc = u32::from_le_bytes(frame[24..28].try_into().expect("len 4"));
        if count != meta.count || t_first != meta.t_first || t_last != meta.t_last {
            return Err(corrupt("chunk frame disagrees with index"));
        }
        if payload_len as u64 > u64::from(count) * MAX_EVENT_BYTES as u64 {
            return Err(corrupt("payload length exceeds event bound"));
        }
        self.raw.resize(payload_len, 0);
        read_exact_or(&mut self.source, &mut self.raw, corrupt("truncated chunk payload"))?;
        if crc32(&self.raw) != payload_crc {
            return Err(StoreError::ChunkCrcMismatch { chunk });
        }
        decode_chunk_payload(
            &mut self.buffer,
            &self.raw,
            chunk,
            self.header.geometry,
            count,
            t_first,
            t_last,
        )?;
        if let Some(resume) = self.resume_from.take() {
            let skip = self.buffer.partition_point(|e| e.t < resume);
            self.buffer.drain(..skip);
        }
        self.next += 1;
        Ok(Some(&self.buffer))
    }

    /// Repositions the cursor so that the next decoded events are
    /// exactly those with `t >= instant` — reading from here yields the
    /// same suffix a fresh full read (filtered to `t >= instant`)
    /// would. Costs only an index lookup; no payload is touched.
    pub fn seek_to_time(&mut self, instant: Timestamp) {
        self.next = self.index.partition_point(|meta| meta.t_last < instant);
        self.resume_from = Some(instant);
    }

    /// Rewinds to the first chunk.
    pub fn rewind(&mut self) {
        self.next = 0;
        self.resume_from = None;
    }

    /// Reads the remaining chunks into one in-memory [`Recording`] —
    /// the lossless interop path back to the flat `EAER` codec's type.
    /// Unlike chunked reading this *is* memory-resident; it exists for
    /// interop and tests, not for production replay.
    ///
    /// # Errors
    ///
    /// Returns any error [`ChunkReader::next_chunk`] can.
    pub fn read_recording(&mut self) -> Result<Recording, StoreError> {
        // Grow as chunks actually decode — the footer's event count is
        // untrusted input and must not drive a pre-allocation.
        let mut events = Vec::new();
        while let Some(chunk) = self.next_chunk()? {
            events.extend_from_slice(chunk);
        }
        Ok(Recording { geometry: self.header.geometry, events })
    }
}

/// `read_exact` with a format-specific error for truncation.
fn read_exact_or<R: Read>(
    source: &mut R,
    buf: &mut [u8],
    on_eof: StoreError,
) -> Result<(), StoreError> {
    source.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            on_eof
        } else {
            StoreError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{RecordingWriter, StoreOptions};
    use std::io::Cursor;

    fn events(n: usize) -> Vec<Event> {
        (0..n)
            .map(|i| {
                let x = (i * 7 % 240) as u16;
                let y = (i * 13 % 180) as u16;
                let t = (i as u64) * 97;
                if i % 3 == 0 {
                    Event::off(x, y, t)
                } else {
                    Event::on(x, y, t)
                }
            })
            .collect()
    }

    fn store(events: &[Event], chunk_events: usize, span: u64) -> Vec<u8> {
        let mut w = RecordingWriter::new(
            Vec::new(),
            SensorGeometry::davis240(),
            "unit",
            span,
            StoreOptions { chunk_events },
        )
        .unwrap();
        w.push_events(events).unwrap();
        w.finish().unwrap().0
    }

    #[test]
    fn round_trips_across_chunk_sizes() {
        let original = events(1_000);
        for chunk_events in [1usize, 7, 100, 10_000] {
            let bytes = store(&original, chunk_events, 123);
            let mut reader = ChunkReader::new(Cursor::new(bytes)).unwrap();
            assert_eq!(reader.geometry(), SensorGeometry::davis240());
            assert_eq!(reader.span_us(), 123);
            assert_eq!(reader.name(), "unit");
            assert_eq!(reader.num_events(), 1_000);
            assert_eq!(reader.num_chunks(), 1_000usize.div_ceil(chunk_events));
            let rec = reader.read_recording().unwrap();
            assert_eq!(rec.events, original, "chunk size {chunk_events}");
        }
    }

    #[test]
    fn chunked_reading_holds_one_chunk_at_a_time() {
        let original = events(500);
        let bytes = store(&original, 64, 0);
        let mut reader = ChunkReader::new(Cursor::new(bytes)).unwrap();
        let mut total = 0;
        while let Some(chunk) = reader.next_chunk().unwrap() {
            assert!(!chunk.is_empty() && chunk.len() <= 64);
            total += chunk.len();
        }
        assert_eq!(total, 500);
        assert!(reader.next_chunk().unwrap().is_none(), "stays at end");
    }

    #[test]
    fn seek_to_time_matches_filtered_fresh_read() {
        let original = events(800);
        let bytes = store(&original, 50, 0);
        let mut reader = ChunkReader::new(Cursor::new(bytes)).unwrap();
        for instant in [0u64, 1, 96, 97, 40_000, 77_600, 100_000] {
            reader.seek_to_time(instant);
            let resumed = reader.read_recording().unwrap().events;
            let expected: Vec<Event> =
                original.iter().copied().filter(|e| e.t >= instant).collect();
            assert_eq!(resumed, expected, "seek to t={instant}");
        }
    }

    #[test]
    fn rewind_restarts_from_the_top() {
        let original = events(100);
        let bytes = store(&original, 16, 0);
        let mut reader = ChunkReader::new(Cursor::new(bytes)).unwrap();
        reader.seek_to_time(5_000);
        let _ = reader.read_recording().unwrap();
        reader.rewind();
        assert_eq!(reader.read_recording().unwrap().events, original);
    }

    #[test]
    fn empty_store_reads_back_empty() {
        let bytes = store(&[], 16, 42);
        let mut reader = ChunkReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.num_events(), 0);
        assert_eq!(reader.span_us(), 42);
        assert!(reader.next_chunk().unwrap().is_none());
    }

    #[test]
    fn rejects_bad_magic_version_and_footer() {
        let good = store(&events(10), 4, 0);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(ChunkReader::new(Cursor::new(bad)).unwrap_err(), StoreError::BadMagic(_)));

        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            ChunkReader::new(Cursor::new(bad)).unwrap_err(),
            StoreError::UnsupportedVersion(9)
        ));

        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 1] = b'?';
        assert!(matches!(ChunkReader::new(Cursor::new(bad)).unwrap_err(), StoreError::BadFooter));

        let bad = good[..good.len() - 3].to_vec();
        assert!(matches!(ChunkReader::new(Cursor::new(bad)).unwrap_err(), StoreError::BadFooter));

        assert!(matches!(
            ChunkReader::new(Cursor::new(b"EB".to_vec())).unwrap_err(),
            StoreError::TruncatedHeader
        ));
    }

    #[test]
    fn corrupt_payload_fails_its_crc() {
        let original = events(100);
        let bytes = store(&original, 100, 0);
        // Flip one byte in the middle of the single chunk's payload.
        let mut bad = bytes.clone();
        let payload_mid = HEADER_FIXED_BYTES + 4 + CHUNK_FRAME_BYTES + 20;
        bad[payload_mid] ^= 0xFF;
        let mut reader = ChunkReader::new(Cursor::new(bad)).unwrap();
        assert!(matches!(
            reader.next_chunk().unwrap_err(),
            StoreError::ChunkCrcMismatch { chunk: 0 }
        ));
    }

    #[test]
    fn corrupt_index_fails_its_crc() {
        let bytes = store(&events(100), 10, 0);
        let mut bad = bytes.clone();
        let n = bad.len();
        // Index sits right before the 28-byte footer.
        bad[n - FOOTER_BYTES - 5] ^= 0x01;
        assert!(matches!(
            ChunkReader::new(Cursor::new(bad)).unwrap_err(),
            StoreError::IndexCrcMismatch
        ));
    }
}

//! [`ChunkReader`]: streams an `EBST` file back one chunk at a time,
//! from a streamed file handle or a memory-resident image via
//! [`ChunkSource`].

use std::fs::File;
use std::io::{BufReader, Cursor, Read, Seek, SeekFrom};
use std::path::Path;

use ebbiot_events::{codec::Recording, Event, Micros, SensorGeometry, Timestamp};

use crate::format::{
    crc32, decode_chunk_payload_fast, ChunkMeta, StoreError, StoreHeader, CHUNK_FRAME_BYTES,
    END_MAGIC, FOOTER_BYTES, HEADER_FIXED_BYTES, INDEX_ENTRY_BYTES, MAGIC, MAX_EVENT_BYTES,
    VERSION,
};

/// Random-access byte supply for a [`ChunkReader`].
///
/// The one interesting method is [`ChunkSource::payload`]: a resident
/// source ([`Cursor`] over anything `AsRef<[u8]>`) returns a slice
/// **borrowed straight from the underlying bytes** — CRC and decode
/// then run in place with zero copies — while a streamed source
/// ([`BufReader`]) copies into the caller's reusable scratch buffer.
/// Both uphold the same contract: exactly `len` bytes at `offset`, or
/// the caller's error when the source is too short.
pub trait ChunkSource {
    /// Total length of the source in bytes.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the underlying source.
    fn source_len(&mut self) -> Result<u64, StoreError>;

    /// Reads exactly `buf.len()` bytes at `offset` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns `on_eof` when the source ends before `buf` is full, or
    /// an I/O error.
    fn read_at(
        &mut self,
        offset: u64,
        buf: &mut [u8],
        on_eof: StoreError,
    ) -> Result<(), StoreError>;

    /// Provides `len` bytes at `offset`: borrowed in place when the
    /// source is resident, else copied into `scratch` and returned from
    /// there.
    ///
    /// # Errors
    ///
    /// Returns `on_eof` when the source ends before `len` bytes, or an
    /// I/O error.
    fn payload<'a>(
        &'a mut self,
        scratch: &'a mut Vec<u8>,
        offset: u64,
        len: usize,
        on_eof: StoreError,
    ) -> Result<&'a [u8], StoreError>;
}

/// Streamed source: seeks and copies. `seek_relative` keeps the read
/// buffer whenever the target is already buffered (the common
/// sequential-chunk case).
impl<R: Read + Seek> ChunkSource for BufReader<R> {
    fn source_len(&mut self) -> Result<u64, StoreError> {
        Ok(self.seek(SeekFrom::End(0))?)
    }

    fn read_at(
        &mut self,
        offset: u64,
        buf: &mut [u8],
        on_eof: StoreError,
    ) -> Result<(), StoreError> {
        let cur = self.stream_position()?;
        match (i64::try_from(offset), i64::try_from(cur)) {
            (Ok(to), Ok(from)) => self.seek_relative(to - from)?,
            _ => {
                self.seek(SeekFrom::Start(offset))?;
            }
        }
        read_exact_or(self, buf, on_eof)
    }

    fn payload<'a>(
        &'a mut self,
        scratch: &'a mut Vec<u8>,
        offset: u64,
        len: usize,
        on_eof: StoreError,
    ) -> Result<&'a [u8], StoreError> {
        scratch.resize(len, 0);
        self.read_at(offset, scratch, on_eof)?;
        Ok(scratch)
    }
}

/// Resident source: [`ChunkSource::payload`] borrows from the
/// underlying bytes, so chunk payloads are CRC-checked and decoded with
/// zero copies. Covers `Cursor<Vec<u8>>`, `Cursor<&[u8]>`, …
impl<T: AsRef<[u8]>> ChunkSource for Cursor<T> {
    fn source_len(&mut self) -> Result<u64, StoreError> {
        Ok(self.get_ref().as_ref().len() as u64)
    }

    fn read_at(
        &mut self,
        offset: u64,
        buf: &mut [u8],
        on_eof: StoreError,
    ) -> Result<(), StoreError> {
        let bytes = self.get_ref().as_ref();
        match usize::try_from(offset) {
            Ok(start) if start <= bytes.len() && bytes.len() - start >= buf.len() => {
                buf.copy_from_slice(&bytes[start..start + buf.len()]);
                Ok(())
            }
            _ => Err(on_eof),
        }
    }

    fn payload<'a>(
        &'a mut self,
        _scratch: &'a mut Vec<u8>,
        offset: u64,
        len: usize,
        on_eof: StoreError,
    ) -> Result<&'a [u8], StoreError> {
        let bytes = self.get_ref().as_ref();
        match usize::try_from(offset) {
            Ok(start) if start <= bytes.len() && bytes.len() - start >= len => {
                Ok(&bytes[start..start + len])
            }
            _ => Err(on_eof),
        }
    }
}

/// Streams chunks of a stored recording without ever holding more than
/// one decoded chunk in memory.
///
/// Construction reads the header, footer and seek index (28 bytes per
/// chunk); event payloads are only read and decoded as
/// [`ChunkReader::next_chunk`] is called. [`ChunkReader::seek_to_time`]
/// repositions the cursor using the index alone.
///
/// The source is any [`ChunkSource`]. [`ChunkReader::open`] gives the
/// streamed flavour (payloads are copied into an internal scratch
/// buffer before decode); [`ChunkReader::open_mapped`] and
/// [`ChunkReader::new`] over a [`Cursor`] give the resident flavour,
/// where payload bytes are borrowed in place and decode is the only
/// pass over them.
#[derive(Debug)]
pub struct ChunkReader<R> {
    source: R,
    header: StoreHeader,
    index: Vec<ChunkMeta>,
    total_events: u64,
    /// Index position of the next chunk to decode.
    next: usize,
    /// Decode target, reused across chunks.
    buffer: Vec<Event>,
    /// Raw payload scratch for streamed sources, reused across chunks.
    raw: Vec<u8>,
    /// After a [`ChunkReader::seek_to_time`], events of the first
    /// decoded chunk strictly before this instant are trimmed.
    resume_from: Option<Timestamp>,
}

impl ChunkReader<BufReader<File>> {
    /// Opens an `EBST` file for streamed chunked reading.
    ///
    /// # Errors
    ///
    /// Returns an I/O or format error (bad magic/version/footer, index
    /// CRC mismatch).
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl ChunkReader<Cursor<Vec<u8>>> {
    /// Opens an `EBST` file memory-resident: the whole file is read
    /// once up front (the crate's `forbid(unsafe_code)` stand-in for
    /// `mmap`) and every chunk payload is thereafter borrowed in place
    /// — no per-chunk read or copy, decode is the only pass over the
    /// bytes. This is the fast replay path; prefer it whenever the
    /// recording fits in memory.
    ///
    /// # Errors
    ///
    /// Returns an I/O or format error (bad magic/version/footer, index
    /// CRC mismatch).
    pub fn open_mapped(path: &Path) -> Result<Self, StoreError> {
        Self::new(Cursor::new(std::fs::read(path)?))
    }
}

impl<R: ChunkSource> ChunkReader<R> {
    /// Wraps a [`ChunkSource`], reading header, footer and index.
    ///
    /// # Errors
    ///
    /// Returns an I/O or format error (bad magic/version/footer, index
    /// CRC mismatch).
    pub fn new(mut source: R) -> Result<Self, StoreError> {
        // Header.
        let mut fixed = [0u8; HEADER_FIXED_BYTES];
        source.read_at(0, &mut fixed, StoreError::TruncatedHeader)?;
        let magic: [u8; 4] = fixed[0..4].try_into().expect("len 4");
        if magic != MAGIC {
            return Err(StoreError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(fixed[4..6].try_into().expect("len 2"));
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let width = u16::from_le_bytes(fixed[6..8].try_into().expect("len 2"));
        let height = u16::from_le_bytes(fixed[8..10].try_into().expect("len 2"));
        if width == 0 || height == 0 {
            return Err(StoreError::TruncatedHeader);
        }
        let name_len = u16::from_le_bytes(fixed[10..12].try_into().expect("len 2"));
        let span_us = u64::from_le_bytes(fixed[12..20].try_into().expect("len 8"));
        let mut name_bytes = vec![0u8; usize::from(name_len)];
        source.read_at(HEADER_FIXED_BYTES as u64, &mut name_bytes, StoreError::TruncatedHeader)?;
        let name = String::from_utf8(name_bytes).map_err(|_| StoreError::BadName)?;
        let first_chunk_offset = (HEADER_FIXED_BYTES + usize::from(name_len)) as u64;

        // Footer.
        let file_len = source.source_len()?;
        if file_len < first_chunk_offset + FOOTER_BYTES as u64 {
            return Err(StoreError::BadFooter);
        }
        let mut footer = [0u8; FOOTER_BYTES];
        source.read_at(file_len - FOOTER_BYTES as u64, &mut footer, StoreError::BadFooter)?;
        if footer[24..28] != END_MAGIC {
            return Err(StoreError::BadFooter);
        }
        let total_events = u64::from_le_bytes(footer[0..8].try_into().expect("len 8"));
        let index_offset = u64::from_le_bytes(footer[8..16].try_into().expect("len 8"));
        let chunk_count = u32::from_le_bytes(footer[16..20].try_into().expect("len 4")) as usize;
        let index_crc = u32::from_le_bytes(footer[20..24].try_into().expect("len 4"));

        // Index. Checked arithmetic throughout: every field here is
        // attacker-controlled and must fail as BadFooter, not overflow.
        let index_bytes_len = chunk_count
            .checked_mul(INDEX_ENTRY_BYTES)
            .filter(|&len| (len as u64) < file_len)
            .ok_or(StoreError::BadFooter)?;
        let footer_offset = file_len - FOOTER_BYTES as u64;
        if index_offset < first_chunk_offset
            || index_offset.checked_add(index_bytes_len as u64) != Some(footer_offset)
        {
            return Err(StoreError::BadFooter);
        }
        let mut index_bytes = vec![0u8; index_bytes_len];
        source.read_at(index_offset, &mut index_bytes, StoreError::BadFooter)?;
        if crc32(&index_bytes) != index_crc {
            return Err(StoreError::IndexCrcMismatch);
        }
        let mut index = Vec::with_capacity(chunk_count);
        let mut indexed_events = 0u64;
        for (chunk, entry) in index_bytes.chunks_exact(INDEX_ENTRY_BYTES).enumerate() {
            let meta = ChunkMeta {
                offset: u64::from_le_bytes(entry[0..8].try_into().expect("len 8")),
                count: u32::from_le_bytes(entry[8..12].try_into().expect("len 4")),
                t_first: u64::from_le_bytes(entry[12..20].try_into().expect("len 8")),
                t_last: u64::from_le_bytes(entry[20..28].try_into().expect("len 8")),
            };
            let in_file = meta.offset >= first_chunk_offset && meta.offset < index_offset;
            let ordered = index.last().is_none_or(|prev: &ChunkMeta| {
                prev.offset < meta.offset && prev.t_last <= meta.t_first
            });
            if meta.count == 0 || meta.t_last < meta.t_first || !in_file || !ordered {
                return Err(StoreError::CorruptChunk { chunk, reason: "inconsistent index entry" });
            }
            indexed_events += u64::from(meta.count);
            index.push(meta);
        }
        if indexed_events != total_events {
            return Err(StoreError::BadFooter);
        }

        Ok(Self {
            source,
            header: StoreHeader { geometry: SensorGeometry::new(width, height), span_us, name },
            index,
            total_events,
            next: 0,
            buffer: Vec::new(),
            raw: Vec::new(),
            resume_from: None,
        })
    }

    /// The stored sensor geometry.
    #[must_use]
    pub fn geometry(&self) -> SensorGeometry {
        self.header.geometry
    }

    /// The nominal recording span from the header (0 when unknown).
    #[must_use]
    pub const fn span_us(&self) -> Micros {
        self.header.span_us
    }

    /// The stored stream name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.header.name
    }

    /// Total events in the recording (from the footer).
    #[must_use]
    pub const fn num_events(&self) -> u64 {
        self.total_events
    }

    /// Total chunks in the recording.
    #[must_use]
    pub fn num_chunks(&self) -> usize {
        self.index.len()
    }

    /// Index metadata of the next chunk [`ChunkReader::next_chunk`]
    /// would decode, or `None` at end of stream. Peeking costs no I/O —
    /// replay schedulers use it to pick the stream with the earliest
    /// pending chunk.
    #[must_use]
    pub fn peek_meta(&self) -> Option<&ChunkMeta> {
        self.index.get(self.next)
    }

    /// Index metadata of every not-yet-decoded chunk, in decode order —
    /// what the parallel replayer builds its global merge schedule
    /// from, again without any I/O.
    #[must_use]
    pub fn pending_metas(&self) -> &[ChunkMeta] {
        &self.index[self.next.min(self.index.len())..]
    }

    /// Decodes the next chunk into the reader's internal buffer and
    /// returns it, or `None` at end of stream. Only this one chunk is
    /// ever resident.
    ///
    /// # Errors
    ///
    /// Returns an I/O error or a corruption error (CRC mismatch, frame
    /// inconsistent with the index, out-of-bounds or disordered
    /// events).
    pub fn next_chunk(&mut self) -> Result<Option<&[Event]>, StoreError> {
        let mut buffer = std::mem::take(&mut self.buffer);
        let got = self.next_chunk_into(&mut buffer);
        self.buffer = buffer;
        match got? {
            true => Ok(Some(&self.buffer)),
            false => Ok(None),
        }
    }

    /// Like [`ChunkReader::next_chunk`], but decodes into the caller's
    /// buffer (cleared first) instead of the reader's internal one,
    /// returning whether a chunk was decoded. This is the
    /// move-don't-copy path: replay decodes straight into the `Vec`
    /// that is then handed to the engine by value, so no event is ever
    /// memcpy'd after decode. At end of stream `out` is left untouched.
    ///
    /// # Errors
    ///
    /// Returns an I/O error or a corruption error (CRC mismatch, frame
    /// inconsistent with the index, out-of-bounds or disordered
    /// events).
    pub fn next_chunk_into(&mut self, out: &mut Vec<Event>) -> Result<bool, StoreError> {
        let Some(meta) = self.index.get(self.next).copied() else {
            return Ok(false);
        };
        let chunk = self.next;
        let corrupt = |reason| StoreError::CorruptChunk { chunk, reason };
        let mut frame = [0u8; CHUNK_FRAME_BYTES];
        self.source.read_at(meta.offset, &mut frame, corrupt("truncated chunk frame"))?;
        let count = u32::from_le_bytes(frame[0..4].try_into().expect("len 4"));
        let t_first = u64::from_le_bytes(frame[4..12].try_into().expect("len 8"));
        let t_last = u64::from_le_bytes(frame[12..20].try_into().expect("len 8"));
        let payload_len = u32::from_le_bytes(frame[20..24].try_into().expect("len 4")) as usize;
        let payload_crc = u32::from_le_bytes(frame[24..28].try_into().expect("len 4"));
        if count != meta.count || t_first != meta.t_first || t_last != meta.t_last {
            return Err(corrupt("chunk frame disagrees with index"));
        }
        if payload_len as u64 > u64::from(count) * MAX_EVENT_BYTES as u64 {
            return Err(corrupt("payload length exceeds event bound"));
        }
        // Resident sources lend the payload in place; streamed ones
        // copy it into `raw`. Either way CRC and decode make one pass
        // each over the same bytes, straight into `out`.
        let payload = self.source.payload(
            &mut self.raw,
            meta.offset + CHUNK_FRAME_BYTES as u64,
            payload_len,
            corrupt("truncated chunk payload"),
        )?;
        if crc32(payload) != payload_crc {
            return Err(StoreError::ChunkCrcMismatch { chunk });
        }
        decode_chunk_payload_fast(
            out,
            payload,
            chunk,
            self.header.geometry,
            count,
            t_first,
            t_last,
        )?;
        if let Some(resume) = self.resume_from.take() {
            let skip = out.partition_point(|e| e.t < resume);
            out.drain(..skip);
        }
        self.next += 1;
        Ok(true)
    }

    /// Repositions the cursor so that the next decoded events are
    /// exactly those with `t >= instant` — reading from here yields the
    /// same suffix a fresh full read (filtered to `t >= instant`)
    /// would. Costs only an index lookup; no payload is touched.
    pub fn seek_to_time(&mut self, instant: Timestamp) {
        self.next = self.index.partition_point(|meta| meta.t_last < instant);
        self.resume_from = Some(instant);
    }

    /// Rewinds to the first chunk.
    pub fn rewind(&mut self) {
        self.next = 0;
        self.resume_from = None;
    }

    /// Reads the remaining chunks into one in-memory [`Recording`] —
    /// the lossless interop path back to the flat `EAER` codec's type.
    /// Unlike chunked reading this *is* memory-resident; it exists for
    /// interop and tests, not for production replay.
    ///
    /// # Errors
    ///
    /// Returns any error [`ChunkReader::next_chunk`] can.
    pub fn read_recording(&mut self) -> Result<Recording, StoreError> {
        // Grow as chunks actually decode — the footer's event count is
        // untrusted input and must not drive a pre-allocation.
        let mut events = Vec::new();
        while let Some(chunk) = self.next_chunk()? {
            events.extend_from_slice(chunk);
        }
        Ok(Recording { geometry: self.header.geometry, events })
    }
}

/// `read_exact` with a format-specific error for truncation.
fn read_exact_or<R: Read>(
    source: &mut R,
    buf: &mut [u8],
    on_eof: StoreError,
) -> Result<(), StoreError> {
    source.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            on_eof
        } else {
            StoreError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{RecordingWriter, StoreOptions};

    fn events(n: usize) -> Vec<Event> {
        (0..n)
            .map(|i| {
                let x = (i * 7 % 240) as u16;
                let y = (i * 13 % 180) as u16;
                let t = (i as u64) * 97;
                if i % 3 == 0 {
                    Event::off(x, y, t)
                } else {
                    Event::on(x, y, t)
                }
            })
            .collect()
    }

    fn store(events: &[Event], chunk_events: usize, span: u64) -> Vec<u8> {
        let mut w = RecordingWriter::new(
            Vec::new(),
            SensorGeometry::davis240(),
            "unit",
            span,
            StoreOptions { chunk_events },
        )
        .unwrap();
        w.push_events(events).unwrap();
        w.finish().unwrap().0
    }

    #[test]
    fn round_trips_across_chunk_sizes() {
        let original = events(1_000);
        for chunk_events in [1usize, 7, 100, 10_000] {
            let bytes = store(&original, chunk_events, 123);
            let mut reader = ChunkReader::new(Cursor::new(bytes)).unwrap();
            assert_eq!(reader.geometry(), SensorGeometry::davis240());
            assert_eq!(reader.span_us(), 123);
            assert_eq!(reader.name(), "unit");
            assert_eq!(reader.num_events(), 1_000);
            assert_eq!(reader.num_chunks(), 1_000usize.div_ceil(chunk_events));
            let rec = reader.read_recording().unwrap();
            assert_eq!(rec.events, original, "chunk size {chunk_events}");
        }
    }

    #[test]
    fn streamed_and_resident_sources_agree() {
        let original = events(700);
        let bytes = store(&original, 53, 9);
        // Streamed: BufReader over an in-memory Cursor as the raw
        // Read+Seek, exactly the file path minus the filesystem.
        let mut streamed = ChunkReader::new(BufReader::new(Cursor::new(bytes.clone()))).unwrap();
        // Resident: Cursor directly, payloads borrowed in place.
        let mut resident = ChunkReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(
            streamed.read_recording().unwrap().events,
            resident.read_recording().unwrap().events
        );
    }

    #[test]
    fn open_mapped_matches_open() {
        let original = events(300);
        let bytes = store(&original, 41, 0);
        let path = std::env::temp_dir()
            .join(format!("ebbiot_store_test_mapped_{}.ebst", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let streamed = ChunkReader::open(&path).unwrap().read_recording().unwrap();
        let mapped = ChunkReader::open_mapped(&path).unwrap().read_recording().unwrap();
        assert_eq!(streamed, mapped);
        assert_eq!(mapped.events, original);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn next_chunk_into_moves_decoded_chunks() {
        let original = events(500);
        let bytes = store(&original, 64, 0);
        let mut reader = ChunkReader::new(Cursor::new(bytes)).unwrap();
        let mut all = Vec::new();
        let mut chunk = Vec::new();
        while reader.next_chunk_into(&mut chunk).unwrap() {
            assert!(!chunk.is_empty() && chunk.len() <= 64);
            all.extend_from_slice(&chunk);
        }
        assert_eq!(all, original);
        // At end of stream the caller's buffer is left untouched.
        assert!(!chunk.is_empty());
        assert!(!reader.next_chunk_into(&mut chunk).unwrap());
    }

    #[test]
    fn pending_metas_shrink_as_chunks_decode() {
        let bytes = store(&events(100), 30, 0);
        let mut reader = ChunkReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.pending_metas().len(), 4);
        assert_eq!(reader.pending_metas()[0].t_first, reader.peek_meta().unwrap().t_first);
        let _ = reader.next_chunk().unwrap();
        assert_eq!(reader.pending_metas().len(), 3);
        let _ = reader.read_recording().unwrap();
        assert!(reader.pending_metas().is_empty());
    }

    #[test]
    fn chunked_reading_holds_one_chunk_at_a_time() {
        let original = events(500);
        let bytes = store(&original, 64, 0);
        let mut reader = ChunkReader::new(Cursor::new(bytes)).unwrap();
        let mut total = 0;
        while let Some(chunk) = reader.next_chunk().unwrap() {
            assert!(!chunk.is_empty() && chunk.len() <= 64);
            total += chunk.len();
        }
        assert_eq!(total, 500);
        assert!(reader.next_chunk().unwrap().is_none(), "stays at end");
    }

    #[test]
    fn seek_to_time_matches_filtered_fresh_read() {
        let original = events(800);
        let bytes = store(&original, 50, 0);
        let mut reader = ChunkReader::new(Cursor::new(bytes)).unwrap();
        for instant in [0u64, 1, 96, 97, 40_000, 77_600, 100_000] {
            reader.seek_to_time(instant);
            let resumed = reader.read_recording().unwrap().events;
            let expected: Vec<Event> =
                original.iter().copied().filter(|e| e.t >= instant).collect();
            assert_eq!(resumed, expected, "seek to t={instant}");
        }
    }

    #[test]
    fn rewind_restarts_from_the_top() {
        let original = events(100);
        let bytes = store(&original, 16, 0);
        let mut reader = ChunkReader::new(Cursor::new(bytes)).unwrap();
        reader.seek_to_time(5_000);
        let _ = reader.read_recording().unwrap();
        reader.rewind();
        assert_eq!(reader.read_recording().unwrap().events, original);
    }

    #[test]
    fn empty_store_reads_back_empty() {
        let bytes = store(&[], 16, 42);
        let mut reader = ChunkReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.num_events(), 0);
        assert_eq!(reader.span_us(), 42);
        assert!(reader.next_chunk().unwrap().is_none());
    }

    #[test]
    fn rejects_bad_magic_version_and_footer() {
        let good = store(&events(10), 4, 0);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(ChunkReader::new(Cursor::new(bad)).unwrap_err(), StoreError::BadMagic(_)));

        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            ChunkReader::new(Cursor::new(bad)).unwrap_err(),
            StoreError::UnsupportedVersion(9)
        ));

        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 1] = b'?';
        assert!(matches!(ChunkReader::new(Cursor::new(bad)).unwrap_err(), StoreError::BadFooter));

        let bad = good[..good.len() - 3].to_vec();
        assert!(matches!(ChunkReader::new(Cursor::new(bad)).unwrap_err(), StoreError::BadFooter));

        assert!(matches!(
            ChunkReader::new(Cursor::new(b"EB".to_vec())).unwrap_err(),
            StoreError::TruncatedHeader
        ));
    }

    #[test]
    fn streamed_source_rejects_the_same_corruption() {
        let good = store(&events(10), 4, 0);
        let via = |bytes: Vec<u8>| ChunkReader::new(BufReader::new(Cursor::new(bytes)));

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(via(bad).unwrap_err(), StoreError::BadMagic(_)));
        let bad = good[..good.len() - 3].to_vec();
        assert!(matches!(via(bad).unwrap_err(), StoreError::BadFooter));
        assert!(matches!(via(b"EB".to_vec()).unwrap_err(), StoreError::TruncatedHeader));
    }

    #[test]
    fn corrupt_payload_fails_its_crc() {
        let original = events(100);
        let bytes = store(&original, 100, 0);
        // Flip one byte in the middle of the single chunk's payload.
        let mut bad = bytes.clone();
        let payload_mid = HEADER_FIXED_BYTES + 4 + CHUNK_FRAME_BYTES + 20;
        bad[payload_mid] ^= 0xFF;
        let mut reader = ChunkReader::new(Cursor::new(bad)).unwrap();
        assert!(matches!(
            reader.next_chunk().unwrap_err(),
            StoreError::ChunkCrcMismatch { chunk: 0 }
        ));
    }

    #[test]
    fn corrupt_index_fails_its_crc() {
        let bytes = store(&events(100), 10, 0);
        let mut bad = bytes.clone();
        let n = bad.len();
        // Index sits right before the 28-byte footer.
        bad[n - FOOTER_BYTES - 5] ^= 0x01;
        assert!(matches!(
            ChunkReader::new(Cursor::new(bad)).unwrap_err(),
            StoreError::IndexCrcMismatch
        ));
    }
}

//! [`Replayer`]: drives pipelines and engines from stored recordings,
//! at maximum speed or paced against the wall clock.

use std::sync::mpsc::sync_channel;
use std::time::{Duration, Instant};

use ebbiot_core::{FrameResult, Pipeline, Tracker};
use ebbiot_engine::{Engine, EngineOutput, StreamId};
use ebbiot_events::Event;

use crate::reader::{ChunkReader, ChunkSource};
use crate::StoreError;

/// Chunks each decoder thread may run ahead of the engine push in
/// [`Replayer::replay_engine_parallel`] before blocking.
const DECODE_AHEAD_CHUNKS: usize = 4;

/// How replay time relates to wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayMode {
    /// Push chunks as fast as they decode — throughput benchmarking.
    MaxSpeed,
    /// Pace pushes so recording time advances at `rate` × real time
    /// (1.0 = original sensor timing). Each chunk is released once the
    /// scaled wall clock reaches its first event's timestamp.
    Paced {
        /// Recording-seconds per wall-clock second; must be > 0.
        rate: f64,
    },
}

impl ReplayMode {
    /// Real-time pacing (`rate` = 1.0).
    #[must_use]
    pub const fn real_time() -> Self {
        ReplayMode::Paced { rate: 1.0 }
    }

    /// Sleeps until `t_us` of recording time has elapsed since `start`,
    /// under this mode's scaling. No-op for [`ReplayMode::MaxSpeed`].
    fn pace(&self, start: Instant, t_us: u64) {
        if let ReplayMode::Paced { rate } = *self {
            assert!(rate > 0.0, "replay rate must be positive");
            let target = Duration::from_secs_f64(t_us as f64 / 1e6 / rate);
            let elapsed = start.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
    }
}

/// Per-stream progress counters for one replay run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// The stream's position in the reader list (== its [`StreamId`]).
    pub stream: usize,
    /// Events pushed.
    pub events: u64,
    /// Chunks pushed.
    pub chunks: u64,
    /// Recording timestamp of the last pushed event, 0 when none.
    pub last_t: u64,
}

/// Everything a pipeline replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReplay {
    /// The frames the pipeline emitted, identical to processing the
    /// recording in memory.
    pub frames: Vec<FrameResult>,
    /// Progress counters.
    pub stats: ReplayStats,
    /// Wall-clock duration of the replay.
    pub elapsed: Duration,
}

/// Everything an engine replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReplay {
    /// The engine's per-stream outputs and final snapshot.
    pub output: EngineOutput,
    /// Per-stream progress counters, indexed by [`StreamId`].
    pub stats: Vec<ReplayStats>,
    /// Wall-clock duration from first push to full drain.
    pub elapsed: Duration,
}

impl EngineReplay {
    /// Total events replayed across streams.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.stats.iter().map(|s| s.events).sum()
    }

    /// Aggregate replay throughput, events/second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Replays stored recordings through the streaming tracking stack.
///
/// The replayer is the bridge between the on-disk store and the
/// processing layers: it feeds [`Pipeline::push`]/`finish` (single
/// stream) or [`Engine::push`]/`finish_stream` (a whole fleet) straight
/// from [`ChunkReader`]s, so no recording is ever memory-resident.
///
/// ```
/// use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
/// use ebbiot_events::{Event, SensorGeometry};
/// use ebbiot_store::{ChunkReader, RecordingWriter, ReplayMode, Replayer, StoreOptions};
///
/// // Spool a tiny recording (normally a file; any Write sink works)…
/// let geometry = SensorGeometry::davis240();
/// let mut writer = RecordingWriter::new(Vec::new(), geometry, "demo", 66_000,
///     StoreOptions::default())?;
/// writer.push_events(&[Event::on(10, 20, 0), Event::on(11, 20, 40_000)])?;
/// let (bytes, _) = writer.finish()?;
///
/// // …and replay it through a pipeline at maximum speed.
/// let mut reader = ChunkReader::new(std::io::Cursor::new(bytes))?;
/// let mut pipeline = EbbiotPipeline::new(EbbiotConfig::paper_default(geometry));
/// let run = Replayer::new(ReplayMode::MaxSpeed).replay_pipeline(&mut reader, &mut pipeline)?;
/// assert_eq!(run.stats.events, 2);
/// assert_eq!(run.frames, EbbiotPipeline::new(EbbiotConfig::paper_default(geometry))
///     .process_recording(&[Event::on(10, 20, 0), Event::on(11, 20, 40_000)], 66_000));
/// # Ok::<(), ebbiot_store::StoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replayer {
    mode: ReplayMode,
}

impl Replayer {
    /// A replayer in the given mode.
    #[must_use]
    pub const fn new(mode: ReplayMode) -> Self {
        Self { mode }
    }

    /// The configured mode.
    #[must_use]
    pub const fn mode(&self) -> ReplayMode {
        self.mode
    }

    /// Drives one pipeline from one reader, chunk by chunk, finishing
    /// with the header's nominal span. The emitted frames are
    /// bit-for-bit what `process_recording` over the same events (and
    /// span) yields.
    ///
    /// # Errors
    ///
    /// Returns the first read/decode error; the pipeline is left where
    /// the error struck.
    pub fn replay_pipeline<T: Tracker, R: ChunkSource>(
        &self,
        reader: &mut ChunkReader<R>,
        pipeline: &mut Pipeline<T>,
    ) -> Result<PipelineReplay, StoreError> {
        let started = Instant::now();
        let mut frames = Vec::new();
        let mut stats = ReplayStats { stream: 0, events: 0, chunks: 0, last_t: 0 };
        while let Some(meta) = reader.peek_meta().copied() {
            self.mode.pace(started, meta.t_first);
            let chunk = reader.next_chunk()?.expect("peeked chunk exists");
            stats.events += chunk.len() as u64;
            stats.chunks += 1;
            if let Some(last) = chunk.last() {
                stats.last_t = last.t;
            }
            frames.extend(pipeline.push(chunk));
        }
        frames.extend(pipeline.finish(reader.span_us()));
        Ok(PipelineReplay { frames, stats, elapsed: started.elapsed() })
    }

    /// Drives a whole engine from one reader per stream (reader `i`
    /// feeds [`StreamId`]`(i)`), joins it and returns its output.
    ///
    /// Chunks are fanned in globally time-ordered: at every step the
    /// stream with the earliest pending chunk (by the index metadata —
    /// no decode needed to schedule) is pushed next, which is also what
    /// paces correctly in [`ReplayMode::Paced`]. Each stream is
    /// finished with its header's nominal span. Per-stream output is
    /// bit-for-bit identical to in-memory processing of the same
    /// events.
    ///
    /// # Errors
    ///
    /// Returns the first read/decode error. The engine is dropped
    /// without joining in that case; its `Drop` signals the scheduler
    /// shutdown, so the workers drain what was queued and exit.
    ///
    /// # Panics
    ///
    /// Panics when `readers` does not have exactly one reader per
    /// engine stream.
    pub fn replay_engine<T: Tracker + Send + 'static, R: ChunkSource>(
        &self,
        readers: &mut [ChunkReader<R>],
        engine: Engine<T>,
    ) -> Result<EngineReplay, StoreError> {
        assert_eq!(readers.len(), engine.num_streams(), "one reader per engine stream");
        let started = Instant::now();
        let mut stats: Vec<ReplayStats> = (0..readers.len())
            .map(|stream| ReplayStats { stream, events: 0, chunks: 0, last_t: 0 })
            .collect();
        // Earliest pending chunk across streams, from index metadata.
        let earliest = |readers: &[ChunkReader<R>]| {
            readers
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.peek_meta().map(|m| (i, m.t_first)))
                .min_by_key(|&(i, t)| (t, i))
        };
        while let Some((stream, t_first)) = earliest(readers) {
            self.mode.pace(started, t_first);
            // Decode straight into the Vec the engine takes by value:
            // the chunk is moved to the worker, never copied.
            let mut chunk = Vec::new();
            let got = readers[stream].next_chunk_into(&mut chunk)?;
            debug_assert!(got, "peeked chunk exists");
            note_chunk(&mut stats[stream], &chunk);
            engine.push(StreamId(stream), chunk);
        }
        for (i, reader) in readers.iter().enumerate() {
            engine.finish_stream(StreamId(i), reader.span_us());
        }
        let output = engine.join();
        Ok(EngineReplay { output, stats, elapsed: started.elapsed() })
    }

    /// [`Replayer::replay_engine`] with parallel chunk decode
    /// (`par_decode`): one decoder thread per reader runs up to
    /// `DECODE_AHEAD_CHUNKS` chunks ahead through a bounded channel,
    /// while this thread paces and pushes in the exact global order the
    /// sequential replayer uses.
    ///
    /// The push schedule is computed up front from index metadata
    /// alone: a stable sort of all pending chunks by
    /// `(t_first, stream)` — identical to the sequential
    /// earliest-pending pick because each stream's `t_first`s are
    /// non-decreasing (the reader validates that at open). Per-stream
    /// push order is therefore unchanged too, so engine output is
    /// bit-for-bit the sequential (and in-memory) result.
    ///
    /// # Errors
    ///
    /// Returns the first read/decode error. The engine is dropped
    /// without joining in that case; its `Drop` signals the scheduler
    /// shutdown, so the workers drain what was queued and exit.
    ///
    /// # Panics
    ///
    /// Panics when `readers` does not have exactly one reader per
    /// engine stream.
    pub fn replay_engine_parallel<T: Tracker + Send + 'static, R: ChunkSource + Send>(
        &self,
        readers: &mut [ChunkReader<R>],
        engine: Engine<T>,
    ) -> Result<EngineReplay, StoreError> {
        assert_eq!(readers.len(), engine.num_streams(), "one reader per engine stream");
        let started = Instant::now();
        let mut stats: Vec<ReplayStats> = (0..readers.len())
            .map(|stream| ReplayStats { stream, events: 0, chunks: 0, last_t: 0 })
            .collect();
        let mut schedule: Vec<(u64, usize)> = readers
            .iter()
            .enumerate()
            .flat_map(|(i, r)| r.pending_metas().iter().map(move |m| (m.t_first, i)))
            .collect();
        schedule.sort_by_key(|&order| order);

        let mode = self.mode;
        let pushed: Result<(), StoreError> = std::thread::scope(|scope| {
            let mut chunk_rx = Vec::with_capacity(readers.len());
            for reader in readers.iter_mut() {
                let (tx, rx) = sync_channel::<Result<Vec<Event>, StoreError>>(DECODE_AHEAD_CHUNKS);
                chunk_rx.push(rx);
                scope.spawn(move || loop {
                    let mut chunk = Vec::new();
                    match reader.next_chunk_into(&mut chunk) {
                        // A send fails only when the replay loop bailed
                        // out on another stream's error; stop decoding.
                        Ok(true) => {
                            if tx.send(Ok(chunk)).is_err() {
                                return;
                            }
                        }
                        Ok(false) => return,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                });
            }
            for &(t_first, stream) in &schedule {
                mode.pace(started, t_first);
                let chunk =
                    chunk_rx[stream].recv().expect("decoder sends every scheduled chunk")?;
                note_chunk(&mut stats[stream], &chunk);
                engine.push(StreamId(stream), chunk);
            }
            // Dropping the receivers here unblocks any decoder still
            // parked on a full channel after an early error return.
            Ok(())
        });
        pushed?;
        for (i, reader) in readers.iter().enumerate() {
            engine.finish_stream(StreamId(i), reader.span_us());
        }
        let output = engine.join();
        Ok(EngineReplay { output, stats, elapsed: started.elapsed() })
    }
}

/// Folds one pushed chunk into a stream's progress counters.
fn note_chunk(stats: &mut ReplayStats, chunk: &[Event]) {
    stats.events += chunk.len() as u64;
    stats.chunks += 1;
    if let Some(last) = chunk.last() {
        stats.last_t = last.t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{RecordingWriter, StoreOptions};
    use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
    use ebbiot_engine::EngineConfig;
    use ebbiot_events::{Event, SensorGeometry};
    use std::io::Cursor;

    /// Dense moving block that survives the median filter.
    fn recording() -> Vec<Event> {
        let mut events = Vec::new();
        for f in 0..5u16 {
            for dy in 0..12u16 {
                for dx in 0..24u16 {
                    events.push(Event::on(
                        40 + f * 3 + dx,
                        80 + dy,
                        u64::from(f) * 66_000 + u64::from(dy) * 7,
                    ));
                }
            }
        }
        events
    }

    const SPAN: u64 = 6 * 66_000;

    fn stored(events: &[Event], chunk_events: usize) -> ChunkReader<Cursor<Vec<u8>>> {
        let mut w = RecordingWriter::new(
            Vec::new(),
            SensorGeometry::davis240(),
            "replay",
            SPAN,
            StoreOptions { chunk_events },
        )
        .unwrap();
        w.push_events(events).unwrap();
        ChunkReader::new(Cursor::new(w.finish().unwrap().0)).unwrap()
    }

    fn pipeline() -> EbbiotPipeline {
        EbbiotPipeline::new(EbbiotConfig::paper_default(SensorGeometry::davis240()))
    }

    #[test]
    fn pipeline_replay_matches_in_memory_processing() {
        let events = recording();
        let expected = pipeline().process_recording(&events, SPAN);
        for chunk_events in [37usize, 288, 100_000] {
            let mut reader = stored(&events, chunk_events);
            let mut p = pipeline();
            let run =
                Replayer::new(ReplayMode::MaxSpeed).replay_pipeline(&mut reader, &mut p).unwrap();
            assert_eq!(run.frames, expected, "chunk size {chunk_events}");
            assert_eq!(run.stats.events, events.len() as u64);
            assert_eq!(run.stats.last_t, events.last().unwrap().t);
        }
    }

    #[test]
    fn engine_replay_matches_in_memory_processing() {
        let events = recording();
        let expected = pipeline().process_recording(&events, SPAN);
        let mut readers = vec![stored(&events, 91), stored(&events, 1_024)];
        let engine = Engine::new(EngineConfig::with_workers(2), vec![pipeline(), pipeline()]);
        let run = Replayer::new(ReplayMode::MaxSpeed).replay_engine(&mut readers, engine).unwrap();
        assert_eq!(run.output.streams.len(), 2);
        for (i, frames) in run.output.streams.iter().enumerate() {
            assert_eq!(frames, &expected, "stream {i}");
        }
        assert_eq!(run.events(), 2 * events.len() as u64);
        assert!(run.events_per_sec() > 0.0);
        assert_eq!(run.stats[0].chunks, (events.len() as u64).div_ceil(91));
    }

    #[test]
    fn parallel_engine_replay_matches_sequential_and_in_memory() {
        let events = recording();
        let expected = pipeline().process_recording(&events, SPAN);
        // Deliberately unequal chunk sizes so the merge schedule
        // interleaves streams unevenly.
        let mut readers = vec![stored(&events, 91), stored(&events, 1_024), stored(&events, 17)];
        let engine =
            Engine::new(EngineConfig::with_workers(2), vec![pipeline(), pipeline(), pipeline()]);
        let run = Replayer::new(ReplayMode::MaxSpeed)
            .replay_engine_parallel(&mut readers, engine)
            .unwrap();
        for (i, frames) in run.output.streams.iter().enumerate() {
            assert_eq!(frames, &expected, "stream {i}");
        }
        assert_eq!(run.events(), 3 * events.len() as u64);
        assert_eq!(run.stats[2].chunks, (events.len() as u64).div_ceil(17));
        assert_eq!(run.stats[0].last_t, events.last().unwrap().t);
    }

    #[test]
    fn parallel_engine_replay_surfaces_decode_errors() {
        let events = recording();
        let mut w = RecordingWriter::new(
            Vec::new(),
            SensorGeometry::davis240(),
            "bad",
            SPAN,
            StoreOptions { chunk_events: 64 },
        )
        .unwrap();
        w.push_events(&events).unwrap();
        let mut bytes = w.finish().unwrap().0;
        // Corrupt a payload byte mid-file: open succeeds (the index is
        // intact), decode of that chunk fails its CRC.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let mut readers = vec![stored(&events, 64), ChunkReader::new(Cursor::new(bytes)).unwrap()];
        let engine = Engine::new(EngineConfig::with_workers(1), vec![pipeline(), pipeline()]);
        let err = Replayer::new(ReplayMode::MaxSpeed)
            .replay_engine_parallel(&mut readers, engine)
            .unwrap_err();
        assert!(
            matches!(err, StoreError::ChunkCrcMismatch { .. } | StoreError::CorruptChunk { .. }),
            "{err}"
        );
    }

    #[test]
    fn paced_replay_takes_at_least_the_scaled_duration() {
        let events = recording();
        // Last chunk begins at t of the final block (4 * 66 ms); at
        // 10x real time the release gate is ~26 ms of wall clock.
        let mut reader = stored(&events, 288);
        let mut p = pipeline();
        let started = Instant::now();
        let run = Replayer::new(ReplayMode::Paced { rate: 10.0 })
            .replay_pipeline(&mut reader, &mut p)
            .unwrap();
        let last_chunk_start = 4 * 66_000u64;
        let floor = Duration::from_secs_f64(last_chunk_start as f64 / 1e6 / 10.0);
        assert!(started.elapsed() >= floor, "paced replay finished too fast");
        assert_eq!(run.frames, pipeline().process_recording(&events, SPAN));
    }

    #[test]
    fn replay_mode_helpers() {
        assert_eq!(ReplayMode::real_time(), ReplayMode::Paced { rate: 1.0 });
        let replayer = Replayer::new(ReplayMode::MaxSpeed);
        assert_eq!(replayer.mode(), ReplayMode::MaxSpeed);
    }

    #[test]
    #[should_panic(expected = "one reader per engine stream")]
    fn mismatched_reader_count_panics() {
        let mut readers = vec![stored(&recording(), 100)];
        let engine = Engine::new(EngineConfig::with_workers(1), vec![pipeline(), pipeline()]);
        let _ = Replayer::new(ReplayMode::MaxSpeed).replay_engine(&mut readers, engine);
    }
}

//! Versioned on-disk session snapshots — the **`EBSS`** format.
//!
//! An `EBSS` file ("EB session snapshot") freezes one camera session's
//! [`SessionState`] so processing can resume — in this process, another
//! process, or after a crash — bit-identically to the uninterrupted
//! run. It follows the `EBST` house conventions (ARCHITECTURE.md §8):
//! little-endian integers throughout, a magic/version header, CRC-32
//! framed sections and a closing magic, and a decoder written against
//! hostile bytes: every malformed input surfaces as a
//! [`SnapshotError`], never a panic, and nothing is allocated on the
//! say-so of an unverified length field.
//!
//! ```text
//! header    magic        [u8; 4] = b"EBSS"
//!           version      u16     = 1
//!           width        u16       sensor columns
//!           height       u16       sensor rows
//!           backend_len  u16
//!           name_len     u16
//!           checkpoint_t u64       resume instant T (events t < T are in)
//!           backend      [u8; backend_len]   UTF-8 registry name
//!           name         [u8; name_len]      UTF-8 stream name
//! section*  tag          [u8; 4]   b"PIPE", b"PEND", b"TRKR", in order
//!           len          u32       payload bytes
//!           crc32        u32       CRC-32 (IEEE) of payload
//!           payload      [u8; len]
//! trailer   magic        [u8; 4] = b"EBSE"
//! ```
//!
//! The three sections carry the pipeline cursors/ops (`PIPE`), the
//! buffered events of the unflushed window (`PEND`) and the back-end's
//! opaque [`Tracker::save_state`](ebbiot_core::Tracker::save_state)
//! blob (`TRKR`), each encoded with the checkpoint codec of
//! `ebbiot_core::state`. `checkpoint_t` is the caller-declared cut
//! instant: a crash recovery seeks the archived `EBST` tail to it with
//! [`ChunkReader::seek_to_time`](crate::ChunkReader::seek_to_time) and
//! replays forward.

use std::io::Write;
use std::path::Path;

use ebbiot_core::{SessionState, StateError, StateReader, StateWriter, FRONTEND_OPS_COUNTERS};
use ebbiot_events::SensorGeometry;

use crate::format::crc32;

/// EBSS header magic.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"EBSS";
/// EBSS trailer magic.
pub const SNAPSHOT_END_MAGIC: [u8; 4] = *b"EBSE";
/// Current EBSS format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Section tags, in their mandatory file order.
const SECTION_TAGS: [[u8; 4]; 3] = [*b"PIPE", *b"PEND", *b"TRKR"];

/// Bytes of one serialized pending event (t u64, x u16, y u16, bit u8).
const EVENT_STATE_BYTES: usize = 13;

/// Everything that can go wrong reading or writing an EBSS snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// Input ended before the structure it was declaring.
    Truncated,
    /// Header magic did not match [`SNAPSHOT_MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported format version.
    UnsupportedVersion(u16),
    /// The backend or stream name was not valid UTF-8.
    BadName,
    /// The stream or backend name exceeds the `u16` length field.
    NameTooLong(usize),
    /// A section tag was wrong or its payload structurally impossible.
    BadSection {
        /// The tag the decoder expected at this position.
        tag: [u8; 4],
        /// What was inconsistent.
        reason: &'static str,
    },
    /// A section payload does not match its stored CRC-32.
    SectionCrcMismatch {
        /// The section's tag.
        tag: [u8; 4],
    },
    /// The trailer magic is missing or wrong.
    BadTrailer,
    /// Bytes remained after the trailer magic.
    TrailingBytes,
    /// A section payload failed the checkpoint codec.
    State(StateError),
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o error: {e}"),
            SnapshotError::Truncated => write!(f, "input shorter than the EBSS structure"),
            SnapshotError::BadMagic(m) => write!(f, "bad EBSS magic bytes {m:?}"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported EBSS version {v}"),
            SnapshotError::BadName => write!(f, "snapshot name is not valid UTF-8"),
            SnapshotError::NameTooLong(n) => write!(f, "snapshot name of {n} bytes exceeds u16"),
            SnapshotError::BadSection { tag, reason } => {
                write!(f, "bad EBSS section {}: {reason}", tag_str(*tag))
            }
            SnapshotError::SectionCrcMismatch { tag } => {
                write!(f, "EBSS section {} payload fails its CRC32", tag_str(*tag))
            }
            SnapshotError::BadTrailer => write!(f, "missing or corrupt EBSS trailer"),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after the EBSS trailer"),
            SnapshotError::State(e) => write!(f, "corrupt EBSS state: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<StateError> for SnapshotError {
    fn from(e: StateError) -> Self {
        SnapshotError::State(e)
    }
}

fn tag_str(tag: [u8; 4]) -> String {
    tag.iter().map(|&b| if b.is_ascii_graphic() { b as char } else { '?' }).collect()
}

/// The identifying header of an EBSS snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Sensor geometry of the snapshotted session.
    pub geometry: SensorGeometry,
    /// Stream name (the camera, e.g. `cam03`).
    pub name: String,
    /// Registry name of the back-end whose state is inside.
    pub backend: String,
    /// The cut instant `T`: the snapshot covers exactly the events with
    /// `t < T`, so recovery resumes the source at `T`.
    pub checkpoint_t: u64,
}

/// Serializes one session snapshot into `out`, returning the encoded
/// size in bytes.
///
/// `checkpoint_t` is the caller's declaration of the cut instant — the
/// writer cannot derive it from the state (mid-recording the pending
/// window straddles the cut), so recovery code reads it back from the
/// header instead of guessing.
///
/// # Errors
///
/// [`SnapshotError::NameTooLong`] when a name exceeds the `u16` length
/// field, or [`SnapshotError::Io`] from the sink.
pub fn write_snapshot<W: Write>(
    out: &mut W,
    name: &str,
    geometry: SensorGeometry,
    checkpoint_t: u64,
    state: &SessionState,
) -> Result<u64, SnapshotError> {
    let backend = state.backend.as_bytes();
    let name = name.as_bytes();
    let backend_len =
        u16::try_from(backend.len()).map_err(|_| SnapshotError::NameTooLong(backend.len()))?;
    let name_len = u16::try_from(name.len()).map_err(|_| SnapshotError::NameTooLong(name.len()))?;

    let mut header = Vec::new();
    header.extend_from_slice(&SNAPSHOT_MAGIC);
    header.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    header.extend_from_slice(&geometry.width().to_le_bytes());
    header.extend_from_slice(&geometry.height().to_le_bytes());
    header.extend_from_slice(&backend_len.to_le_bytes());
    header.extend_from_slice(&name_len.to_le_bytes());
    header.extend_from_slice(&checkpoint_t.to_le_bytes());
    header.extend_from_slice(backend);
    header.extend_from_slice(name);
    out.write_all(&header)?;
    let mut written = header.len() as u64;

    let sections = [encode_pipe(state), encode_pend(state), state.tracker.clone()];
    for (tag, payload) in SECTION_TAGS.iter().zip(&sections) {
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(tag);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        out.write_all(&frame)?;
        written += frame.len() as u64;
    }

    out.write_all(&SNAPSHOT_END_MAGIC)?;
    Ok(written + SNAPSHOT_END_MAGIC.len() as u64)
}

fn encode_pipe(state: &SessionState) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put_u64(state.frames_processed);
    w.put_u64(state.next_index);
    w.put_u64(state.active_tracker_sum);
    w.put_bool(state.last_pushed_t.is_some());
    w.put_u64(state.last_pushed_t.unwrap_or(0));
    w.put_bool(state.frontend_ops.is_some());
    if let Some(ops) = &state.frontend_ops {
        for counter in ops {
            w.put_ops(counter);
        }
    }
    w.finish()
}

fn encode_pend(state: &SessionState) -> Vec<u8> {
    let mut w = StateWriter::new();
    w.put_u32(state.pending.len() as u32);
    for e in &state.pending {
        w.put_event(e);
    }
    w.finish()
}

/// Decodes an EBSS snapshot from a complete byte image.
///
/// The decoder is safe against arbitrary input: magic, version and
/// every section CRC are verified, every declared length is checked
/// against the remaining input before any slicing or allocation, and a
/// failure returns with nothing half-built.
///
/// # Errors
///
/// Any [`SnapshotError`] variant except `Io`.
pub fn read_snapshot(bytes: &[u8]) -> Result<(SnapshotHeader, SessionState), SnapshotError> {
    let mut cursor = Cursor { buf: bytes, pos: 0 };

    let magic: [u8; 4] = cursor.take(4)?.try_into().expect("len 4");
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = cursor.u16()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let width = cursor.u16()?;
    let height = cursor.u16()?;
    let backend_len = cursor.u16()? as usize;
    let name_len = cursor.u16()? as usize;
    let checkpoint_t = cursor.u64()?;
    let backend = core::str::from_utf8(cursor.take(backend_len)?)
        .map_err(|_| SnapshotError::BadName)?
        .to_string();
    let name = core::str::from_utf8(cursor.take(name_len)?)
        .map_err(|_| SnapshotError::BadName)?
        .to_string();
    let geometry = SensorGeometry::new(width, height);

    let mut payloads: [&[u8]; 3] = [&[]; 3];
    for (tag, slot) in SECTION_TAGS.iter().zip(&mut payloads) {
        let found: [u8; 4] = cursor.take(4)?.try_into().expect("len 4");
        if found != *tag {
            return Err(SnapshotError::BadSection { tag: *tag, reason: "unexpected section tag" });
        }
        let len = cursor.u32()? as usize;
        let expected_crc = cursor.u32()?;
        let payload = cursor.take(len)?;
        if crc32(payload) != expected_crc {
            return Err(SnapshotError::SectionCrcMismatch { tag: *tag });
        }
        *slot = payload;
    }

    let trailer = cursor.take(4).map_err(|_| SnapshotError::BadTrailer)?;
    if trailer != SNAPSHOT_END_MAGIC {
        return Err(SnapshotError::BadTrailer);
    }
    if cursor.pos != bytes.len() {
        return Err(SnapshotError::TrailingBytes);
    }

    let state = decode_sections(backend, payloads)?;
    Ok((SnapshotHeader { geometry, name, backend: state.backend.clone(), checkpoint_t }, state))
}

fn decode_sections(
    backend: String,
    [pipe, pend, trkr]: [&[u8]; 3],
) -> Result<SessionState, SnapshotError> {
    let mut r = StateReader::new(pipe);
    let frames_processed = r.get_u64()?;
    let next_index = r.get_u64()?;
    let active_tracker_sum = r.get_u64()?;
    let has_last = r.get_bool()?;
    let last_raw = r.get_u64()?;
    let last_pushed_t = has_last.then_some(last_raw);
    let frontend_ops = if r.get_bool()? {
        let mut ops = [Default::default(); FRONTEND_OPS_COUNTERS];
        for counter in &mut ops {
            *counter = r.get_ops()?;
        }
        Some(ops)
    } else {
        None
    };
    r.finish()?;

    let mut r = StateReader::new(pend);
    let count = r.get_u32()? as usize;
    // Reject a lying count before decoding (and thus allocating) any
    // events: the section must hold exactly `count` encoded events.
    if r.remaining() != count.checked_mul(EVENT_STATE_BYTES).ok_or(SnapshotError::Truncated)? {
        return Err(SnapshotError::BadSection {
            tag: *b"PEND",
            reason: "event count disagrees with the section length",
        });
    }
    let mut pending = Vec::new();
    for _ in 0..count {
        pending.push(r.get_event()?);
    }
    r.finish()?;

    Ok(SessionState {
        backend,
        frames_processed,
        next_index,
        active_tracker_sum,
        pending,
        last_pushed_t,
        frontend_ops,
        tracker: trkr.to_vec(),
    })
}

/// Reads and decodes an EBSS snapshot file.
///
/// # Errors
///
/// [`SnapshotError::Io`] on read failure, otherwise as
/// [`read_snapshot`].
pub fn read_snapshot_file(path: &Path) -> Result<(SnapshotHeader, SessionState), SnapshotError> {
    let bytes = std::fs::read(path)?;
    read_snapshot(&bytes)
}

/// Minimal bounds-checked cursor for the framing layer (the section
/// payloads use [`StateReader`], which has its own error space).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_events::{Event, OpsCounter};

    fn sample_state() -> SessionState {
        SessionState {
            backend: "ebbiot".into(),
            frames_processed: 12,
            next_index: 12,
            active_tracker_sum: 30,
            pending: vec![Event::on(10, 20, 800_123), Event::off(11, 20, 800_200)],
            last_pushed_t: Some(800_200),
            frontend_ops: Some([
                OpsCounter { comparisons: 1, additions: 2, multiplications: 3, mem_writes: 4 },
                OpsCounter::new(),
                OpsCounter { comparisons: 9, ..OpsCounter::new() },
                OpsCounter::new(),
            ]),
            tracker: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let state = sample_state();
        let mut bytes = Vec::new();
        let written =
            write_snapshot(&mut bytes, "cam07", SensorGeometry::new(64, 48), 792_000, &state)
                .unwrap();
        assert_eq!(written, bytes.len() as u64);
        let (header, decoded) = read_snapshot(&bytes).unwrap();
        assert_eq!(header.name, "cam07");
        assert_eq!(header.backend, "ebbiot");
        assert_eq!(header.geometry, SensorGeometry::new(64, 48));
        assert_eq!(header.checkpoint_t, 792_000);
        assert_eq!(decoded, state);
    }

    #[test]
    fn none_fields_survive_the_round_trip() {
        let state = SessionState {
            backend: "nn-ebms".into(),
            frames_processed: 0,
            next_index: 0,
            active_tracker_sum: 0,
            pending: Vec::new(),
            last_pushed_t: None,
            frontend_ops: None,
            tracker: Vec::new(),
        };
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, "cam00", SensorGeometry::new(8, 8), 0, &state).unwrap();
        let (_, decoded) = read_snapshot(&bytes).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn wrong_magic_version_and_trailer_are_rejected() {
        let state = sample_state();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, "cam01", SensorGeometry::new(8, 8), 5, &state).unwrap();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(read_snapshot(&bad), Err(SnapshotError::BadMagic(_))));

        let mut bad = bytes.clone();
        bad[4] = 0xFF;
        assert!(matches!(read_snapshot(&bad), Err(SnapshotError::UnsupportedVersion(_))));

        let n = bytes.len();
        let mut bad = bytes.clone();
        bad[n - 1] = b'!';
        assert!(matches!(read_snapshot(&bad), Err(SnapshotError::BadTrailer)));

        let mut bad = bytes;
        bad.push(0);
        assert!(matches!(read_snapshot(&bad), Err(SnapshotError::TrailingBytes)));
    }

    #[test]
    fn section_corruption_fails_the_crc() {
        let state = sample_state();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, "cam01", SensorGeometry::new(8, 8), 5, &state).unwrap();
        // Flip a byte in the middle (inside some section payload).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            read_snapshot(&bytes),
            Err(SnapshotError::SectionCrcMismatch { .. } | SnapshotError::BadSection { .. })
        ));
    }

    #[test]
    fn error_display_names_the_section() {
        let e = SnapshotError::SectionCrcMismatch { tag: *b"PEND" };
        assert!(e.to_string().contains("PEND"), "{e}");
        assert!(SnapshotError::State(StateError::Truncated).to_string().contains("truncated"));
    }
}

//! [`FleetStore`]: one `EBST` file per camera plus a manifest, so a
//! simulated (or captured) fleet is written once and replayed many
//! times.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, Cursor, Write};
use std::path::{Path, PathBuf};

use ebbiot_events::{Event, Micros, SensorGeometry};

use crate::reader::ChunkReader;
use crate::writer::{RecordingWriter, StoreOptions};
use crate::StoreError;

/// Name of the manifest file inside a fleet directory.
pub const MANIFEST_FILE: &str = "manifest.txt";
/// First line of a valid manifest.
pub const MANIFEST_HEADER: &str = "EBST-FLEET 1";

/// One camera's input to [`FleetStore::write`].
#[derive(Debug, Clone, Copy)]
pub struct StoredCamera<'a> {
    /// Stream name recorded in the per-camera header and manifest.
    pub name: &'a str,
    /// Sensor geometry.
    pub geometry: SensorGeometry,
    /// Nominal recording span (what replay hands to `finish`).
    pub span_us: Micros,
    /// Time-ordered events.
    pub events: &'a [Event],
}

/// One camera's entry in a fleet manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetEntry {
    /// File name inside the fleet directory (e.g. `cam03.ebst`).
    pub file: String,
    /// Stream name.
    pub name: String,
    /// Sensor geometry.
    pub geometry: SensorGeometry,
    /// Nominal recording span in microseconds.
    pub span_us: Micros,
    /// Events in the camera's file.
    pub events: u64,
    /// Size of the camera's file in bytes.
    pub bytes: u64,
}

/// (Re)writes a fleet manifest for `entries` into `dir`. The manifest
/// is small and rewritten whole, so callers growing a fleet one camera
/// at a time (the [`FleetArchiver`](crate::FleetArchiver) tee) always
/// leave a complete, openable manifest behind.
pub(crate) fn write_manifest(dir: &Path, entries: &[FleetEntry]) -> Result<(), StoreError> {
    let mut out = File::create(dir.join(MANIFEST_FILE))?;
    writeln!(out, "{MANIFEST_HEADER}")?;
    for e in entries {
        writeln!(
            out,
            "camera {} {} {} {} {} {} {}",
            e.file,
            e.geometry.width(),
            e.geometry.height(),
            e.span_us,
            e.events,
            e.bytes,
            e.name
        )?;
    }
    out.flush()?;
    Ok(())
}

/// A spooled fleet on disk: a directory of per-camera `EBST` files
/// described by a [`MANIFEST_FILE`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStore {
    dir: PathBuf,
    entries: Vec<FleetEntry>,
}

impl FleetStore {
    /// Spools `cameras` into `dir` (created if absent): camera `k`
    /// becomes `cam<k>.ebst`, then the manifest is written last so a
    /// readable manifest implies complete camera files.
    ///
    /// # Errors
    ///
    /// Returns the first I/O or validation error (disordered or
    /// out-of-bounds events).
    pub fn write(
        dir: &Path,
        cameras: &[StoredCamera<'_>],
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        fs::create_dir_all(dir)?;
        let mut entries = Vec::with_capacity(cameras.len());
        for (k, camera) in cameras.iter().enumerate() {
            // The manifest is line-oriented with the name as the raw
            // line remainder: line breaks can never round-trip, so
            // refuse them up front instead of writing a store that can
            // never be reopened.
            if camera.name.contains(['\n', '\r']) {
                return Err(StoreError::BadManifest {
                    reason: "stream name contains a line break",
                });
            }
            let file = format!("cam{k:02}.ebst");
            let mut writer = RecordingWriter::create(
                &dir.join(&file),
                camera.geometry,
                camera.name,
                camera.span_us,
                options,
            )?;
            writer.push_events(camera.events)?;
            let (_, summary) = writer.finish()?;
            entries.push(FleetEntry {
                file,
                name: camera.name.to_string(),
                geometry: camera.geometry,
                span_us: camera.span_us,
                events: summary.events,
                bytes: summary.bytes,
            });
        }
        let store = Self { dir: dir.to_path_buf(), entries };
        store.write_manifest()?;
        Ok(store)
    }

    fn write_manifest(&self) -> Result<(), StoreError> {
        write_manifest(&self.dir, &self.entries)
    }

    /// Opens a spooled fleet by reading its manifest.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadFooter`]-style corruption errors for a
    /// missing or malformed manifest, or an I/O error.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        let malformed = |reason| StoreError::BadManifest { reason };
        let manifest = BufReader::new(File::open(dir.join(MANIFEST_FILE))?);
        let mut lines = manifest.lines();
        let header = lines.next().transpose()?.ok_or(malformed("empty manifest"))?;
        if header.trim() != MANIFEST_HEADER {
            return Err(malformed("manifest header mismatch"));
        }
        let mut entries = Vec::new();
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            // Fields are single-space separated; the 8th is the name,
            // taken as the raw line remainder so internal spaces
            // survive the round-trip.
            let mut fields = line.splitn(8, ' ');
            if fields.next() != Some("camera") {
                return Err(malformed("manifest line does not start with `camera`"));
            }
            let mut next = || fields.next().ok_or(malformed("short manifest line"));
            let file = next()?.to_string();
            let width: u16 = next()?.parse().map_err(|_| malformed("bad manifest width"))?;
            let height: u16 = next()?.parse().map_err(|_| malformed("bad manifest height"))?;
            let span_us: u64 = next()?.parse().map_err(|_| malformed("bad manifest span"))?;
            let events: u64 = next()?.parse().map_err(|_| malformed("bad manifest event count"))?;
            let bytes: u64 = next()?.parse().map_err(|_| malformed("bad manifest byte count"))?;
            if width == 0 || height == 0 {
                return Err(malformed("zero manifest geometry"));
            }
            // Absent for empty names (trailing space is not written).
            let name = fields.next().unwrap_or("").to_string();
            entries.push(FleetEntry {
                file,
                name,
                geometry: SensorGeometry::new(width, height),
                span_us,
                events,
                bytes,
            });
        }
        Ok(Self { dir: dir.to_path_buf(), entries })
    }

    /// The fleet directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Per-camera manifest entries, in camera order.
    #[must_use]
    pub fn entries(&self) -> &[FleetEntry] {
        &self.entries
    }

    /// Number of cameras.
    #[must_use]
    pub fn cameras(&self) -> usize {
        self.entries.len()
    }

    /// Total events across cameras (from the manifest).
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.entries.iter().map(|e| e.events).sum()
    }

    /// Total `EBST` bytes across cameras (from the manifest).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Opens one camera's chunked reader.
    ///
    /// # Errors
    ///
    /// Returns an I/O or format error opening the camera file.
    ///
    /// # Panics
    ///
    /// Panics when `camera` is out of range.
    pub fn reader(&self, camera: usize) -> Result<ChunkReader<BufReader<File>>, StoreError> {
        let entry = &self.entries[camera];
        ChunkReader::open(&self.dir.join(&entry.file))
    }

    /// Opens every camera's chunked reader, in camera order — the input
    /// shape [`crate::Replayer::replay_engine`] wants.
    ///
    /// # Errors
    ///
    /// Returns the first open error.
    pub fn readers(&self) -> Result<Vec<ChunkReader<BufReader<File>>>, StoreError> {
        (0..self.entries.len()).map(|k| self.reader(k)).collect()
    }

    /// Opens one camera memory-resident via
    /// [`ChunkReader::open_mapped`]: payloads are borrowed in place
    /// instead of copied per chunk — the fast replay path.
    ///
    /// # Errors
    ///
    /// Returns an I/O or format error opening the camera file.
    ///
    /// # Panics
    ///
    /// Panics when `camera` is out of range.
    pub fn mapped_reader(&self, camera: usize) -> Result<ChunkReader<Cursor<Vec<u8>>>, StoreError> {
        let entry = &self.entries[camera];
        ChunkReader::open_mapped(&self.dir.join(&entry.file))
    }

    /// Opens every camera memory-resident, in camera order — the input
    /// shape [`crate::Replayer::replay_engine_parallel`] wants when the
    /// fleet fits in memory.
    ///
    /// # Errors
    ///
    /// Returns the first open error.
    pub fn mapped_readers(&self) -> Result<Vec<ChunkReader<Cursor<Vec<u8>>>>, StoreError> {
        (0..self.entries.len()).map(|k| self.mapped_reader(k)).collect()
    }

    /// The fleet's session-snapshot area (`<dir>/snapshots`), holding
    /// `EBSS` files named `cam{k:02}-f{frame:08}.ebss`.
    #[must_use]
    pub fn snapshot_dir(&self) -> PathBuf {
        self.dir.join("snapshots")
    }

    /// Writes one camera's session checkpoint into the snapshot area
    /// and returns the file's path. The file name encodes the camera
    /// and the checkpoint's frame count, so later checkpoints of the
    /// same camera sort after earlier ones and
    /// [`Self::latest_snapshot`] finds the newest without parsing.
    ///
    /// # Errors
    ///
    /// Returns an I/O or encoding error.
    ///
    /// # Panics
    ///
    /// Panics when `camera` is out of range.
    pub fn write_camera_snapshot(
        &self,
        camera: usize,
        checkpoint_t: Micros,
        state: &ebbiot_core::SessionState,
    ) -> Result<PathBuf, crate::SnapshotError> {
        let entry = &self.entries[camera];
        let dir = self.snapshot_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("cam{camera:02}-f{:08}.ebss", state.frames_processed));
        let mut out = Vec::new();
        crate::snapshot::write_snapshot(
            &mut out,
            &entry.name,
            entry.geometry,
            checkpoint_t,
            state,
        )?;
        fs::write(&path, out)?;
        Ok(path)
    }

    /// Loads one camera's most recent snapshot (highest frame count in
    /// the file name), or `None` when the camera has never been
    /// checkpointed.
    ///
    /// # Errors
    ///
    /// Returns an I/O error scanning the area or any
    /// [`crate::SnapshotError`] decoding the newest file.
    pub fn latest_snapshot(
        &self,
        camera: usize,
    ) -> Result<Option<(crate::SnapshotHeader, ebbiot_core::SessionState)>, crate::SnapshotError>
    {
        let dir = self.snapshot_dir();
        if !dir.is_dir() {
            return Ok(None);
        }
        let prefix = format!("cam{camera:02}-");
        let mut newest: Option<String> = None;
        for entry in fs::read_dir(&dir)? {
            let file_name = entry?.file_name();
            let Some(name) = file_name.to_str() else { continue };
            if name.starts_with(&prefix)
                && name.ends_with(".ebss")
                && newest.as_deref().is_none_or(|best| name > best)
            {
                newest = Some(name.to_string());
            }
        }
        match newest {
            Some(name) => crate::snapshot::read_snapshot_file(&dir.join(name)).map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ebbiot_store_test_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn camera_events(seed: u64, n: usize) -> Vec<Event> {
        (0..n)
            .map(|i| {
                let i = i as u64;
                Event::on(
                    ((seed * 31 + i * 7) % 240) as u16,
                    ((seed * 17 + i * 13) % 180) as u16,
                    i * 53,
                )
            })
            .collect()
    }

    #[test]
    fn fleet_round_trips_through_manifest_and_files() {
        let dir = temp_dir("roundtrip");
        let streams: Vec<Vec<Event>> = (0..3).map(|k| camera_events(k, 400)).collect();
        let geometry = SensorGeometry::davis240();
        let names: Vec<String> = (0..3).map(|k| format!("LT4-cam{k:02}")).collect();
        let cameras: Vec<StoredCamera<'_>> = streams
            .iter()
            .enumerate()
            .map(|(k, events)| StoredCamera {
                name: &names[k],
                geometry,
                span_us: 1_000_000,
                events,
            })
            .collect();
        let written = FleetStore::write(&dir, &cameras, StoreOptions { chunk_events: 64 }).unwrap();
        assert_eq!(written.cameras(), 3);
        assert_eq!(written.total_events(), 1_200);

        let opened = FleetStore::open(&dir).unwrap();
        assert_eq!(opened, written, "manifest round-trips every field");
        for (k, events) in streams.iter().enumerate() {
            let mut reader = opened.reader(k).unwrap();
            assert_eq!(reader.name(), format!("LT4-cam{k:02}"));
            assert_eq!(reader.span_us(), 1_000_000);
            assert_eq!(&reader.read_recording().unwrap().events, events);
        }
        assert_eq!(opened.readers().unwrap().len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn names_with_spaces_round_trip_and_line_breaks_are_rejected() {
        let dir = temp_dir("names");
        let events = camera_events(1, 50);
        let geometry = SensorGeometry::davis240();
        let camera = |name| StoredCamera { name, geometry, span_us: 10, events: &events };

        let written = FleetStore::write(
            &dir,
            &[camera("north  gate  cam"), camera("")],
            StoreOptions::default(),
        )
        .unwrap();
        let opened = FleetStore::open(&dir).unwrap();
        assert_eq!(opened, written, "multi-space and empty names survive the manifest");
        assert_eq!(opened.entries()[0].name, "north  gate  cam");
        assert_eq!(opened.entries()[1].name, "");

        let err =
            FleetStore::write(&dir, &[camera("two\nlines")], StoreOptions::default()).unwrap_err();
        assert!(matches!(err, StoreError::BadManifest { .. }), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_missing_or_malformed_manifests() {
        let dir = temp_dir("malformed");
        assert!(matches!(FleetStore::open(&dir), Err(StoreError::Io(_))), "missing dir");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST_FILE), "NOT A MANIFEST\n").unwrap();
        assert!(FleetStore::open(&dir).is_err(), "bad header");
        fs::write(dir.join(MANIFEST_FILE), format!("{MANIFEST_HEADER}\ncamera cam00.ebst 240\n"))
            .unwrap();
        assert!(FleetStore::open(&dir).is_err(), "short line");
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! [`FleetArchiver`]: a thread-safe archival tee that grows a fleet
//! directory one stream at a time.
//!
//! [`FleetStore::write`](crate::FleetStore::write) spools a whole fleet
//! in one shot; the archiver is its *streaming* counterpart for sources
//! whose cameras arrive and leave independently — the `ebbiot_server`
//! ingestion sessions tee every accepted event chunk through one of
//! these. Each [`ArchiveStream`] writes a standalone `EBST` file; when
//! it finishes, its entry is appended and the manifest rewritten, so at
//! any instant the directory is a valid
//! [`FleetStore`](crate::FleetStore) of the sessions completed so far.

use std::fs::{self, File};
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use ebbiot_events::{Event, Micros, SensorGeometry};

use crate::fleet::{write_manifest, FleetEntry};
use crate::writer::{RecordingWriter, StoreOptions};
use crate::StoreError;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug)]
struct ArchiverShared {
    dir: PathBuf,
    options: StoreOptions,
    state: Mutex<ArchiverState>,
}

#[derive(Debug, Default)]
struct ArchiverState {
    /// Next camera file number (`cam<k>.ebst`); grows monotonically so
    /// concurrent sessions never collide on a file name.
    next: usize,
    /// Entries of *completed* streams, in completion order.
    entries: Vec<FleetEntry>,
}

/// Grows a fleet directory one concurrently written stream at a time.
///
/// Clone-cheap (`Arc` inside) and `Send + Sync`: every ingestion
/// session holds a handle and opens its own [`ArchiveStream`].
#[derive(Debug, Clone)]
pub struct FleetArchiver {
    shared: Arc<ArchiverShared>,
}

impl FleetArchiver {
    /// Creates (or reuses) `dir` and writes an empty manifest, so the
    /// directory opens as a zero-camera [`FleetStore`](crate::FleetStore)
    /// even before the first stream completes.
    ///
    /// # Errors
    ///
    /// Returns an I/O error creating the directory or manifest.
    pub fn create(dir: &Path, options: StoreOptions) -> Result<Self, StoreError> {
        fs::create_dir_all(dir)?;
        write_manifest(dir, &[])?;
        Ok(Self {
            shared: Arc::new(ArchiverShared {
                dir: dir.to_path_buf(),
                options,
                state: Mutex::new(ArchiverState::default()),
            }),
        })
    }

    /// The archive directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// Opens a new per-stream `EBST` writer (`cam<k>.ebst`, `k`
    /// allocated atomically). The stream only appears in the manifest
    /// once [`ArchiveStream::finish`] is called.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadManifest`] for names containing line
    /// breaks (they could never be reopened), or the writer's creation
    /// error.
    pub fn begin(
        &self,
        name: &str,
        geometry: SensorGeometry,
        span_us: Micros,
    ) -> Result<ArchiveStream, StoreError> {
        if name.contains(['\n', '\r']) {
            return Err(StoreError::BadManifest { reason: "stream name contains a line break" });
        }
        let file = {
            let mut state = lock(&self.shared.state);
            let k = state.next;
            state.next += 1;
            format!("cam{k:02}.ebst")
        };
        let writer = RecordingWriter::create(
            &self.shared.dir.join(&file),
            geometry,
            name,
            span_us,
            self.shared.options,
        )?;
        Ok(ArchiveStream {
            writer: Some(writer),
            shared: Arc::clone(&self.shared),
            file,
            name: name.to_string(),
            geometry,
        })
    }

    /// Entries of the streams completed so far, in completion order —
    /// what the manifest currently lists.
    #[must_use]
    pub fn entries(&self) -> Vec<FleetEntry> {
        lock(&self.shared.state).entries.clone()
    }

    /// Number of completed streams.
    #[must_use]
    pub fn cameras(&self) -> usize {
        lock(&self.shared.state).entries.len()
    }
}

/// One stream's append-only archive file, open for writing.
///
/// Dropping the stream without [`ArchiveStream::finish`] leaves the
/// partial `cam<k>.ebst` behind but never lists it in the manifest, so
/// an aborted session cannot corrupt the fleet.
#[derive(Debug)]
pub struct ArchiveStream {
    writer: Option<RecordingWriter<BufWriter<File>>>,
    shared: Arc<ArchiverShared>,
    file: String,
    name: String,
    geometry: SensorGeometry,
}

impl ArchiveStream {
    /// The file name this stream writes inside the archive directory.
    #[must_use]
    pub fn file(&self) -> &str {
        &self.file
    }

    /// Appends a time-ordered slice of events (see
    /// [`RecordingWriter::push_events`]).
    ///
    /// # Errors
    ///
    /// Returns the writer's validation or I/O error.
    pub fn push_events(&mut self, events: &[Event]) -> Result<(), StoreError> {
        self.writer.as_mut().expect("archive stream used after finish").push_events(events)
    }

    /// Seals the stream's `EBST` file with the **authoritative** span
    /// (patching the header, which was written with `begin`'s
    /// provisional hint — network sessions only learn the true span
    /// from their FINISH frame), appends its entry and rewrites the
    /// manifest. Returns the new entry. Pass the `begin` hint back when
    /// no better span exists.
    ///
    /// # Errors
    ///
    /// Returns the writer's or the manifest's I/O error.
    pub fn finish(mut self, span_us: Micros) -> Result<FleetEntry, StoreError> {
        let writer = self.writer.take().expect("archive stream used after finish");
        let (_, summary) = writer.finish_with_span(span_us)?;
        let entry = FleetEntry {
            file: self.file.clone(),
            name: self.name.clone(),
            geometry: self.geometry,
            span_us,
            events: summary.events,
            bytes: summary.bytes,
        };
        let mut state = lock(&self.shared.state);
        state.entries.push(entry.clone());
        write_manifest(&self.shared.dir, &state.entries)?;
        Ok(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FleetStore;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ebbiot_archive_test_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn events(n: usize) -> Vec<Event> {
        (0..n).map(|i| Event::on((i % 64) as u16, (i % 48) as u16, i as u64 * 11)).collect()
    }

    #[test]
    fn archive_grows_one_stream_at_a_time_and_opens_as_a_fleet() {
        let dir = temp_dir("grow");
        let geometry = SensorGeometry::new(64, 48);
        let archiver = FleetArchiver::create(&dir, StoreOptions { chunk_events: 32 }).unwrap();
        assert_eq!(FleetStore::open(&dir).unwrap().cameras(), 0, "empty manifest is valid");

        let recorded = events(100);
        let mut a = archiver.begin("north", geometry, 1_100).unwrap();
        let mut b = archiver.begin("south", geometry, 1_100).unwrap();
        assert_ne!(a.file(), b.file(), "concurrent streams get distinct files");
        a.push_events(&recorded).unwrap();
        b.push_events(&recorded[..40]).unwrap();
        let entry = a.finish(2_200).unwrap();
        assert_eq!(entry.events, 100);

        // After the first finish the manifest lists exactly one camera;
        // the still-open stream is invisible.
        let partial = FleetStore::open(&dir).unwrap();
        assert_eq!(partial.cameras(), 1);
        assert_eq!(partial.entries()[0].name, "north");
        assert_eq!(partial.entries()[0].span_us, 2_200, "manifest carries the FINISH span");
        assert_eq!(
            partial.reader(0).unwrap().span_us(),
            2_200,
            "header span was patched from the 1_100 hint to the authoritative span"
        );

        b.push_events(&recorded[40..]).unwrap();
        b.finish(1_100).unwrap();
        let full = FleetStore::open(&dir).unwrap();
        assert_eq!(full.cameras(), 2);
        assert_eq!(full.total_events(), 200);
        for k in 0..2 {
            let rec = full.reader(k).unwrap().read_recording().unwrap();
            assert_eq!(rec.events, recorded, "camera {k} round-trips");
        }
        assert_eq!(archiver.cameras(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aborted_streams_never_reach_the_manifest() {
        let dir = temp_dir("abort");
        let geometry = SensorGeometry::new(16, 16);
        let archiver = FleetArchiver::create(&dir, StoreOptions::default()).unwrap();
        let mut dropped = archiver.begin("gone", geometry, 0).unwrap();
        dropped.push_events(&[Event::on(1, 1, 5)]).unwrap();
        drop(dropped);
        let mut kept = archiver.begin("kept", geometry, 0).unwrap();
        kept.push_events(&[Event::on(2, 2, 9)]).unwrap();
        kept.finish(10).unwrap();

        let store = FleetStore::open(&dir).unwrap();
        assert_eq!(store.cameras(), 1);
        assert_eq!(store.entries()[0].name, "kept");
        assert_eq!(store.entries()[0].file, "cam01.ebst", "aborted stream kept its slot");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn archiver_rejects_line_break_names_and_bad_events() {
        let dir = temp_dir("reject");
        let geometry = SensorGeometry::new(8, 8);
        let archiver = FleetArchiver::create(&dir, StoreOptions::default()).unwrap();
        assert!(matches!(archiver.begin("a\nb", geometry, 0), Err(StoreError::BadManifest { .. })));
        let mut s = archiver.begin("ok", geometry, 0).unwrap();
        assert!(matches!(
            s.push_events(&[Event::on(9, 0, 0)]),
            Err(StoreError::EventOutOfBounds { x: 9, y: 0 })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Property-based tests for frame-domain invariants.

use ebbiot_events::{Event, OpsCounter, SensorGeometry};
use ebbiot_frame::{
    cca::{connected_components, Connectivity},
    ebbi::ebbi_from_events,
    histogram::{Axis, Histogram},
    morphology::{close, dilate, erode, open, SquareKernel},
    BinaryImage, BoundingBox, CountImage, MedianFilter, PixelBox,
};
use proptest::prelude::*;

const W: u16 = 48;
const H: u16 = 36;

fn arb_pixels() -> impl Strategy<Value = Vec<(u16, u16)>> {
    proptest::collection::vec((0..W, 0..H), 0..200)
}

fn image_of(pixels: &[(u16, u16)]) -> BinaryImage {
    let mut img = BinaryImage::new(SensorGeometry::new(W, H));
    for &(x, y) in pixels {
        img.set(x, y, true);
    }
    img
}

fn arb_box() -> impl Strategy<Value = BoundingBox> {
    (0.0f32..200.0, 0.0f32..150.0, 0.1f32..80.0, 0.1f32..60.0)
        .prop_map(|(x, y, w, h)| BoundingBox::new(x, y, w, h))
}

/// Boxes built from corners in *arbitrary order* — roughly one in four
/// draws is degenerate (inverted corners clamp to zero extent) and axis
/// collapses (`x0 == x1`) occur, exercising the empty-box algebra.
fn arb_any_box() -> impl Strategy<Value = BoundingBox> {
    (-50.0f32..250.0, -40.0f32..190.0, -50.0f32..250.0, -40.0f32..190.0, 0u8..4).prop_map(
        |(x0, y0, x1, y1, collapse)| {
            let x1 = if collapse == 1 { x0 } else { x1 };
            let y1 = if collapse == 2 { y0 } else { y1 };
            BoundingBox::from_corners(x0, y0, x1, y1)
        },
    )
}

/// Pixel boxes whose corners may lie well outside the `W x H` sensor, so
/// the clipped code paths of `count_in_box`/`any_in_box` are exercised
/// (including boxes entirely off the array and degenerate boxes).
fn arb_pixel_box() -> impl Strategy<Value = PixelBox> {
    (0..W + 20, 0..H + 20, 0..W + 20, 0..H + 20)
        .prop_map(|(x0, y0, x1, y1)| PixelBox::new(x0.min(x1), y0.min(y1), x0.max(x1), y0.max(y1)))
}

proptest! {
    #[test]
    fn ebbi_pixel_count_never_exceeds_event_count(
        events in proptest::collection::vec((0..W, 0..H, 0u64..1_000_000), 0..300)
    ) {
        let mut evs: Vec<Event> = events.iter().map(|&(x, y, t)| Event::on(x, y, t)).collect();
        evs.sort_unstable();
        let img = ebbi_from_events(SensorGeometry::new(W, H), &evs);
        prop_assert!(img.count_ones() <= evs.len());
        // Every event pixel is set, and nothing else.
        for e in &evs {
            prop_assert!(img.get(e.x, e.y));
        }
        let distinct: std::collections::HashSet<_> = evs.iter().map(|e| (e.x, e.y)).collect();
        prop_assert_eq!(img.count_ones(), distinct.len());
    }

    #[test]
    fn median_filter_output_is_subset_of_dilation_and_never_adds_isolated(pixels in arb_pixels()) {
        let img = image_of(&pixels);
        let mut f = MedianFilter::paper_default();
        let out = f.apply(&img);
        // Median can both remove (salt) and add (fill pepper holes), but an
        // output pixel requires >= 5 set neighbours in the input patch, so
        // it is always within a dilation of the input.
        let grown = dilate(&img, SquareKernel::new(3));
        for (x, y) in out.set_pixels() {
            prop_assert!(grown.get(x, y));
        }
    }

    #[test]
    fn median_filter_is_monotone(pixels in arb_pixels(), extra in arb_pixels()) {
        // a ⊆ b ⇒ median(a) ⊆ median(b): binary median is a monotone
        // threshold function.
        let a = image_of(&pixels);
        let all: Vec<_> = pixels.iter().chain(extra.iter()).copied().collect();
        let b = image_of(&all);
        let fa = MedianFilter::paper_default().apply(&a);
        let fb = MedianFilter::paper_default().apply(&b);
        for (x, y) in fa.set_pixels() {
            prop_assert!(fb.get(x, y));
        }
    }

    #[test]
    fn downsample_conserves_mass_for_any_factors(
        pixels in arb_pixels(),
        s1 in 1u16..12,
        s2 in 1u16..12,
    ) {
        // Partial edge cells (the extended Eq. 3) mean no pixel is ever
        // dropped, whether or not the factors divide the geometry.
        let img = image_of(&pixels);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, s1, s2, &mut ops);
        prop_assert_eq!(ds.width(), W.div_ceil(s1));
        prop_assert_eq!(ds.height(), H.div_ceil(s2));
        prop_assert_eq!(ds.total(), img.count_ones() as u64);
    }

    #[test]
    fn histogram_totals_equal_downsample_total(pixels in arb_pixels()) {
        let img = image_of(&pixels);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        let hx = Histogram::project(&ds, Axis::X, &mut ops);
        let hy = Histogram::project(&ds, Axis::Y, &mut ops);
        prop_assert_eq!(hx.total(), ds.total());
        prop_assert_eq!(hy.total(), ds.total());
    }

    #[test]
    fn runs_are_disjoint_ordered_and_cover_all_hot_bins(
        bins in proptest::collection::vec(0u32..5, 0..60),
        threshold in 1u32..4,
    ) {
        let h = Histogram::from_bins(bins.clone());
        let mut ops = OpsCounter::new();
        let runs = h.runs_at_least(threshold, &mut ops);
        // Ordered and disjoint with gaps.
        for w in runs.windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }
        // Membership matches the threshold exactly.
        for (i, &v) in bins.iter().enumerate() {
            let in_run = runs.iter().any(|r| i >= r.start && i < r.end);
            prop_assert_eq!(in_run, v >= threshold, "bin {} value {}", i, v);
        }
    }

    #[test]
    fn box_counting_matches_naive_per_pixel_loop(
        pixels in arb_pixels(),
        b in arb_pixel_box(),
    ) {
        let img = image_of(&pixels);
        // Reference: scan every sensor pixel and test box membership —
        // no clipping logic to share bugs with the implementation.
        let mut naive = 0usize;
        for y in 0..H {
            for x in 0..W {
                if x >= b.x_min && x < b.x_max && y >= b.y_min && y < b.y_max && img.get(x, y) {
                    naive += 1;
                }
            }
        }
        prop_assert_eq!(img.count_in_box(&b), naive);
        prop_assert_eq!(img.any_in_box(&b), naive > 0);
    }

    #[test]
    fn boxes_clipped_at_the_sensor_edge_count_only_inside_pixels(pixels in arb_pixels()) {
        let img = image_of(&pixels);
        // A box hanging over every edge clips to the full sensor.
        let over = PixelBox::new(0, 0, W + 20, H + 20);
        prop_assert_eq!(img.count_in_box(&over), img.count_ones());
        prop_assert_eq!(img.any_in_box(&over), img.count_ones() > 0);
        // A box entirely off the array is empty.
        let outside = PixelBox::new(W, H, W + 20, H + 20);
        prop_assert_eq!(img.count_in_box(&outside), 0);
        prop_assert!(!img.any_in_box(&outside));
    }

    #[test]
    fn cca_components_partition_set_pixels(pixels in arb_pixels()) {
        let img = image_of(&pixels);
        let mut ops = OpsCounter::new();
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let comps = connected_components(&img, conn, &mut ops);
            let total: u32 = comps.iter().map(|c| c.pixel_count).sum();
            prop_assert_eq!(total as usize, img.count_ones());
            // Every component's bbox contains at least pixel_count pixels of the image.
            for c in &comps {
                prop_assert!(img.count_in_box(&c.bbox) >= c.pixel_count as usize);
            }
        }
    }

    #[test]
    fn eight_connectivity_never_more_components_than_four(pixels in arb_pixels()) {
        let img = image_of(&pixels);
        let mut ops = OpsCounter::new();
        let four = connected_components(&img, Connectivity::Four, &mut ops).len();
        let eight = connected_components(&img, Connectivity::Eight, &mut ops).len();
        prop_assert!(eight <= four);
    }

    #[test]
    fn morphology_duality_and_idempotence(pixels in arb_pixels()) {
        let img = image_of(&pixels);
        let k = SquareKernel::new(3);
        // Erosion ⊆ original ⊆ dilation.
        let er = erode(&img, k);
        let di = dilate(&img, k);
        for (x, y) in er.set_pixels() {
            prop_assert!(img.get(x, y));
        }
        for (x, y) in img.set_pixels() {
            prop_assert!(di.get(x, y));
        }
        // Opening and closing are idempotent.
        let op = open(&img, k);
        prop_assert_eq!(open(&op, k), op.clone());
        let cl = close(&img, k);
        prop_assert_eq!(close(&cl, k), cl.clone());
    }

    #[test]
    fn iou_is_bounded_symmetric_and_one_iff_equal(a in arb_box(), b in arb_box()) {
        let iou = a.iou(&b);
        // Tolerances account for f32 cancellation when tiny boxes sit at
        // large coordinates (x_max - x loses up to ~1e-3 relative).
        prop_assert!((0.0..=1.0 + 1e-3).contains(&iou));
        prop_assert!((iou - b.iou(&a)).abs() < 1e-3);
        prop_assert!((a.iou(&a) - 1.0).abs() < 5e-3);
    }

    #[test]
    fn iou_stays_in_unit_interval_even_for_degenerate_boxes(
        a in arb_any_box(),
        b in arb_any_box(),
    ) {
        // Inverted corners clamp to empty boxes; the overlap algebra must
        // stay total: iou in [0, 1], symmetric, never NaN.
        let iou = a.iou(&b);
        prop_assert!(iou.is_finite());
        prop_assert!((0.0..=1.0 + 1e-3).contains(&iou), "iou {} for {} vs {}", iou, a, b);
        prop_assert!((iou - b.iou(&a)).abs() < 1e-3);
        let of = a.overlap_fraction(&b);
        prop_assert!(of.is_finite() && (0.0..=1.0 + 1e-3).contains(&of));
        prop_assert!(a.area() >= 0.0 && b.area() >= 0.0);
    }

    #[test]
    fn intersection_is_contained_in_both_boxes(a in arb_any_box(), b in arb_any_box()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(i.x + 1e-4 >= a.x.max(b.x));
            prop_assert!(i.y + 1e-4 >= a.y.max(b.y));
            prop_assert!(i.x_max() <= a.x_max().min(b.x_max()) + 1e-4);
            prop_assert!(i.y_max() <= a.y_max().min(b.y_max()) + 1e-4);
            prop_assert!(i.area() <= a.area().min(b.area()) + 1e-2);
        } else {
            prop_assert_eq!(a.intersection_area(&b), 0.0);
        }
    }

    #[test]
    fn clipping_degenerate_boxes_never_goes_negative(a in arb_any_box()) {
        let c = a.clipped_to(240.0, 180.0);
        prop_assert!(c.w >= 0.0 && c.h >= 0.0);
        prop_assert!(c.x >= 0.0 && c.y >= 0.0);
        prop_assert!(c.x_max() <= 240.0 + 1e-4 && c.y_max() <= 180.0 + 1e-4);
        prop_assert!(c.area() >= 0.0);
    }

    #[test]
    fn intersection_area_bounded_by_each_area(a in arb_box(), b in arb_box()) {
        let inter = a.intersection_area(&b);
        prop_assert!(inter <= a.area() + 1e-3);
        prop_assert!(inter <= b.area() + 1e-3);
        prop_assert!(a.union_area(&b) + 1e-3 >= a.area().max(b.area()));
    }

    #[test]
    fn enclosing_contains_both(a in arb_box(), b in arb_box()) {
        let e = a.enclosing(&b);
        prop_assert!(e.x <= a.x && e.x <= b.x);
        prop_assert!(e.y <= a.y && e.y <= b.y);
        prop_assert!(e.x_max() + 1e-4 >= a.x_max() && e.x_max() + 1e-4 >= b.x_max());
        prop_assert!(e.y_max() + 1e-4 >= a.y_max() && e.y_max() + 1e-4 >= b.y_max());
    }

    #[test]
    fn clipping_is_contained_and_idempotent(a in arb_box()) {
        let c = a.clipped_to(240.0, 180.0);
        prop_assert!(c.x >= 0.0 && c.y >= 0.0);
        prop_assert!(c.x_max() <= 240.0 + 1e-4 && c.y_max() <= 180.0 + 1e-4);
        let cc = c.clipped_to(240.0, 180.0);
        prop_assert!((cc.x - c.x).abs() < 1e-6 && (cc.w - c.w).abs() < 1e-6);
    }

    #[test]
    fn pixel_box_include_is_commutative_in_result(
        pts in proptest::collection::vec((0..W, 0..H), 1..20)
    ) {
        let mut fwd = PixelBox::single(pts[0].0, pts[0].1);
        for &(x, y) in &pts[1..] {
            fwd.include(x, y);
        }
        let mut rev = PixelBox::single(pts[pts.len() - 1].0, pts[pts.len() - 1].1);
        for &(x, y) in pts[..pts.len() - 1].iter().rev() {
            rev.include(x, y);
        }
        prop_assert_eq!(fwd, rev);
        for &(x, y) in &pts {
            prop_assert!(fwd.contains(x, y));
        }
    }
}

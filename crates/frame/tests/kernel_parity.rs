//! Kernel parity: every word-parallel frame kernel must be bit-exact
//! (and op-count-exact) against its scalar reference transcription in
//! [`ebbiot_frame::reference`], over geometries chosen to stress the
//! row-aligned layout — widths that are not word multiples (17, 346, 1),
//! single-pixel frames, all-zeros/all-ones frames, and boxes straddling
//! word boundaries. Every mutating operation must also preserve the
//! tail-bit invariant (`BinaryImage::tail_bits_zero`).

use ebbiot_events::{OpsCounter, SensorGeometry};
use ebbiot_frame::{reference, BinaryImage, CountImage, MedianFilter, PixelBox};
use proptest::prelude::*;

/// Geometries that stress the layout: non-word-multiple widths, exact
/// word widths, the paper sensors, and degenerate 1-pixel frames.
const GEOMS: [(u16, u16); 7] = [(17, 5), (64, 4), (65, 3), (1, 1), (1, 9), (130, 7), (346, 13)];

/// A generated frame: geometry index, pixel seeds (mapped into bounds by
/// modulo), and a fill mode (0 = sparse, 1 = all ones, 2 = all zeros).
fn arb_frame() -> impl Strategy<Value = (BinaryImage, SensorGeometry)> {
    (0..GEOMS.len(), proptest::collection::vec((0u16..1024, 0u16..1024), 0..250), 0u8..6).prop_map(
        |(gi, seeds, mode)| {
            let (w, h) = GEOMS[gi];
            let geom = SensorGeometry::new(w, h);
            let mut img = BinaryImage::new(geom);
            match mode {
                1 => img.fill_box(&PixelBox::new(0, 0, w, h)),
                2 => {}
                _ => {
                    for (sx, sy) in seeds {
                        img.set(sx % w, sy % h, true);
                    }
                }
            }
            (img, geom)
        },
    )
}

fn arb_pixel_box() -> impl Strategy<Value = PixelBox> {
    (0u16..400, 0u16..40, 0u16..400, 0u16..40)
        .prop_map(|(x0, y0, x1, y1)| PixelBox::new(x0.min(x1), y0.min(y1), x0.max(x1), y0.max(y1)))
}

proptest! {
    #[test]
    fn median_matches_reference_for_all_patch_sizes((img, geom) in arb_frame(), p_idx in 0usize..3) {
        let p = [1u16, 3, 5][p_idx];
        let mut ref_ops = OpsCounter::new();
        let expected = reference::median(&img, p, &mut ref_ops);
        let mut filter = MedianFilter::new(p);
        let mut out = BinaryImage::new(geom);
        filter.apply_into(&img, &mut out);
        prop_assert_eq!(&out, &expected, "median p={} on {}", p, geom);
        prop_assert_eq!(*filter.ops(), ref_ops, "median op accounting p={} on {}", p, geom);
        prop_assert!(out.tail_bits_zero(), "tail invariant after median");
    }

    #[test]
    fn downsample_matches_reference((img, geom) in arb_frame(), s1 in 1u16..9, s2 in 1u16..9) {
        let s1 = s1.min(geom.width());
        let s2 = s2.min(geom.height());
        let mut ref_ops = OpsCounter::new();
        let expected = reference::downsample(&img, s1, s2, &mut ref_ops);
        let mut ops = OpsCounter::new();
        let got = CountImage::downsample(&img, s1, s2, &mut ops);
        prop_assert_eq!(&got, &expected, "downsample {}x{} on {}", s1, s2, geom);
        prop_assert_eq!(ops, ref_ops, "downsample op accounting {}x{} on {}", s1, s2, geom);
        // Partial edge cells mean mass is conserved unconditionally.
        prop_assert_eq!(got.total(), img.count_ones() as u64);
    }

    #[test]
    fn box_queries_match_reference((img, _geom) in arb_frame(), b in arb_pixel_box()) {
        prop_assert_eq!(img.count_in_box(&b), reference::count_in_box(&img, &b));
        prop_assert_eq!(img.any_in_box(&b), reference::any_in_box(&img, &b));
    }

    #[test]
    fn fill_box_matches_reference_and_keeps_tail_invariant(
        (img, geom) in arb_frame(),
        b in arb_pixel_box(),
    ) {
        let mut fast = img.clone();
        fast.fill_box(&b);
        let mut scalar = img;
        reference::fill_box(&mut scalar, &b);
        prop_assert_eq!(&fast, &scalar, "fill_box {:?} on {}", b, geom);
        prop_assert!(fast.tail_bits_zero(), "tail invariant after fill_box");
    }

    #[test]
    fn every_mutating_op_preserves_the_tail_invariant(
        (mut img, geom) in arb_frame(),
        pokes in proptest::collection::vec((0u16..1024, 0u16..1024, 0u8..3), 0..40),
        b in arb_pixel_box(),
    ) {
        prop_assert!(img.tail_bits_zero(), "fresh/filled frame");
        for (sx, sy, op) in pokes {
            let (x, y) = (sx % geom.width(), sy % geom.height());
            match op {
                0 => img.set(x, y, true),
                1 => img.set(x, y, false),
                _ => {
                    let _ = img.latch(x, y);
                }
            }
            prop_assert!(img.tail_bits_zero(), "after point op {} at ({}, {})", op, x, y);
        }
        img.fill_box(&b);
        prop_assert!(img.tail_bits_zero(), "after fill_box");
        let mut copy = BinaryImage::new(geom);
        copy.copy_from(&img);
        prop_assert!(copy.tail_bits_zero(), "after copy_from");
        // count_ones must agree with a per-pixel scan (popcount honesty).
        let mut scalar = 0usize;
        for y in 0..geom.height() {
            for x in 0..geom.width() {
                if img.get(x, y) {
                    scalar += 1;
                }
            }
        }
        prop_assert_eq!(img.count_ones(), scalar);
        img.clear();
        prop_assert!(img.tail_bits_zero(), "after clear");
        prop_assert_eq!(img.count_ones(), 0);
    }
}

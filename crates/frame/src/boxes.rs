//! Axis-aligned bounding boxes and the IoU/overlap geometry used by the
//! region proposer, the trackers and the evaluator.
//!
//! The paper describes tracker state as "bottom left corner co-ordinates
//! (x, y), width (w) and height (h)". We store the *minimum* corner, which
//! is the same thing under the image-coordinate convention used throughout
//! (y grows downward is irrelevant — only min/max arithmetic is used).

/// An axis-aligned box: minimum corner plus extent, in pixel units.
///
/// Extents may be fractional because trackers integrate sub-pixel
/// velocities (the paper's objects move at "sub-pixel to 5-6 pixels/frame").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Minimum x (left edge).
    pub x: f32,
    /// Minimum y (top edge in image coordinates).
    pub y: f32,
    /// Width; always `>= 0`.
    pub w: f32,
    /// Height; always `>= 0`.
    pub h: f32,
}

impl BoundingBox {
    /// Creates a box from the minimum corner and extents.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is negative or any field is non-finite.
    #[must_use]
    pub fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        assert!(
            x.is_finite() && y.is_finite() && w.is_finite() && h.is_finite(),
            "box fields must be finite"
        );
        assert!(w >= 0.0 && h >= 0.0, "box extents must be non-negative");
        Self { x, y, w, h }
    }

    /// Creates a box from inclusive minimum and exclusive maximum corners.
    ///
    /// Inverted corners (`max < min` on an axis) clamp to a zero extent
    /// at the minimum corner rather than producing a negative width or
    /// height, so downstream `area`/`iou`/`overlap_fraction` algebra can
    /// never go negative. Callers that consider inverted corners a bug
    /// should check before calling; callers computing intersections or
    /// clips get a well-defined empty box.
    ///
    /// # Panics
    ///
    /// Panics if any corner is non-finite.
    #[must_use]
    pub fn from_corners(x_min: f32, y_min: f32, x_max: f32, y_max: f32) -> Self {
        Self::new(x_min, y_min, (x_max - x_min).max(0.0), (y_max - y_min).max(0.0))
    }

    /// Maximum x (right edge).
    #[must_use]
    pub fn x_max(&self) -> f32 {
        self.x + self.w
    }

    /// Maximum y (bottom edge).
    #[must_use]
    pub fn y_max(&self) -> f32 {
        self.y + self.h
    }

    /// Area `w * h`.
    #[must_use]
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Center point.
    #[must_use]
    pub fn center(&self) -> (f32, f32) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Returns `true` when the box has zero area.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.w == 0.0 || self.h == 0.0
    }

    /// Whether the point lies inside (min inclusive, max exclusive).
    #[must_use]
    pub fn contains_point(&self, px: f32, py: f32) -> bool {
        px >= self.x && px < self.x_max() && py >= self.y && py < self.y_max()
    }

    /// Intersection box, or `None` when disjoint (touching edges count as
    /// disjoint: zero-area intersections are not returned).
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        let x_min = self.x.max(other.x);
        let y_min = self.y.max(other.y);
        let x_max = self.x_max().min(other.x_max());
        let y_max = self.y_max().min(other.y_max());
        if x_min < x_max && y_min < y_max {
            Some(Self::from_corners(x_min, y_min, x_max, y_max))
        } else {
            None
        }
    }

    /// Area of the intersection (0.0 when disjoint).
    #[must_use]
    pub fn intersection_area(&self, other: &Self) -> f32 {
        self.intersection(other).map_or(0.0, |b| b.area())
    }

    /// Area of the union (inclusion–exclusion).
    #[must_use]
    pub fn union_area(&self, other: &Self) -> f32 {
        self.area() + other.area() - self.intersection_area(other)
    }

    /// Intersection over union — Eq. 9 of the paper. Zero when the union
    /// is degenerate.
    #[must_use]
    pub fn iou(&self, other: &Self) -> f32 {
        let union = self.union_area(other);
        if union <= 0.0 {
            0.0
        } else {
            self.intersection_area(other) / union
        }
    }

    /// The smallest box covering both (used when merging fragmented
    /// proposals into one tracker box).
    #[must_use]
    pub fn enclosing(&self, other: &Self) -> Self {
        Self::from_corners(
            self.x.min(other.x),
            self.y.min(other.y),
            self.x_max().max(other.x_max()),
            self.y_max().max(other.y_max()),
        )
    }

    /// Overlap fraction relative to *this* box's area:
    /// `area(self ∩ other) / area(self)`. This is the paper's OT matching
    /// criterion ("overlapping area ... larger than a certain fraction of
    /// area of T_pred or P_j"). Returns 0.0 for an empty self.
    #[must_use]
    pub fn overlap_fraction(&self, other: &Self) -> f32 {
        let a = self.area();
        if a <= 0.0 {
            0.0
        } else {
            self.intersection_area(other) / a
        }
    }

    /// Box translated by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: f32, dy: f32) -> Self {
        Self { x: self.x + dx, y: self.y + dy, ..*self }
    }

    /// Linear interpolation between two boxes (`alpha = 0` gives `self`,
    /// `alpha = 1` gives `other`). Used for the OT's weighted average
    /// between prediction and region proposal.
    #[must_use]
    pub fn lerp(&self, other: &Self, alpha: f32) -> Self {
        let l = |a: f32, b: f32| a + alpha * (b - a);
        Self::new(l(self.x, other.x), l(self.y, other.y), l(self.w, other.w), l(self.h, other.h))
    }

    /// Clips the box to `[0, width) x [0, height)`. Returns an empty box at
    /// the nearest corner when fully outside. The explicit `max` guards
    /// (plus the clamping in [`Self::from_corners`]) keep the result's
    /// extents non-negative even when floating-point rounding inverts the
    /// clamped corners.
    #[must_use]
    pub fn clipped_to(&self, width: f32, height: f32) -> Self {
        let x_min = self.x.clamp(0.0, width);
        let y_min = self.y.clamp(0.0, height);
        let x_max = self.x_max().clamp(0.0, width);
        let y_max = self.y_max().clamp(0.0, height);
        Self::from_corners(x_min, y_min, x_max.max(x_min), y_max.max(y_min))
    }
}

impl core::fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{:.1},{:.1} {:.1}x{:.1}]", self.x, self.y, self.w, self.h)
    }
}

/// An integer pixel-grid box (inclusive min corner, exclusive max), used by
/// CCA labelling and region proposals before conversion to float boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PixelBox {
    /// Minimum x (inclusive).
    pub x_min: u16,
    /// Minimum y (inclusive).
    pub y_min: u16,
    /// Maximum x (exclusive).
    pub x_max: u16,
    /// Maximum y (exclusive).
    pub y_max: u16,
}

impl PixelBox {
    /// Creates a pixel box.
    ///
    /// # Panics
    ///
    /// Panics when `max < min` on either axis.
    #[must_use]
    pub fn new(x_min: u16, y_min: u16, x_max: u16, y_max: u16) -> Self {
        assert!(x_max >= x_min && y_max >= y_min, "pixel box corners inverted");
        Self { x_min, y_min, x_max, y_max }
    }

    /// A 1x1 box at a single pixel.
    #[must_use]
    pub fn single(x: u16, y: u16) -> Self {
        Self::new(x, y, x + 1, y + 1)
    }

    /// Width in pixels.
    #[must_use]
    pub const fn width(&self) -> u16 {
        self.x_max - self.x_min
    }

    /// Height in pixels.
    #[must_use]
    pub const fn height(&self) -> u16 {
        self.y_max - self.y_min
    }

    /// Area in pixels.
    #[must_use]
    pub const fn area(&self) -> u32 {
        self.width() as u32 * self.height() as u32
    }

    /// Grows the box to include the pixel `(x, y)`.
    pub fn include(&mut self, x: u16, y: u16) {
        self.x_min = self.x_min.min(x);
        self.y_min = self.y_min.min(y);
        self.x_max = self.x_max.max(x + 1);
        self.y_max = self.y_max.max(y + 1);
    }

    /// Converts to a float [`BoundingBox`].
    #[must_use]
    pub fn to_bounding_box(&self) -> BoundingBox {
        BoundingBox::new(
            f32::from(self.x_min),
            f32::from(self.y_min),
            f32::from(self.width()),
            f32::from(self.height()),
        )
    }

    /// Whether the pixel lies inside.
    #[must_use]
    pub const fn contains(&self, x: u16, y: u16) -> bool {
        x >= self.x_min && x < self.x_max && y >= self.y_min && y < self.y_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x: f32, y: f32, w: f32, h: f32) -> BoundingBox {
        BoundingBox::new(x, y, w, h)
    }

    #[test]
    fn area_center_and_edges() {
        let b = bb(2.0, 3.0, 4.0, 6.0);
        assert_eq!(b.area(), 24.0);
        assert_eq!(b.center(), (4.0, 6.0));
        assert_eq!(b.x_max(), 6.0);
        assert_eq!(b.y_max(), 9.0);
        assert!(!b.is_empty());
        assert!(bb(0.0, 0.0, 0.0, 5.0).is_empty());
    }

    #[test]
    fn identical_boxes_have_iou_one() {
        let b = bb(1.0, 1.0, 5.0, 5.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_boxes_have_iou_zero() {
        let a = bb(0.0, 0.0, 2.0, 2.0);
        let b = bb(10.0, 10.0, 2.0, 2.0);
        assert_eq!(a.iou(&b), 0.0);
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn touching_boxes_are_disjoint() {
        let a = bb(0.0, 0.0, 2.0, 2.0);
        let b = bb(2.0, 0.0, 2.0, 2.0);
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.intersection_area(&b), 0.0);
    }

    #[test]
    fn half_overlap_iou() {
        let a = bb(0.0, 0.0, 2.0, 2.0);
        let b = bb(1.0, 0.0, 2.0, 2.0);
        // intersection 2, union 6.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = bb(0.0, 0.0, 3.0, 4.0);
        let b = bb(1.0, 1.0, 4.0, 2.0);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-7);
    }

    #[test]
    fn contained_box_overlap_fraction_is_one() {
        let outer = bb(0.0, 0.0, 10.0, 10.0);
        let inner = bb(2.0, 2.0, 3.0, 3.0);
        assert!((inner.overlap_fraction(&outer) - 1.0).abs() < 1e-6);
        assert!((outer.overlap_fraction(&inner) - 0.09).abs() < 1e-6);
    }

    #[test]
    fn enclosing_covers_both() {
        let a = bb(0.0, 0.0, 2.0, 2.0);
        let b = bb(5.0, 7.0, 1.0, 1.0);
        let e = a.enclosing(&b);
        assert_eq!(e.x, 0.0);
        assert_eq!(e.y, 0.0);
        assert_eq!(e.x_max(), 6.0);
        assert_eq!(e.y_max(), 8.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = bb(0.0, 0.0, 2.0, 2.0);
        let b = bb(4.0, 8.0, 6.0, 10.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert_eq!(mid, bb(2.0, 4.0, 4.0, 6.0));
    }

    #[test]
    fn translation_moves_without_resizing() {
        let b = bb(1.0, 2.0, 3.0, 4.0).translated(2.0, -1.0);
        assert_eq!(b, bb(3.0, 1.0, 3.0, 4.0));
    }

    #[test]
    fn clipping_limits_to_frame() {
        let b = bb(-5.0, 170.0, 20.0, 30.0).clipped_to(240.0, 180.0);
        assert_eq!(b, bb(0.0, 170.0, 15.0, 10.0));
        let outside = bb(300.0, 300.0, 10.0, 10.0).clipped_to(240.0, 180.0);
        assert!(outside.is_empty());
    }

    #[test]
    fn contains_point_is_half_open() {
        let b = bb(0.0, 0.0, 2.0, 2.0);
        assert!(b.contains_point(0.0, 0.0));
        assert!(b.contains_point(1.9, 1.9));
        assert!(!b.contains_point(2.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_extent_panics() {
        let _ = bb(0.0, 0.0, -1.0, 1.0);
    }

    #[test]
    fn inverted_corners_clamp_to_empty() {
        let b = BoundingBox::from_corners(5.0, 7.0, 2.0, 3.0);
        assert_eq!((b.x, b.y, b.w, b.h), (5.0, 7.0, 0.0, 0.0));
        assert!(b.is_empty());
        assert_eq!(b.area(), 0.0);
        // Degenerate boxes participate safely in the overlap algebra.
        let other = bb(0.0, 0.0, 10.0, 10.0);
        assert_eq!(b.iou(&other), 0.0);
        assert_eq!(other.iou(&b), 0.0);
        assert_eq!(b.overlap_fraction(&other), 0.0);
        assert!(b.intersection(&other).is_none());
    }

    #[test]
    fn pixel_box_include_grows_bounds() {
        let mut p = PixelBox::single(5, 5);
        p.include(3, 8);
        p.include(7, 2);
        assert_eq!(p, PixelBox::new(3, 2, 8, 9));
        assert_eq!(p.width(), 5);
        assert_eq!(p.height(), 7);
        assert_eq!(p.area(), 35);
    }

    #[test]
    fn pixel_box_to_bounding_box() {
        let p = PixelBox::new(2, 3, 6, 5);
        let b = p.to_bounding_box();
        assert_eq!(b, bb(2.0, 3.0, 4.0, 2.0));
    }

    #[test]
    fn pixel_box_contains() {
        let p = PixelBox::new(1, 1, 3, 3);
        assert!(p.contains(1, 1));
        assert!(p.contains(2, 2));
        assert!(!p.contains(3, 1));
    }
}

//! Bit-packed binary images with a row-aligned word layout.
//!
//! The EBBI is a one-bit-per-pixel frame ("one possible event per pixel,
//! ignoring polarity"). Pixels are packed 64 per `u64` word with **each
//! row starting on a word boundary**: a row occupies
//! `ceil(width / 64)` words and the bits of the last word at or past
//! `width` (the *tail bits*) are an always-zero invariant. The alignment
//! costs at most 63 bits of padding per row but lets every hot kernel
//! (median, downsampling, box counting, CCA scans) process 64 pixels per
//! instruction without any cross-row carry logic — the word-parallel
//! frame processing the paper's Eqs. 1 and 5 price out as "cheap".
//!
//! The paper's *accounting* is unchanged by the physical layout:
//! [`BinaryImage::payload_bits`] still reports `A x B` bits (5.4 kB per
//! DAVIS240 frame, 10.8 kB for the original + filtered pair of Eq. 1);
//! padding words are an implementation detail, not payload. See
//! ARCHITECTURE.md ("Frame memory layout") for the full invariant list.

use ebbiot_events::SensorGeometry;

use crate::PixelBox;

/// A binary image bit-packed into `u64` words, row-major, with each row
/// aligned to a word boundary (see the module docs for the layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryImage {
    geometry: SensorGeometry,
    /// Words per row: `ceil(width / 64)`.
    words_per_row: usize,
    /// `height * words_per_row` words; tail bits are always zero.
    words: Vec<u64>,
}

impl BinaryImage {
    /// Creates an all-zero image for the given geometry.
    #[must_use]
    pub fn new(geometry: SensorGeometry) -> Self {
        let words_per_row = (geometry.width() as usize).div_ceil(64);
        let words = vec![0; words_per_row * geometry.height() as usize];
        Self { geometry, words_per_row, words }
    }

    /// The image geometry.
    #[must_use]
    pub const fn geometry(&self) -> SensorGeometry {
        self.geometry
    }

    /// Image width in pixels.
    #[must_use]
    pub const fn width(&self) -> u16 {
        self.geometry.width()
    }

    /// Image height in pixels.
    #[must_use]
    pub const fn height(&self) -> u16 {
        self.geometry.height()
    }

    /// Number of `u64` words backing each row: `ceil(width / 64)`.
    #[must_use]
    pub const fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The words of row `y`. Bit `x % 64` of word `x / 64` is pixel
    /// `(x, y)`; bits at or past `width` in the last word are zero.
    ///
    /// # Panics
    ///
    /// Panics when `y` is out of bounds.
    #[must_use]
    pub fn row_words(&self, y: u16) -> &[u64] {
        let start = y as usize * self.words_per_row;
        &self.words[start..start + self.words_per_row]
    }

    /// Mutable access to the words of row `y` for in-crate kernels.
    /// Writers must uphold the tail-bit invariant.
    pub(crate) fn row_words_mut(&mut self, y: u16) -> &mut [u64] {
        let start = y as usize * self.words_per_row;
        &mut self.words[start..start + self.words_per_row]
    }

    /// Mask of the valid bits in the *last* word of every row: ones below
    /// `width % 64`, or all ones when the width is a word multiple.
    pub(crate) const fn tail_mask(&self) -> u64 {
        Self::below_mask(self.geometry.width())
    }

    /// Whether the row-tail invariant holds: every bit at or past `width`
    /// in the last word of each row is zero. Word-parallel kernels rely
    /// on this (popcounts would otherwise over-count); every mutating
    /// operation preserves it, and the kernel-parity proptests assert it.
    #[must_use]
    pub fn tail_bits_zero(&self) -> bool {
        let spill = !self.tail_mask();
        (0..self.height()).all(|y| self.row_words(y)[self.words_per_row - 1] & spill == 0)
    }

    #[inline]
    fn bit_position(&self, x: u16, y: u16) -> (usize, u32) {
        // A real (not debug) assert: with the row-aligned layout an
        // out-of-bounds x could land on a tail bit of a valid word and
        // silently break the tail-bit invariant every word-parallel
        // kernel relies on. These accessors are off the hot paths (the
        // kernels read whole row slices), so the check is cheap.
        assert!(self.geometry.contains(x, y), "pixel ({x}, {y}) out of bounds");
        (y as usize * self.words_per_row + (x as usize >> 6), u32::from(x) & 63)
    }

    /// Reads pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    #[inline]
    pub fn get(&self, x: u16, y: u16) -> bool {
        let (word, bit) = self.bit_position(x, y);
        (self.words[word] >> bit) & 1 == 1
    }

    /// Reads pixel `(x, y)`, returning `false` outside the array (the
    /// zero-padding convention used by the median filter at borders).
    #[must_use]
    #[inline]
    pub fn get_padded(&self, x: i32, y: i32) -> bool {
        if x < 0 || y < 0 {
            return false;
        }
        let (x, y) = (x as u16, y as u16);
        if !self.geometry.contains(x, y) {
            return false;
        }
        self.get(x, y)
    }

    /// Sets pixel `(x, y)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: u16, y: u16, value: bool) {
        let (word, bit) = self.bit_position(x, y);
        let mask = 1u64 << bit;
        if value {
            self.words[word] |= mask;
        } else {
            self.words[word] &= !mask;
        }
    }

    /// Sets pixel `(x, y)` to one, returning whether it was previously zero
    /// (i.e. whether this write latched a new pixel — the sensor-as-memory
    /// semantics of the EBBI readout).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn latch(&mut self, x: u16, y: u16) -> bool {
        let (word, bit) = self.bit_position(x, y);
        let mask = 1u64 << bit;
        let word = &mut self.words[word];
        let was_zero = *word & mask == 0;
        *word |= mask;
        was_zero
    }

    /// Clears all pixels.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Copies `source` into `self` without reallocating — the buffer-reuse
    /// primitive behind the streaming front-end's readout. With the
    /// row-aligned layout this is a straight word copy.
    ///
    /// # Panics
    ///
    /// Panics when the geometries differ.
    pub fn copy_from(&mut self, source: &BinaryImage) {
        assert_eq!(self.geometry, source.geometry, "geometry mismatch in copy_from");
        self.words.copy_from_slice(&source.words);
    }

    /// Number of set pixels (a popcount over the words; exact because tail
    /// bits are zero).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set pixels (the paper's `alpha` when measured over a
    /// whole frame).
    #[must_use]
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / self.geometry.num_pixels() as f64
    }

    /// Iterator over the x coordinates of all set pixels in row `y`, in
    /// ascending order (word-parallel scan: all-zero words are skipped
    /// with one test each).
    ///
    /// # Panics
    ///
    /// Panics when `y` is out of bounds.
    pub fn set_pixels_in_row(&self, y: u16) -> impl Iterator<Item = u16> + '_ {
        self.row_words(y).iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            core::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                Some((wi * 64) as u16 + bit as u16)
            })
        })
    }

    /// Iterator over the `(x, y)` coordinates of all set pixels in
    /// row-major order.
    pub fn set_pixels(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        (0..self.height()).flat_map(move |y| self.set_pixels_in_row(y).map(move |x| (x, y)))
    }

    /// Set-pixel count of row `y` restricted to columns `[x0, x1)`, via
    /// masked word popcounts. `x1` must not exceed the width.
    pub(crate) fn count_in_row_span(&self, y: u16, x0: u16, x1: u16) -> u32 {
        debug_assert!(x1 <= self.width());
        if x0 >= x1 {
            return 0;
        }
        let row = self.row_words(y);
        let w0 = x0 as usize >> 6;
        let w1 = (x1 as usize - 1) >> 6;
        let first = !0u64 << (u32::from(x0) & 63);
        let last = Self::below_mask(x1);
        if w0 == w1 {
            (row[w0] & first & last).count_ones()
        } else {
            let mut n = (row[w0] & first).count_ones() + (row[w1] & last).count_ones();
            for &w in &row[w0 + 1..w1] {
                n += w.count_ones();
            }
            n
        }
    }

    /// Mask of the bits strictly below column `x` within `x`'s word
    /// (all ones when `x` is a word multiple, i.e. "the whole word below").
    const fn below_mask(x: u16) -> u64 {
        let rem = x % 64;
        if rem == 0 {
            !0
        } else {
            (1u64 << rem) - 1
        }
    }

    /// Counts set pixels inside a pixel box (exclusive max corner, clipped
    /// to the array), one masked popcount span per covered row.
    #[must_use]
    pub fn count_in_box(&self, b: &PixelBox) -> usize {
        let x_end = b.x_max.min(self.width());
        let y_end = b.y_max.min(self.height());
        if b.x_min >= x_end || b.y_min >= y_end {
            return 0;
        }
        let mut count = 0usize;
        for y in b.y_min..y_end {
            count += self.count_in_row_span(y, b.x_min, x_end) as usize;
        }
        count
    }

    /// Whether any set pixel lies inside the pixel box (masked word tests
    /// with early exit).
    #[must_use]
    pub fn any_in_box(&self, b: &PixelBox) -> bool {
        let x_end = b.x_max.min(self.width());
        let y_end = b.y_max.min(self.height());
        if b.x_min >= x_end || b.y_min >= y_end {
            return false;
        }
        for y in b.y_min..y_end {
            if self.count_in_row_span(y, b.x_min, x_end) > 0 {
                return true;
            }
        }
        false
    }

    /// Paints a filled rectangle of ones (used by tests and the simulator)
    /// by OR-ing span masks row by row.
    pub fn fill_box(&mut self, b: &PixelBox) {
        let x_end = b.x_max.min(self.width());
        let y_end = b.y_max.min(self.height());
        if b.x_min >= x_end || b.y_min >= y_end {
            return;
        }
        let w0 = b.x_min as usize >> 6;
        let w1 = (x_end as usize - 1) >> 6;
        let first = !0u64 << (u32::from(b.x_min) & 63);
        let last = Self::below_mask(x_end);
        for y in b.y_min..y_end {
            let row = self.row_words_mut(y);
            if w0 == w1 {
                row[w0] |= first & last;
            } else {
                row[w0] |= first;
                row[w1] |= last;
                for w in &mut row[w0 + 1..w1] {
                    *w = !0;
                }
            }
        }
    }

    /// Memory footprint of the pixel payload in bits (`A * B`, matching the
    /// paper's accounting of one bit per pixel; row-alignment padding is an
    /// implementation detail and is not counted).
    #[must_use]
    pub fn payload_bits(&self) -> usize {
        self.geometry.num_pixels()
    }

    /// Renders the image as ASCII art (`#` = 1, `.` = 0), downscaled by
    /// `step` on both axes by OR-ing blocks. Used by the Fig. 3 example.
    #[must_use]
    pub fn to_ascii(&self, step: u16) -> String {
        assert!(step > 0);
        let mut out = String::new();
        let mut y = 0;
        while y < self.height() {
            let mut x = 0;
            while x < self.width() {
                let b = PixelBox::new(
                    x,
                    y,
                    (x + step).min(self.width()),
                    (y + step).min(self.height()),
                );
                out.push(if self.any_in_box(&b) { '#' } else { '.' });
                x += step;
            }
            out.push('\n');
            y += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BinaryImage {
        BinaryImage::new(SensorGeometry::new(10, 8))
    }

    #[test]
    fn new_image_is_all_zero() {
        let img = small();
        assert_eq!(img.count_ones(), 0);
        assert_eq!(img.density(), 0.0);
        assert!(!img.get(0, 0));
    }

    #[test]
    fn rows_are_word_aligned() {
        let img = BinaryImage::new(SensorGeometry::new(130, 3));
        assert_eq!(img.words_per_row(), 3, "130 columns need 3 words");
        assert_eq!(img.row_words(0).len(), 3);
        let narrow = BinaryImage::new(SensorGeometry::new(64, 2));
        assert_eq!(narrow.words_per_row(), 1);
    }

    #[test]
    fn row_words_expose_the_packed_bits() {
        let mut img = BinaryImage::new(SensorGeometry::new(70, 2));
        img.set(0, 1, true);
        img.set(65, 1, true);
        assert_eq!(img.row_words(0), &[0, 0]);
        assert_eq!(img.row_words(1), &[1, 1 << 1]);
    }

    #[test]
    fn set_get_round_trip_for_every_pixel() {
        let mut img = small();
        for (x, y) in img.geometry().pixels().collect::<Vec<_>>() {
            img.set(x, y, true);
            assert!(img.get(x, y));
            img.set(x, y, false);
            assert!(!img.get(x, y));
        }
    }

    #[test]
    fn latch_reports_first_write_only() {
        let mut img = small();
        assert!(img.latch(3, 4), "first latch sets the pixel");
        assert!(!img.latch(3, 4), "second latch is a no-op");
        assert!(img.get(3, 4));
        assert_eq!(img.count_ones(), 1);
    }

    #[test]
    fn get_padded_returns_false_outside() {
        let mut img = small();
        img.set(0, 0, true);
        assert!(img.get_padded(0, 0));
        assert!(!img.get_padded(-1, 0));
        assert!(!img.get_padded(0, -1));
        assert!(!img.get_padded(10, 0));
        assert!(!img.get_padded(0, 8));
    }

    #[test]
    fn count_ones_tracks_sets() {
        let mut img = small();
        img.set(1, 1, true);
        img.set(2, 2, true);
        img.set(2, 2, true); // idempotent
        assert_eq!(img.count_ones(), 2);
        assert!((img.density() - 2.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let mut img = small();
        img.fill_box(&PixelBox::new(0, 0, 10, 8));
        assert_eq!(img.count_ones(), 80);
        img.clear();
        assert_eq!(img.count_ones(), 0);
    }

    #[test]
    fn set_pixels_iterates_exactly_the_set_ones() {
        let mut img = small();
        let pts = [(0u16, 0u16), (9, 0), (0, 7), (9, 7), (5, 3)];
        for &(x, y) in &pts {
            img.set(x, y, true);
        }
        let mut found: Vec<_> = img.set_pixels().collect();
        found.sort_unstable();
        let mut expected = pts.to_vec();
        expected.sort_unstable();
        assert_eq!(found, expected);
    }

    #[test]
    fn set_pixels_in_row_scans_across_word_boundaries() {
        let mut img = BinaryImage::new(SensorGeometry::new(150, 2));
        for &x in &[0u16, 63, 64, 127, 128, 149] {
            img.set(x, 1, true);
        }
        let xs: Vec<u16> = img.set_pixels_in_row(1).collect();
        assert_eq!(xs, vec![0, 63, 64, 127, 128, 149]);
        assert_eq!(img.set_pixels_in_row(0).count(), 0);
    }

    #[test]
    fn box_counting_and_any() {
        let mut img = small();
        img.fill_box(&PixelBox::new(2, 2, 5, 5));
        assert_eq!(img.count_in_box(&PixelBox::new(0, 0, 10, 8)), 9);
        assert_eq!(img.count_in_box(&PixelBox::new(2, 2, 4, 4)), 4);
        assert!(img.any_in_box(&PixelBox::new(4, 4, 10, 8)));
        assert!(!img.any_in_box(&PixelBox::new(6, 6, 10, 8)));
    }

    #[test]
    fn box_ops_handle_word_straddling_spans() {
        let mut img = BinaryImage::new(SensorGeometry::new(200, 4));
        img.fill_box(&PixelBox::new(60, 1, 140, 3));
        assert_eq!(img.count_ones(), 80 * 2);
        assert_eq!(img.count_in_box(&PixelBox::new(60, 1, 140, 3)), 160);
        assert_eq!(img.count_in_box(&PixelBox::new(63, 1, 65, 2)), 2);
        assert_eq!(img.count_in_box(&PixelBox::new(0, 0, 200, 1)), 0);
        assert!(img.any_in_box(&PixelBox::new(128, 2, 200, 4)));
        assert!(!img.any_in_box(&PixelBox::new(140, 1, 200, 3)));
        assert!(img.tail_bits_zero());
    }

    #[test]
    fn boxes_clip_to_image_bounds() {
        let mut img = small();
        img.set(9, 7, true);
        // Box extending past the array must not panic and must find the pixel.
        assert!(img.any_in_box(&PixelBox::new(8, 6, 50, 50)));
        assert_eq!(img.count_in_box(&PixelBox::new(8, 6, 50, 50)), 1);
    }

    #[test]
    fn degenerate_boxes_are_empty() {
        let mut img = small();
        img.fill_box(&PixelBox::new(0, 0, 10, 8));
        assert_eq!(img.count_in_box(&PixelBox::new(5, 5, 5, 8)), 0);
        assert!(!img.any_in_box(&PixelBox::new(3, 2, 3, 2)));
        // Degenerate fill is a no-op.
        let mut img2 = small();
        img2.fill_box(&PixelBox::new(4, 4, 4, 8));
        assert_eq!(img2.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_set_panics_in_all_build_modes() {
        // An OOB x could otherwise land on a tail bit of a valid word and
        // silently corrupt the invariant; the assert is unconditional.
        let mut img = BinaryImage::new(SensorGeometry::new(100, 4));
        img.set(110, 1, true);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics_in_all_build_modes() {
        let img = BinaryImage::new(SensorGeometry::new(100, 4));
        let _ = img.get(0, 4);
    }

    #[test]
    fn payload_bits_matches_pixel_count() {
        assert_eq!(small().payload_bits(), 80);
        assert_eq!(BinaryImage::new(SensorGeometry::davis240()).payload_bits(), 43_200);
    }

    #[test]
    fn tail_invariant_holds_after_mutations() {
        let mut img = BinaryImage::new(SensorGeometry::new(67, 3));
        assert!(img.tail_bits_zero());
        img.fill_box(&PixelBox::new(0, 0, 67, 3));
        assert!(img.tail_bits_zero());
        assert_eq!(img.count_ones(), 67 * 3);
        img.set(66, 2, false);
        img.latch(66, 1);
        assert!(img.tail_bits_zero());
        let mut copy = BinaryImage::new(SensorGeometry::new(67, 3));
        copy.copy_from(&img);
        assert!(copy.tail_bits_zero());
        img.clear();
        assert!(img.tail_bits_zero());
    }

    #[test]
    fn ascii_rendering_shape() {
        let mut img = small();
        img.set(0, 0, true);
        let art = img.to_ascii(1);
        let lines: Vec<_> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0].len(), 10);
        assert!(lines[0].starts_with('#'));
        assert!(lines[1].starts_with('.'));
    }

    #[test]
    fn ascii_downscale_ors_blocks() {
        let mut img = small();
        img.set(1, 1, true);
        let art = img.to_ascii(2);
        let lines: Vec<_> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), 5);
        assert!(lines[0].starts_with('#'), "block (0,0)-(1,1) contains the pixel");
    }

    #[test]
    fn geometry_not_multiple_of_64_works() {
        // 13 columns leave 51 tail bits per row word; exercise the
        // tail-masking logic.
        let mut img = BinaryImage::new(SensorGeometry::new(13, 5));
        for (x, y) in img.geometry().pixels().collect::<Vec<_>>() {
            img.set(x, y, true);
        }
        assert_eq!(img.count_ones(), 65);
        assert_eq!(img.set_pixels().count(), 65);
        assert!(img.tail_bits_zero());
    }
}

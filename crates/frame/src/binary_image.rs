//! Bit-packed binary images.
//!
//! The EBBI is a one-bit-per-pixel frame ("one possible event per pixel,
//! ignoring polarity"). Packing 64 pixels per word keeps the memory
//! footprint at the paper's figure — `A x B` bits = 5.4 kB per DAVIS240
//! frame, 10.8 kB for the original + filtered pair of Eq. 1.

use ebbiot_events::SensorGeometry;

use crate::PixelBox;

/// A binary image bit-packed into `u64` words, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryImage {
    geometry: SensorGeometry,
    words: Vec<u64>,
}

impl BinaryImage {
    /// Creates an all-zero image for the given geometry.
    #[must_use]
    pub fn new(geometry: SensorGeometry) -> Self {
        let words = geometry.num_pixels().div_ceil(64);
        Self { geometry, words: vec![0; words] }
    }

    /// The image geometry.
    #[must_use]
    pub const fn geometry(&self) -> SensorGeometry {
        self.geometry
    }

    /// Image width in pixels.
    #[must_use]
    pub const fn width(&self) -> u16 {
        self.geometry.width()
    }

    /// Image height in pixels.
    #[must_use]
    pub const fn height(&self) -> u16 {
        self.geometry.height()
    }

    /// Reads pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when out of bounds.
    #[must_use]
    #[inline]
    pub fn get(&self, x: u16, y: u16) -> bool {
        let idx = self.geometry.index_of(x, y);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Reads pixel `(x, y)`, returning `false` outside the array (the
    /// zero-padding convention used by the median filter at borders).
    #[must_use]
    #[inline]
    pub fn get_padded(&self, x: i32, y: i32) -> bool {
        if x < 0 || y < 0 {
            return false;
        }
        let (x, y) = (x as u16, y as u16);
        if !self.geometry.contains(x, y) {
            return false;
        }
        self.get(x, y)
    }

    /// Sets pixel `(x, y)` to `value`.
    #[inline]
    pub fn set(&mut self, x: u16, y: u16, value: bool) {
        let idx = self.geometry.index_of(x, y);
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Sets pixel `(x, y)` to one, returning whether it was previously zero
    /// (i.e. whether this write latched a new pixel — the sensor-as-memory
    /// semantics of the EBBI readout).
    #[inline]
    pub fn latch(&mut self, x: u16, y: u16) -> bool {
        let idx = self.geometry.index_of(x, y);
        let mask = 1u64 << (idx % 64);
        let word = &mut self.words[idx / 64];
        let was_zero = *word & mask == 0;
        *word |= mask;
        was_zero
    }

    /// Clears all pixels.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Copies `source` into `self` without reallocating — the buffer-reuse
    /// primitive behind the streaming front-end's readout.
    ///
    /// # Panics
    ///
    /// Panics when the geometries differ.
    pub fn copy_from(&mut self, source: &BinaryImage) {
        assert_eq!(self.geometry, source.geometry, "geometry mismatch in copy_from");
        self.words.copy_from_slice(&source.words);
    }

    /// Number of set pixels.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set pixels (the paper's `alpha` when measured over a
    /// whole frame).
    #[must_use]
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / self.geometry.num_pixels() as f64
    }

    /// Iterator over the `(x, y)` coordinates of all set pixels in
    /// row-major order.
    pub fn set_pixels(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        let geometry = self.geometry;
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut bits = word;
            core::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + bit)
            })
            .filter(move |&idx| idx < geometry.num_pixels())
            .map(move |idx| geometry.pixel_at(idx))
        })
    }

    /// Counts set pixels inside a pixel box (exclusive max corner, clipped
    /// to the array).
    #[must_use]
    pub fn count_in_box(&self, b: &PixelBox) -> usize {
        let x_end = b.x_max.min(self.width());
        let y_end = b.y_max.min(self.height());
        let mut count = 0;
        for y in b.y_min..y_end {
            for x in b.x_min..x_end {
                if self.get(x, y) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Whether any set pixel lies inside the pixel box.
    #[must_use]
    pub fn any_in_box(&self, b: &PixelBox) -> bool {
        let x_end = b.x_max.min(self.width());
        let y_end = b.y_max.min(self.height());
        for y in b.y_min..y_end {
            for x in b.x_min..x_end {
                if self.get(x, y) {
                    return true;
                }
            }
        }
        false
    }

    /// Paints a filled rectangle of ones (used by tests and the simulator).
    pub fn fill_box(&mut self, b: &PixelBox) {
        let x_end = b.x_max.min(self.width());
        let y_end = b.y_max.min(self.height());
        for y in b.y_min..y_end {
            for x in b.x_min..x_end {
                self.set(x, y, true);
            }
        }
    }

    /// Memory footprint of the pixel payload in bits (`A * B`, matching the
    /// paper's accounting of one bit per pixel).
    #[must_use]
    pub fn payload_bits(&self) -> usize {
        self.geometry.num_pixels()
    }

    /// Renders the image as ASCII art (`#` = 1, `.` = 0), downscaled by
    /// `step` on both axes by OR-ing blocks. Used by the Fig. 3 example.
    #[must_use]
    pub fn to_ascii(&self, step: u16) -> String {
        assert!(step > 0);
        let mut out = String::new();
        let mut y = 0;
        while y < self.height() {
            let mut x = 0;
            while x < self.width() {
                let b = PixelBox::new(
                    x,
                    y,
                    (x + step).min(self.width()),
                    (y + step).min(self.height()),
                );
                out.push(if self.any_in_box(&b) { '#' } else { '.' });
                x += step;
            }
            out.push('\n');
            y += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BinaryImage {
        BinaryImage::new(SensorGeometry::new(10, 8))
    }

    #[test]
    fn new_image_is_all_zero() {
        let img = small();
        assert_eq!(img.count_ones(), 0);
        assert_eq!(img.density(), 0.0);
        assert!(!img.get(0, 0));
    }

    #[test]
    fn set_get_round_trip_for_every_pixel() {
        let mut img = small();
        for (x, y) in img.geometry().pixels().collect::<Vec<_>>() {
            img.set(x, y, true);
            assert!(img.get(x, y));
            img.set(x, y, false);
            assert!(!img.get(x, y));
        }
    }

    #[test]
    fn latch_reports_first_write_only() {
        let mut img = small();
        assert!(img.latch(3, 4), "first latch sets the pixel");
        assert!(!img.latch(3, 4), "second latch is a no-op");
        assert!(img.get(3, 4));
        assert_eq!(img.count_ones(), 1);
    }

    #[test]
    fn get_padded_returns_false_outside() {
        let mut img = small();
        img.set(0, 0, true);
        assert!(img.get_padded(0, 0));
        assert!(!img.get_padded(-1, 0));
        assert!(!img.get_padded(0, -1));
        assert!(!img.get_padded(10, 0));
        assert!(!img.get_padded(0, 8));
    }

    #[test]
    fn count_ones_tracks_sets() {
        let mut img = small();
        img.set(1, 1, true);
        img.set(2, 2, true);
        img.set(2, 2, true); // idempotent
        assert_eq!(img.count_ones(), 2);
        assert!((img.density() - 2.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let mut img = small();
        img.fill_box(&PixelBox::new(0, 0, 10, 8));
        assert_eq!(img.count_ones(), 80);
        img.clear();
        assert_eq!(img.count_ones(), 0);
    }

    #[test]
    fn set_pixels_iterates_exactly_the_set_ones() {
        let mut img = small();
        let pts = [(0u16, 0u16), (9, 0), (0, 7), (9, 7), (5, 3)];
        for &(x, y) in &pts {
            img.set(x, y, true);
        }
        let mut found: Vec<_> = img.set_pixels().collect();
        found.sort_unstable();
        let mut expected = pts.to_vec();
        expected.sort_unstable();
        assert_eq!(found, expected);
    }

    #[test]
    fn box_counting_and_any() {
        let mut img = small();
        img.fill_box(&PixelBox::new(2, 2, 5, 5));
        assert_eq!(img.count_in_box(&PixelBox::new(0, 0, 10, 8)), 9);
        assert_eq!(img.count_in_box(&PixelBox::new(2, 2, 4, 4)), 4);
        assert!(img.any_in_box(&PixelBox::new(4, 4, 10, 8)));
        assert!(!img.any_in_box(&PixelBox::new(6, 6, 10, 8)));
    }

    #[test]
    fn boxes_clip_to_image_bounds() {
        let mut img = small();
        img.set(9, 7, true);
        // Box extending past the array must not panic and must find the pixel.
        assert!(img.any_in_box(&PixelBox::new(8, 6, 50, 50)));
        assert_eq!(img.count_in_box(&PixelBox::new(8, 6, 50, 50)), 1);
    }

    #[test]
    fn payload_bits_matches_pixel_count() {
        assert_eq!(small().payload_bits(), 80);
        assert_eq!(BinaryImage::new(SensorGeometry::davis240()).payload_bits(), 43_200);
    }

    #[test]
    fn ascii_rendering_shape() {
        let mut img = small();
        img.set(0, 0, true);
        let art = img.to_ascii(1);
        let lines: Vec<_> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0].len(), 10);
        assert!(lines[0].starts_with('#'));
        assert!(lines[1].starts_with('.'));
    }

    #[test]
    fn ascii_downscale_ors_blocks() {
        let mut img = small();
        img.set(1, 1, true);
        let art = img.to_ascii(2);
        let lines: Vec<_> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), 5);
        assert!(lines[0].starts_with('#'), "block (0,0)-(1,1) contains the pixel");
    }

    #[test]
    fn geometry_not_multiple_of_64_works() {
        // 43_200 pixels for DAVIS240 is not a multiple of 64 either; use a
        // tiny odd geometry and exercise the word-boundary logic.
        let mut img = BinaryImage::new(SensorGeometry::new(13, 5));
        for (x, y) in img.geometry().pixels().collect::<Vec<_>>() {
            img.set(x, y, true);
        }
        assert_eq!(img.count_ones(), 65);
        assert_eq!(img.set_pixels().count(), 65);
    }
}

//! Event-based binary image (EBBI) accumulation.
//!
//! The paper's key idea (Section II-A): instead of processing every event,
//! the processor sleeps and wakes every `tF`; the NVS pixels stay latched
//! until read out, so the sensor itself stores a binary image of all events
//! since the last interrupt ("we reuse the sensor as a memory"). Reading it
//! out yields the EBBI — one bit per pixel, polarity ignored.
//!
//! [`EbbiAccumulator`] models exactly that: [`EbbiAccumulator::accumulate`]
//! latches events (idempotently per pixel, like the sensor), and
//! [`EbbiAccumulator::readout`] hands the frame to the processor and resets
//! the latches, counting memory writes the way Eq. 1 does.

use ebbiot_events::{Event, OpsCounter, SensorGeometry};

use crate::BinaryImage;

/// Accumulates events into an EBBI with sensor-latch semantics.
#[derive(Debug, Clone)]
pub struct EbbiAccumulator {
    image: BinaryImage,
    events_seen: u64,
    pixels_latched: u64,
    ops: OpsCounter,
}

impl EbbiAccumulator {
    /// Creates an accumulator for the given sensor geometry.
    #[must_use]
    pub fn new(geometry: SensorGeometry) -> Self {
        Self {
            image: BinaryImage::new(geometry),
            events_seen: 0,
            pixels_latched: 0,
            ops: OpsCounter::new(),
        }
    }

    /// The sensor geometry.
    #[must_use]
    pub fn geometry(&self) -> SensorGeometry {
        self.image.geometry()
    }

    /// Latches one event. Events outside the array are ignored (a real
    /// readout cannot produce them, but simulated streams might after
    /// coordinate transforms).
    pub fn accumulate(&mut self, event: &Event) {
        self.events_seen += 1;
        if !self.geometry().contains_event(event) {
            return;
        }
        // One memory write per *new* pixel: the sensor latch is free, the
        // write happens when building the processor-side frame copy. Eq. 1
        // counts one write per EBBI pixel set.
        if self.image.latch(event.x, event.y) {
            self.pixels_latched += 1;
            self.ops.write(1);
        }
    }

    /// Latches a whole window of events.
    pub fn accumulate_all(&mut self, events: &[Event]) {
        for e in events {
            self.accumulate(e);
        }
    }

    /// Number of events fed in since the last readout (the paper's `n`,
    /// with `n = beta * alpha * A * B`).
    #[must_use]
    pub const fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Number of distinct latched pixels since the last readout
    /// (`alpha * A * B`).
    #[must_use]
    pub const fn pixels_latched(&self) -> u64 {
        self.pixels_latched
    }

    /// The `beta` of Eq. 2: average fires per active pixel in the current
    /// window (`>= 1`; 0.0 when nothing latched).
    #[must_use]
    pub fn beta(&self) -> f64 {
        if self.pixels_latched == 0 {
            0.0
        } else {
            self.events_seen as f64 / self.pixels_latched as f64
        }
    }

    /// Reads out the EBBI and resets the latches, mirroring the
    /// interrupt-driven readout of Fig. 2. Returns the frame.
    #[must_use]
    pub fn readout(&mut self) -> BinaryImage {
        let geometry = self.geometry();
        let frame = core::mem::replace(&mut self.image, BinaryImage::new(geometry));
        self.events_seen = 0;
        self.pixels_latched = 0;
        frame
    }

    /// Reads out the EBBI into a caller-owned frame and resets the
    /// latches — the allocation-free variant of [`Self::readout`] used by
    /// the streaming front-end (`out` is a reused scratch buffer). With
    /// the row-aligned layout this is a straight word copy plus a word
    /// fill — no per-pixel work.
    ///
    /// # Panics
    ///
    /// Panics when `out` has a different geometry.
    pub fn readout_into(&mut self, out: &mut BinaryImage) {
        out.copy_from(&self.image);
        self.image.clear();
        self.events_seen = 0;
        self.pixels_latched = 0;
    }

    /// Peek at the partially accumulated frame without resetting.
    #[must_use]
    pub fn current(&self) -> &BinaryImage {
        &self.image
    }

    /// Runtime op counter (memory writes for frame creation, per Eq. 1).
    #[must_use]
    pub const fn ops(&self) -> &OpsCounter {
        &self.ops
    }

    /// Overwrites the op counter with a previously saved tally — the
    /// session-checkpoint restore path.
    pub fn restore_ops(&mut self, ops: OpsCounter) {
        self.ops = ops;
    }

    /// Resets the op counter (typically once per frame, after reporting).
    pub fn reset_ops(&mut self) {
        self.ops.reset();
    }
}

/// One-shot convenience: builds an EBBI from a window of events.
#[must_use]
pub fn ebbi_from_events(geometry: SensorGeometry, events: &[Event]) -> BinaryImage {
    let mut acc = EbbiAccumulator::new(geometry);
    acc.accumulate_all(events);
    acc.readout()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_events::Polarity;

    fn geom() -> SensorGeometry {
        SensorGeometry::new(16, 16)
    }

    #[test]
    fn single_event_sets_single_pixel() {
        let img = ebbi_from_events(geom(), &[Event::on(3, 4, 0)]);
        assert!(img.get(3, 4));
        assert_eq!(img.count_ones(), 1);
    }

    #[test]
    fn polarity_is_ignored() {
        let img = ebbi_from_events(geom(), &[Event::on(1, 1, 0), Event::off(2, 2, 5)]);
        assert!(img.get(1, 1));
        assert!(img.get(2, 2));
    }

    #[test]
    fn repeated_events_latch_once() {
        let mut acc = EbbiAccumulator::new(geom());
        for t in 0..10 {
            acc.accumulate(&Event::new(
                5,
                5,
                t,
                if t % 2 == 0 { Polarity::On } else { Polarity::Off },
            ));
        }
        assert_eq!(acc.events_seen(), 10);
        assert_eq!(acc.pixels_latched(), 1);
        assert!((acc.beta() - 10.0).abs() < 1e-12);
        let img = acc.readout();
        assert_eq!(img.count_ones(), 1);
    }

    #[test]
    fn out_of_bounds_events_are_ignored() {
        let mut acc = EbbiAccumulator::new(geom());
        acc.accumulate(&Event::on(100, 100, 0));
        assert_eq!(acc.pixels_latched(), 0);
        assert_eq!(acc.readout().count_ones(), 0);
    }

    #[test]
    fn readout_resets_latches_and_counters() {
        let mut acc = EbbiAccumulator::new(geom());
        acc.accumulate(&Event::on(1, 1, 0));
        let first = acc.readout();
        assert_eq!(first.count_ones(), 1);
        assert_eq!(acc.events_seen(), 0);
        assert_eq!(acc.pixels_latched(), 0);
        assert_eq!(acc.beta(), 0.0);
        let second = acc.readout();
        assert_eq!(second.count_ones(), 0, "latches cleared by readout");
    }

    #[test]
    fn mem_writes_count_new_pixels_only() {
        let mut acc = EbbiAccumulator::new(geom());
        acc.accumulate(&Event::on(1, 1, 0));
        acc.accumulate(&Event::on(1, 1, 1));
        acc.accumulate(&Event::on(2, 2, 2));
        assert_eq!(acc.ops().mem_writes, 2);
    }

    #[test]
    fn current_peeks_without_reset() {
        let mut acc = EbbiAccumulator::new(geom());
        acc.accumulate(&Event::on(7, 7, 0));
        assert!(acc.current().get(7, 7));
        assert_eq!(acc.events_seen(), 1, "peek does not reset");
    }

    #[test]
    fn accumulate_all_equals_loop() {
        let events: Vec<_> = (0..20).map(|i| Event::on(i % 8, i / 8, u64::from(i))).collect();
        let mut a = EbbiAccumulator::new(geom());
        a.accumulate_all(&events);
        let mut b = EbbiAccumulator::new(geom());
        for e in &events {
            b.accumulate(e);
        }
        assert_eq!(a.readout(), b.readout());
    }
}

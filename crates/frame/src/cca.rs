//! Connected-component analysis on binary images.
//!
//! The paper names 2-D CCA as the "traditional approach to detect regions"
//! and as the future-work generalization of its histogram RPN. We provide
//! it both as a baseline region proposer and for the false-intersection
//! fallback the paper mentions (checking validity of X×Y region products).
//!
//! Labelling is a two-pass union–find over either 4- or 8-connectivity.

use ebbiot_events::OpsCounter;

use crate::{BinaryImage, PixelBox};

/// Pixel connectivity for component labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connectivity {
    /// Edge-adjacent neighbours only.
    Four,
    /// Edge- and corner-adjacent neighbours (default: event clouds are
    /// sparse, diagonal links keep object silhouettes together).
    Eight,
}

/// A labelled connected component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Bounding box of the component.
    pub bbox: PixelBox,
    /// Number of set pixels in the component.
    pub pixel_count: u32,
}

/// Union–find with path halving.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new() -> Self {
        Self { parent: Vec::new() }
    }

    fn make_set(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Attach the larger id to the smaller so labels stay stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// Labels connected components and returns them ordered by raster position
/// of their first pixel.
///
/// Charges one comparison per pixel (foreground test) plus one comparison
/// per examined neighbour, mirroring the raster-scan cost the paper
/// attributes to CCA-based region detection.
#[must_use]
pub fn connected_components(
    image: &BinaryImage,
    connectivity: Connectivity,
    ops: &mut OpsCounter,
) -> Vec<Component> {
    let width = image.width();
    let height = image.height();
    let mut labels: Vec<u32> = vec![u32::MAX; width as usize * height as usize];
    let mut uf = UnionFind::new();

    let idx = |x: u16, y: u16| y as usize * width as usize + x as usize;

    // Pass 1: provisional labels from already-visited neighbours
    // (left, top, and for 8-connectivity the two top diagonals). The row
    // scan is word-parallel: all-zero words are skipped with one test
    // each, and only set pixels run the labelling body. The logical cost
    // is unchanged — one foreground comparison per pixel, charged per
    // row — so the op counts match the paper's raster-scan accounting.
    for y in 0..height {
        ops.compare(u64::from(width));
        for x in image.set_pixels_in_row(y) {
            let mut neighbour_labels: [Option<u32>; 4] = [None; 4];
            let mut n = 0;
            let consider = |lx: i32, ly: i32, ops: &mut OpsCounter, labels: &Vec<u32>| {
                ops.compare(1);
                if lx >= 0 && ly >= 0 && (lx as u16) < width && (ly as u16) < height {
                    let l = labels[idx(lx as u16, ly as u16)];
                    if l != u32::MAX {
                        return Some(l);
                    }
                }
                None
            };
            if let Some(l) = consider(i32::from(x) - 1, i32::from(y), ops, &labels) {
                neighbour_labels[n] = Some(l);
                n += 1;
            }
            if let Some(l) = consider(i32::from(x), i32::from(y) - 1, ops, &labels) {
                neighbour_labels[n] = Some(l);
                n += 1;
            }
            if connectivity == Connectivity::Eight {
                if let Some(l) = consider(i32::from(x) - 1, i32::from(y) - 1, ops, &labels) {
                    neighbour_labels[n] = Some(l);
                    n += 1;
                }
                if let Some(l) = consider(i32::from(x) + 1, i32::from(y) - 1, ops, &labels) {
                    neighbour_labels[n] = Some(l);
                    n += 1;
                }
            }
            let label = if n == 0 {
                uf.make_set()
            } else {
                let mut min = u32::MAX;
                for l in neighbour_labels.iter().flatten() {
                    min = min.min(*l);
                }
                for l in neighbour_labels.iter().flatten() {
                    uf.union(min, *l);
                }
                min
            };
            labels[idx(x, y)] = label;
            ops.write(1);
        }
    }

    // Pass 2: resolve labels, accumulate boxes and counts.
    let mut roots: Vec<u32> = Vec::new();
    let mut components: Vec<Component> = Vec::new();
    for y in 0..height {
        for x in 0..width {
            let l = labels[idx(x, y)];
            if l == u32::MAX {
                continue;
            }
            let root = uf.find(l);
            let slot = roots.iter().position(|&r| r == root).unwrap_or_else(|| {
                roots.push(root);
                components.push(Component { bbox: PixelBox::single(x, y), pixel_count: 0 });
                roots.len() - 1
            });
            components[slot].bbox.include(x, y);
            components[slot].pixel_count += 1;
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_events::SensorGeometry;

    fn image_from(rows: &[&str]) -> BinaryImage {
        let h = rows.len() as u16;
        let w = rows[0].len() as u16;
        let mut img = BinaryImage::new(SensorGeometry::new(w, h));
        for (y, row) in rows.iter().enumerate() {
            for (x, ch) in row.chars().enumerate() {
                if ch == '#' {
                    img.set(x as u16, y as u16, true);
                }
            }
        }
        img
    }

    fn components(rows: &[&str], conn: Connectivity) -> Vec<Component> {
        let mut ops = OpsCounter::new();
        connected_components(&image_from(rows), conn, &mut ops)
    }

    #[test]
    fn empty_image_has_no_components() {
        assert!(components(&["....", "...."], Connectivity::Eight).is_empty());
    }

    #[test]
    fn single_pixel_component() {
        let comps = components(&["....", ".#..", "...."], Connectivity::Four);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].pixel_count, 1);
        assert_eq!(comps[0].bbox, PixelBox::new(1, 1, 2, 2));
    }

    #[test]
    fn two_separate_blobs() {
        let comps = components(&["##..", "##..", "...#", "...#"], Connectivity::Four);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].pixel_count, 4);
        assert_eq!(comps[1].pixel_count, 2);
        assert_eq!(comps[1].bbox, PixelBox::new(3, 2, 4, 4));
    }

    #[test]
    fn diagonal_touch_depends_on_connectivity() {
        let rows = ["#...", ".#..", "..#.", "...."];
        assert_eq!(components(&rows, Connectivity::Four).len(), 3);
        assert_eq!(components(&rows, Connectivity::Eight).len(), 1);
    }

    #[test]
    fn u_shape_merges_via_union_find() {
        // The two vertical arms get different provisional labels and must
        // be united when the bottom bar connects them.
        let rows = ["#..#", "#..#", "####"];
        let comps = components(&rows, Connectivity::Four);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].pixel_count, 8);
        assert_eq!(comps[0].bbox, PixelBox::new(0, 0, 4, 3));
    }

    #[test]
    fn spiral_stress_for_label_merging() {
        let rows = ["#####", "....#", "###.#", "#...#", "#####"];
        let comps = components(&rows, Connectivity::Four);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].pixel_count, 17);
    }

    #[test]
    fn full_image_is_one_component() {
        let comps = components(&["###", "###"], Connectivity::Four);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].pixel_count, 6);
        assert_eq!(comps[0].bbox, PixelBox::new(0, 0, 3, 2));
    }

    #[test]
    fn pixel_counts_sum_to_count_ones() {
        let rows = ["#.#.#", ".#.#.", "#.#.#"];
        let img = image_from(&rows);
        let mut ops = OpsCounter::new();
        let comps = connected_components(&img, Connectivity::Four, &mut ops);
        let total: u32 = comps.iter().map(|c| c.pixel_count).sum();
        assert_eq!(total as usize, img.count_ones());
        assert_eq!(comps.len(), 8, "checkerboard has 8 isolated pixels (4-conn)");
    }

    #[test]
    fn checkerboard_is_single_component_with_8_connectivity() {
        let comps = components(&["#.#.#", ".#.#.", "#.#.#"], Connectivity::Eight);
        assert_eq!(comps.len(), 1);
    }

    #[test]
    fn components_ordered_by_first_raster_pixel() {
        let comps = components(&["...#", "#...", "...."], Connectivity::Four);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].bbox, PixelBox::new(3, 0, 4, 1), "top-right first");
        assert_eq!(comps[1].bbox, PixelBox::new(0, 1, 1, 2));
    }

    #[test]
    fn ops_are_charged_per_pixel() {
        let img = image_from(&["....", "...."]);
        let mut ops = OpsCounter::new();
        let _ = connected_components(&img, Connectivity::Four, &mut ops);
        assert_eq!(ops.comparisons, 8, "foreground test per pixel, no neighbours probed");
    }
}

//! Scalar per-pixel reference implementations of the hot frame kernels.
//!
//! The production kernels ([`crate::MedianFilter`], [`CountImage::downsample`],
//! [`BinaryImage::count_in_box`] and friends) run word-parallel over the
//! row-aligned bit layout. This module keeps the straightforward
//! one-pixel-at-a-time transcriptions those kernels replaced, so the
//! kernel-parity proptests can prove the optimized paths bit-exact (and
//! op-count-exact) against code with no layout tricks to share bugs
//! with, and so the `exp_hotpath` harness can measure the speedup.
//!
//! Everything here is *semantics documentation*, not a fast path: each
//! function states in loops exactly what its word-parallel counterpart
//! computes, including the zero-padding convention at borders and the
//! partial-edge-cell coverage of the extended Eq. 3.

use ebbiot_events::OpsCounter;

use crate::{BinaryImage, CountImage, PixelBox};

/// Scalar `p x p` binary median with zero padding — the reference for
/// [`crate::MedianFilter::apply_into`]. Charges the same Eq. 1 op counts: one
/// addition per active patch pixel, one comparison per pixel, one write
/// per set output pixel.
///
/// # Panics
///
/// Panics when `patch` is zero or even, or when `out` has a different
/// geometry.
pub fn median_into(input: &BinaryImage, patch: u16, out: &mut BinaryImage, ops: &mut OpsCounter) {
    assert!(patch >= 1, "median patch size must be at least 1");
    assert!(patch % 2 == 1, "median patch size must be odd");
    assert_eq!(input.geometry(), out.geometry(), "geometry mismatch in median_into");
    out.clear();
    let half = i32::from(patch / 2);
    let majority = u32::from(patch) * u32::from(patch) / 2;
    for y in 0..input.height() {
        for x in 0..input.width() {
            let mut count = 0u32;
            for dy in -half..=half {
                for dx in -half..=half {
                    if input.get_padded(i32::from(x) + dx, i32::from(y) + dy) {
                        count += 1;
                    }
                }
            }
            ops.add(u64::from(count));
            ops.compare(1);
            if count > majority {
                out.set(x, y, true);
                ops.write(1);
            }
        }
    }
}

/// Allocating convenience wrapper around [`median_into`].
#[must_use]
pub fn median(input: &BinaryImage, patch: u16, ops: &mut OpsCounter) -> BinaryImage {
    let mut out = BinaryImage::new(input.geometry());
    median_into(input, patch, &mut out, ops);
    out
}

/// Scalar block-sum downsampling with partial edge cells — the reference
/// for [`CountImage::downsample`]. Charges one addition per input pixel
/// and one write per cell, like the production kernel.
///
/// # Panics
///
/// Panics when either factor is zero or exceeds the image dimension.
#[must_use]
pub fn downsample(input: &BinaryImage, s1: u16, s2: u16, ops: &mut OpsCounter) -> CountImage {
    assert!(s1 > 0 && s2 > 0, "scale factors must be non-zero");
    assert!(s1 <= input.width() && s2 <= input.height(), "scale factors larger than the image");
    let width = input.width().div_ceil(s1);
    let height = input.height().div_ceil(s2);
    let mut data = vec![0u32; width as usize * height as usize];
    for j in 0..height {
        let y0 = j * s2;
        let y1 = (u32::from(y0) + u32::from(s2)).min(u32::from(input.height())) as u16;
        for i in 0..width {
            let x0 = i * s1;
            let x1 = (u32::from(x0) + u32::from(s1)).min(u32::from(input.width())) as u16;
            let mut sum = 0u32;
            for y in y0..y1 {
                for x in x0..x1 {
                    if input.get(x, y) {
                        sum += 1;
                    }
                }
            }
            ops.add(u64::from(x1 - x0) * u64::from(y1 - y0));
            ops.write(1);
            data[j as usize * width as usize + i as usize] = sum;
        }
    }
    CountImage::from_raw(width, height, data, s1, s2)
}

/// Scalar box count — the reference for [`BinaryImage::count_in_box`]
/// (exclusive max corner, clipped to the array).
#[must_use]
pub fn count_in_box(image: &BinaryImage, b: &PixelBox) -> usize {
    let x_end = b.x_max.min(image.width());
    let y_end = b.y_max.min(image.height());
    let mut count = 0;
    for y in b.y_min..y_end {
        for x in b.x_min..x_end {
            if image.get(x, y) {
                count += 1;
            }
        }
    }
    count
}

/// Scalar box-emptiness test — the reference for
/// [`BinaryImage::any_in_box`].
#[must_use]
pub fn any_in_box(image: &BinaryImage, b: &PixelBox) -> bool {
    let x_end = b.x_max.min(image.width());
    let y_end = b.y_max.min(image.height());
    for y in b.y_min..y_end {
        for x in b.x_min..x_end {
            if image.get(x, y) {
                return true;
            }
        }
    }
    false
}

/// Scalar rectangle fill — the reference for [`BinaryImage::fill_box`].
pub fn fill_box(image: &mut BinaryImage, b: &PixelBox) {
    let x_end = b.x_max.min(image.width());
    let y_end = b.y_max.min(image.height());
    for y in b.y_min..y_end {
        for x in b.x_min..x_end {
            image.set(x, y, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MedianFilter;
    use ebbiot_events::SensorGeometry;

    fn speckled(w: u16, h: u16) -> BinaryImage {
        let mut img = BinaryImage::new(SensorGeometry::new(w, h));
        // Deterministic speckle covering word boundaries and both edges.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for y in 0..h {
            for x in 0..w {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                if state >> 61 == 0 {
                    img.set(x, y, true);
                }
            }
        }
        img.fill_box(&PixelBox::new(w / 3, h / 3, w / 2 + 1, h / 2 + 1));
        img
    }

    #[test]
    fn median_reference_matches_word_parallel_including_ops() {
        for (w, h) in [(17, 5), (64, 9), (130, 11), (1, 1), (70, 3)] {
            let img = speckled(w, h);
            for p in [1u16, 3, 5] {
                let mut ref_ops = OpsCounter::new();
                let reference = median(&img, p, &mut ref_ops);
                let mut f = MedianFilter::new(p);
                let fast = f.apply(&img);
                assert_eq!(fast, reference, "median p={p} on {w}x{h}");
                assert_eq!(*f.ops(), ref_ops, "median ops p={p} on {w}x{h}");
            }
        }
    }

    #[test]
    fn downsample_reference_matches_word_parallel_including_ops() {
        for (w, h, s1, s2) in [(17, 5, 3, 2), (240, 18, 6, 3), (130, 11, 7, 4), (13, 7, 6, 3)] {
            let img = speckled(w, h);
            let mut ref_ops = OpsCounter::new();
            let reference = downsample(&img, s1, s2, &mut ref_ops);
            let mut ops = OpsCounter::new();
            let fast = CountImage::downsample(&img, s1, s2, &mut ops);
            assert_eq!(fast, reference, "downsample {s1}x{s2} on {w}x{h}");
            assert_eq!(ops, ref_ops, "downsample ops {s1}x{s2} on {w}x{h}");
        }
    }

    #[test]
    fn box_ops_match_word_parallel() {
        let img = speckled(130, 20);
        for b in [
            PixelBox::new(0, 0, 130, 20),
            PixelBox::new(60, 3, 70, 9),
            PixelBox::new(63, 0, 65, 20),
            PixelBox::new(100, 10, 200, 40),
            PixelBox::new(5, 5, 5, 9),
        ] {
            assert_eq!(img.count_in_box(&b), count_in_box(&img, &b), "{b:?}");
            assert_eq!(img.any_in_box(&b), any_in_box(&img, &b), "{b:?}");
            let mut a = BinaryImage::new(img.geometry());
            let mut c = BinaryImage::new(img.geometry());
            a.fill_box(&b);
            fill_box(&mut c, &b);
            assert_eq!(a, c, "{b:?}");
        }
    }
}

//! X/Y histograms of the downsampled EBBI and 1-D run extraction (Eq. 4).
//!
//! The RPN projects the downsampled count image onto both axes:
//! `H_X(i) = sum_j I(i, j)` and `H_Y(j) = sum_i I(i, j)`, then finds
//! contiguous runs of entries at or above a threshold (the paper sets the
//! threshold "to 1"). Regions fragmented in the full-resolution image merge
//! in the coarse histograms — the paper's answer to big vehicles whose flat
//! sides generate few events.

use ebbiot_events::OpsCounter;

use crate::CountImage;

/// A 1-D projection histogram over one axis of a [`CountImage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u32>,
}

/// Which axis a histogram projects onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `H_X`: one bin per downsampled column.
    X,
    /// `H_Y`: one bin per downsampled row.
    Y,
}

impl Histogram {
    /// Builds the projection histogram of `image` along `axis`.
    ///
    /// Charges one addition per cell visited and one write per bin,
    /// matching the `2 * A * B / (s1 * s2)` term of Eq. 5 when both axes
    /// are built.
    #[must_use]
    pub fn project(image: &CountImage, axis: Axis, ops: &mut OpsCounter) -> Self {
        let (outer, inner) = match axis {
            Axis::X => (image.width(), image.height()),
            Axis::Y => (image.height(), image.width()),
        };
        let mut bins = vec![0u32; outer as usize];
        for o in 0..outer {
            let mut sum = 0u32;
            for i in 0..inner {
                let v = match axis {
                    Axis::X => image.get(o, i),
                    Axis::Y => image.get(i, o),
                };
                sum += v;
                ops.add(1);
            }
            bins[o as usize] = sum;
            ops.write(1);
        }
        Self { bins }
    }

    /// Builds a histogram directly from bin values (for tests and tools).
    #[must_use]
    pub fn from_bins(bins: Vec<u32>) -> Self {
        Self { bins }
    }

    /// Number of bins.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether the histogram has no bins.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Bin values.
    #[must_use]
    pub fn bins(&self) -> &[u32] {
        &self.bins
    }

    /// Sum of all bins.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().map(|&v| u64::from(v)).sum()
    }

    /// Finds maximal runs of consecutive bins with value `>= threshold`.
    ///
    /// Returns half-open index ranges `[start, end)`. Charges one
    /// comparison per bin.
    #[must_use]
    pub fn runs_at_least(&self, threshold: u32, ops: &mut OpsCounter) -> Vec<Run> {
        let mut runs = Vec::new();
        let mut start: Option<usize> = None;
        for (i, &v) in self.bins.iter().enumerate() {
            ops.compare(1);
            if v >= threshold {
                if start.is_none() {
                    start = Some(i);
                }
            } else if let Some(s) = start.take() {
                runs.push(Run { start: s, end: i });
            }
        }
        if let Some(s) = start {
            runs.push(Run { start: s, end: self.bins.len() });
        }
        runs
    }

    /// ASCII sparkline (`0-9`, `+` for >= 10) for debugging and Fig. 3.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        self.bins
            .iter()
            .map(|&v| {
                if v == 0 {
                    '.'
                } else if v < 10 {
                    char::from_digit(v, 10).expect("v < 10")
                } else {
                    '+'
                }
            })
            .collect()
    }
}

/// A maximal run of above-threshold bins: half-open `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Run {
    /// First bin index in the run (inclusive).
    pub start: usize,
    /// One past the last bin index (exclusive).
    pub end: usize,
}

impl Run {
    /// Number of bins covered.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.end - self.start
    }

    /// Runs are never empty by construction, but the method is provided
    /// for API completeness.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether two runs share any bin.
    #[must_use]
    pub const fn overlaps(&self, other: &Run) -> bool {
        self.start < other.end && other.start < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinaryImage;
    use ebbiot_events::SensorGeometry;

    fn count_image(w: u16, h: u16, set: &[(u16, u16)]) -> CountImage {
        let mut img = BinaryImage::new(SensorGeometry::new(w, h));
        for &(x, y) in set {
            img.set(x, y, true);
        }
        let mut ops = OpsCounter::new();
        CountImage::downsample(&img, 1, 1, &mut ops)
    }

    #[test]
    fn projections_sum_rows_and_columns() {
        let ci = count_image(4, 3, &[(0, 0), (0, 1), (2, 2), (3, 2)]);
        let mut ops = OpsCounter::new();
        let hx = Histogram::project(&ci, Axis::X, &mut ops);
        let hy = Histogram::project(&ci, Axis::Y, &mut ops);
        assert_eq!(hx.bins(), &[2, 0, 1, 1]);
        assert_eq!(hy.bins(), &[1, 1, 2]);
        assert_eq!(hx.total(), 4);
        assert_eq!(hy.total(), 4);
    }

    #[test]
    fn projection_totals_always_agree() {
        let ci = count_image(8, 8, &[(1, 1), (2, 5), (7, 0), (7, 7)]);
        let mut ops = OpsCounter::new();
        let hx = Histogram::project(&ci, Axis::X, &mut ops);
        let hy = Histogram::project(&ci, Axis::Y, &mut ops);
        assert_eq!(hx.total(), hy.total());
    }

    #[test]
    fn ops_accounting_covers_cells_and_bins() {
        let ci = count_image(6, 4, &[]);
        let mut ops = OpsCounter::new();
        let _ = Histogram::project(&ci, Axis::X, &mut ops);
        assert_eq!(ops.additions, 24, "one add per cell");
        assert_eq!(ops.mem_writes, 6, "one write per bin");
    }

    #[test]
    fn runs_on_empty_histogram() {
        let h = Histogram::from_bins(vec![]);
        let mut ops = OpsCounter::new();
        assert!(h.runs_at_least(1, &mut ops).is_empty());
    }

    #[test]
    fn single_run_in_middle() {
        let h = Histogram::from_bins(vec![0, 0, 3, 5, 2, 0, 0]);
        let mut ops = OpsCounter::new();
        let runs = h.runs_at_least(1, &mut ops);
        assert_eq!(runs, vec![Run { start: 2, end: 5 }]);
        assert_eq!(runs[0].len(), 3);
    }

    #[test]
    fn run_touching_each_border() {
        let h = Histogram::from_bins(vec![2, 1, 0, 0, 7]);
        let mut ops = OpsCounter::new();
        let runs = h.runs_at_least(1, &mut ops);
        assert_eq!(runs, vec![Run { start: 0, end: 2 }, Run { start: 4, end: 5 }]);
    }

    #[test]
    fn threshold_splits_weak_bridges() {
        let h = Histogram::from_bins(vec![5, 1, 5]);
        let mut ops = OpsCounter::new();
        assert_eq!(h.runs_at_least(1, &mut ops).len(), 1, "bridge at threshold 1");
        assert_eq!(h.runs_at_least(2, &mut ops).len(), 2, "bridge broken at 2");
    }

    #[test]
    fn all_above_threshold_is_one_run() {
        let h = Histogram::from_bins(vec![1, 2, 3]);
        let mut ops = OpsCounter::new();
        assert_eq!(h.runs_at_least(1, &mut ops), vec![Run { start: 0, end: 3 }]);
    }

    #[test]
    fn run_comparisons_equal_bin_count() {
        let h = Histogram::from_bins(vec![1; 17]);
        let mut ops = OpsCounter::new();
        let _ = h.runs_at_least(1, &mut ops);
        assert_eq!(ops.comparisons, 17);
    }

    #[test]
    fn run_overlap_predicate() {
        let a = Run { start: 0, end: 3 };
        let b = Run { start: 2, end: 5 };
        let c = Run { start: 3, end: 4 };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "half-open ranges: touching is not overlap");
    }

    #[test]
    fn fragmented_object_merges_in_coarse_histogram() {
        // Two x-clusters 2 px apart at full resolution: separate runs.
        let fine = count_image(12, 3, &[(2, 1), (3, 1), (6, 1), (7, 1)]);
        let mut ops = OpsCounter::new();
        let hx_fine = Histogram::project(&fine, Axis::X, &mut ops);
        assert_eq!(hx_fine.runs_at_least(1, &mut ops).len(), 2);

        // Downsampled by 4 in x, the gap disappears: one merged run —
        // exactly the Fig. 3 motivation.
        let mut img = BinaryImage::new(SensorGeometry::new(12, 3));
        for &(x, y) in &[(2u16, 1u16), (3, 1), (6, 1), (7, 1)] {
            img.set(x, y, true);
        }
        let coarse = CountImage::downsample(&img, 4, 3, &mut ops);
        let hx_coarse = Histogram::project(&coarse, Axis::X, &mut ops);
        assert_eq!(hx_coarse.runs_at_least(1, &mut ops).len(), 1);
    }

    #[test]
    fn ascii_sparkline() {
        let h = Histogram::from_bins(vec![0, 3, 12]);
        assert_eq!(h.to_ascii(), ".3+");
    }
}

//! Frame-domain substrate for the EBBIOT pipeline.
//!
//! The EBBIOT paper's "mixed approach" accumulates NVS events into
//! *event-based binary images* (EBBI) and does all further processing in
//! the frame domain. This crate provides that domain:
//!
//! * [`BinaryImage`] — bit-packed one-bit-per-pixel frames with a
//!   row-aligned `u64` layout (each row starts on a word boundary; tail
//!   bits past `width` are an always-zero invariant),
//! * [`EbbiAccumulator`] — sensor-as-memory event accumulation (§II-A),
//! * [`MedianFilter`] — `p x p` binary median denoising (§II-A, Eq. 1),
//! * [`CountImage`] — block-sum downsampling (Eq. 3),
//! * [`Histogram`] / [`Run`] — axis projections and 1-D run extraction
//!   (Eq. 4),
//! * [`cca`] — connected-component analysis (the paper's traditional
//!   baseline and future-work RPN),
//! * [`morphology`] — binary dilate/erode/open/close,
//! * [`BoundingBox`] / [`PixelBox`] — the box geometry (incl. IoU, Eq. 9)
//!   shared by the RPN, the trackers and the evaluator,
//! * [`mod@reference`] — scalar per-pixel transcriptions of the hot kernels,
//!   kept as the bit-exactness oracle for the word-parallel paths.
//!
//! The hot kernels (median, downsampling, box counting, CCA scans) are
//! **word-parallel**: they process 64 pixels per `u64` operation on top
//! of the row-aligned layout. The paper's Eq. 1 / Eq. 5 op accounting and
//! the `A x B` payload-bit figures are *logical* and unchanged by the
//! physical layout; see ARCHITECTURE.md ("Frame memory layout") at the
//! repository root for the layout contract and the tail-bit invariant.
//!
//! # Example: events → EBBI → denoised frame
//!
//! ```
//! use ebbiot_events::{Event, SensorGeometry};
//! use ebbiot_frame::{ebbi::ebbi_from_events, MedianFilter};
//!
//! let geom = SensorGeometry::davis240();
//! let events: Vec<Event> = (0..5).map(|i| Event::on(100 + i, 90, u64::from(i))).collect();
//! let ebbi = ebbi_from_events(geom, &events);
//! let denoised = MedianFilter::paper_default().apply(&ebbi);
//! assert!(denoised.count_ones() <= ebbi.count_ones());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary_image;
pub mod boxes;
pub mod cca;
pub mod downsample;
pub mod ebbi;
pub mod histogram;
pub mod median;
pub mod morphology;
pub mod reference;
pub mod rle;

pub use binary_image::BinaryImage;
pub use boxes::{BoundingBox, PixelBox};
pub use downsample::CountImage;
pub use ebbi::EbbiAccumulator;
pub use histogram::{Axis, Histogram, Run};
pub use median::MedianFilter;

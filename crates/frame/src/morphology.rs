//! Binary morphology: dilation, erosion, opening, closing.
//!
//! The paper cites morphological operators (Gonzalez & Woods) as part of
//! the traditional CCA-based region-detection pipeline it compares
//! against; they are provided here so the CCA baseline can pre-close
//! fragmented silhouettes the way a conventional frame pipeline would.

use crate::BinaryImage;

/// Structuring element: a square of odd side `size` centred on the pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquareKernel {
    size: u16,
}

impl SquareKernel {
    /// Creates a kernel of the given odd side length.
    ///
    /// # Panics
    ///
    /// Panics when `size` is even or zero.
    #[must_use]
    pub fn new(size: u16) -> Self {
        assert!(size % 2 == 1, "kernel size must be odd");
        Self { size }
    }

    /// Kernel side length.
    #[must_use]
    pub const fn size(&self) -> u16 {
        self.size
    }

    const fn half(&self) -> i32 {
        (self.size / 2) as i32
    }
}

/// Dilation: output pixel is 1 if *any* kernel pixel is 1.
#[must_use]
pub fn dilate(input: &BinaryImage, kernel: SquareKernel) -> BinaryImage {
    transform(input, kernel, true)
}

/// Erosion: output pixel is 1 if *all* kernel pixels are 1 (zero padding,
/// so borders erode).
#[must_use]
pub fn erode(input: &BinaryImage, kernel: SquareKernel) -> BinaryImage {
    transform(input, kernel, false)
}

/// Opening: erosion followed by dilation. Removes specks smaller than the
/// kernel while roughly preserving larger shapes.
#[must_use]
pub fn open(input: &BinaryImage, kernel: SquareKernel) -> BinaryImage {
    dilate(&erode(input, kernel), kernel)
}

/// Closing: dilation followed by erosion. Fills gaps and bridges
/// fragmented silhouettes smaller than the kernel.
#[must_use]
pub fn close(input: &BinaryImage, kernel: SquareKernel) -> BinaryImage {
    erode(&dilate(input, kernel), kernel)
}

fn transform(input: &BinaryImage, kernel: SquareKernel, any: bool) -> BinaryImage {
    let mut out = BinaryImage::new(input.geometry());
    let half = kernel.half();
    for y in 0..input.height() {
        for x in 0..input.width() {
            let mut hit = !any;
            'scan: for dy in -half..=half {
                for dx in -half..=half {
                    let v = input.get_padded(i32::from(x) + dx, i32::from(y) + dy);
                    if any && v {
                        hit = true;
                        break 'scan;
                    }
                    if !any && !v {
                        hit = false;
                        break 'scan;
                    }
                }
            }
            if hit {
                out.set(x, y, true);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PixelBox;
    use ebbiot_events::SensorGeometry;

    fn image(w: u16, h: u16) -> BinaryImage {
        BinaryImage::new(SensorGeometry::new(w, h))
    }

    fn k3() -> SquareKernel {
        SquareKernel::new(3)
    }

    #[test]
    fn dilate_grows_single_pixel_to_kernel() {
        let mut img = image(9, 9);
        img.set(4, 4, true);
        let out = dilate(&img, k3());
        assert_eq!(out.count_ones(), 9);
        assert!(out.get(3, 3));
        assert!(out.get(5, 5));
        assert!(!out.get(2, 4));
    }

    #[test]
    fn erode_removes_single_pixel() {
        let mut img = image(9, 9);
        img.set(4, 4, true);
        assert_eq!(erode(&img, k3()).count_ones(), 0);
    }

    #[test]
    fn erode_shrinks_block_by_border() {
        let mut img = image(10, 10);
        img.fill_box(&PixelBox::new(2, 2, 8, 8)); // 6x6
        let out = erode(&img, k3());
        assert_eq!(out.count_ones(), 16, "6x6 erodes to 4x4");
        assert!(out.get(3, 3));
        assert!(!out.get(2, 2));
    }

    #[test]
    fn dilate_then_erode_restores_large_block() {
        let mut img = image(12, 12);
        img.fill_box(&PixelBox::new(3, 3, 9, 9));
        let out = close(&img, k3());
        assert_eq!(out, img, "closing is extensive-then-anti on solid blocks");
    }

    #[test]
    fn opening_removes_speck_keeps_block() {
        let mut img = image(16, 16);
        img.fill_box(&PixelBox::new(4, 4, 10, 10));
        img.set(14, 14, true); // speck
        let out = open(&img, k3());
        assert!(!out.get(14, 14), "speck removed");
        assert!(out.get(7, 7), "block interior kept");
    }

    #[test]
    fn closing_bridges_small_gap() {
        let mut img = image(16, 5);
        img.fill_box(&PixelBox::new(2, 1, 6, 4));
        img.fill_box(&PixelBox::new(7, 1, 11, 4)); // 1-px gap at x = 6
        let out = close(&img, k3());
        assert!(out.get(6, 2), "gap bridged");
    }

    #[test]
    fn erosion_at_borders_uses_zero_padding() {
        let mut img = image(6, 6);
        img.fill_box(&PixelBox::new(0, 0, 6, 6));
        let out = erode(&img, k3());
        assert!(!out.get(0, 0), "border erodes under zero padding");
        assert!(out.get(2, 2));
        assert_eq!(out.count_ones(), 16);
    }

    #[test]
    fn dilation_is_monotone() {
        let mut a = image(8, 8);
        a.set(3, 3, true);
        let mut b = a.clone();
        b.set(6, 6, true);
        let da = dilate(&a, k3());
        let db = dilate(&b, k3());
        for (x, y) in da.set_pixels() {
            assert!(db.get(x, y), "dilate(a) subset of dilate(b) when a subset of b");
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_panics() {
        let _ = SquareKernel::new(2);
    }

    #[test]
    fn unit_kernel_is_identity_for_all_ops() {
        let mut img = image(6, 6);
        img.set(1, 2, true);
        img.set(4, 4, true);
        let k1 = SquareKernel::new(1);
        assert_eq!(dilate(&img, k1), img);
        assert_eq!(erode(&img, k1), img);
        assert_eq!(open(&img, k1), img);
        assert_eq!(close(&img, k1), img);
    }
}

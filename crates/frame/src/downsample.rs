//! Block-sum downsampling (Eq. 3 of the paper, extended to cover edges).
//!
//! The RPN does not operate on the full-resolution EBBI: it first produces
//! a scaled image `I_{s1,s2}(i, j) = sum of the (s1 x s2) block` of binary
//! pixels. Eq. 3 as written stops at `floor(A / s1) x floor(B / s2)`
//! cells, which on non-divisible geometries silently drops a right/bottom
//! strip of up to `s - 1` pixels — on a DAVIS346 (346 x 260, `s1 = 6`)
//! the RPN would be blind to a 4-pixel-wide strip and objects entering
//! from the right edge would be proposed late or never. We therefore
//! produce `ceil(A / s1) x ceil(B / s2)` cells, with trailing *partial*
//! cells summing only the pixels that exist. For the paper's 240 x 180
//! with `s1 = 6`, `s2 = 3` the division is exact and the result is
//! bit-identical to Eq. 3.
//!
//! The kernel is word-parallel over the row-aligned [`BinaryImage`]: each
//! input row contributes one masked-span popcount per cell instead of a
//! per-pixel scan. Op accounting keeps the paper's logical Eq. 5 charge —
//! one addition per input pixel and one write per cell — regardless of
//! the physical instruction count.

use ebbiot_events::OpsCounter;

use crate::BinaryImage;

/// A small dense image of per-block event counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountImage {
    width: u16,
    height: u16,
    /// Per-cell block sums, row-major.
    data: Vec<u32>,
    /// X scale factor `s1` the image was built with.
    pub s1: u16,
    /// Y scale factor `s2` the image was built with.
    pub s2: u16,
}

impl CountImage {
    /// Downsamples a binary image by factors `s1` (x) and `s2` (y).
    ///
    /// Each output cell holds the number of set pixels in its block;
    /// trailing cells that hang over the right/bottom edge sum only the
    /// pixels that exist (partial blocks). The `ops` counter is charged
    /// one addition per *input* pixel (the `A * B` term dominating
    /// `C_RPN` in Eq. 5) and one write per cell.
    ///
    /// # Panics
    ///
    /// Panics when either factor is zero or exceeds the image dimension.
    #[must_use]
    pub fn downsample(input: &BinaryImage, s1: u16, s2: u16, ops: &mut OpsCounter) -> Self {
        assert!(s1 > 0 && s2 > 0, "scale factors must be non-zero");
        assert!(s1 <= input.width() && s2 <= input.height(), "scale factors larger than the image");
        let width = input.width().div_ceil(s1);
        let height = input.height().div_ceil(s2);
        let a = u32::from(input.width());
        let mut data = vec![0u32; width as usize * height as usize];
        if s1 <= 64 {
            // Rolling bit cursor: each cell's row slice is at most one
            // word-straddling extraction plus a popcount.
            let full_mask = if s1 == 64 { !0u64 } else { (1u64 << s1) - 1 };
            for y in 0..input.height() {
                let row = input.row_words(y);
                let base = (y / s2) as usize * width as usize;
                let mut bit = 0u32;
                for cell in &mut data[base..base + width as usize] {
                    let span = u32::from(s1).min(a - bit);
                    let w0 = (bit >> 6) as usize;
                    let off = bit & 63;
                    let mut bits = row[w0] >> off;
                    if off + span > 64 {
                        bits |= row[w0 + 1] << (64 - off);
                    }
                    let mask = if span == u32::from(s1) { full_mask } else { (1u64 << span) - 1 };
                    *cell += (bits & mask).count_ones();
                    bit += u32::from(s1);
                }
            }
        } else {
            // Blocks wider than a word: masked multi-word span popcounts.
            for y in 0..input.height() {
                let base = (y / s2) as usize * width as usize;
                for i in 0..width {
                    let x0 = i * s1;
                    let x1 = (u32::from(x0) + u32::from(s1)).min(a) as u16;
                    data[base + i as usize] += input.count_in_row_span(y, x0, x1);
                }
            }
        }
        // Logical Eq. 5 accounting: every input pixel belongs to exactly
        // one block, so the block sums cost one addition per input pixel;
        // one memory write per cell.
        ops.add(input.geometry().num_pixels() as u64);
        ops.write(u64::from(width) * u64::from(height));
        Self { width, height, data, s1, s2 }
    }

    /// Builds a count image from raw parts — the in-crate constructor
    /// used by the scalar reference kernel and tests.
    pub(crate) fn from_raw(width: u16, height: u16, data: Vec<u32>, s1: u16, s2: u16) -> Self {
        assert_eq!(data.len(), width as usize * height as usize, "cell data shape mismatch");
        Self { width, height, data, s1, s2 }
    }

    /// Downsampled width `ceil(A / s1)` (the last cell may be partial).
    #[must_use]
    pub const fn width(&self) -> u16 {
        self.width
    }

    /// Downsampled height `ceil(B / s2)` (the last cell may be partial).
    #[must_use]
    pub const fn height(&self) -> u16 {
        self.height
    }

    /// Reads cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, i: u16, j: u16) -> u32 {
        assert!(i < self.width && j < self.height, "cell ({i}, {j}) out of bounds");
        self.data[j as usize * self.width as usize + i as usize]
    }

    /// Sum of all cells (equals the number of set pixels in the source
    /// image — partial edge cells mean no pixel is ever dropped).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.data.iter().map(|&v| u64::from(v)).sum()
    }

    /// Whether any cell in the half-open cell rectangle is non-zero.
    /// Used by the RPN validity check for intersection regions.
    #[must_use]
    pub fn any_nonzero_in(&self, i_min: u16, i_max: u16, j_min: u16, j_max: u16) -> bool {
        let i_end = i_max.min(self.width);
        let j_end = j_max.min(self.height);
        for j in j_min..j_end {
            for i in i_min..i_end {
                if self.get(i, j) > 0 {
                    return true;
                }
            }
        }
        false
    }

    /// Memory footprint in bits using the paper's Eq. 5 accounting:
    /// `ceil(log2(s1 * s2))` bits per cell (enough to store a block sum).
    #[must_use]
    pub fn payload_bits(&self) -> usize {
        let n = u32::from(self.s1) * u32::from(self.s2);
        // ceil(log2(n)) for n >= 2 is the bit length of n - 1; clamp to >= 1.
        let bits_per_cell = if n <= 1 { 1 } else { (32 - (n - 1).leading_zeros()) as usize };
        self.width as usize * self.height as usize * bits_per_cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PixelBox;
    use ebbiot_events::SensorGeometry;

    fn image(w: u16, h: u16) -> BinaryImage {
        BinaryImage::new(SensorGeometry::new(w, h))
    }

    #[test]
    fn dimensions_follow_ceil_division() {
        let img = image(240, 180);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        assert_eq!(ds.width(), 40);
        assert_eq!(ds.height(), 60);
        // DAVIS346: 346 / 6 and 260 / 3 do not divide; the remainder gets
        // partial edge cells instead of a blind strip.
        let img = image(346, 260);
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        assert_eq!(ds.width(), 58);
        assert_eq!(ds.height(), 87);
    }

    #[test]
    fn trailing_partial_blocks_are_covered() {
        let mut img = image(10, 10);
        // One pixel in the 1-wide rightmost partial column and one in the
        // 2-tall bottom partial row: formerly invisible to the RPN.
        img.set(9, 0, true);
        img.set(0, 9, true);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 3, 4, &mut ops);
        assert_eq!(ds.width(), 4, "ceil(10 / 3)");
        assert_eq!(ds.height(), 3, "ceil(10 / 4)");
        assert_eq!(ds.get(3, 0), 1, "right-edge partial cell sees the pixel");
        assert_eq!(ds.get(0, 2), 1, "bottom-edge partial cell sees the pixel");
        assert_eq!(ds.total(), 2, "no pixel is dropped");
    }

    #[test]
    fn block_sums_count_set_pixels() {
        let mut img = image(12, 6);
        img.fill_box(&PixelBox::new(0, 0, 6, 3)); // fills cell (0,0) fully
        img.set(6, 0, true); // one pixel of cell (1, 0)
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        assert_eq!(ds.get(0, 0), 18);
        assert_eq!(ds.get(1, 0), 1);
        assert_eq!(ds.get(0, 1), 0);
        assert_eq!(ds.total(), 19);
    }

    #[test]
    fn total_matches_count_ones_always() {
        let mut img = image(24, 12);
        img.set(0, 0, true);
        img.set(23, 11, true);
        img.set(13, 7, true);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        assert_eq!(ds.total(), 3);
        // Non-divisible geometry conserves mass too (the Eq. 3 fix).
        let mut img = image(13, 7);
        img.fill_box(&PixelBox::new(0, 0, 13, 7));
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        assert_eq!(ds.total(), 13 * 7);
    }

    #[test]
    fn ops_charged_per_input_pixel() {
        let img = image(24, 12);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        assert_eq!(ops.additions, 24 * 12, "A*B additions");
        assert_eq!(ops.mem_writes, u64::from(ds.width()) * u64::from(ds.height()));
    }

    #[test]
    fn any_nonzero_in_detects_and_clips() {
        let mut img = image(12, 6);
        img.set(7, 1, true); // cell (1, 0)
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        assert!(ds.any_nonzero_in(1, 2, 0, 1));
        assert!(!ds.any_nonzero_in(0, 1, 0, 2));
        assert!(ds.any_nonzero_in(0, 100, 0, 100), "clips to image");
    }

    #[test]
    fn payload_bits_matches_eq5_for_paper_parameters() {
        let img = image(240, 180);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        // ceil(log2(18)) = 5 bits per cell, 40*60 cells = 12_000 bits.
        assert_eq!(ds.payload_bits(), 40 * 60 * 5);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_factor_panics() {
        let img = image(8, 8);
        let mut ops = OpsCounter::new();
        let _ = CountImage::downsample(&img, 0, 1, &mut ops);
    }

    #[test]
    fn unit_factors_copy_the_image() {
        let mut img = image(5, 4);
        img.set(2, 2, true);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 1, 1, &mut ops);
        assert_eq!(ds.width(), 5);
        assert_eq!(ds.height(), 4);
        assert_eq!(ds.get(2, 2), 1);
        assert_eq!(ds.get(0, 0), 0);
        assert_eq!(ds.total(), 1);
    }
}

//! Block-sum downsampling (Eq. 3 of the paper).
//!
//! The RPN does not operate on the full-resolution EBBI: it first produces
//! a scaled image `I_{s1,s2}(i, j) = sum of the (s1 x s2) block` of binary
//! pixels, for `i < floor(A / s1)`, `j < floor(B / s2)`. Following Eq. 3
//! exactly, trailing rows/columns that do not fill a whole block are
//! dropped (for the paper's 240x180 with s1 = 6, s2 = 3 the division is
//! exact, so nothing is lost).

use ebbiot_events::OpsCounter;

use crate::BinaryImage;

/// A small dense image of per-block event counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountImage {
    width: u16,
    height: u16,
    /// Per-cell block sums, row-major.
    data: Vec<u32>,
    /// X scale factor `s1` the image was built with.
    pub s1: u16,
    /// Y scale factor `s2` the image was built with.
    pub s2: u16,
}

impl CountImage {
    /// Downsamples a binary image by factors `s1` (x) and `s2` (y).
    ///
    /// Each output cell holds the number of set pixels in its block. The
    /// `ops` counter is charged one addition per *input* pixel (the
    /// `A * B` term dominating `C_RPN` in Eq. 5) and one write per cell.
    ///
    /// # Panics
    ///
    /// Panics when either factor is zero or exceeds the image dimension.
    #[must_use]
    pub fn downsample(input: &BinaryImage, s1: u16, s2: u16, ops: &mut OpsCounter) -> Self {
        assert!(s1 > 0 && s2 > 0, "scale factors must be non-zero");
        assert!(s1 <= input.width() && s2 <= input.height(), "scale factors larger than the image");
        let width = input.width() / s1;
        let height = input.height() / s2;
        let mut data = vec![0u32; width as usize * height as usize];
        for j in 0..height {
            for i in 0..width {
                let mut sum = 0u32;
                for dy in 0..s2 {
                    for dx in 0..s1 {
                        if input.get(i * s1 + dx, j * s2 + dy) {
                            sum += 1;
                        }
                    }
                }
                // One addition per input pixel scanned, one write per cell.
                ops.add(u64::from(s1) * u64::from(s2));
                ops.write(1);
                data[j as usize * width as usize + i as usize] = sum;
            }
        }
        Self { width, height, data, s1, s2 }
    }

    /// Downsampled width `floor(A / s1)`.
    #[must_use]
    pub const fn width(&self) -> u16 {
        self.width
    }

    /// Downsampled height `floor(B / s2)`.
    #[must_use]
    pub const fn height(&self) -> u16 {
        self.height
    }

    /// Reads cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, i: u16, j: u16) -> u32 {
        assert!(i < self.width && j < self.height, "cell ({i}, {j}) out of bounds");
        self.data[j as usize * self.width as usize + i as usize]
    }

    /// Sum of all cells (equals the number of set pixels in the covered
    /// region of the source image).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.data.iter().map(|&v| u64::from(v)).sum()
    }

    /// Whether any cell in the half-open cell rectangle is non-zero.
    /// Used by the RPN validity check for intersection regions.
    #[must_use]
    pub fn any_nonzero_in(&self, i_min: u16, i_max: u16, j_min: u16, j_max: u16) -> bool {
        let i_end = i_max.min(self.width);
        let j_end = j_max.min(self.height);
        for j in j_min..j_end {
            for i in i_min..i_end {
                if self.get(i, j) > 0 {
                    return true;
                }
            }
        }
        false
    }

    /// Memory footprint in bits using the paper's Eq. 5 accounting:
    /// `ceil(log2(s1 * s2))` bits per cell (enough to store a block sum).
    #[must_use]
    pub fn payload_bits(&self) -> usize {
        let n = u32::from(self.s1) * u32::from(self.s2);
        // ceil(log2(n)) for n >= 2 is the bit length of n - 1; clamp to >= 1.
        let bits_per_cell = if n <= 1 { 1 } else { (32 - (n - 1).leading_zeros()) as usize };
        self.width as usize * self.height as usize * bits_per_cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PixelBox;
    use ebbiot_events::SensorGeometry;

    fn image(w: u16, h: u16) -> BinaryImage {
        BinaryImage::new(SensorGeometry::new(w, h))
    }

    #[test]
    fn dimensions_follow_floor_division() {
        let img = image(240, 180);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        assert_eq!(ds.width(), 40);
        assert_eq!(ds.height(), 60);
    }

    #[test]
    fn trailing_partial_blocks_are_dropped() {
        let img = image(10, 10);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 3, 4, &mut ops);
        assert_eq!(ds.width(), 3);
        assert_eq!(ds.height(), 2);
    }

    #[test]
    fn block_sums_count_set_pixels() {
        let mut img = image(12, 6);
        img.fill_box(&PixelBox::new(0, 0, 6, 3)); // fills cell (0,0) fully
        img.set(6, 0, true); // one pixel of cell (1, 0)
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        assert_eq!(ds.get(0, 0), 18);
        assert_eq!(ds.get(1, 0), 1);
        assert_eq!(ds.get(0, 1), 0);
        assert_eq!(ds.total(), 19);
    }

    #[test]
    fn total_matches_count_ones_when_division_exact() {
        let mut img = image(24, 12);
        img.set(0, 0, true);
        img.set(23, 11, true);
        img.set(13, 7, true);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        assert_eq!(ds.total(), 3);
    }

    #[test]
    fn ops_charged_per_input_pixel() {
        let img = image(24, 12);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        assert_eq!(ops.additions, 24 * 12, "A*B additions");
        assert_eq!(ops.mem_writes, u64::from(ds.width()) * u64::from(ds.height()));
    }

    #[test]
    fn any_nonzero_in_detects_and_clips() {
        let mut img = image(12, 6);
        img.set(7, 1, true); // cell (1, 0)
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        assert!(ds.any_nonzero_in(1, 2, 0, 1));
        assert!(!ds.any_nonzero_in(0, 1, 0, 2));
        assert!(ds.any_nonzero_in(0, 100, 0, 100), "clips to image");
    }

    #[test]
    fn payload_bits_matches_eq5_for_paper_parameters() {
        let img = image(240, 180);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 6, 3, &mut ops);
        // ceil(log2(18)) = 5 bits per cell, 40*60 cells = 12_000 bits.
        assert_eq!(ds.payload_bits(), 40 * 60 * 5);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_factor_panics() {
        let img = image(8, 8);
        let mut ops = OpsCounter::new();
        let _ = CountImage::downsample(&img, 0, 1, &mut ops);
    }

    #[test]
    fn unit_factors_copy_the_image() {
        let mut img = image(5, 4);
        img.set(2, 2, true);
        let mut ops = OpsCounter::new();
        let ds = CountImage::downsample(&img, 1, 1, &mut ops);
        assert_eq!(ds.width(), 5);
        assert_eq!(ds.height(), 4);
        assert_eq!(ds.get(2, 2), 1);
        assert_eq!(ds.get(0, 0), 0);
        assert_eq!(ds.total(), 1);
    }
}

//! Binary median filtering — the EBBI noise-removal step.
//!
//! "For a binary frame, noise removal may be easily done by a median filter
//! (with patch size p x p) since spurious events result in salt and pepper
//! noise" (Section II-A). For a binary image the median of a `p x p` patch
//! is 1 exactly when more than `floor(p^2 / 2)` patch pixels are 1, so the
//! filter is a popcount followed by one comparison per pixel — the cost
//! model of Eq. 1.

use ebbiot_events::OpsCounter;

use crate::BinaryImage;

/// Binary median filter with odd patch size `p` (the paper uses `p = 3`).
#[derive(Debug, Clone)]
pub struct MedianFilter {
    patch: u16,
    ops: OpsCounter,
}

impl MedianFilter {
    /// Creates a filter with the given odd patch size.
    ///
    /// # Panics
    ///
    /// Panics when `patch` is even or zero.
    #[must_use]
    pub fn new(patch: u16) -> Self {
        assert!(patch % 2 == 1, "median patch size must be odd");
        Self { patch, ops: OpsCounter::new() }
    }

    /// The paper's default `p = 3` filter.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(3)
    }

    /// Patch size `p`.
    #[must_use]
    pub const fn patch(&self) -> u16 {
        self.patch
    }

    /// Majority threshold `floor(p^2 / 2)`: output is 1 when the patch
    /// count exceeds it.
    #[must_use]
    pub const fn majority(&self) -> u32 {
        (self.patch as u32 * self.patch as u32) / 2
    }

    /// Applies the filter, returning the filtered image. Borders use
    /// zero padding (outside pixels count as 0).
    ///
    /// Op accounting follows Eq. 1: for each output pixel, one increment
    /// per active patch pixel ("incrementing a counter every time a 1 is
    /// encountered") plus one comparison against the majority threshold,
    /// plus one memory write per set output pixel.
    #[must_use]
    pub fn apply(&mut self, input: &BinaryImage) -> BinaryImage {
        let mut out = BinaryImage::new(input.geometry());
        self.apply_into(input, &mut out);
        out
    }

    /// Applies the filter into a caller-owned output frame — the
    /// allocation-free variant of [`Self::apply`] used by the streaming
    /// front-end (`out` is a reused scratch buffer, cleared first).
    ///
    /// # Panics
    ///
    /// Panics when `out` has a different geometry.
    pub fn apply_into(&mut self, input: &BinaryImage, out: &mut BinaryImage) {
        assert_eq!(input.geometry(), out.geometry(), "geometry mismatch in apply_into");
        out.clear();
        let half = i32::from(self.patch / 2);
        let majority = self.majority();
        for y in 0..input.height() {
            for x in 0..input.width() {
                let mut count = 0u32;
                for dy in -half..=half {
                    for dx in -half..=half {
                        if input.get_padded(i32::from(x) + dx, i32::from(y) + dy) {
                            count += 1;
                        }
                    }
                }
                self.ops.add(u64::from(count));
                self.ops.compare(1);
                if count > majority {
                    out.set(x, y, true);
                    self.ops.write(1);
                }
            }
        }
    }

    /// Runtime op counter.
    #[must_use]
    pub const fn ops(&self) -> &OpsCounter {
        &self.ops
    }

    /// Resets the op counter.
    pub fn reset_ops(&mut self) {
        self.ops.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PixelBox;
    use ebbiot_events::SensorGeometry;

    fn image(w: u16, h: u16) -> BinaryImage {
        BinaryImage::new(SensorGeometry::new(w, h))
    }

    #[test]
    fn majority_threshold_for_p3_is_four() {
        assert_eq!(MedianFilter::paper_default().majority(), 4);
        assert_eq!(MedianFilter::new(5).majority(), 12);
    }

    #[test]
    fn isolated_pixel_is_removed() {
        let mut img = image(16, 16);
        img.set(8, 8, true);
        let out = MedianFilter::paper_default().apply(&img);
        assert_eq!(out.count_ones(), 0, "salt noise removed");
    }

    #[test]
    fn solid_block_interior_survives() {
        let mut img = image(16, 16);
        img.fill_box(&PixelBox::new(4, 4, 12, 12));
        let out = MedianFilter::paper_default().apply(&img);
        // Interior (9 neighbours all set, count 9 > 4) survives; corners of
        // the block have count 4, which is NOT > 4, so they are eroded.
        assert!(out.get(8, 8));
        assert!(out.get(5, 5));
        assert!(!out.get(4, 4), "block corner has exactly 4 neighbours set");
        // Edge midpoints have count 6 > 4 and survive.
        assert!(out.get(8, 4));
    }

    #[test]
    fn small_cluster_of_two_is_removed() {
        let mut img = image(16, 16);
        img.set(5, 5, true);
        img.set(6, 5, true);
        let out = MedianFilter::paper_default().apply(&img);
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    fn pepper_hole_in_solid_region_is_filled() {
        let mut img = image(16, 16);
        img.fill_box(&PixelBox::new(2, 2, 14, 14));
        img.set(8, 8, false); // pepper noise
        let out = MedianFilter::paper_default().apply(&img);
        assert!(out.get(8, 8), "hole filled by majority");
    }

    #[test]
    fn empty_image_stays_empty() {
        let img = image(8, 8);
        let out = MedianFilter::paper_default().apply(&img);
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    fn full_image_interior_stays_full() {
        let mut img = image(8, 8);
        img.fill_box(&PixelBox::new(0, 0, 8, 8));
        let out = MedianFilter::paper_default().apply(&img);
        // Only the 4 extreme corners have patch count 4 (not > 4) under
        // zero padding; everything else survives.
        assert_eq!(out.count_ones(), 64 - 4);
        assert!(!out.get(0, 0));
        assert!(out.get(1, 0));
    }

    #[test]
    fn ops_counting_matches_eq1_structure() {
        let mut img = image(10, 10);
        img.set(5, 5, true); // one active pixel contributes 9 patch hits
        let mut f = MedianFilter::paper_default();
        let _ = f.apply(&img);
        // One comparison per pixel.
        assert_eq!(f.ops().comparisons, 100);
        // The single set pixel is seen by the 9 patches covering it.
        assert_eq!(f.ops().additions, 9);
        // No output pixels set -> no writes.
        assert_eq!(f.ops().mem_writes, 0);
    }

    #[test]
    fn reset_ops_clears_counter() {
        let mut f = MedianFilter::paper_default();
        let _ = f.apply(&image(4, 4));
        assert!(f.ops().total() > 0);
        f.reset_ops();
        assert_eq!(f.ops().total(), 0);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_patch_size_panics() {
        let _ = MedianFilter::new(4);
    }

    #[test]
    fn p1_filter_is_identity() {
        let mut img = image(8, 8);
        img.set(2, 3, true);
        img.set(7, 7, true);
        let out = MedianFilter::new(1).apply(&img);
        assert_eq!(out, img);
    }
}

//! Binary median filtering — the EBBI noise-removal step.
//!
//! "For a binary frame, noise removal may be easily done by a median filter
//! (with patch size p x p) since spurious events result in salt and pepper
//! noise" (Section II-A). For a binary image the median of a `p x p` patch
//! is 1 exactly when more than `floor(p^2 / 2)` patch pixels are 1, so the
//! filter is a popcount followed by one comparison per pixel — the cost
//! model of Eq. 1.
//!
//! # Word-parallel implementation
//!
//! The paper's default `p = 3` runs 64 pixels at a time over the
//! row-aligned [`BinaryImage`] layout: for each row word the three
//! horizontal neighbour bits are summed with a carry-save adder
//! (`ones`/`twos` bit-planes), the three vertical 2-bit partial sums are
//! summed the same way into four bit-planes (`1/2/4/8`), and the
//! majority test `count > 4` becomes one boolean expression over those
//! planes. Other odd patch sizes fall back to a sliding column-count
//! scan (per-column vertical sums updated incrementally, horizontal
//! window slid across each row). Both paths are bit-exact against
//! [`crate::reference::median_into`], including the zero-padding at
//! borders, and both charge the *logical* per-pixel op counts of Eq. 1 —
//! the physical layout never changes the paper's accounting.

use ebbiot_events::OpsCounter;

use crate::BinaryImage;

/// Binary median filter with odd patch size `p` (the paper uses `p = 3`).
#[derive(Debug, Clone)]
pub struct MedianFilter {
    patch: u16,
    ops: OpsCounter,
    scratch: Scratch,
}

/// Reused per-filter scratch buffers, lazily sized to the input geometry
/// so the streaming front-end's "no per-frame frame-sized allocations"
/// contract holds through the word-parallel kernel.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Three (ones, twos) horizontal bit-plane pairs for rows
    /// `y - 1`, `y`, `y + 1` of the 3x3 kernel.
    prev: (Vec<u64>, Vec<u64>),
    cur: (Vec<u64>, Vec<u64>),
    next: (Vec<u64>, Vec<u64>),
    /// Per-column vertical window counts of the generic fallback.
    col: Vec<u32>,
}

impl Scratch {
    /// Zeroes and (re)sizes the bit planes for `wpr` words per row.
    fn reset_planes(&mut self, wpr: usize) {
        for plane in [
            &mut self.prev.0,
            &mut self.prev.1,
            &mut self.cur.0,
            &mut self.cur.1,
            &mut self.next.0,
            &mut self.next.1,
        ] {
            plane.clear();
            plane.resize(wpr, 0);
        }
    }
}

/// Writes the horizontal 3-neighbour sums of row `y` as 2-bit planes
/// (`ones`, `twos`); rows outside the image are all-zero (zero padding).
fn horizontal_planes(input: &BinaryImage, y: u32, ones: &mut [u64], twos: &mut [u64]) {
    if y >= u32::from(input.height()) {
        ones.fill(0);
        twos.fill(0);
        return;
    }
    let row = input.row_words(y as u16);
    let wpr = row.len();
    for i in 0..wpr {
        let c = row[i];
        let l = (c << 1) | if i > 0 { row[i - 1] >> 63 } else { 0 };
        let r = (c >> 1) | if i + 1 < wpr { row[i + 1] << 63 } else { 0 };
        ones[i] = l ^ c ^ r;
        twos[i] = (l & c) | (r & (l ^ c));
    }
}

impl MedianFilter {
    /// Creates a filter with the given odd patch size.
    ///
    /// # Panics
    ///
    /// Panics when `patch` is zero ("must be at least 1") or even
    /// ("must be odd").
    #[must_use]
    pub fn new(patch: u16) -> Self {
        assert!(patch >= 1, "median patch size must be at least 1");
        assert!(patch % 2 == 1, "median patch size must be odd");
        Self { patch, ops: OpsCounter::new(), scratch: Scratch::default() }
    }

    /// The paper's default `p = 3` filter.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(3)
    }

    /// Patch size `p`.
    #[must_use]
    pub const fn patch(&self) -> u16 {
        self.patch
    }

    /// Majority threshold `floor(p^2 / 2)`: output is 1 when the patch
    /// count exceeds it.
    #[must_use]
    pub const fn majority(&self) -> u32 {
        (self.patch as u32 * self.patch as u32) / 2
    }

    /// Applies the filter, returning the filtered image. Borders use
    /// zero padding (outside pixels count as 0).
    ///
    /// Op accounting follows Eq. 1: for each output pixel, one increment
    /// per active patch pixel ("incrementing a counter every time a 1 is
    /// encountered") plus one comparison against the majority threshold,
    /// plus one memory write per set output pixel. The word-parallel
    /// kernel executes far fewer machine instructions but charges exactly
    /// these logical counts.
    #[must_use]
    pub fn apply(&mut self, input: &BinaryImage) -> BinaryImage {
        let mut out = BinaryImage::new(input.geometry());
        self.apply_into(input, &mut out);
        out
    }

    /// Applies the filter into a caller-owned output frame — the
    /// allocation-free variant of [`Self::apply`] used by the streaming
    /// front-end (`out` is a reused scratch buffer, cleared first).
    ///
    /// # Panics
    ///
    /// Panics when `out` has a different geometry.
    pub fn apply_into(&mut self, input: &BinaryImage, out: &mut BinaryImage) {
        assert_eq!(input.geometry(), out.geometry(), "geometry mismatch in apply_into");
        out.clear();
        self.ops.compare(input.geometry().num_pixels() as u64);
        if self.patch == 3 {
            self.apply3_words(input, out);
        } else {
            self.apply_sliding(input, out);
        }
    }

    /// Bit-sliced carry-save 3x3 kernel: 64 patch counts per word triple.
    fn apply3_words(&mut self, input: &BinaryImage, out: &mut BinaryImage) {
        let wpr = input.words_per_row();
        let height = input.height();
        let tail = input.tail_mask();

        // Reused (ones, twos) plane pairs; `prev` starts zeroed = the
        // zero-padding row above the image.
        let scr = &mut self.scratch;
        scr.reset_planes(wpr);
        horizontal_planes(input, 0, &mut scr.cur.0, &mut scr.cur.1);
        horizontal_planes(input, 1, &mut scr.next.0, &mut scr.next.1);

        let mut additions = 0u64;
        let mut writes = 0u64;
        for y in 0..height {
            let out_row = out.row_words_mut(y);
            for (i, slot) in out_row.iter_mut().enumerate() {
                // Vertical sum of three 2-bit horizontal counts into
                // bit-planes of weight 1/2/4/8 (patch count 0..=9).
                let (oa, ta) = (scr.prev.0[i], scr.prev.1[i]);
                let (om, tm) = (scr.cur.0[i], scr.cur.1[i]);
                let (ob, tb) = (scr.next.0[i], scr.next.1[i]);
                let bit0 = oa ^ om ^ ob;
                let c0 = (oa & om) | (ob & (oa ^ om));
                let s1 = ta ^ tm ^ tb;
                let c1 = (ta & tm) | (tb & (ta ^ tm));
                let bit1 = s1 ^ c0;
                let c2 = s1 & c0;
                let bit2 = c1 ^ c2;
                let bit3 = c1 & c2;
                let mask = if i == wpr - 1 { tail } else { !0 };
                // count > 4 <=> 8-plane set, or 4-plane set with a 1 or 2.
                let out_word = (bit3 | (bit2 & (bit1 | bit0))) & mask;
                additions += u64::from((bit0 & mask).count_ones())
                    + 2 * u64::from((bit1 & mask).count_ones())
                    + 4 * u64::from((bit2 & mask).count_ones())
                    + 8 * u64::from((bit3 & mask).count_ones());
                writes += u64::from(out_word.count_ones());
                *slot = out_word;
            }
            // Rotate the row windows; fetch row y + 2.
            core::mem::swap(&mut scr.prev, &mut scr.cur);
            core::mem::swap(&mut scr.cur, &mut scr.next);
            horizontal_planes(input, u32::from(y) + 2, &mut scr.next.0, &mut scr.next.1);
        }
        self.ops.add(additions);
        self.ops.write(writes);
    }

    /// Generic odd-`p` fallback: per-column counts of the vertical window
    /// are maintained incrementally row to row, and a horizontal window
    /// of those counts is slid across each row.
    fn apply_sliding(&mut self, input: &BinaryImage, out: &mut BinaryImage) {
        let width = input.width();
        let height = input.height();
        let half = self.patch / 2;
        let majority = self.majority();
        let col = &mut self.scratch.col;
        col.clear();
        col.resize(width as usize, 0);
        // Prime the column counts for the window centred on row 0.
        for y in 0..=half.min(height - 1) {
            for x in input.set_pixels_in_row(y) {
                col[x as usize] += 1;
            }
        }
        for y in 0..height {
            // Horizontal window [x - half, x + half] clipped, slid along.
            let mut acc: u32 = col[..((half as usize) + 1).min(width as usize)].iter().sum();
            for x in 0..width {
                self.ops.add(u64::from(acc));
                if acc > majority {
                    out.set(x, y, true);
                    self.ops.write(1);
                }
                let leaving = i32::from(x) - i32::from(half);
                if leaving >= 0 {
                    acc -= col[leaving as usize];
                }
                let entering = u32::from(x) + u32::from(half) + 1;
                if entering < u32::from(width) {
                    acc += col[entering as usize];
                }
            }
            // Slide the vertical window: drop row y - half, add y + half + 1.
            if y >= half {
                for x in input.set_pixels_in_row(y - half) {
                    col[x as usize] -= 1;
                }
            }
            let incoming = u32::from(y) + u32::from(half) + 1;
            if incoming < u32::from(height) {
                for x in input.set_pixels_in_row(incoming as u16) {
                    col[x as usize] += 1;
                }
            }
        }
    }

    /// Runtime op counter.
    #[must_use]
    pub const fn ops(&self) -> &OpsCounter {
        &self.ops
    }

    /// Overwrites the op counter with a previously saved tally — the
    /// session-checkpoint restore path.
    pub fn restore_ops(&mut self, ops: OpsCounter) {
        self.ops = ops;
    }

    /// Resets the op counter.
    pub fn reset_ops(&mut self) {
        self.ops.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PixelBox;
    use ebbiot_events::SensorGeometry;

    fn image(w: u16, h: u16) -> BinaryImage {
        BinaryImage::new(SensorGeometry::new(w, h))
    }

    #[test]
    fn majority_threshold_for_p3_is_four() {
        assert_eq!(MedianFilter::paper_default().majority(), 4);
        assert_eq!(MedianFilter::new(5).majority(), 12);
    }

    #[test]
    fn isolated_pixel_is_removed() {
        let mut img = image(16, 16);
        img.set(8, 8, true);
        let out = MedianFilter::paper_default().apply(&img);
        assert_eq!(out.count_ones(), 0, "salt noise removed");
    }

    #[test]
    fn solid_block_interior_survives() {
        let mut img = image(16, 16);
        img.fill_box(&PixelBox::new(4, 4, 12, 12));
        let out = MedianFilter::paper_default().apply(&img);
        // Interior (9 neighbours all set, count 9 > 4) survives; corners of
        // the block have count 4, which is NOT > 4, so they are eroded.
        assert!(out.get(8, 8));
        assert!(out.get(5, 5));
        assert!(!out.get(4, 4), "block corner has exactly 4 neighbours set");
        // Edge midpoints have count 6 > 4 and survive.
        assert!(out.get(8, 4));
    }

    #[test]
    fn small_cluster_of_two_is_removed() {
        let mut img = image(16, 16);
        img.set(5, 5, true);
        img.set(6, 5, true);
        let out = MedianFilter::paper_default().apply(&img);
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    fn pepper_hole_in_solid_region_is_filled() {
        let mut img = image(16, 16);
        img.fill_box(&PixelBox::new(2, 2, 14, 14));
        img.set(8, 8, false); // pepper noise
        let out = MedianFilter::paper_default().apply(&img);
        assert!(out.get(8, 8), "hole filled by majority");
    }

    #[test]
    fn empty_image_stays_empty() {
        let img = image(8, 8);
        let out = MedianFilter::paper_default().apply(&img);
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    fn full_image_interior_stays_full() {
        let mut img = image(8, 8);
        img.fill_box(&PixelBox::new(0, 0, 8, 8));
        let out = MedianFilter::paper_default().apply(&img);
        // Only the 4 extreme corners have patch count 4 (not > 4) under
        // zero padding; everything else survives.
        assert_eq!(out.count_ones(), 64 - 4);
        assert!(!out.get(0, 0));
        assert!(out.get(1, 0));
    }

    #[test]
    fn word_boundary_neighbours_are_seen() {
        // A solid 3-wide vertical bar straddling the bit-63/64 boundary:
        // its centre column survives only if horizontal carries propagate
        // across words.
        let mut img = image(130, 8);
        img.fill_box(&PixelBox::new(63, 2, 66, 7));
        let out = MedianFilter::paper_default().apply(&img);
        assert!(out.get(64, 4), "centre of the bar survives");
        assert!(out.get(63, 4) && out.get(65, 4), "bar edges have count 6");
        assert!(!out.get(62, 4) && !out.get(66, 4), "outside the bar");
        assert!(out.tail_bits_zero());
    }

    #[test]
    fn ops_counting_matches_eq1_structure() {
        let mut img = image(10, 10);
        img.set(5, 5, true); // one active pixel contributes 9 patch hits
        let mut f = MedianFilter::paper_default();
        let _ = f.apply(&img);
        // One comparison per pixel.
        assert_eq!(f.ops().comparisons, 100);
        // The single set pixel is seen by the 9 patches covering it.
        assert_eq!(f.ops().additions, 9);
        // No output pixels set -> no writes.
        assert_eq!(f.ops().mem_writes, 0);
    }

    #[test]
    fn reset_ops_clears_counter() {
        let mut f = MedianFilter::paper_default();
        let _ = f.apply(&image(4, 4));
        assert!(f.ops().total() > 0);
        f.reset_ops();
        assert_eq!(f.ops().total(), 0);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_patch_size_panics() {
        let _ = MedianFilter::new(4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_patch_size_panics_with_its_own_message() {
        let _ = MedianFilter::new(0);
    }

    #[test]
    fn p1_filter_is_identity() {
        let mut img = image(8, 8);
        img.set(2, 3, true);
        img.set(7, 7, true);
        let out = MedianFilter::new(1).apply(&img);
        assert_eq!(out, img);
    }

    #[test]
    fn p5_filter_requires_13_of_25() {
        let mut img = image(20, 20);
        img.fill_box(&PixelBox::new(5, 5, 15, 15));
        let out = MedianFilter::new(5).apply(&img);
        // Deep interior survives (25 of 25), the block corner has only
        // 9 of 25 and erodes.
        assert!(out.get(10, 10));
        assert!(!out.get(5, 5));
    }
}

//! Run-length coding of binary images — the IoVT transmission story.
//!
//! The paper's motivation (§I) is the Internet of Video Things: cameras
//! produce too much data to transmit, so edge nodes must reduce it. The
//! EBBIOT node has three things it could uplink, in decreasing size:
//! raw video frames, the (sparse, binary) EBBI, or just the tracker boxes.
//! This module provides the middle option — a simple row-wise run-length
//! codec for [`BinaryImage`] — plus the byte-accounting used by the
//! bandwidth examples and tests.
//!
//! Format: per image, `width u16 | height u16`, then for each row a `u16`
//! run count followed by alternating 0-run/1-run lengths (`u16` each,
//! starting with the 0-run, which may be zero). Sparse EBBIs compress to
//! a few percent of their bitmap size; the codec is lossless.

use ebbiot_events::SensorGeometry;

use crate::BinaryImage;

/// Errors from RLE decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RleError {
    /// Input ended before the declared content.
    Truncated,
    /// Run lengths of a row do not sum to the image width.
    BadRowLength {
        /// The offending row.
        row: u16,
    },
}

impl core::fmt::Display for RleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RleError::Truncated => write!(f, "input truncated"),
            RleError::BadRowLength { row } => write!(f, "row {row} runs do not sum to width"),
        }
    }
}

impl std::error::Error for RleError {}

/// Encodes a binary image as row-wise run lengths.
#[must_use]
pub fn encode(image: &BinaryImage) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&image.width().to_le_bytes());
    out.extend_from_slice(&image.height().to_le_bytes());
    for y in 0..image.height() {
        // Collect alternating runs, starting with zeros.
        let mut runs: Vec<u16> = Vec::new();
        let mut current_value = false;
        let mut current_len = 0u16;
        for x in 0..image.width() {
            let v = image.get(x, y);
            if v == current_value {
                current_len += 1;
            } else {
                runs.push(current_len);
                current_value = v;
                current_len = 1;
            }
        }
        runs.push(current_len);
        out.extend_from_slice(&(runs.len() as u16).to_le_bytes());
        for r in runs {
            out.extend_from_slice(&r.to_le_bytes());
        }
    }
    out
}

/// Decodes an RLE-coded binary image.
///
/// # Errors
///
/// Returns an [`RleError`] on truncated input or inconsistent run sums.
pub fn decode(bytes: &[u8]) -> Result<BinaryImage, RleError> {
    let mut cursor = 0usize;
    let mut read_u16 = |bytes: &[u8]| -> Result<u16, RleError> {
        let Some(slice) = bytes.get(cursor..cursor + 2) else {
            return Err(RleError::Truncated);
        };
        cursor += 2;
        Ok(u16::from_le_bytes(slice.try_into().expect("len 2")))
    };
    let width = read_u16(bytes)?;
    let height = read_u16(bytes)?;
    let mut image = BinaryImage::new(SensorGeometry::new(width.max(1), height.max(1)));
    for y in 0..height {
        let n_runs = read_u16(bytes)?;
        let mut x = 0u32;
        let mut value = false;
        for _ in 0..n_runs {
            let len = u32::from(read_u16(bytes)?);
            if value {
                for dx in 0..len {
                    let px = x + dx;
                    if px >= u32::from(width) {
                        return Err(RleError::BadRowLength { row: y });
                    }
                    image.set(px as u16, y, true);
                }
            }
            x += len;
            value = !value;
        }
        if x != u32::from(width) {
            return Err(RleError::BadRowLength { row: y });
        }
    }
    Ok(image)
}

/// Per-frame uplink sizes in bytes for the three IoVT payload options the
/// paper's introduction weighs against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UplinkBudget {
    /// 8-bit grayscale video frame (`A * B` bytes).
    pub raw_video: usize,
    /// Raw EBBI bitmap (`A * B / 8` bytes).
    pub ebbi_bitmap: usize,
    /// RLE-coded EBBI (varies with scene activity).
    pub ebbi_rle: usize,
    /// Tracker boxes only (id + 4 coordinates + velocity, 16 B per track).
    pub track_boxes: usize,
}

/// Computes the uplink budget for one frame.
#[must_use]
pub fn uplink_budget(image: &BinaryImage, num_tracks: usize) -> UplinkBudget {
    let pixels = image.geometry().num_pixels();
    UplinkBudget {
        raw_video: pixels,
        ebbi_bitmap: pixels.div_ceil(8),
        ebbi_rle: encode(image).len(),
        track_boxes: num_tracks * 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PixelBox;

    fn image(w: u16, h: u16) -> BinaryImage {
        BinaryImage::new(SensorGeometry::new(w, h))
    }

    #[test]
    fn empty_image_round_trips() {
        let img = image(64, 48);
        let decoded = decode(&encode(&img)).unwrap();
        assert_eq!(decoded, img);
    }

    #[test]
    fn full_image_round_trips() {
        let mut img = image(16, 8);
        img.fill_box(&PixelBox::new(0, 0, 16, 8));
        assert_eq!(decode(&encode(&img)).unwrap(), img);
    }

    #[test]
    fn sparse_scene_round_trips() {
        let mut img = image(240, 180);
        img.fill_box(&PixelBox::new(60, 90, 100, 108));
        img.set(0, 0, true);
        img.set(239, 179, true);
        assert_eq!(decode(&encode(&img)).unwrap(), img);
    }

    #[test]
    fn alternating_pattern_round_trips() {
        let mut img = image(31, 7);
        for y in 0..7 {
            for x in 0..31 {
                if (x + y) % 2 == 0 {
                    img.set(x, y, true);
                }
            }
        }
        assert_eq!(decode(&encode(&img)).unwrap(), img);
    }

    #[test]
    fn sparse_image_compresses_well() {
        let mut img = image(240, 180);
        img.fill_box(&PixelBox::new(60, 90, 102, 108)); // one car silhouette
        let rle = encode(&img);
        let bitmap = 240 * 180 / 8;
        assert!(
            rle.len() < bitmap / 4,
            "sparse EBBI should compress at least 4x: {} vs {bitmap}",
            rle.len()
        );
    }

    #[test]
    fn worst_case_is_bounded() {
        // Checkerboard: the worst input. 2 bytes per pixel run + row
        // overhead; still decodes correctly (size then exceeds bitmap —
        // a transmitter would fall back to the bitmap).
        let mut img = image(32, 4);
        for y in 0..4 {
            for x in 0..32 {
                if (x + y) % 2 == 0 {
                    img.set(x, y, true);
                }
            }
        }
        let rle = encode(&img);
        assert!(rle.len() <= 4 + 4 * (2 + 33 * 2));
        assert_eq!(decode(&rle).unwrap(), img);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut img = image(16, 8);
        img.set(4, 4, true);
        let mut bytes = encode(&img);
        bytes.truncate(bytes.len() - 1);
        assert_eq!(decode(&bytes), Err(RleError::Truncated));
        assert_eq!(decode(&[1, 0]), Err(RleError::Truncated));
    }

    #[test]
    fn corrupted_run_sum_is_rejected() {
        let mut img = image(16, 2);
        img.set(3, 0, true);
        let mut bytes = encode(&img);
        // Patch the first run length (bytes 4..6 are the run count of row
        // 0; 6..8 the first run) to break the sum.
        bytes[6] = bytes[6].wrapping_add(1);
        assert!(matches!(decode(&bytes), Err(RleError::BadRowLength { row: 0 })));
    }

    #[test]
    fn uplink_budget_ordering() {
        let mut img = image(240, 180);
        img.fill_box(&PixelBox::new(60, 90, 102, 108));
        let b = uplink_budget(&img, 2);
        assert_eq!(b.raw_video, 43_200);
        assert_eq!(b.ebbi_bitmap, 5_400);
        assert!(b.ebbi_rle < b.ebbi_bitmap);
        assert_eq!(b.track_boxes, 32);
        assert!(b.track_boxes < b.ebbi_rle, "boxes are the cheapest uplink");
    }
}

//! Property-based tests for the baseline trackers.

use ebbiot_baselines::{EbmsConfig, EbmsTracker, KalmanConfig, KalmanTracker};
use ebbiot_events::{Event, SensorGeometry};
use ebbiot_frame::BoundingBox;
use proptest::prelude::*;

const W: u16 = 240;
const H: u16 = 180;

fn geometry() -> SensorGeometry {
    SensorGeometry::new(W, H)
}

fn arb_proposals() -> impl Strategy<Value = Vec<BoundingBox>> {
    proptest::collection::vec((0.0f32..200.0, 0.0f32..150.0, 8.0f32..60.0, 6.0f32..25.0), 0..6)
        .prop_map(|specs| {
            specs.into_iter().map(|(x, y, w, h)| BoundingBox::new(x, y, w, h)).collect()
        })
}

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((0u64..500_000, 0..W, 0..H), 0..400).prop_map(|specs| {
        let mut events: Vec<Event> =
            specs.into_iter().map(|(t, x, y)| Event::on(x, y, t)).collect();
        events.sort_unstable();
        events
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kalman_tracks_stay_bounded_and_finite(
        frames in proptest::collection::vec(arb_proposals(), 1..12)
    ) {
        let mut tracker = KalmanTracker::new(geometry(), KalmanConfig::paper_default());
        for proposals in &frames {
            for out in tracker.step(proposals) {
                prop_assert!(out.bbox.x >= 0.0 && out.bbox.y >= 0.0);
                prop_assert!(out.bbox.x_max() <= f32::from(W) + 1e-3);
                prop_assert!(out.bbox.y_max() <= f32::from(H) + 1e-3);
                prop_assert!(out.velocity.0.is_finite() && out.velocity.1.is_finite());
            }
            prop_assert!(tracker.active_count() <= 8);
        }
    }

    #[test]
    fn kalman_is_deterministic(frames in proptest::collection::vec(arb_proposals(), 1..8)) {
        let run = || {
            let mut t = KalmanTracker::new(geometry(), KalmanConfig::paper_default());
            frames.iter().map(|p| t.step(p)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn kalman_pool_drains_without_measurements(proposals in arb_proposals()) {
        let mut tracker = KalmanTracker::new(geometry(), KalmanConfig::paper_default());
        let _ = tracker.step(&proposals);
        for _ in 0..30 {
            let _ = tracker.step(&[]);
        }
        // Tracks die from the miss budget or by predicting off-frame.
        prop_assert_eq!(tracker.active_count(), 0);
    }

    #[test]
    fn ebms_cluster_count_is_bounded(events in arb_events()) {
        let mut tracker = EbmsTracker::new(geometry(), EbmsConfig::paper_default());
        for e in &events {
            tracker.process_event(e);
            prop_assert!(tracker.active_count() <= 8);
        }
    }

    #[test]
    fn ebms_visible_boxes_are_inside_frame(events in arb_events()) {
        let mut tracker = EbmsTracker::new(geometry(), EbmsConfig::paper_default());
        for e in &events {
            tracker.process_event(e);
        }
        tracker.maintain(500_000);
        for out in tracker.visible() {
            prop_assert!(out.bbox.x >= 0.0 && out.bbox.y >= 0.0);
            prop_assert!(out.bbox.x_max() <= f32::from(W) + 1e-3);
            prop_assert!(out.bbox.y_max() <= f32::from(H) + 1e-3);
        }
    }

    #[test]
    fn ebms_maintain_is_idempotent_in_quiet_periods(events in arb_events()) {
        let mut a = EbmsTracker::new(geometry(), EbmsConfig::paper_default());
        let mut b = EbmsTracker::new(geometry(), EbmsConfig::paper_default());
        for e in &events {
            a.process_event(e);
            b.process_event(e);
        }
        a.maintain(600_000);
        b.maintain(600_000);
        b.maintain(600_000); // double maintain must change nothing
        prop_assert_eq!(a.visible(), b.visible());
        prop_assert_eq!(a.active_count(), b.active_count());
    }

    #[test]
    fn ebms_total_starvation_clears_all_clusters(events in arb_events()) {
        let mut tracker = EbmsTracker::new(geometry(), EbmsConfig::paper_default());
        for e in &events {
            tracker.process_event(e);
        }
        tracker.maintain(u64::MAX / 2);
        prop_assert_eq!(tracker.active_count(), 0);
    }
}

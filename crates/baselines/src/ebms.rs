//! Event-based mean shift (EBMS) cluster tracker — Delbrück & Lang 2013.
//!
//! The fully event-based baseline of §II-C. Clusters live in continuous
//! image coordinates; every incoming event is assigned to the nearest
//! cluster whose catchment rectangle contains it, pulling the cluster
//! centre toward the event (the mean-shift step). Events with no catching
//! cluster seed a new one. Clusters decay when starved, merge when they
//! overlap (the paper's `gamma_merge ≈ 0.1` per frame), and estimate
//! velocity by least-squares regression over their last 10 recorded
//! positions — exactly the bookkeeping Eq. 8 charges for:
//!
//! ```text
//! C_EBMS = N_F [ 9 CL/2 + (169 + 16 gamma_merge) CL + 11 ]
//! M_EBMS = 408 CL_max + 56    [bits]
//! ```

use ebbiot_events::{Event, OpsCounter, SensorGeometry, Timestamp};
use ebbiot_frame::BoundingBox;

/// EBMS configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EbmsConfig {
    /// Maximum simultaneous clusters (paper: `CL_max = 8`).
    pub max_clusters: usize,
    /// Cluster catchment half-width in x (pixels).
    pub radius_x: f32,
    /// Cluster catchment half-height in y (pixels).
    pub radius_y: f32,
    /// Mean-shift mixing factor: fraction of the centre-to-event distance
    /// the centre moves per assigned event.
    pub mixing: f32,
    /// A cluster is starved (and culled) after this many microseconds
    /// without events.
    pub lifetime_us: u64,
    /// Events needed before a cluster is *visible* (reported).
    pub support_events: u32,
    /// Number of past positions used for least-squares velocity
    /// estimation (paper: 10).
    pub history: usize,
    /// Minimum time between recorded history positions (microseconds).
    pub history_stride_us: u64,
}

impl EbmsConfig {
    /// The paper's configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            max_clusters: 8,
            radius_x: 18.0,
            radius_y: 11.0,
            mixing: 0.05,
            lifetime_us: 120_000,
            support_events: 20,
            history: 10,
            history_stride_us: 10_000,
        }
    }
}

/// One mean-shift cluster.
#[derive(Debug, Clone)]
struct Cluster {
    id: u64,
    cx: f32,
    cy: f32,
    events: u32,
    last_event_t: Timestamp,
    /// Ring of (t, cx, cy) samples for velocity regression.
    positions: Vec<(Timestamp, f32, f32)>,
    last_history_t: Timestamp,
    vx: f32,
    vy: f32,
}

/// A reported (visible) cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct EbmsOutput {
    /// Stable cluster identity.
    pub id: u64,
    /// The cluster's catchment box (fixed extents — a structural
    /// limitation vs. EBBIOT's adaptive boxes).
    pub bbox: BoundingBox,
    /// Velocity estimate in pixels/second.
    pub velocity: (f32, f32),
}

/// The EBMS tracker.
#[derive(Debug, Clone)]
pub struct EbmsTracker {
    config: EbmsConfig,
    frame: BoundingBox,
    clusters: Vec<Cluster>,
    next_id: u64,
    ops: OpsCounter,
}

impl EbmsTracker {
    /// Creates the tracker.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity or non-positive radii.
    #[must_use]
    pub fn new(geometry: SensorGeometry, config: EbmsConfig) -> Self {
        assert!(config.max_clusters > 0, "cluster pool must be non-empty");
        assert!(config.radius_x > 0.0 && config.radius_y > 0.0, "radii must be positive");
        Self {
            config,
            frame: BoundingBox::new(
                0.0,
                0.0,
                f32::from(geometry.width()),
                f32::from(geometry.height()),
            ),
            clusters: Vec::new(),
            next_id: 1,
            ops: OpsCounter::new(),
        }
    }

    /// Live cluster count (the paper's `CL`).
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.clusters.len()
    }

    /// Runtime op counter.
    #[must_use]
    pub const fn ops(&self) -> &OpsCounter {
        &self.ops
    }

    /// Resets the op counter.
    pub fn reset_ops(&mut self) {
        self.ops.reset();
    }

    /// Clears all clusters.
    pub fn reset(&mut self) {
        self.clusters.clear();
        self.next_id = 1;
    }

    /// Processes one (already noise-filtered) event.
    pub fn process_event(&mut self, event: &Event) {
        let ex = f32::from(event.x) + 0.5;
        let ey = f32::from(event.y) + 0.5;

        // Find the nearest catching cluster.
        let mut best: Option<(f32, usize)> = None;
        for (i, c) in self.clusters.iter().enumerate() {
            self.ops.compare(4);
            self.ops.add(2);
            let dx = (ex - c.cx).abs();
            let dy = (ey - c.cy).abs();
            if dx <= self.config.radius_x && dy <= self.config.radius_y {
                let d = dx * dx + dy * dy;
                self.ops.multiply(2);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, i));
                }
            }
        }

        match best {
            Some((_, i)) => {
                let mix = self.config.mixing;
                let stride = self.config.history_stride_us;
                let hist_len = self.config.history;
                let c = &mut self.clusters[i];
                c.cx += mix * (ex - c.cx);
                c.cy += mix * (ey - c.cy);
                c.events += 1;
                c.last_event_t = event.t;
                self.ops.multiply(2);
                self.ops.add(4);
                self.ops.write(2);
                if event.t.saturating_sub(c.last_history_t) >= stride || c.positions.is_empty() {
                    if c.positions.len() == hist_len {
                        c.positions.remove(0);
                    }
                    c.positions.push((event.t, c.cx, c.cy));
                    c.last_history_t = event.t;
                    self.ops.write(3);
                    let (vx, vy) = regress_velocity(&c.positions, &mut self.ops);
                    c.vx = vx;
                    c.vy = vy;
                }
            }
            None => {
                self.ops.compare(1);
                if self.clusters.len() < self.config.max_clusters {
                    self.clusters.push(Cluster {
                        id: self.next_id,
                        cx: ex,
                        cy: ey,
                        events: 1,
                        last_event_t: event.t,
                        positions: vec![(event.t, ex, ey)],
                        last_history_t: event.t,
                        vx: 0.0,
                        vy: 0.0,
                    });
                    self.next_id += 1;
                    self.ops.write(6);
                }
            }
        }
    }

    /// Periodic maintenance, run once per frame boundary: cull starved
    /// clusters and merge overlapping ones.
    pub fn maintain(&mut self, now: Timestamp) {
        // Cull starved clusters.
        let lifetime = self.config.lifetime_us;
        self.ops.compare(self.clusters.len() as u64);
        self.clusters.retain(|c| now.saturating_sub(c.last_event_t) <= lifetime);

        // Merge pairwise-overlapping clusters (keep the better-supported).
        let rx = self.config.radius_x;
        let ry = self.config.radius_y;
        let mut i = 0;
        while i < self.clusters.len() {
            let mut j = i + 1;
            while j < self.clusters.len() {
                self.ops.compare(4);
                let dx = (self.clusters[i].cx - self.clusters[j].cx).abs();
                let dy = (self.clusters[i].cy - self.clusters[j].cy).abs();
                if dx < rx && dy < ry {
                    // 16 ops of merge bookkeeping (Eq. 8's gamma_merge term).
                    self.ops.add(16);
                    // The better-supported cluster's state survives at slot
                    // i; slot j is freed either way.
                    let keep =
                        if self.clusters[i].events >= self.clusters[j].events { i } else { j };
                    let merged_events = self.clusters[i].events + self.clusters[j].events;
                    let kc = self.clusters[keep].clone();
                    self.clusters[i] = Cluster { events: merged_events, ..kc };
                    self.clusters.remove(j);
                    // After a merge restart the inner scan.
                    j = i + 1;
                    continue;
                }
                j += 1;
            }
            i += 1;
        }
    }

    /// Currently visible clusters.
    #[must_use]
    pub fn visible(&self) -> Vec<EbmsOutput> {
        self.clusters
            .iter()
            .filter(|c| c.events >= self.config.support_events)
            .map(|c| {
                let bbox = BoundingBox::new(
                    c.cx - self.config.radius_x,
                    c.cy - self.config.radius_y,
                    2.0 * self.config.radius_x,
                    2.0 * self.config.radius_y,
                )
                .clipped_to(self.frame.w, self.frame.h);
                EbmsOutput { id: c.id, bbox, velocity: (c.vx, c.vy) }
            })
            .filter(|o| !o.bbox.is_empty())
            .collect()
    }

    /// Memory footprint in bits per Eq. 8: `408 * CL_max + 56`.
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        408 * self.config.max_clusters as u64 + 56
    }

    /// Serializes the cluster pool with the session-checkpoint codec.
    /// The composite `nn-ebms` back-end embeds this blob in its own
    /// [`Tracker::save_state`](ebbiot_core::Tracker::save_state) payload.
    #[must_use]
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = ebbiot_core::StateWriter::new();
        w.put_ops(&self.ops);
        w.put_u64(self.next_id);
        w.put_u32(self.clusters.len() as u32);
        for c in &self.clusters {
            w.put_u64(c.id);
            w.put_f32(c.cx);
            w.put_f32(c.cy);
            w.put_u32(c.events);
            w.put_u64(c.last_event_t);
            w.put_u32(c.positions.len() as u32);
            for &(t, x, y) in &c.positions {
                w.put_u64(t);
                w.put_f32(x);
                w.put_f32(y);
            }
            w.put_u64(c.last_history_t);
            w.put_f32(c.vx);
            w.put_f32(c.vy);
        }
        w.finish()
    }

    /// Restores a pool serialized by [`Self::save_state`]. Parses fully
    /// before committing: on any error the tracker is untouched.
    ///
    /// # Errors
    ///
    /// [`ebbiot_core::StateError`] on truncated, trailing, or
    /// structurally impossible bytes (cluster or history counts above
    /// the configured capacities).
    pub fn load_state(&mut self, bytes: &[u8]) -> Result<(), ebbiot_core::StateError> {
        let mut r = ebbiot_core::StateReader::new(bytes);
        let ops = r.get_ops()?;
        let next_id = r.get_u64()?;
        let count = r.get_u32()? as usize;
        if count > self.config.max_clusters {
            return Err(ebbiot_core::StateError::Invalid("more clusters than the pool capacity"));
        }
        let mut clusters = Vec::new();
        for _ in 0..count {
            let id = r.get_u64()?;
            let cx = r.get_f32()?;
            let cy = r.get_f32()?;
            let events = r.get_u32()?;
            let last_event_t = r.get_u64()?;
            let n_positions = r.get_u32()? as usize;
            if n_positions > self.config.history {
                return Err(ebbiot_core::StateError::Invalid(
                    "more history positions than the configured window",
                ));
            }
            let mut positions = Vec::new();
            for _ in 0..n_positions {
                let t = r.get_u64()?;
                let x = r.get_f32()?;
                let y = r.get_f32()?;
                positions.push((t, x, y));
            }
            let last_history_t = r.get_u64()?;
            let vx = r.get_f32()?;
            let vy = r.get_f32()?;
            clusters.push(Cluster {
                id,
                cx,
                cy,
                events,
                last_event_t,
                positions,
                last_history_t,
                vx,
                vy,
            });
        }
        r.finish()?;
        self.ops = ops;
        self.next_id = next_id;
        self.clusters = clusters;
        Ok(())
    }
}

/// Least-squares linear regression of position on time, in pixels/second.
fn regress_velocity(positions: &[(Timestamp, f32, f32)], ops: &mut OpsCounter) -> (f32, f32) {
    let n = positions.len();
    if n < 2 {
        return (0.0, 0.0);
    }
    let t0 = positions[0].0;
    let mut st = 0.0f64;
    let mut stt = 0.0f64;
    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    let mut stx = 0.0f64;
    let mut sty = 0.0f64;
    for &(t, x, y) in positions {
        let ts = (t - t0) as f64 / 1e6;
        st += ts;
        stt += ts * ts;
        sx += f64::from(x);
        sy += f64::from(y);
        stx += ts * f64::from(x);
        sty += ts * f64::from(y);
        ops.add(6);
        ops.multiply(3);
    }
    let nf = n as f64;
    let denom = nf * stt - st * st;
    ops.multiply(4);
    ops.add(2);
    if denom.abs() < 1e-12 {
        return (0.0, 0.0);
    }
    let vx = (nf * stx - st * sx) / denom;
    let vy = (nf * sty - st * sy) / denom;
    (vx as f32, vy as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> EbmsTracker {
        EbmsTracker::new(SensorGeometry::davis240(), EbmsConfig::paper_default())
    }

    /// Feeds a burst of events around a centre.
    fn feed_blob(t: &mut EbmsTracker, cx: u16, cy: u16, t0: Timestamp, count: u32) {
        for k in 0..count {
            let dx = (k % 7) as i32 - 3;
            let dy = (k % 5) as i32 - 2;
            let x = (i32::from(cx) + dx).clamp(0, 239) as u16;
            let y = (i32::from(cy) + dy).clamp(0, 179) as u16;
            t.process_event(&Event::on(x, y, t0 + u64::from(k) * 50));
        }
    }

    #[test]
    fn first_event_seeds_invisible_cluster() {
        let mut t = tracker();
        t.process_event(&Event::on(100, 90, 0));
        assert_eq!(t.active_count(), 1);
        assert!(t.visible().is_empty(), "below support threshold");
    }

    #[test]
    fn supported_cluster_becomes_visible() {
        let mut t = tracker();
        feed_blob(&mut t, 100, 90, 0, 30);
        let vis = t.visible();
        assert_eq!(vis.len(), 1);
        let (cx, cy) = vis[0].bbox.center();
        assert!((cx - 100.5).abs() < 4.0, "centre x {cx}");
        assert!((cy - 90.5).abs() < 4.0);
    }

    #[test]
    fn cluster_follows_moving_blob() {
        let mut t = tracker();
        // Blob moving right at ~60 px/s: 3 px per 50 ms burst.
        for step in 0..20u32 {
            let cx = 60 + step * 3;
            feed_blob(&mut t, cx as u16, 90, u64::from(step) * 50_000, 25);
            t.maintain(u64::from(step + 1) * 50_000);
        }
        let vis = t.visible();
        assert_eq!(vis.len(), 1, "one cluster follows, got {}", vis.len());
        let (cx, _) = vis[0].bbox.center();
        assert!((cx - 117.5).abs() < 8.0, "tracking the blob at ~117, got {cx}");
        // Velocity regression sees ~60 px/s.
        assert!((vis[0].velocity.0 - 60.0).abs() < 20.0, "vx {}", vis[0].velocity.0);
    }

    #[test]
    fn starved_cluster_is_culled() {
        let mut t = tracker();
        feed_blob(&mut t, 100, 90, 0, 30);
        assert_eq!(t.active_count(), 1);
        t.maintain(1_000_000); // 1 s of silence >> 120 ms lifetime
        assert_eq!(t.active_count(), 0);
    }

    #[test]
    fn distant_events_seed_separate_clusters() {
        let mut t = tracker();
        feed_blob(&mut t, 50, 60, 0, 25);
        feed_blob(&mut t, 180, 120, 0, 25);
        assert_eq!(t.active_count(), 2);
        assert_eq!(t.visible().len(), 2);
    }

    #[test]
    fn overlapping_clusters_merge_on_maintenance() {
        let mut t = tracker();
        feed_blob(&mut t, 100, 90, 0, 25);
        feed_blob(&mut t, 126, 90, 0, 25); // 26 px apart: separate catchments
        assert_eq!(t.active_count(), 2);
        // Drift them together: feed between the two.
        for k in 0..60u32 {
            t.process_event(&Event::on(113, 90, 2_000 + u64::from(k) * 30));
        }
        t.maintain(5_000);
        assert_eq!(t.active_count(), 1, "overlapping clusters merged");
    }

    #[test]
    fn capacity_is_bounded() {
        let mut t = tracker();
        for k in 0..12u32 {
            let x = (10 + k * 19) as u16;
            t.process_event(&Event::on(x, (10 + (k % 4) * 40) as u16, u64::from(k)));
        }
        assert!(t.active_count() <= 8);
    }

    #[test]
    fn large_bus_fragments_into_multiple_clusters() {
        // An 85-px-long event silhouette exceeds the 36-px catchment: EBMS
        // fragments (the failure EBBIOT's coarse histograms avoid).
        let mut t = tracker();
        for k in 0..400u32 {
            let x = 60 + (k % 85) as u16;
            let y = 80 + (k % 30) as u16;
            t.process_event(&Event::on(x, y, u64::from(k) * 40));
        }
        t.maintain(16_000);
        assert!(t.active_count() >= 2, "bus split into {} clusters", t.active_count());
    }

    #[test]
    fn velocity_regression_on_synthetic_line() {
        let mut ops = OpsCounter::new();
        // x = 10 + 50 t, y = 5 - 20 t.
        let positions: Vec<(Timestamp, f32, f32)> = (0..10)
            .map(|k| {
                let t = k as f64 * 0.01;
                ((t * 1e6) as u64, (10.0 + 50.0 * t) as f32, (5.0 - 20.0 * t) as f32)
            })
            .collect();
        let (vx, vy) = regress_velocity(&positions, &mut ops);
        assert!((vx - 50.0).abs() < 1.0);
        assert!((vy + 20.0).abs() < 1.0);
    }

    #[test]
    fn velocity_of_single_point_is_zero() {
        let mut ops = OpsCounter::new();
        assert_eq!(regress_velocity(&[(0, 1.0, 2.0)], &mut ops), (0.0, 0.0));
    }

    #[test]
    fn memory_matches_eq8() {
        let t = tracker();
        assert_eq!(t.memory_bits(), 408 * 8 + 56);
        // = 3320 bits ≈ the paper's "3.32 kb" (the paper's kB figure
        // reads the bit total as kilobits).
    }

    #[test]
    fn ops_scale_with_cluster_count() {
        let mut t = tracker();
        feed_blob(&mut t, 50, 60, 0, 25);
        feed_blob(&mut t, 180, 120, 0, 25);
        t.reset_ops();
        t.process_event(&Event::on(50, 60, 10_000));
        let two_cluster_ops = t.ops().total();
        t.reset();
        t.reset_ops();
        t.process_event(&Event::on(50, 60, 0));
        let empty_ops = t.ops().total();
        assert!(two_cluster_ops > empty_ops, "{two_cluster_ops} vs {empty_ops}");
    }

    #[test]
    fn reset_clears_clusters() {
        let mut t = tracker();
        feed_blob(&mut t, 100, 90, 0, 30);
        t.reset();
        assert_eq!(t.active_count(), 0);
        assert!(t.visible().is_empty());
    }
}

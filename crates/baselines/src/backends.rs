//! Event-domain back-end: NN-filter + EBMS as one [`Tracker`].
//!
//! The fully event-based baseline of Figs. 4 and 5 does not consume
//! region proposals — it filters raw events through the
//! nearest-neighbour filter and feeds the survivors to the per-event
//! mean-shift tracker, sampling cluster state at frame boundaries.
//! [`NnEbmsTracker`] packages that as a [`Tracker`] back-end, so the
//! generic pipeline (which skips the frame front-end for
//! [`TrackerInput::Events`] back-ends) and the registry treat it exactly
//! like the proposal-driven trackers.

use ebbiot_core::{
    FrameInput, StateError, StateReader, StateWriter, TrackBox, Tracker, TrackerInput,
};
use ebbiot_events::{OpsCounter, SensorGeometry, Timestamp};
use ebbiot_filters::{EventFilter, NnFilter};

use crate::ebms::{EbmsConfig, EbmsTracker};

/// NN-filter + EBMS, packaged as an event-domain tracker back-end.
#[derive(Debug, Clone)]
pub struct NnEbmsTracker {
    filter: NnFilter,
    tracker: EbmsTracker,
    frames_processed: usize,
    events_seen: u64,
    events_kept: u64,
}

impl NnEbmsTracker {
    /// Builds the back-end with the paper's NN-filter configuration.
    #[must_use]
    pub fn new(geometry: SensorGeometry, ebms: EbmsConfig) -> Self {
        Self {
            filter: NnFilter::paper_default(geometry),
            tracker: EbmsTracker::new(geometry, ebms),
            frames_processed: 0,
            events_seen: 0,
            events_kept: 0,
        }
    }

    /// The EBMS tracker (introspection).
    #[must_use]
    pub const fn ebms(&self) -> &EbmsTracker {
        &self.tracker
    }

    /// The NN-filter (introspection).
    #[must_use]
    pub const fn nn_filter(&self) -> &NnFilter {
        &self.filter
    }

    /// Fraction of events the NN-filter kept (diagnostic; the paper's
    /// `N_F ≈ 650` per frame is the kept count).
    #[must_use]
    pub fn keep_fraction(&self) -> f64 {
        if self.events_seen == 0 {
            0.0
        } else {
            self.events_kept as f64 / self.events_seen as f64
        }
    }

    /// Mean kept (filtered) events per frame — the paper's `N_F`.
    #[must_use]
    pub fn filtered_events_per_frame(&self) -> f64 {
        if self.frames_processed == 0 {
            0.0
        } else {
            self.events_kept as f64 / self.frames_processed as f64
        }
    }
}

impl Tracker for NnEbmsTracker {
    fn name(&self) -> &'static str {
        "nn-ebms"
    }

    fn input(&self) -> TrackerInput {
        TrackerInput::Events
    }

    fn step(&mut self, frame: &FrameInput<'_>) -> Vec<TrackBox> {
        for event in frame.events {
            self.events_seen += 1;
            if self.filter.keep(event) {
                self.events_kept += 1;
                self.tracker.process_event(event);
            }
        }
        self.tracker.maintain(frame.t_end());
        self.frames_processed += 1;
        self.tracker
            .visible()
            .into_iter()
            .map(|o| TrackBox {
                track_id: o.id,
                bbox: o.bbox,
                // EBMS velocities are px/s; normalize to px/frame like
                // the other trackers.
                velocity: (
                    o.velocity.0 * frame.duration as f32 / 1e6,
                    o.velocity.1 * frame.duration as f32 / 1e6,
                ),
                occluded: false,
            })
            .collect()
    }

    fn active_count(&self) -> usize {
        self.tracker.active_count()
    }

    fn ops(&self) -> OpsCounter {
        let mut total = *self.filter.ops();
        total.absorb(self.tracker.ops());
        total
    }

    fn reset(&mut self) {
        self.filter.reset();
        self.tracker.reset();
        self.frames_processed = 0;
        self.events_seen = 0;
        self.events_kept = 0;
    }

    fn reset_ops(&mut self) {
        self.filter.reset_ops();
        self.tracker.reset_ops();
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_u64(self.frames_processed as u64);
        w.put_u64(self.events_seen);
        w.put_u64(self.events_kept);
        // NN-filter: ops plus the last-fire map, sparse-encoded (the map
        // is almost entirely the "never fired" sentinel between bursts).
        w.put_ops(self.filter.ops());
        let last_fire = self.filter.last_fire();
        w.put_u32(last_fire.len() as u32);
        let fired = last_fire.iter().filter(|&&t| t != Timestamp::MAX).count();
        w.put_u32(fired as u32);
        for (index, &t) in last_fire.iter().enumerate() {
            if t != Timestamp::MAX {
                w.put_u32(index as u32);
                w.put_u64(t);
            }
        }
        // EBMS cluster pool, as an embedded blob.
        w.put_bytes(&self.tracker.save_state());
        w.finish()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = StateReader::new(bytes);
        let frames_processed = usize::try_from(r.get_u64()?)
            .map_err(|_| StateError::Invalid("frame count exceeds the address space"))?;
        let events_seen = r.get_u64()?;
        let events_kept = r.get_u64()?;
        let filter_ops = r.get_ops()?;
        let total_pixels = r.get_u32()? as usize;
        if total_pixels != self.filter.last_fire().len() {
            return Err(StateError::Invalid("last-fire map sized for a different geometry"));
        }
        let fired = r.get_u32()? as usize;
        if fired > total_pixels {
            return Err(StateError::Invalid("more fired pixels than the array holds"));
        }
        let mut entries = Vec::new();
        for _ in 0..fired {
            let index = r.get_u32()? as usize;
            let t = r.get_u64()?;
            if index >= total_pixels {
                return Err(StateError::Invalid("last-fire index outside the pixel array"));
            }
            if t == Timestamp::MAX {
                return Err(StateError::Invalid("last-fire entry uses the never-fired sentinel"));
            }
            entries.push((index, t));
        }
        let ebms_blob = r.get_bytes()?;
        // Parse the embedded blob into a scratch tracker before touching
        // anything, so a bad EBMS section leaves the whole back-end as
        // it was.
        let mut ebms = self.tracker.clone();
        ebms.load_state(ebms_blob)?;
        r.finish()?;
        self.frames_processed = frames_processed;
        self.events_seen = events_seen;
        self.events_kept = events_kept;
        self.filter.reset();
        for (index, t) in entries {
            self.filter.set_last_fire(index, t);
        }
        self.filter.restore_ops(filter_ops);
        self.tracker = ebms;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_events::Event;

    fn backend() -> NnEbmsTracker {
        NnEbmsTracker::new(SensorGeometry::davis240(), EbmsConfig::paper_default())
    }

    fn frame_input<'a>(events: &'a [Event], index: usize) -> FrameInput<'a> {
        FrameInput {
            index,
            t_start: index as u64 * 66_000,
            duration: 66_000,
            events,
            proposals: &[],
        }
    }

    #[test]
    fn declares_event_input() {
        assert_eq!(backend().input(), TrackerInput::Events);
        assert_eq!(backend().name(), "nn-ebms");
    }

    #[test]
    fn isolated_noise_is_filtered_out() {
        let mut b = backend();
        let events: Vec<Event> = (0..50)
            .map(|k| Event::on((k * 4) % 240, (k * 7) % 180, u64::from(k) * 1_000))
            .collect();
        let tracks = b.step(&frame_input(&events, 0));
        assert!(tracks.is_empty());
        assert!(b.keep_fraction() < 0.2, "kept {}", b.keep_fraction());
    }

    #[test]
    fn reset_clears_statistics() {
        let mut b = backend();
        // A dense block: neighbouring pixels fire within the support
        // window, so the NN filter keeps most of it.
        let mut events = Vec::new();
        for dy in 0..10u16 {
            for dx in 0..10u16 {
                events.push(Event::on(50 + dx, 50 + dy, u64::from(dy * 10 + dx) * 20));
            }
        }
        let _ = b.step(&frame_input(&events, 0));
        assert!(b.keep_fraction() > 0.0);
        b.reset();
        assert_eq!(b.keep_fraction(), 0.0);
        assert_eq!(b.filtered_events_per_frame(), 0.0);
    }
}

//! Kalman-filter tracker baseline (§II-C, Eq. 7).
//!
//! "The implementation follows a constant velocity motion model, hence
//! contains a state vector of length 2 (Xcentroid, Ycentroid) for each
//! track." Per track the filter carries a 4-dimensional internal state
//! `[cx, cy, vx, vy]` (position + velocity for the CV model) and observes
//! the 2-dimensional centroid of an associated region proposal; the
//! paper's `n = m = 2 * NT` counts the stacked bank of `NT` such tracks.
//!
//! Association is greedy nearest-centroid with a distance gate, as in the
//! composite-vision tracker the paper cites. Box extents are exponentially
//! smoothed from matched proposals (the KF itself tracks only centroids,
//! which is one reason it trails EBBIOT's box-IoU scores in Fig. 4).

use ebbiot_events::{OpsCounter, SensorGeometry};
use ebbiot_frame::BoundingBox;
use ebbiot_linalg::{Matrix, Vector};

/// Kalman tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanConfig {
    /// Maximum simultaneous tracks (paper: `NT` up to 8, typical 2).
    pub max_tracks: usize,
    /// Association gate: maximum centroid distance in pixels.
    pub gate_px: f32,
    /// Process noise intensity (position/velocity diffusion per frame).
    pub process_noise: f64,
    /// Measurement noise variance (pixels^2) of proposal centroids.
    pub measurement_noise: f64,
    /// Smoothing factor for box extents (weight of the new measurement).
    pub size_blend: f32,
    /// Matches needed before a track is reported.
    pub confirm_hits: u32,
    /// Consecutive misses before a track is dropped.
    pub max_misses: u32,
}

impl KalmanConfig {
    /// Defaults matching the paper's comparison setup.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            max_tracks: 8,
            gate_px: 40.0,
            process_noise: 1.0,
            measurement_noise: 4.0,
            size_blend: 0.3,
            confirm_hits: 2,
            max_misses: 3,
        }
    }
}

/// One Kalman track.
#[derive(Debug, Clone)]
struct KfTrack {
    id: u64,
    /// State `[cx, cy, vx, vy]` in pixels and pixels/frame.
    x: Vector<4>,
    /// State covariance.
    p: Matrix<4, 4>,
    /// Smoothed box extents.
    w: f32,
    h: f32,
    hits: u32,
    misses: u32,
}

/// A reported Kalman track.
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanOutput {
    /// Stable track identity.
    pub id: u64,
    /// Box built from the filtered centroid and smoothed extents.
    pub bbox: BoundingBox,
    /// Velocity estimate in pixels/frame.
    pub velocity: (f32, f32),
}

/// The Kalman-filter multi-object tracker.
#[derive(Debug, Clone)]
pub struct KalmanTracker {
    config: KalmanConfig,
    frame: BoundingBox,
    tracks: Vec<KfTrack>,
    next_id: u64,
    ops: OpsCounter,
    // Constant model matrices.
    f: Matrix<4, 4>,
    q: Matrix<4, 4>,
    r: Matrix<2, 2>,
    h_mat: Matrix<2, 4>,
}

impl KalmanTracker {
    /// Creates the tracker.
    ///
    /// # Panics
    ///
    /// Panics on a zero-capacity pool.
    #[must_use]
    pub fn new(geometry: SensorGeometry, config: KalmanConfig) -> Self {
        assert!(config.max_tracks > 0, "track pool must be non-empty");
        let f = Matrix::from_rows([
            [1.0, 0.0, 1.0, 0.0],
            [0.0, 1.0, 0.0, 1.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]);
        let qn = config.process_noise;
        // Piecewise-constant white acceleration, dt = 1 frame.
        let q = Matrix::from_rows([
            [0.25 * qn, 0.0, 0.5 * qn, 0.0],
            [0.0, 0.25 * qn, 0.0, 0.5 * qn],
            [0.5 * qn, 0.0, qn, 0.0],
            [0.0, 0.5 * qn, 0.0, qn],
        ]);
        let r = Matrix::from_diagonal([config.measurement_noise, config.measurement_noise]);
        let h_mat = Matrix::from_rows([[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0]]);
        Self {
            config,
            frame: BoundingBox::new(
                0.0,
                0.0,
                f32::from(geometry.width()),
                f32::from(geometry.height()),
            ),
            tracks: Vec::new(),
            next_id: 1,
            ops: OpsCounter::new(),
            f,
            q,
            r,
            h_mat,
        }
    }

    /// Number of live tracks.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.tracks.len()
    }

    /// Runtime op counter. Charges follow the paper's Eq. 7 accounting:
    /// each track's predict + update cycle costs
    /// `4m^3 + 6m^2n + 4mn^2 + 4n^3 + 3n^2` with per-track `n = 4, m = 2`
    /// scaled to the bank semantics of the paper (NT tracks of 2 observed
    /// dims each -> ~600 ops/track, 1200 for NT = 2).
    #[must_use]
    pub const fn ops(&self) -> &OpsCounter {
        &self.ops
    }

    /// Resets the op counter.
    pub fn reset_ops(&mut self) {
        self.ops.reset();
    }

    /// Clears all tracks.
    pub fn reset(&mut self) {
        self.tracks.clear();
        self.next_id = 1;
    }

    /// Advances one frame with region proposals; returns confirmed tracks.
    pub fn step(&mut self, proposals: &[BoundingBox]) -> Vec<KalmanOutput> {
        // Predict every track.
        for t in &mut self.tracks {
            t.x = self.f * t.x;
            t.p = self.f * t.p * self.f.transpose() + self.q;
            t.p.symmetrize();
        }
        // Eq. 7-style op charge per track for the predict/update cycle.
        let per_track: u64 = 560;
        self.ops.multiply(per_track / 2 * self.tracks.len() as u64);
        self.ops.add(per_track / 2 * self.tracks.len() as u64);

        // Greedy nearest-centroid association within the gate.
        let mut pairs: Vec<(f32, usize, usize)> = Vec::new();
        for (i, t) in self.tracks.iter().enumerate() {
            for (j, p) in proposals.iter().enumerate() {
                let (px, py) = p.center();
                let dx = t.x[0] as f32 - px;
                let dy = t.x[1] as f32 - py;
                let d = (dx * dx + dy * dy).sqrt();
                self.ops.compare(1);
                self.ops.multiply(2);
                self.ops.add(2);
                if d <= self.config.gate_px {
                    pairs.push((d, i, j));
                }
            }
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
        let mut track_used = vec![false; self.tracks.len()];
        let mut prop_used = vec![false; proposals.len()];
        for (_, i, j) in pairs {
            if track_used[i] || prop_used[j] {
                continue;
            }
            track_used[i] = true;
            prop_used[j] = true;
            self.correct(i, &proposals[j]);
        }

        // Miss handling.
        for (i, t) in self.tracks.iter_mut().enumerate() {
            if !track_used[i] {
                t.misses += 1;
            }
        }
        let max_misses = self.config.max_misses;
        let frame = self.frame;
        self.tracks.retain(|t| {
            t.misses <= max_misses
                && t.x.is_finite()
                && frame.contains_point(t.x[0] as f32, t.x[1] as f32)
        });

        // Seed from unmatched proposals.
        for (j, p) in proposals.iter().enumerate() {
            if prop_used[j] || self.tracks.len() >= self.config.max_tracks {
                continue;
            }
            let (cx, cy) = p.center();
            self.tracks.push(KfTrack {
                id: self.next_id,
                x: Vector::from_column([f64::from(cx), f64::from(cy), 0.0, 0.0]),
                p: Matrix::from_diagonal([10.0, 10.0, 25.0, 25.0]),
                w: p.w,
                h: p.h,
                hits: 1,
                misses: 0,
            });
            self.ops.write(8);
            self.next_id += 1;
        }

        self.confirmed()
    }

    /// Kalman measurement update for track `i` against a proposal.
    fn correct(&mut self, i: usize, proposal: &BoundingBox) {
        let (cx, cy) = proposal.center();
        let z = Vector::from_column([f64::from(cx), f64::from(cy)]);
        let t = &mut self.tracks[i];
        // Innovation.
        let y = z - self.h_mat * t.x;
        // S = H P H^T + R (2x2, solved directly).
        let s = self.h_mat * t.p * self.h_mat.transpose() + self.r;
        let s_inv = s.inverse().expect("innovation covariance is SPD by construction");
        // K = P H^T S^-1 (4x2).
        let k = t.p * self.h_mat.transpose() * s_inv;
        t.x += k * y;
        // Joseph-free form: P = (I - K H) P, then symmetrize.
        t.p = (Matrix::<4, 4>::identity() - k * self.h_mat) * t.p;
        t.p.symmetrize();
        t.w += self.config.size_blend * (proposal.w - t.w);
        t.h += self.config.size_blend * (proposal.h - t.h);
        t.hits += 1;
        t.misses = 0;
    }

    /// Confirmed tracks as output boxes.
    #[must_use]
    pub fn confirmed(&self) -> Vec<KalmanOutput> {
        self.tracks
            .iter()
            .filter(|t| t.hits >= self.config.confirm_hits)
            .map(|t| {
                let bbox = BoundingBox::new(
                    (t.x[0] as f32 - t.w / 2.0).max(-t.w),
                    (t.x[1] as f32 - t.h / 2.0).max(-t.h),
                    t.w,
                    t.h,
                )
                .clipped_to(self.frame.w, self.frame.h);
                KalmanOutput { id: t.id, bbox, velocity: (t.x[2] as f32, t.x[3] as f32) }
            })
            .filter(|o| !o.bbox.is_empty())
            .collect()
    }

    /// Memory footprint in bits: per track, state (4) + covariance (16)
    /// stored as 32-bit fixed point, plus box extents — ≈ 1.1 kB for 8
    /// slots, matching the paper's `M_KF`.
    #[must_use]
    pub fn memory_bits(&self) -> u64 {
        let per_track_words = 4 + 16 + 2 + 2; // x, P, (w, h), bookkeeping
        (per_track_words * 32) * self.config.max_tracks as u64
    }
}

impl ebbiot_core::Tracker for KalmanTracker {
    fn name(&self) -> &'static str {
        "ebbi-kf"
    }

    fn step(&mut self, frame: &ebbiot_core::FrameInput<'_>) -> Vec<ebbiot_core::TrackBox> {
        KalmanTracker::step(self, frame.proposals)
            .into_iter()
            .map(|o| ebbiot_core::TrackBox {
                track_id: o.id,
                bbox: o.bbox,
                velocity: o.velocity,
                occluded: false,
            })
            .collect()
    }

    fn active_count(&self) -> usize {
        self.tracks.len()
    }

    fn ops(&self) -> OpsCounter {
        self.ops
    }

    fn reset(&mut self) {
        KalmanTracker::reset(self);
    }

    fn reset_ops(&mut self) {
        self.ops.reset();
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ebbiot_core::StateWriter::new();
        w.put_ops(&self.ops);
        w.put_u64(self.next_id);
        w.put_u32(self.tracks.len() as u32);
        for t in &self.tracks {
            w.put_u64(t.id);
            for i in 0..4 {
                w.put_f64(t.x[i]);
            }
            for r in 0..4 {
                for c in 0..4 {
                    w.put_f64(t.p[(r, c)]);
                }
            }
            w.put_f32(t.w);
            w.put_f32(t.h);
            w.put_u32(t.hits);
            w.put_u32(t.misses);
        }
        w.finish()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), ebbiot_core::StateError> {
        // The model matrices (f, q, r, h_mat) are functions of the config
        // and are not serialized — only the per-track filter state is.
        let mut r = ebbiot_core::StateReader::new(bytes);
        let ops = r.get_ops()?;
        let next_id = r.get_u64()?;
        let count = r.get_u32()? as usize;
        if count > self.config.max_tracks {
            return Err(ebbiot_core::StateError::Invalid("more tracks than the pool capacity"));
        }
        let mut tracks = Vec::new();
        for _ in 0..count {
            let id = r.get_u64()?;
            let mut x = Vector::<4>::zeros();
            for i in 0..4 {
                x[i] = r.get_f64()?;
            }
            let mut p = Matrix::<4, 4>::zeros();
            for row in 0..4 {
                for col in 0..4 {
                    p[(row, col)] = r.get_f64()?;
                }
            }
            let w = r.get_f32()?;
            let h = r.get_f32()?;
            let hits = r.get_u32()?;
            let misses = r.get_u32()?;
            tracks.push(KfTrack { id, x, p, w, h, hits, misses });
        }
        r.finish()?;
        self.ops = ops;
        self.next_id = next_id;
        self.tracks = tracks;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> KalmanTracker {
        KalmanTracker::new(SensorGeometry::davis240(), KalmanConfig::paper_default())
    }

    fn bb(x: f32, y: f32, w: f32, h: f32) -> BoundingBox {
        BoundingBox::new(x, y, w, h)
    }

    #[test]
    fn confirmation_then_tracking() {
        let mut t = tracker();
        assert!(t.step(&[bb(50.0, 80.0, 40.0, 18.0)]).is_empty());
        let out = t.step(&[bb(53.0, 80.0, 40.0, 18.0)]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn velocity_converges_to_constant_motion() {
        let mut t = tracker();
        let mut last = Vec::new();
        for k in 0..20 {
            last = t.step(&[bb(30.0 + 4.0 * k as f32, 80.0, 40.0, 18.0)]);
        }
        assert_eq!(last.len(), 1);
        assert!((last[0].velocity.0 - 4.0).abs() < 0.5, "vx {}", last[0].velocity.0);
        assert!(last[0].velocity.1.abs() < 0.3);
        // Filtered centroid near the true one.
        let (cx, _) = last[0].bbox.center();
        let truth = 30.0 + 4.0 * 19.0 + 20.0;
        assert!((cx - truth).abs() < 3.0, "cx {cx} vs {truth}");
    }

    #[test]
    fn coasting_prediction_during_dropout() {
        let mut t = tracker();
        for k in 0..10 {
            let _ = t.step(&[bb(30.0 + 4.0 * k as f32, 80.0, 40.0, 18.0)]);
        }
        let before = t.step(&[]);
        let after = t.step(&[]);
        assert_eq!(after.len(), 1);
        assert!(
            after[0].bbox.center().0 > before[0].bbox.center().0 + 2.0,
            "prediction keeps moving"
        );
    }

    #[test]
    fn track_dropped_after_miss_budget() {
        let mut t = tracker();
        let _ = t.step(&[bb(100.0, 80.0, 40.0, 18.0)]);
        let _ = t.step(&[bb(102.0, 80.0, 40.0, 18.0)]);
        for _ in 0..4 {
            let _ = t.step(&[]);
        }
        assert_eq!(t.active_count(), 0);
    }

    #[test]
    fn association_respects_gate() {
        let mut t = tracker();
        let _ = t.step(&[bb(50.0, 80.0, 40.0, 18.0)]);
        // A proposal 100 px away: outside the 40 px gate, seeds a second
        // track instead of teleporting the first.
        let _ = t.step(&[bb(170.0, 80.0, 40.0, 18.0)]);
        assert_eq!(t.active_count(), 2);
    }

    #[test]
    fn greedy_association_picks_nearest() {
        let mut t = tracker();
        let _ = t.step(&[bb(50.0, 60.0, 30.0, 16.0), bb(150.0, 120.0, 30.0, 16.0)]);
        let out = t.step(&[bb(52.0, 60.0, 30.0, 16.0), bb(148.0, 120.0, 30.0, 16.0)]);
        assert_eq!(out.len(), 2);
        // Identities follow the geometry: the left track stays left.
        let left = out.iter().min_by(|a, b| a.bbox.x.partial_cmp(&b.bbox.x).unwrap()).unwrap();
        assert_eq!(left.id, 1);
    }

    #[test]
    fn capacity_bounded() {
        let cfg = KalmanConfig { max_tracks: 3, ..KalmanConfig::paper_default() };
        let mut t = KalmanTracker::new(SensorGeometry::davis240(), cfg);
        let props: Vec<_> = (0..6).map(|k| bb(10.0 + 35.0 * k as f32, 80.0, 20.0, 12.0)).collect();
        let _ = t.step(&props);
        assert_eq!(t.active_count(), 3);
    }

    #[test]
    fn box_size_smooths_toward_measurements() {
        let mut t = tracker();
        let _ = t.step(&[bb(100.0, 80.0, 20.0, 10.0)]);
        for _ in 0..15 {
            let _ = t.step(&[bb(100.0, 80.0, 40.0, 20.0)]);
        }
        let out = t.confirmed();
        assert!((out[0].bbox.w - 40.0).abs() < 2.0, "w {}", out[0].bbox.w);
    }

    #[test]
    fn covariance_stays_spd_through_long_runs() {
        let mut t = tracker();
        for k in 0..200 {
            let _ = t.step(&[bb(30.0 + (k % 50) as f32, 80.0, 40.0, 18.0)]);
        }
        for track in &t.tracks {
            assert!(ebbiot_linalg::cholesky::is_spd(&track.p, 1e-6));
        }
    }

    #[test]
    fn ops_match_eq7_magnitude_for_two_tracks() {
        let mut t = tracker();
        let _ = t.step(&[bb(40.0, 60.0, 30.0, 16.0), bb(160.0, 120.0, 30.0, 16.0)]);
        t.reset_ops();
        let _ = t.step(&[bb(43.0, 60.0, 30.0, 16.0), bb(157.0, 120.0, 30.0, 16.0)]);
        let total = t.ops().total();
        // Paper: C_KF = 1200 for NT = 2.
        assert!((800..2_000).contains(&total), "ops {total}");
    }

    #[test]
    fn memory_matches_paper_order() {
        let t = tracker();
        // ~1.1 kB claimed; our accounting gives 768 B for 8 slots of
        // (state + covariance + extents), the same order.
        let bytes = t.memory_bits() / 8;
        assert!((512..2_048).contains(&bytes), "KF memory {bytes} B");
    }

    #[test]
    fn nan_states_are_culled() {
        let mut t = tracker();
        let _ = t.step(&[bb(50.0, 80.0, 40.0, 18.0)]);
        t.tracks[0].x[0] = f64::NAN;
        let _ = t.step(&[]);
        assert_eq!(t.active_count(), 0);
    }
}

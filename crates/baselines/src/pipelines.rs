//! Composed baseline pipelines — thin wrappers over the generic
//! [`Pipeline`], so the evaluator treats all trackers identically.
//!
//! Neither wrapper re-implements any front-end step: the EBBI → median →
//! RPN → ROE chain lives in [`ebbiot_core::FrontEnd`] only, and the
//! event-domain path lives in [`NnEbmsTracker`]. Both wrappers deref to
//! the underlying [`Pipeline`], so the full streaming API
//! ([`Pipeline::push`] / [`Pipeline::finish`]), op accounting and
//! statistics are available unchanged.

use core::ops::{Deref, DerefMut};

use ebbiot_core::{EbbiotConfig, Pipeline};
use ebbiot_events::Micros;
use ebbiot_filters::NnFilter;

use crate::{
    backends::NnEbmsTracker,
    ebms::{EbmsConfig, EbmsTracker},
    kalman::{KalmanConfig, KalmanTracker},
};

/// EBBI + median + RPN front-end with a Kalman-filter tracker back-end —
/// the "EBBI+KF" system of Figs. 4 and 5.
#[derive(Debug, Clone)]
pub struct EbbiKfPipeline {
    inner: Pipeline<KalmanTracker>,
}

impl EbbiKfPipeline {
    /// Builds the pipeline; the front-end configuration is shared with
    /// EBBIOT (same `EbbiotConfig`), only the tracker differs.
    #[must_use]
    pub fn new(config: EbbiotConfig, kf: KalmanConfig) -> Self {
        let tracker = KalmanTracker::new(config.geometry, kf);
        Self { inner: Pipeline::with_tracker(config, tracker) }
    }
}

impl Deref for EbbiKfPipeline {
    type Target = Pipeline<KalmanTracker>;

    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

impl DerefMut for EbbiKfPipeline {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.inner
    }
}

/// NN-filter + EBMS — the fully event-based baseline of Figs. 4 and 5.
///
/// The generic pipeline skips the frame front-end entirely for this
/// back-end (`TrackerInput::Events`), so it pays none of the EBBI,
/// median or RPN cost.
#[derive(Debug, Clone)]
pub struct NnEbmsPipeline {
    inner: Pipeline<NnEbmsTracker>,
}

impl NnEbmsPipeline {
    /// Builds the pipeline.
    #[must_use]
    pub fn new(
        geometry: ebbiot_events::SensorGeometry,
        frame_us: Micros,
        ebms: EbmsConfig,
    ) -> Self {
        let config = EbbiotConfig::paper_default(geometry).with_frame_us(frame_us);
        let tracker = NnEbmsTracker::new(geometry, ebms);
        Self { inner: Pipeline::with_tracker(config, tracker) }
    }

    /// Fraction of events the NN-filter kept (diagnostic; the paper's
    /// `N_F ≈ 650` per frame is the kept count).
    #[must_use]
    pub fn keep_fraction(&self) -> f64 {
        self.inner.tracker().keep_fraction()
    }

    /// Mean kept (filtered) events per frame — the paper's `N_F`.
    #[must_use]
    pub fn filtered_events_per_frame(&self) -> f64 {
        self.inner.tracker().filtered_events_per_frame()
    }

    /// The EBMS tracker (introspection).
    #[must_use]
    pub const fn tracker(&self) -> &EbmsTracker {
        self.inner.tracker().ebms()
    }

    /// The NN-filter (introspection).
    #[must_use]
    pub const fn filter(&self) -> &NnFilter {
        self.inner.tracker().nn_filter()
    }
}

impl Deref for NnEbmsPipeline {
    type Target = Pipeline<NnEbmsTracker>;

    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

impl DerefMut for NnEbmsPipeline {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_events::{Event, SensorGeometry};

    fn geometry() -> SensorGeometry {
        SensorGeometry::davis240()
    }

    /// A dense moving block across `frames` frames of 66 ms.
    fn moving_block_events(frames: usize) -> Vec<Event> {
        let mut events = Vec::new();
        for f in 0..frames {
            let x0 = 50 + f as u16 * 3;
            let t0 = f as u64 * 66_000;
            for dy in 0..15u16 {
                for dx in 0..30u16 {
                    events.push(Event::on(x0 + dx, 90 + dy, t0 + u64::from(dy * 30 + dx) * 20));
                }
            }
        }
        ebbiot_events::stream::sort_by_time(&mut events);
        events
    }

    #[test]
    fn kf_pipeline_tracks_moving_block() {
        let cfg = EbbiotConfig::paper_default(geometry());
        let mut p = EbbiKfPipeline::new(cfg, KalmanConfig::paper_default());
        let events = moving_block_events(6);
        let results = p.process_recording(&events, 6 * 66_000);
        assert_eq!(results.len(), 6);
        let last = results.last().unwrap();
        assert_eq!(last.tracks.len(), 1);
        let (cx, cy) = last.tracks[0].bbox.center();
        assert!((cx - 80.0).abs() < 10.0, "cx {cx}");
        assert!((cy - 97.5).abs() < 5.0, "cy {cy}");
    }

    #[test]
    fn ebms_pipeline_tracks_moving_block() {
        let mut p = NnEbmsPipeline::new(geometry(), 66_000, EbmsConfig::paper_default());
        let events = moving_block_events(6);
        let results = p.process_recording(&events, 6 * 66_000);
        let last = results.last().unwrap();
        assert!(!last.tracks.is_empty(), "EBMS found the object");
        // At least one cluster near the block.
        let near = last.tracks.iter().any(|t| {
            let (cx, cy) = t.bbox.center();
            (cx - 80.0).abs() < 25.0 && (cy - 97.5).abs() < 15.0
        });
        assert!(near);
    }

    #[test]
    fn nn_filter_removes_isolated_noise_before_ebms() {
        let mut p = NnEbmsPipeline::new(geometry(), 66_000, EbmsConfig::paper_default());
        // Sparse isolated events: nothing should pass the NN filter.
        let events: Vec<Event> = (0..50)
            .map(|k| Event::on((k * 4) % 240, (k * 7) % 180, u64::from(k) * 1_000))
            .collect();
        let results = p.process_recording(&events, 66_000);
        assert!(results[0].tracks.is_empty());
        assert!(p.keep_fraction() < 0.2, "kept {}", p.keep_fraction());
    }

    #[test]
    fn frame_results_align_across_pipelines() {
        let events = moving_block_events(3);
        let cfg = EbbiotConfig::paper_default(geometry());
        let mut kf = EbbiKfPipeline::new(cfg, KalmanConfig::paper_default());
        let mut ebms = NnEbmsPipeline::new(geometry(), 66_000, EbmsConfig::paper_default());
        let rk = kf.process_recording(&events, 3 * 66_000);
        let re = ebms.process_recording(&events, 3 * 66_000);
        assert_eq!(rk.len(), re.len());
        for (a, b) in rk.iter().zip(&re) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.t_start, b.t_start);
        }
    }

    #[test]
    fn filtered_events_per_frame_statistic() {
        let mut p = NnEbmsPipeline::new(geometry(), 66_000, EbmsConfig::paper_default());
        let events = moving_block_events(4);
        let _ = p.process_recording(&events, 4 * 66_000);
        // The dense block mostly passes the NN filter.
        assert!(p.filtered_events_per_frame() > 200.0);
        assert!(p.keep_fraction() > 0.6);
    }

    #[test]
    fn event_domain_pipeline_has_no_frontend() {
        let p = NnEbmsPipeline::new(geometry(), 66_000, EbmsConfig::paper_default());
        assert!(p.frontend().is_none(), "EBMS pays no frame front-end cost");
        let kf = EbbiKfPipeline::new(
            EbbiotConfig::paper_default(geometry()),
            KalmanConfig::paper_default(),
        );
        assert!(kf.frontend().is_some());
    }

    #[test]
    fn baseline_pipelines_stream_like_batch() {
        let events = moving_block_events(5);
        let span = 6 * 66_000;
        let mut batch = EbbiKfPipeline::new(
            EbbiotConfig::paper_default(geometry()),
            KalmanConfig::paper_default(),
        );
        let expected = batch.process_recording(&events, span);
        let mut streaming = EbbiKfPipeline::new(
            EbbiotConfig::paper_default(geometry()),
            KalmanConfig::paper_default(),
        );
        let mut got = Vec::new();
        for chunk in events.chunks(101) {
            got.extend(streaming.push(chunk));
        }
        got.extend(streaming.finish(span));
        assert_eq!(got, expected);
    }
}

//! Composed baseline pipelines, emitting the same output shape as the
//! EBBIOT pipeline so the evaluator treats all trackers identically.

use ebbiot_core::{
    pipeline::{FrameResult, TrackBox},
    rpn::RegionProposalNetwork,
    EbbiotConfig,
};
use ebbiot_events::{stream::FrameWindows, Event, Micros, OpsCounter};
use ebbiot_filters::{EventFilter, NnFilter};
use ebbiot_frame::{EbbiAccumulator, MedianFilter};

use crate::{
    ebms::{EbmsConfig, EbmsTracker},
    kalman::{KalmanConfig, KalmanTracker},
};

/// EBBI + median + RPN front-end with a Kalman-filter tracker back-end —
/// the "EBBI+KF" system of Figs. 4 and 5.
#[derive(Debug, Clone)]
pub struct EbbiKfPipeline {
    config: EbbiotConfig,
    accumulator: EbbiAccumulator,
    median: MedianFilter,
    rpn: RegionProposalNetwork,
    tracker: KalmanTracker,
    roe_ops: OpsCounter,
    next_index: usize,
}

impl EbbiKfPipeline {
    /// Builds the pipeline; the front-end configuration is shared with
    /// EBBIOT (same `EbbiotConfig`), only the tracker differs.
    #[must_use]
    pub fn new(config: EbbiotConfig, kf: KalmanConfig) -> Self {
        Self {
            accumulator: EbbiAccumulator::new(config.geometry),
            median: MedianFilter::new(config.median_patch),
            rpn: RegionProposalNetwork::new(config.rpn),
            tracker: KalmanTracker::new(config.geometry, kf),
            roe_ops: OpsCounter::new(),
            next_index: 0,
            config,
        }
    }

    /// Processes one frame of events.
    pub fn process_frame(&mut self, events: &[Event]) -> FrameResult {
        let index = self.next_index;
        self.next_index += 1;
        self.accumulator.accumulate_all(events);
        let num_events = self.accumulator.events_seen() as usize;
        let ebbi = self.accumulator.readout();
        let filtered = self.median.apply(&ebbi);
        let raw = self.rpn.propose(&filtered);
        let proposals = self.config.roe.filter(&raw, &mut self.roe_ops);
        let outputs = self.tracker.step(&proposals);
        FrameResult {
            index,
            t_start: index as u64 * self.config.frame_us,
            duration: self.config.frame_us,
            tracks: outputs
                .into_iter()
                .map(|o| TrackBox {
                    track_id: o.id,
                    bbox: o.bbox,
                    velocity: o.velocity,
                    occluded: false,
                })
                .collect(),
            num_proposals: proposals.len(),
            num_events,
        }
    }

    /// Processes a whole recording.
    pub fn process_recording(&mut self, events: &[Event], span_us: Micros) -> Vec<FrameResult> {
        FrameWindows::with_span(events, self.config.frame_us, span_us)
            .map(|w| self.process_frame(w.events))
            .collect()
    }

    /// The Kalman tracker (for op/memory introspection).
    #[must_use]
    pub const fn tracker(&self) -> &KalmanTracker {
        &self.tracker
    }
}

/// NN-filter + EBMS — the fully event-based baseline of Figs. 4 and 5.
#[derive(Debug, Clone)]
pub struct NnEbmsPipeline {
    frame_us: Micros,
    filter: NnFilter,
    tracker: EbmsTracker,
    next_index: usize,
    events_kept: u64,
    events_seen: u64,
}

impl NnEbmsPipeline {
    /// Builds the pipeline.
    #[must_use]
    pub fn new(
        geometry: ebbiot_events::SensorGeometry,
        frame_us: Micros,
        ebms: EbmsConfig,
    ) -> Self {
        Self {
            frame_us,
            filter: NnFilter::paper_default(geometry),
            tracker: EbmsTracker::new(geometry, ebms),
            next_index: 0,
            events_kept: 0,
            events_seen: 0,
        }
    }

    /// Processes one frame's worth of events through the event-domain
    /// pipeline, sampling tracker output at the frame boundary (the same
    /// instants the evaluator samples ground truth).
    pub fn process_frame(&mut self, events: &[Event]) -> FrameResult {
        let index = self.next_index;
        self.next_index += 1;
        for e in events {
            self.events_seen += 1;
            if self.filter.keep(e) {
                self.events_kept += 1;
                self.tracker.process_event(e);
            }
        }
        let t_end = (index as u64 + 1) * self.frame_us;
        self.tracker.maintain(t_end);
        let visible = self.tracker.visible();
        FrameResult {
            index,
            t_start: index as u64 * self.frame_us,
            duration: self.frame_us,
            tracks: visible
                .into_iter()
                .map(|o| TrackBox {
                    track_id: o.id,
                    bbox: o.bbox,
                    // EBMS velocities are px/s; normalize to px/frame like
                    // the other trackers.
                    velocity: (
                        o.velocity.0 * self.frame_us as f32 / 1e6,
                        o.velocity.1 * self.frame_us as f32 / 1e6,
                    ),
                    occluded: false,
                })
                .collect(),
            num_proposals: 0,
            num_events: events.len(),
        }
    }

    /// Processes a whole recording.
    pub fn process_recording(&mut self, events: &[Event], span_us: Micros) -> Vec<FrameResult> {
        FrameWindows::with_span(events, self.frame_us, span_us)
            .map(|w| self.process_frame(w.events))
            .collect()
    }

    /// Fraction of events the NN-filter kept (diagnostic; the paper's
    /// `N_F ≈ 650` per frame is the kept count).
    #[must_use]
    pub fn keep_fraction(&self) -> f64 {
        if self.events_seen == 0 {
            0.0
        } else {
            self.events_kept as f64 / self.events_seen as f64
        }
    }

    /// Mean kept (filtered) events per frame — the paper's `N_F`.
    #[must_use]
    pub fn filtered_events_per_frame(&self) -> f64 {
        if self.next_index == 0 {
            0.0
        } else {
            self.events_kept as f64 / self.next_index as f64
        }
    }

    /// The EBMS tracker (introspection).
    #[must_use]
    pub const fn tracker(&self) -> &EbmsTracker {
        &self.tracker
    }

    /// The NN-filter (introspection).
    #[must_use]
    pub const fn filter(&self) -> &NnFilter {
        &self.filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_events::SensorGeometry;

    fn geometry() -> SensorGeometry {
        SensorGeometry::davis240()
    }

    /// A dense moving block across `frames` frames of 66 ms.
    fn moving_block_events(frames: usize) -> Vec<Event> {
        let mut events = Vec::new();
        for f in 0..frames {
            let x0 = 50 + f as u16 * 3;
            let t0 = f as u64 * 66_000;
            for dy in 0..15u16 {
                for dx in 0..30u16 {
                    events.push(Event::on(
                        x0 + dx,
                        90 + dy,
                        t0 + u64::from(dy * 30 + dx) * 20,
                    ));
                }
            }
        }
        ebbiot_events::stream::sort_by_time(&mut events);
        events
    }

    #[test]
    fn kf_pipeline_tracks_moving_block() {
        let cfg = EbbiotConfig::paper_default(geometry());
        let mut p = EbbiKfPipeline::new(cfg, KalmanConfig::paper_default());
        let events = moving_block_events(6);
        let results = p.process_recording(&events, 6 * 66_000);
        assert_eq!(results.len(), 6);
        let last = results.last().unwrap();
        assert_eq!(last.tracks.len(), 1);
        let (cx, cy) = last.tracks[0].bbox.center();
        assert!((cx - 80.0).abs() < 10.0, "cx {cx}");
        assert!((cy - 97.5).abs() < 5.0, "cy {cy}");
    }

    #[test]
    fn ebms_pipeline_tracks_moving_block() {
        let mut p = NnEbmsPipeline::new(geometry(), 66_000, EbmsConfig::paper_default());
        let events = moving_block_events(6);
        let results = p.process_recording(&events, 6 * 66_000);
        let last = results.last().unwrap();
        assert!(!last.tracks.is_empty(), "EBMS found the object");
        // At least one cluster near the block.
        let near = last.tracks.iter().any(|t| {
            let (cx, cy) = t.bbox.center();
            (cx - 80.0).abs() < 25.0 && (cy - 97.5).abs() < 15.0
        });
        assert!(near);
    }

    #[test]
    fn nn_filter_removes_isolated_noise_before_ebms() {
        let mut p = NnEbmsPipeline::new(geometry(), 66_000, EbmsConfig::paper_default());
        // Sparse isolated events: nothing should pass the NN filter.
        let events: Vec<Event> =
            (0..50).map(|k| Event::on((k * 4) % 240, (k * 7) % 180, u64::from(k) * 1_000)).collect();
        let results = p.process_recording(&events, 66_000);
        assert!(results[0].tracks.is_empty());
        assert!(p.keep_fraction() < 0.2, "kept {}", p.keep_fraction());
    }

    #[test]
    fn frame_results_align_across_pipelines() {
        let events = moving_block_events(3);
        let cfg = EbbiotConfig::paper_default(geometry());
        let mut kf = EbbiKfPipeline::new(cfg, KalmanConfig::paper_default());
        let mut ebms = NnEbmsPipeline::new(geometry(), 66_000, EbmsConfig::paper_default());
        let rk = kf.process_recording(&events, 3 * 66_000);
        let re = ebms.process_recording(&events, 3 * 66_000);
        assert_eq!(rk.len(), re.len());
        for (a, b) in rk.iter().zip(&re) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.t_start, b.t_start);
        }
    }

    #[test]
    fn filtered_events_per_frame_statistic() {
        let mut p = NnEbmsPipeline::new(geometry(), 66_000, EbmsConfig::paper_default());
        let events = moving_block_events(4);
        let _ = p.process_recording(&events, 4 * 66_000);
        // The dense block mostly passes the NN filter.
        assert!(p.filtered_events_per_frame() > 200.0);
        assert!(p.keep_fraction() > 0.6);
    }
}

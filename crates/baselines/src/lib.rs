//! Baseline trackers the EBBIOT paper compares against.
//!
//! * [`kalman`] — the Kalman-filter tracker of Lin, Ramesh & Xiang (2015)
//!   as configured in §II-C: constant-velocity motion model over track
//!   centroids, fed by the same EBBI + RPN proposals as EBBIOT. Cost
//!   model: Eq. 7 (`C_KF = 1200` for `NT = 2`, `M_KF ≈ 1.1 kB`).
//! * [`ebms`] — event-based mean shift (Delbrück & Lang 2013): cluster
//!   trackers updated per event, running behind the NN-filter in a fully
//!   event-based pipeline. Cost model: Eq. 8 (`C_EBMS = 252 k ops/frame`,
//!   `M_EBMS = 3.32 kB` for `CL_max = 8`).
//! * [`backends`] — NN-filt + EBMS packaged as an event-domain
//!   [`ebbiot_core::Tracker`] back-end.
//! * [`pipelines`] — the composed baselines used in Figs. 4 and 5:
//!   [`pipelines::EbbiKfPipeline`] (EBBI + median + RPN + KF) and
//!   [`pipelines::NnEbmsPipeline`] (NN-filt + EBMS), thin wrappers over
//!   the generic [`ebbiot_core::Pipeline`] so the evaluator treats all
//!   three trackers identically.
//! * [`registry`] — the back-end registry: eval sweeps and experiment
//!   binaries enumerate trackers by name ([`registry::BACKENDS`])
//!   instead of hand-rolled match arms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backends;
pub mod ebms;
pub mod kalman;
pub mod pipelines;
pub mod registry;

pub use backends::NnEbmsTracker;
pub use ebms::{EbmsConfig, EbmsTracker};
pub use kalman::{KalmanConfig, KalmanTracker};
pub use pipelines::{EbbiKfPipeline, NnEbmsPipeline};
pub use registry::{
    backend_names, build_pipeline, find_backend, restore_pipeline, BackendSpec, BACKENDS,
};

//! The tracker back-end registry.
//!
//! Evaluation sweeps and the experiment binaries enumerate back-ends by
//! name instead of hand-rolling one match arm per tracker: each
//! [`BackendSpec`] names a back-end and knows how to build a type-erased
//! [`DynPipeline`] for it from a shared front-end configuration. Adding
//! a tracker to the comparison set means adding one entry here — the
//! eval and bench layers pick it up automatically.

use ebbiot_core::{
    BoxedTracker, DynPipeline, EbbiotConfig, OverlapTracker, Pipeline, SessionState, StateError,
};

use crate::{
    backends::NnEbmsTracker,
    ebms::EbmsConfig,
    kalman::{KalmanConfig, KalmanTracker},
};

/// One registered tracker back-end.
#[derive(Debug, Clone, Copy)]
pub struct BackendSpec {
    /// Stable registry name (`"ebbiot"`, `"ebbi-kf"`, `"nn-ebms"`).
    pub name: &'static str,
    /// Short display label, as used in the paper's figures.
    pub label: &'static str,
    /// One-line description.
    pub summary: &'static str,
    build: fn(&EbbiotConfig) -> BoxedTracker,
}

impl BackendSpec {
    /// Builds a type-erased pipeline running this back-end behind the
    /// shared front-end configuration.
    #[must_use]
    pub fn build(&self, config: EbbiotConfig) -> DynPipeline {
        let tracker = (self.build)(&config);
        Pipeline::with_tracker(config, tracker)
    }

    /// Builds `cameras` independent pipelines of this back-end sharing
    /// one front-end configuration — one per stream of a multi-camera
    /// engine. Tracker state is per-pipeline; nothing is shared.
    #[must_use]
    pub fn build_fleet(&self, config: &EbbiotConfig, cameras: usize) -> Vec<DynPipeline> {
        (0..cameras).map(|_| self.build(config.clone())).collect()
    }
}

/// All registered back-ends, in the paper's Fig. 4 presentation order.
pub const BACKENDS: &[BackendSpec] = &[
    BackendSpec {
        name: "nn-ebms",
        label: "EBMS",
        summary: "NN-filter + event-based mean shift (fully event-domain)",
        build: |config| Box::new(NnEbmsTracker::new(config.geometry, EbmsConfig::paper_default())),
    },
    BackendSpec {
        name: "ebbi-kf",
        label: "KF",
        summary: "Shared EBBI front-end + Kalman-filter tracker",
        build: |config| {
            Box::new(KalmanTracker::new(config.geometry, KalmanConfig::paper_default()))
        },
    },
    BackendSpec {
        name: "ebbiot",
        label: "EBBIOT",
        summary: "Shared EBBI front-end + overlap tracker (the paper's system)",
        build: |config| Box::new(OverlapTracker::new(config.geometry, config.ot)),
    },
];

/// Looks a back-end up by registry name or display label.
#[must_use]
pub fn find_backend(name: &str) -> Option<&'static BackendSpec> {
    BACKENDS.iter().find(|spec| spec.name == name || spec.label == name)
}

/// Builds a pipeline by back-end name.
#[must_use]
pub fn build_pipeline(name: &str, config: EbbiotConfig) -> Option<DynPipeline> {
    find_backend(name).map(|spec| spec.build(config))
}

/// All registry names.
#[must_use]
pub fn backend_names() -> Vec<&'static str> {
    BACKENDS.iter().map(|spec| spec.name).collect()
}

/// Rebuilds a type-erased pipeline from a [`SessionState`] checkpoint,
/// resolving the back-end by the name recorded in the state. The restored
/// pipeline resumes bit-identically to the uninterrupted session.
///
/// # Errors
///
/// [`StateError::UnknownBackend`] when the state names a back-end not in
/// [`BACKENDS`], or any [`StateError`] from
/// [`Pipeline::restore`] on corrupt tracker bytes.
pub fn restore_pipeline(
    config: EbbiotConfig,
    state: &SessionState,
) -> Result<DynPipeline, StateError> {
    let spec = find_backend(&state.backend)
        .ok_or_else(|| StateError::UnknownBackend(state.backend.clone()))?;
    let tracker = (spec.build)(&config);
    Pipeline::restore(config, tracker, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_events::{Event, SensorGeometry};

    fn config() -> EbbiotConfig {
        EbbiotConfig::paper_default(SensorGeometry::davis240())
    }

    #[test]
    fn registry_covers_all_three_trackers() {
        assert_eq!(backend_names(), vec!["nn-ebms", "ebbi-kf", "ebbiot"]);
    }

    #[test]
    fn lookup_by_name_or_label() {
        assert!(find_backend("ebbiot").is_some());
        assert!(find_backend("EBBIOT").is_some());
        assert!(find_backend("KF").is_some());
        assert!(find_backend("unknown").is_none());
        assert!(build_pipeline("unknown", config()).is_none());
    }

    #[test]
    fn built_pipelines_report_their_backend() {
        for spec in BACKENDS {
            let pipeline = spec.build(config());
            assert_eq!(pipeline.backend_name(), spec.name);
        }
    }

    #[test]
    fn built_pipelines_process_frames() {
        let mut events = Vec::new();
        for dy in 0..15u16 {
            for dx in 0..30u16 {
                events.push(Event::on(60 + dx, 90 + dy, u64::from(dy) * 10));
            }
        }
        for spec in BACKENDS {
            let mut pipeline = spec.build(config());
            let result = pipeline.process_frame(&events);
            assert_eq!(result.index, 0, "{}", spec.name);
            assert_eq!(result.num_events, events.len(), "{}", spec.name);
        }
    }

    #[test]
    fn fleet_pipelines_are_independent() {
        let spec = find_backend("ebbiot").unwrap();
        let mut fleet = spec.build_fleet(&config(), 3);
        assert_eq!(fleet.len(), 3);
        let events: Vec<Event> =
            (0..300).map(|i| Event::on(60 + (i % 20) as u16, 90 + (i / 20) as u16, i)).collect();
        // Stepping one pipeline leaves the others untouched.
        let _ = fleet[0].process_frame(&events);
        assert_eq!(fleet[0].frames_processed(), 1);
        assert_eq!(fleet[1].frames_processed(), 0);
        assert_eq!(fleet[2].frames_processed(), 0);
    }

    #[test]
    fn frontend_presence_matches_backend_kind() {
        assert!(build_pipeline("ebbiot", config()).unwrap().frontend().is_some());
        assert!(build_pipeline("ebbi-kf", config()).unwrap().frontend().is_some());
        assert!(build_pipeline("nn-ebms", config()).unwrap().frontend().is_none());
    }
}

//! The multi-stream engine: router, worker pool and output collector.

use std::collections::HashMap;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ebbiot_core::{BoxedTracker, FrameResult, Pipeline, Tracker};
use ebbiot_events::{Event, Micros};

use crate::backpressure::ChunkGate;

/// Recovers a mutex guard regardless of std poisoning; the engine's own
/// poison flag (on the gates) governs producer liveness.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Identifies one camera stream; streams are numbered `0..num_streams`
/// in the order their pipelines were handed to [`Engine::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub usize);

impl core::fmt::Display for StreamId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cam{:02}", self.0)
    }
}

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads draining stream queues. Streams are pinned to
    /// workers (`stream % workers`), which is what makes the output
    /// independent of scheduling: one stream is only ever advanced by
    /// one thread, in submission order.
    pub workers: usize,
    /// Per-stream bound on chunks in flight (queued + processing); the
    /// router blocks or rejects producers beyond it.
    pub queue_capacity: usize,
}

impl EngineConfig {
    /// `workers` threads with the default queue capacity.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        Self { workers, ..Self::default() }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self { workers, queue_capacity: 32 }
    }
}

/// A chunk the router refused because the stream's queue was full
/// (non-blocking [`Engine::try_push`] only). The events are handed back
/// untouched so the producer can retry — nothing is ever dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedChunk(pub Vec<Event>);

/// Point-in-time statistics for one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSnapshot {
    /// The stream.
    pub id: StreamId,
    /// Events accepted by the router so far.
    pub events_in: u64,
    /// Chunks accepted by the router so far.
    pub chunks_in: u64,
    /// Frames emitted by the stream's pipeline so far.
    pub frames_out: u64,
    /// Confirmed track boxes reported so far.
    pub tracks_out: u64,
    /// Active (confirmed or provisional) trackers after the last chunk.
    pub active_trackers: usize,
    /// Chunks currently queued or in processing.
    pub queue_depth: usize,
    /// Highest queue depth observed since start.
    pub queue_high_water: usize,
    /// Whether the stream's `finish` has been processed.
    pub finished: bool,
}

/// Point-in-time view of the whole engine, from [`Engine::snapshot`] or
/// [`EngineOutput::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Wall-clock time since the engine started.
    pub elapsed: Duration,
    /// Per-stream statistics, indexed by [`StreamId`].
    pub streams: Vec<StreamSnapshot>,
}

impl Snapshot {
    /// Total events accepted across streams.
    #[must_use]
    pub fn events_in(&self) -> u64 {
        self.streams.iter().map(|s| s.events_in).sum()
    }

    /// Total frames emitted across streams.
    #[must_use]
    pub fn frames_out(&self) -> u64 {
        self.streams.iter().map(|s| s.frames_out).sum()
    }

    /// Total active trackers across streams.
    #[must_use]
    pub fn active_trackers(&self) -> usize {
        self.streams.iter().map(|s| s.active_trackers).sum()
    }

    /// Aggregate event throughput since start, events/second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events_in() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Aggregate frame throughput since start, frames/second.
    #[must_use]
    pub fn frames_per_sec(&self) -> f64 {
        self.frames_out() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Deepest queue high-water mark across streams.
    #[must_use]
    pub fn max_queue_high_water(&self) -> usize {
        self.streams.iter().map(|s| s.queue_high_water).max().unwrap_or(0)
    }
}

/// Everything the engine produced, from [`Engine::join`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutput {
    /// Per-stream frame sequences, indexed by [`StreamId`] — bit-for-bit
    /// identical to running each stream's pipeline sequentially,
    /// regardless of worker count.
    pub streams: Vec<Vec<FrameResult>>,
    /// Final statistics, taken after all workers drained.
    pub snapshot: Snapshot,
}

#[derive(Debug, Default)]
struct StreamCounters {
    events_in: u64,
    chunks_in: u64,
    frames_out: u64,
    tracks_out: u64,
    active_trackers: usize,
    /// Producer side: `finish_stream` was called; no more submissions.
    closed: bool,
    /// Worker side: the finish job has been processed.
    finished: bool,
}

/// Shared per-stream state: admission gate, counters and the collector's
/// ordered output buffer.
#[derive(Debug)]
struct StreamState {
    gate: ChunkGate,
    counters: Mutex<StreamCounters>,
    results: Mutex<Vec<FrameResult>>,
}

enum Job {
    Chunk(usize, Vec<Event>),
    Finish(usize, Micros),
}

/// Poisons every stream gate when a worker thread unwinds, so producers
/// blocked on a full queue fail fast instead of hanging forever.
struct PoisonOnPanic(Arc<Vec<Arc<StreamState>>>);

impl Drop for PoisonOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            for stream in self.0.iter() {
                stream.gate.poison();
            }
        }
    }
}

/// A multi-camera tracking engine: owns one [`Pipeline`] per stream and
/// drives them on a fixed pool of worker threads.
///
/// See the [crate docs](crate) for the determinism guarantee and an
/// example.
#[derive(Debug)]
pub struct Engine<T: Tracker + Send + 'static = BoxedTracker> {
    senders: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    streams: Arc<Vec<Arc<StreamState>>>,
    config: EngineConfig,
    started: Instant,
    _tracker: core::marker::PhantomData<T>,
}

impl<T: Tracker + Send + 'static> Engine<T> {
    /// Spawns the worker pool, taking ownership of one pipeline per
    /// stream. Stream `i` gets [`StreamId`]`(i)` and is pinned to worker
    /// `i % workers`.
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` is zero or `config.queue_capacity`
    /// is zero.
    #[must_use]
    pub fn new(config: EngineConfig, pipelines: Vec<Pipeline<T>>) -> Self {
        assert!(config.workers > 0, "engine needs at least one worker");
        // More workers than streams would only idle in `recv()` forever
        // (pinning is `stream % workers`); clamp instead of spawning
        // them. Determinism never depended on the worker count anyway.
        let config = EngineConfig { workers: config.workers.min(pipelines.len()).max(1), ..config };
        let streams: Arc<Vec<Arc<StreamState>>> = Arc::new(
            (0..pipelines.len())
                .map(|_| {
                    Arc::new(StreamState {
                        gate: ChunkGate::new(config.queue_capacity),
                        counters: Mutex::new(StreamCounters::default()),
                        results: Mutex::new(Vec::new()),
                    })
                })
                .collect(),
        );

        // Deal the pipelines out to their pinned workers.
        let mut owned: Vec<HashMap<usize, Pipeline<T>>> =
            (0..config.workers).map(|_| HashMap::new()).collect();
        for (id, pipeline) in pipelines.into_iter().enumerate() {
            owned[id % config.workers].insert(id, pipeline);
        }

        let mut senders = Vec::with_capacity(config.workers);
        let mut workers = Vec::with_capacity(config.workers);
        for (w, pipelines) in owned.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<Job>();
            let streams = Arc::clone(&streams);
            let handle = std::thread::Builder::new()
                .name(format!("ebbiot-worker-{w}"))
                .spawn(move || worker_loop(&rx, &streams, pipelines))
                .expect("spawn engine worker");
            senders.push(tx);
            workers.push(handle);
        }

        Self {
            senders,
            workers,
            streams,
            config,
            started: Instant::now(),
            _tracker: core::marker::PhantomData,
        }
    }

    /// Number of streams (pipelines) owned by the engine.
    #[must_use]
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Number of worker threads actually spawned (the configured count,
    /// clamped to the stream count).
    #[must_use]
    pub const fn num_workers(&self) -> usize {
        self.config.workers
    }

    fn state(&self, stream: StreamId) -> &Arc<StreamState> {
        self.streams.get(stream.0).unwrap_or_else(|| {
            panic!("unknown stream {stream}: engine has {} streams", self.streams.len())
        })
    }

    fn submit(&self, stream: StreamId, chunk: Vec<Event>) {
        let state = self.state(stream);
        {
            let mut counters = lock(&state.counters);
            assert!(!counters.closed, "push to {stream} after finish_stream");
            counters.chunks_in += 1;
            counters.events_in += chunk.len() as u64;
        }
        self.senders[stream.0 % self.config.workers]
            .send(Job::Chunk(stream.0, chunk))
            .expect("engine worker hung up");
    }

    /// Routes a time-ordered chunk of events to `stream`, blocking while
    /// the stream's queue is at capacity (back-pressure). Chunks pushed
    /// by one producer are processed in push order; nothing is dropped.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream, after [`Self::finish_stream`], or
    /// when a worker has failed.
    pub fn push(&self, stream: StreamId, chunk: Vec<Event>) {
        self.state(stream).gate.acquire();
        self.submit(stream, chunk);
    }

    /// Like [`Self::push`] but never blocks: a full stream queue hands
    /// the chunk back as [`RejectedChunk`] for the producer to retry.
    ///
    /// # Errors
    ///
    /// Returns the chunk untouched when the stream is at capacity.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream, after [`Self::finish_stream`], or
    /// when a worker has failed.
    pub fn try_push(&self, stream: StreamId, chunk: Vec<Event>) -> Result<(), RejectedChunk> {
        if self.state(stream).gate.try_acquire() {
            self.submit(stream, chunk);
            Ok(())
        } else {
            Err(RejectedChunk(chunk))
        }
    }

    /// Ends `stream`: its pipeline emits the open window plus trailing
    /// empty frames covering at least `span_us` (the streaming
    /// counterpart of `process_recording`'s span). Must be the last
    /// submission for the stream.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream, on a second `finish_stream` for the
    /// same stream, or when a worker has failed.
    pub fn finish_stream(&self, stream: StreamId, span_us: Micros) {
        {
            let mut counters = lock(&self.state(stream).counters);
            assert!(!counters.closed, "finish_stream called twice for {stream}");
            counters.closed = true;
        }
        self.senders[stream.0 % self.config.workers]
            .send(Job::Finish(stream.0, span_us))
            .expect("engine worker hung up");
    }

    /// Current per-stream and aggregate statistics.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            elapsed: self.started.elapsed(),
            streams: self
                .streams
                .iter()
                .enumerate()
                .map(|(i, state)| {
                    let counters = lock(&state.counters);
                    StreamSnapshot {
                        id: StreamId(i),
                        events_in: counters.events_in,
                        chunks_in: counters.chunks_in,
                        frames_out: counters.frames_out,
                        tracks_out: counters.tracks_out,
                        active_trackers: counters.active_trackers,
                        queue_depth: state.gate.depth(),
                        queue_high_water: state.gate.high_water(),
                        finished: counters.finished,
                    }
                })
                .collect(),
        }
    }

    /// Shuts the engine down: closes the job queues, waits for the
    /// workers to drain, and returns every stream's re-sequenced frame
    /// output plus a final [`Snapshot`].
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic (e.g. out-of-order events pushed to a
    /// stream) on the caller.
    #[must_use]
    pub fn join(mut self) -> EngineOutput {
        self.senders.clear(); // hang up: workers exit once drained
        for worker in self.workers.drain(..) {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        let streams = self.streams.iter().map(|s| std::mem::take(&mut *lock(&s.results))).collect();
        EngineOutput { streams, snapshot: self.snapshot() }
    }
}

fn worker_loop<T: Tracker>(
    jobs: &Receiver<Job>,
    streams: &Arc<Vec<Arc<StreamState>>>,
    mut pipelines: HashMap<usize, Pipeline<T>>,
) {
    let _poison_guard = PoisonOnPanic(Arc::clone(streams));
    while let Ok(job) = jobs.recv() {
        let (id, frames, finished) = match job {
            Job::Chunk(id, chunk) => {
                let pipeline = pipelines.get_mut(&id).expect("stream pinned to this worker");
                (id, pipeline.push(&chunk), false)
            }
            Job::Finish(id, span_us) => {
                let pipeline = pipelines.get_mut(&id).expect("stream pinned to this worker");
                (id, pipeline.finish(span_us), true)
            }
        };
        let state = &streams[id];
        {
            let mut counters = lock(&state.counters);
            counters.frames_out += frames.len() as u64;
            counters.tracks_out += frames.iter().map(|f| f.tracks.len() as u64).sum::<u64>();
            counters.active_trackers = pipelines[&id].active_trackers();
            counters.finished |= finished;
        }
        lock(&state.results).extend(frames);
        if !finished {
            state.gate.release();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
    use ebbiot_events::SensorGeometry;

    fn pipelines(n: usize) -> Vec<EbbiotPipeline> {
        let config = EbbiotConfig::paper_default(SensorGeometry::davis240());
        (0..n).map(|_| EbbiotPipeline::new(config.clone())).collect()
    }

    /// Dense block of events surviving the median filter.
    fn block_events(x0: u16, t0: u64) -> Vec<Event> {
        let mut events = Vec::new();
        for dy in 0..12u16 {
            for dx in 0..24u16 {
                events.push(Event::on(x0 + dx, 80 + dy, t0 + u64::from(dy)));
            }
        }
        events
    }

    #[test]
    fn engine_with_no_streams_joins_empty() {
        let engine = Engine::new(EngineConfig::with_workers(2), pipelines(0));
        let out = engine.join();
        assert!(out.streams.is_empty());
        assert_eq!(out.snapshot.events_in(), 0);
    }

    #[test]
    fn per_stream_outputs_match_sequential_for_any_worker_count() {
        let chunks: Vec<Vec<Event>> =
            (0..5u64).map(|k| block_events(40 + 4 * k as u16, k * 66_000)).collect();
        let span = 8 * 66_000;

        let mut reference = pipelines(1).pop().unwrap();
        let mut expected = Vec::new();
        for chunk in &chunks {
            expected.extend(reference.push(chunk));
        }
        expected.extend(reference.finish(span));

        for workers in [1, 2, 3, 8] {
            let engine = Engine::new(EngineConfig::with_workers(workers), pipelines(3));
            for chunk in &chunks {
                for s in 0..3 {
                    engine.push(StreamId(s), chunk.clone());
                }
            }
            for s in 0..3 {
                engine.finish_stream(StreamId(s), span);
            }
            let out = engine.join();
            assert_eq!(out.streams.len(), 3);
            for (s, frames) in out.streams.iter().enumerate() {
                assert_eq!(frames, &expected, "stream {s} with {workers} workers");
            }
            assert_eq!(out.snapshot.frames_out(), 3 * expected.len() as u64);
            assert!(out.snapshot.streams.iter().all(|s| s.finished));
        }
    }

    #[test]
    fn snapshot_counts_router_accepts() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(2));
        engine.push(StreamId(0), block_events(40, 0));
        engine.push(StreamId(0), block_events(44, 66_000));
        engine.push(StreamId(1), block_events(40, 0));
        let snap = engine.snapshot();
        assert_eq!(snap.streams[0].chunks_in, 2);
        assert_eq!(snap.streams[1].chunks_in, 1);
        assert_eq!(snap.events_in(), 3 * 288);
        let out = engine.join();
        assert!(out.snapshot.streams[0].queue_high_water >= 1);
        assert_eq!(out.snapshot.events_in(), 3 * 288);
        assert!(out.snapshot.elapsed >= snap.elapsed);
    }

    #[test]
    #[should_panic(expected = "unknown stream")]
    fn pushing_to_unknown_stream_panics() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        engine.push(StreamId(7), Vec::new());
    }

    #[test]
    #[should_panic(expected = "after finish_stream")]
    fn pushing_after_finish_panics() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        engine.finish_stream(StreamId(0), 66_000);
        // The producer-side closed flag fires immediately — no need to
        // wait for the worker to process the finish job.
        engine.push(StreamId(0), Vec::new());
    }

    #[test]
    #[should_panic(expected = "called twice")]
    fn double_finish_panics() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        engine.finish_stream(StreamId(0), 66_000);
        engine.finish_stream(StreamId(0), 66_000);
    }

    #[test]
    fn workers_are_clamped_to_stream_count() {
        let engine = Engine::new(EngineConfig::with_workers(64), pipelines(2));
        assert_eq!(engine.num_workers(), 2);
        let engine = Engine::new(EngineConfig::with_workers(64), pipelines(0));
        assert_eq!(engine.num_workers(), 1);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn worker_panic_resurfaces_on_join() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        engine.push(StreamId(0), vec![Event::on(10, 10, 70_000)]);
        engine.push(StreamId(0), vec![Event::on(10, 10, 0)]); // out of order
        let _ = engine.join();
    }

    #[test]
    fn stream_id_displays_as_camera() {
        assert_eq!(StreamId(3).to_string(), "cam03");
        assert_eq!(StreamId(12).to_string(), "cam12");
    }
}

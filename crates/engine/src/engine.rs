//! The multi-stream engine: router, batched work-stealing scheduler and
//! output collector.
//!
//! Scheduling granularity is the *stream*, not the chunk: a stream with
//! queued work is a schedulable unit that exactly one worker owns at a
//! time. A worker acquiring a stream drains a **batch** of queued jobs
//! in one go (amortizing the wake/hand-off cost that used to dominate
//! per-chunk dispatch) and a stream may migrate to whichever worker is
//! free next — a global injector plus per-worker deques with stealing
//! replaces the old `stream % workers` pinning that load-imbalanced
//! heterogeneous cameras. Determinism is structural and survives any
//! steal schedule: jobs sit in one FIFO queue per stream, ownership is
//! exclusive, and results land in the stream's own ordered buffer.

use std::collections::VecDeque;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ebbiot_core::{BoxedTracker, FrameResult, Pipeline, Tracker};
use ebbiot_events::{Event, Micros};
use ebbiot_telemetry::{Gauge, Registry};

use crate::backpressure::ChunkGate;
use crate::telemetry::{EngineTelemetry, StreamTelemetry, WorkerTelemetry};

/// Recovers a mutex guard regardless of std poisoning; the engine's own
/// poison flag (on the gates) governs producer liveness.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Identifies one camera stream; streams are numbered in the order they
/// were handed to [`Engine::new`] or attached with [`Engine::attach`].
/// Stream ids are never reused within one engine, even after
/// [`Engine::detach`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub usize);

impl core::fmt::Display for StreamId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cam{:02}", self.0)
    }
}

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads draining stream queues. Streams are *not* pinned:
    /// any worker may acquire any ready stream (exactly one at a time),
    /// so heterogeneous cameras balance across the pool.
    pub workers: usize,
    /// Per-stream bound on chunks in flight (queued + processing); the
    /// router blocks or rejects producers beyond it.
    pub queue_capacity: usize,
    /// Maximum queued jobs a worker drains per stream acquisition
    /// (clamped to at least 1). Larger batches amortize scheduler
    /// hand-off cost; the queue capacity still bounds latency.
    pub batch_chunks: usize,
    /// Test-only scheduling perturbation: a seed that makes workers
    /// randomly yield, micro-sleep and skip their local deque (forcing
    /// steals and migrations). Output is bit-identical regardless —
    /// the determinism proptests drive this. `None` (the default)
    /// costs nothing.
    pub schedule_jitter: Option<u64>,
}

impl EngineConfig {
    /// `workers` threads with the default queue capacity and batching.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        Self { workers, ..Self::default() }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self { workers, queue_capacity: 32, batch_chunks: 16, schedule_jitter: None }
    }
}

/// A chunk the router refused because the stream's queue was full
/// (non-blocking [`Engine::try_push`] only). The events are handed back
/// untouched so the producer can retry — nothing is ever dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedChunk(pub Vec<Event>);

/// Point-in-time statistics for one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSnapshot {
    /// The stream.
    pub id: StreamId,
    /// Events accepted by the router so far.
    pub events_in: u64,
    /// Chunks accepted by the router so far.
    pub chunks_in: u64,
    /// Frames emitted by the stream's pipeline so far.
    pub frames_out: u64,
    /// Confirmed track boxes reported so far.
    pub tracks_out: u64,
    /// Active (confirmed or provisional) trackers after the last chunk.
    pub active_trackers: usize,
    /// Chunks currently queued or in processing.
    pub queue_depth: usize,
    /// Highest queue depth observed since start.
    pub queue_high_water: usize,
    /// Total nanoseconds this stream's chunks sat queued before a worker
    /// picked them up.
    pub queue_wait_ns: u64,
    /// Total nanoseconds producers spent blocked on this stream's
    /// admission gate (back-pressure).
    pub producer_block_ns: u64,
    /// The worker that most recently owned the stream (`None` until the
    /// first acquisition). Ownership is exclusive but **not** static:
    /// streams migrate to whichever worker is free.
    pub last_owner: Option<usize>,
    /// Times the stream's ownership moved to a *different* worker than
    /// its previous acquisition (0 means it never changed hands).
    pub migrations: u64,
    /// Whether the stream's `finish` has been processed.
    pub finished: bool,
    /// Whether the stream was detached (its pipeline dropped and its
    /// results drained by [`Engine::detach`]).
    pub detached: bool,
}

/// Point-in-time statistics for one worker thread.
///
/// Time is attributed with telescoping timestamps inside the worker
/// loop, so after [`Engine::join`] the identity
/// `busy_ns + acquire_ns + idle_ns == wall_ns` holds exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Worker index (any worker may own any ready stream; nothing is
    /// pinned).
    pub id: usize,
    /// Nanoseconds spent processing jobs.
    pub busy_ns: u64,
    /// Nanoseconds spent taking stream ownership and draining batches
    /// (the scheduler hand-off cost batching amortizes).
    pub acquire_ns: u64,
    /// Nanoseconds spent waiting for a ready stream (includes steal
    /// scans that came up empty).
    pub idle_ns: u64,
    /// Summed queue wait of the chunks this worker dequeued.
    pub queue_wait_ns: u64,
    /// Worker lifetime in nanoseconds (0 until the worker exits).
    pub wall_ns: u64,
    /// Chunks processed.
    pub chunks: u64,
    /// Stream acquisitions taken from another worker's deque.
    pub steals: u64,
}

/// Scheduler-level statistics: how often streams changed hands and how
/// well batching amortized the hand-off cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerSnapshot {
    /// Stream acquisitions stolen from another worker's deque.
    pub steals: u64,
    /// Total stream acquisitions (each drains one batch).
    pub batches: u64,
    /// Mean jobs drained per acquisition (0 when no batches yet).
    pub batch_mean: f64,
    /// Upper bound of the largest observed batch (log2 bucket bound).
    pub batch_max_le: u64,
    /// Most streams ever simultaneously ready and awaiting a worker.
    pub ready_high_water: usize,
}

/// Point-in-time view of the whole engine, from [`Engine::snapshot`] or
/// [`EngineOutput::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Wall-clock time since the engine started.
    pub elapsed: Duration,
    /// Per-stream statistics, indexed by [`StreamId`].
    pub streams: Vec<StreamSnapshot>,
    /// Per-worker time accounting, indexed by worker.
    pub workers: Vec<WorkerSnapshot>,
    /// Work-stealing scheduler statistics.
    pub scheduler: SchedulerSnapshot,
}

/// `count / elapsed`, with a zero-duration run reported as 0 instead of
/// NaN or a nonsense near-infinite rate.
fn rate(count: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

impl Snapshot {
    /// Total events accepted across streams.
    #[must_use]
    pub fn events_in(&self) -> u64 {
        self.streams.iter().map(|s| s.events_in).sum()
    }

    /// Total frames emitted across streams.
    #[must_use]
    pub fn frames_out(&self) -> u64 {
        self.streams.iter().map(|s| s.frames_out).sum()
    }

    /// Total active trackers across streams.
    #[must_use]
    pub fn active_trackers(&self) -> usize {
        self.streams.iter().map(|s| s.active_trackers).sum()
    }

    /// Aggregate event throughput since start, events/second (0 for a
    /// zero-duration run).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        rate(self.events_in(), self.elapsed)
    }

    /// Aggregate frame throughput since start, frames/second (0 for a
    /// zero-duration run).
    #[must_use]
    pub fn frames_per_sec(&self) -> f64 {
        rate(self.frames_out(), self.elapsed)
    }

    /// Total queue wait across streams, nanoseconds.
    #[must_use]
    pub fn queue_wait_ns(&self) -> u64 {
        self.streams.iter().map(|s| s.queue_wait_ns).sum()
    }

    /// Deepest queue high-water mark across streams.
    #[must_use]
    pub fn max_queue_high_water(&self) -> usize {
        self.streams.iter().map(|s| s.queue_high_water).max().unwrap_or(0)
    }
}

/// Everything the engine produced, from [`Engine::join`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutput {
    /// Per-stream frame sequences, indexed by [`StreamId`] — bit-for-bit
    /// identical to running each stream's pipeline sequentially,
    /// regardless of worker count. Frames already taken with
    /// [`Engine::take_results`] or [`Engine::detach`] are not repeated
    /// here.
    pub streams: Vec<Vec<FrameResult>>,
    /// Final statistics, taken after all workers drained.
    pub snapshot: Snapshot,
}

#[derive(Debug, Default)]
struct StreamCounters {
    events_in: u64,
    chunks_in: u64,
    frames_out: u64,
    tracks_out: u64,
    active_trackers: usize,
    /// Producer side: `finish_stream` was called; no more submissions.
    closed: bool,
    /// Worker side: the finish job has been processed.
    finished: bool,
    /// The pipeline was dropped and the slot retired.
    detached: bool,
    /// A worker thread failed; waiters must not block forever.
    failed: bool,
}

/// Scheduling state of one stream: where its ownership currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sched {
    /// No queued jobs; in no scheduler queue, owned by nobody.
    Idle,
    /// Has queued jobs; sits in the injector or one worker's deque.
    Queued,
    /// Exactly one worker holds the stream (and its pipeline).
    Running,
}

/// One unit of per-stream work, queued in submission order. The queue
/// itself is the FIFO that makes the schedule invisible: whichever
/// worker owns the stream drains jobs in exactly this order.
enum WorkItem {
    /// A chunk plus its enqueue instant, stamped by the router so the
    /// owning worker can measure enqueue→dequeue latency.
    Chunk(Vec<Event>, Instant),
    Finish(Micros),
    Detach,
    /// Checkpoint the stream's pipeline and send its `SessionState`
    /// back through the channel — the worker half of
    /// [`Engine::detach_with_state`].
    DetachWithState(Sender<ebbiot_core::SessionState>),
}

/// The schedulable half of a stream: its FIFO job queue, ownership
/// state and (between acquisitions) its pipeline. Exactly one worker
/// may hold `Running` — and thus the pipeline — at a time.
struct StreamWork<T: Tracker> {
    jobs: VecDeque<WorkItem>,
    sched: Sched,
    /// `Some` whenever no worker is running the stream; the owning
    /// worker takes it for the duration of a batch.
    pipeline: Option<Pipeline<T>>,
    /// Worker of the most recent acquisition (also the injection
    /// affinity hint: new work prefers the deque of the last owner).
    last_owner: Option<usize>,
    /// Acquisitions whose worker differed from the previous one.
    migrations: u64,
}

impl<T: Tracker> core::fmt::Debug for StreamWork<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StreamWork")
            .field("jobs", &self.jobs.len())
            .field("sched", &self.sched)
            .field("pipeline", &self.pipeline.is_some())
            .field("last_owner", &self.last_owner)
            .field("migrations", &self.migrations)
            .finish()
    }
}

/// Shared per-stream state: admission gate, counters, the collector's
/// ordered output buffer and the schedulable work queue.
#[derive(Debug)]
struct StreamState<T: Tracker> {
    gate: ChunkGate,
    counters: Mutex<StreamCounters>,
    /// Signalled when `counters.finished` or `counters.failed` flips.
    progress: Condvar,
    results: Mutex<Vec<FrameResult>>,
    /// Queue-wait and producer-block counters, labelled by camera.
    telemetry: StreamTelemetry,
    /// Job queue + ownership state + parked pipeline.
    work: Mutex<StreamWork<T>>,
}

/// Growable, append-only registry of stream slots. Slots are only ever
/// appended (never removed or reordered), so a [`StreamId`] stays valid
/// for the engine's whole lifetime.
#[derive(Debug)]
struct StreamTable<T: Tracker> {
    slots: RwLock<Vec<Arc<StreamState<T>>>>,
}

impl<T: Tracker> Default for StreamTable<T> {
    fn default() -> Self {
        Self { slots: RwLock::new(Vec::new()) }
    }
}

impl<T: Tracker> StreamTable<T> {
    fn get(&self, id: usize) -> Option<Arc<StreamState<T>>> {
        self.slots.read().unwrap_or_else(PoisonError::into_inner).get(id).cloned()
    }

    fn len(&self) -> usize {
        self.slots.read().unwrap_or_else(PoisonError::into_inner).len()
    }

    fn all(&self) -> Vec<Arc<StreamState<T>>> {
        self.slots.read().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

/// The ready set: stream ids with queued work, awaiting a worker. A
/// global injector receives streams with no affinity; per-worker deques
/// hold streams the worker last owned (re-queued there after a batch,
/// or injected there by producers for locality). Idle workers steal
/// from other deques, oldest first, so load balances without pinning.
///
/// Everything lives under one mutex: scheduling operations are a
/// handful of `usize` pushes/pops, and batching means workers take the
/// lock once per *batch*, not once per chunk — correctness (no lost
/// wakeups, no stream in two queues) is worth far more here than a
/// lock-free deque.
#[derive(Debug)]
struct SchedQueues {
    injector: VecDeque<usize>,
    locals: Vec<VecDeque<usize>>,
    /// Streams currently ready (in the injector or any deque).
    ready: usize,
    ready_high_water: usize,
    shutdown: bool,
}

#[derive(Debug)]
struct Scheduler {
    state: Mutex<SchedQueues>,
    available: Condvar,
    /// Live ready-set size for the exposition.
    ready_gauge: Arc<Gauge>,
}

/// One successful stream acquisition from the scheduler.
struct Acquired {
    stream: usize,
    /// Taken from another worker's deque.
    stolen: bool,
}

impl Scheduler {
    fn new(workers: usize, ready_gauge: Arc<Gauge>) -> Self {
        Self {
            state: Mutex::new(SchedQueues {
                injector: VecDeque::new(),
                locals: (0..workers).map(|_| VecDeque::new()).collect(),
                ready: 0,
                ready_high_water: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            ready_gauge,
        }
    }

    /// Marks `stream` ready: into `prefer`'s deque when the last owner
    /// is known (locality), the global injector otherwise.
    fn inject(&self, stream: usize, prefer: Option<usize>) {
        let mut state = lock(&self.state);
        match prefer {
            Some(w) if w < state.locals.len() => state.locals[w].push_back(stream),
            _ => state.injector.push_back(stream),
        }
        state.ready += 1;
        state.ready_high_water = state.ready_high_water.max(state.ready);
        self.ready_gauge.set(state.ready as i64);
        drop(state);
        self.available.notify_one();
    }

    /// Blocks until a ready stream is available and claims it: own
    /// deque first (newest first — locality), then the injector, then a
    /// steal from another worker's deque (oldest first). `skip_local`
    /// (jitter only) demotes the own-deque check behind the steal scan,
    /// forcing migrations. Returns `None` once the engine shut down and
    /// every queue is empty.
    fn next(&self, worker: usize, skip_local: bool) -> Option<Acquired> {
        let mut state = lock(&self.state);
        loop {
            if !skip_local {
                if let Some(stream) = state.locals[worker].pop_back() {
                    return Some(self.claim(&mut state, stream, false));
                }
            }
            if let Some(stream) = state.injector.pop_front() {
                return Some(self.claim(&mut state, stream, false));
            }
            let workers = state.locals.len();
            for victim in (worker + 1..workers).chain(0..worker) {
                if let Some(stream) = state.locals[victim].pop_front() {
                    return Some(self.claim(&mut state, stream, true));
                }
            }
            // Jitter demoted the own deque; it must still drain.
            if let Some(stream) = state.locals[worker].pop_back() {
                return Some(self.claim(&mut state, stream, false));
            }
            if state.shutdown {
                return None;
            }
            state = self.available.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn claim(&self, state: &mut SchedQueues, stream: usize, stolen: bool) -> Acquired {
        state.ready -= 1;
        self.ready_gauge.set(state.ready as i64);
        Acquired { stream, stolen }
    }

    /// Lets workers exit once every queue is drained. Idempotent.
    fn shutdown(&self) {
        lock(&self.state).shutdown = true;
        self.available.notify_all();
    }

    fn ready_high_water(&self) -> usize {
        lock(&self.state).ready_high_water
    }
}

/// Per-stream router/collector totals, carried across an
/// [`Engine::detach_with_state`] → [`Engine::attach_with_state`]
/// hand-off so a resumed session's statistics continue from where the
/// severed one stopped instead of restarting at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamTotals {
    /// Events accepted by the router.
    pub events_in: u64,
    /// Chunks accepted by the router.
    pub chunks_in: u64,
    /// Frames emitted by the pipeline.
    pub frames_out: u64,
    /// Confirmed track boxes reported.
    pub tracks_out: u64,
}

/// Everything [`Engine::detach_with_state`] hands back: the checkpoint,
/// the stream's running totals, and any frames not yet drained with
/// [`Engine::take_results`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionHandoff {
    /// The pipeline's checkpoint, ready for
    /// [`Engine::attach_with_state`] (same or another engine) or an
    /// `EBSS` snapshot on disk.
    pub state: ebbiot_core::SessionState,
    /// The stream's router/collector totals at hand-off.
    pub totals: StreamTotals,
    /// Frames emitted but not yet drained, in emission order.
    pub frames: Vec<FrameResult>,
}

/// Poisons every stream gate when a worker thread unwinds, so producers
/// blocked on a full queue (and sessions blocked in
/// [`Engine::wait_finished`]) fail fast instead of hanging forever.
struct PoisonOnPanic<T: Tracker>(Arc<StreamTable<T>>);

impl<T: Tracker> Drop for PoisonOnPanic<T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            for stream in self.0.all() {
                stream.gate.poison();
                lock(&stream.counters).failed = true;
                stream.progress.notify_all();
            }
        }
    }
}

/// SplitMix64 — the jitter source for schedule perturbation (test-only;
/// deterministic per seed so failures reproduce).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A multi-camera tracking engine: owns one [`Pipeline`] per stream and
/// drives them on a fixed pool of work-stealing worker threads.
///
/// Streams are either handed over at construction ([`Engine::new`]) or
/// attached to the *running* engine one at a time ([`Engine::attach`]) —
/// the latter is how `ebbiot_server` maps network sessions onto engine
/// streams — and both kinds obey the same determinism guarantee.
///
/// See the [crate docs](crate) for the determinism guarantee and an
/// example.
#[derive(Debug)]
pub struct Engine<T: Tracker + Send + 'static = BoxedTracker> {
    scheduler: Arc<Scheduler>,
    workers: Vec<JoinHandle<()>>,
    streams: Arc<StreamTable<T>>,
    config: EngineConfig,
    started: Instant,
    /// Serialises `attach` so slot allocation stays ordered.
    attach_lock: Mutex<()>,
    /// Engine-wide contention instruments (always on — per-chunk cost).
    telemetry: EngineTelemetry,
    /// Per-worker counters, indexed by worker; shared with the threads.
    worker_stats: Vec<WorkerTelemetry>,
}

impl<T: Tracker + Send + 'static> Engine<T> {
    /// Spawns the worker pool, taking ownership of one pipeline per
    /// stream. Stream `i` gets [`StreamId`]`(i)`; any worker may drive
    /// any stream (ownership migrates, one worker at a time).
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` is zero or `config.queue_capacity`
    /// is zero.
    #[must_use]
    pub fn new(config: EngineConfig, pipelines: Vec<Pipeline<T>>) -> Self {
        Self::with_registry(config, pipelines, Arc::new(Registry::new()))
    }

    /// Like [`Self::new`], but registers the engine's contention metrics
    /// in a caller-provided [`Registry`] — so one registry can aggregate
    /// engine, pipeline and server metrics for a single STATS exposition.
    ///
    /// # Panics
    ///
    /// Panics like [`Self::new`].
    #[must_use]
    pub fn with_registry(
        config: EngineConfig,
        pipelines: Vec<Pipeline<T>>,
        registry: Arc<Registry>,
    ) -> Self {
        assert!(config.workers > 0, "engine needs at least one worker");
        // More workers than initial streams can never all run at once
        // (a stream is owned by one worker at a time) unless sessions
        // attach later; clamp to the construction-time stream count as
        // the historical behaviour. Determinism never depended on the
        // worker count — and the scheduler drains fine oversubscribed.
        let workers =
            if pipelines.is_empty() { config.workers } else { config.workers.min(pipelines.len()) };
        let config = EngineConfig { workers, ..config };
        let streams: Arc<StreamTable<T>> = Arc::new(StreamTable::default());
        let telemetry = EngineTelemetry::register(registry);
        let scheduler =
            Arc::new(Scheduler::new(config.workers, Arc::clone(&telemetry.ready_streams)));

        let mut worker_handles = Vec::with_capacity(config.workers);
        let mut worker_stats = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let streams = Arc::clone(&streams);
            let scheduler = Arc::clone(&scheduler);
            let stats = WorkerTelemetry::register(telemetry.registry(), w);
            worker_stats.push(stats.clone());
            let shared = telemetry.clone();
            let batch = config.batch_chunks.max(1);
            let jitter = config.schedule_jitter;
            let handle = std::thread::Builder::new()
                .name(format!("ebbiot-worker-{w}"))
                .spawn(move || worker_loop(w, &scheduler, &streams, &shared, &stats, batch, jitter))
                .expect("spawn engine worker");
            worker_handles.push(handle);
        }

        let engine = Self {
            scheduler,
            workers: worker_handles,
            streams,
            config,
            started: Instant::now(),
            attach_lock: Mutex::new(()),
            telemetry,
            worker_stats,
        };
        for pipeline in pipelines {
            let _ = engine.attach(pipeline);
        }
        engine
    }

    /// The engine's contention instruments (histograms readable live).
    #[must_use]
    pub const fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    /// The registry the engine's metrics live in.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        self.telemetry.registry()
    }

    /// Number of stream slots ever allocated (attached streams are
    /// counted even after [`Engine::detach`] — ids are not reused).
    #[must_use]
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Number of worker threads actually spawned (the configured count,
    /// clamped to the construction-time stream count when pipelines were
    /// handed to [`Engine::new`]).
    #[must_use]
    pub const fn num_workers(&self) -> usize {
        self.config.workers
    }

    /// Adds a stream to the *running* engine: allocates the next
    /// [`StreamId`], parks `pipeline` in the stream's slot and returns
    /// the id. Chunks may be pushed immediately — the pipeline is
    /// installed before `attach` returns, so the first worker to
    /// acquire the stream finds it in place (no hand-off race).
    ///
    /// This is how network sessions join: `ebbiot_server` attaches one
    /// stream per accepted connection and detaches it when the session
    /// ends.
    pub fn attach(&self, pipeline: Pipeline<T>) -> StreamId {
        self.attach_inner(pipeline, StreamTotals::default())
    }

    /// Like [`Self::attach`], but resumes a checkpointed session: the
    /// pipeline (restored via `Pipeline::restore` or handed over live
    /// by [`Self::detach_with_state`]) picks up at its checkpoint, and
    /// the new stream's counters continue from `totals` instead of
    /// zero — so fleet statistics survive the hand-off. Installation
    /// before return makes this safe on a running engine, like
    /// `attach`.
    pub fn attach_with_state(&self, pipeline: Pipeline<T>, totals: StreamTotals) -> StreamId {
        self.attach_inner(pipeline, totals)
    }

    fn attach_inner(&self, pipeline: Pipeline<T>, totals: StreamTotals) -> StreamId {
        let _guard = lock(&self.attach_lock);
        let active_trackers = pipeline.active_trackers();
        let id = {
            let mut slots = self.streams.slots.write().unwrap_or_else(PoisonError::into_inner);
            let name = StreamId(slots.len()).to_string();
            slots.push(Arc::new(StreamState {
                gate: ChunkGate::new(self.config.queue_capacity),
                counters: Mutex::new(StreamCounters {
                    events_in: totals.events_in,
                    chunks_in: totals.chunks_in,
                    frames_out: totals.frames_out,
                    tracks_out: totals.tracks_out,
                    active_trackers,
                    ..StreamCounters::default()
                }),
                progress: Condvar::new(),
                results: Mutex::new(Vec::new()),
                telemetry: StreamTelemetry::register(self.telemetry.registry(), &name),
                work: Mutex::new(StreamWork {
                    jobs: VecDeque::new(),
                    sched: Sched::Idle,
                    pipeline: Some(pipeline),
                    last_owner: None,
                    migrations: 0,
                }),
            }));
            slots.len() - 1
        };
        StreamId(id)
    }

    fn state(&self, stream: StreamId) -> Arc<StreamState<T>> {
        self.streams.get(stream.0).unwrap_or_else(|| {
            panic!("unknown stream {stream}: engine has {} streams", self.streams.len())
        })
    }

    /// Appends a job to the stream's FIFO queue, marking the stream
    /// ready (and waking a worker) when it was idle. A stream already
    /// queued or running will see the job when its owner re-checks the
    /// queue after the current batch.
    fn enqueue(&self, state: &StreamState<T>, id: usize, item: WorkItem) {
        let inject = {
            let mut work = lock(&state.work);
            work.jobs.push_back(item);
            if work.sched == Sched::Idle {
                work.sched = Sched::Queued;
                Some(work.last_owner)
            } else {
                None
            }
        };
        if let Some(prefer) = inject {
            self.scheduler.inject(id, prefer);
        }
    }

    fn submit(&self, stream: StreamId, chunk: Vec<Event>) {
        let state = self.state(stream);
        {
            let mut counters = lock(&state.counters);
            assert!(!counters.closed, "push to {stream} after finish_stream");
            counters.chunks_in += 1;
            counters.events_in += chunk.len() as u64;
        }
        self.enqueue(&state, stream.0, WorkItem::Chunk(chunk, Instant::now()));
    }

    /// Routes a time-ordered chunk of events to `stream`, blocking while
    /// the stream's queue is at capacity (back-pressure). Chunks pushed
    /// by one producer are processed in push order; nothing is ever
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream, after [`Self::finish_stream`], or
    /// when a worker has failed.
    pub fn push(&self, stream: StreamId, chunk: Vec<Event>) {
        let state = self.state(stream);
        let admission = Instant::now();
        let depth = state.gate.acquire();
        state.telemetry.producer_block.add_duration(admission.elapsed());
        self.telemetry.queue_depth.record(depth as u64);
        self.submit(stream, chunk);
    }

    /// Like [`Self::push`] but never blocks: a full stream queue hands
    /// the chunk back as [`RejectedChunk`] for the producer to retry.
    ///
    /// # Errors
    ///
    /// Returns the chunk untouched when the stream is at capacity.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream, after [`Self::finish_stream`], or
    /// when a worker has failed.
    pub fn try_push(&self, stream: StreamId, chunk: Vec<Event>) -> Result<(), RejectedChunk> {
        if let Some(depth) = self.state(stream).gate.try_acquire() {
            self.telemetry.queue_depth.record(depth as u64);
            self.submit(stream, chunk);
            Ok(())
        } else {
            Err(RejectedChunk(chunk))
        }
    }

    /// Ends `stream`: its pipeline emits the open window plus trailing
    /// empty frames covering at least `span_us` (the streaming
    /// counterpart of `process_recording`'s span). Must be the last
    /// submission for the stream.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream, on a second `finish_stream` for the
    /// same stream, or when a worker has failed.
    pub fn finish_stream(&self, stream: StreamId, span_us: Micros) {
        let state = self.state(stream);
        {
            let mut counters = lock(&state.counters);
            assert!(!counters.closed, "finish_stream called twice for {stream}");
            counters.closed = true;
        }
        self.enqueue(&state, stream.0, WorkItem::Finish(span_us));
    }

    /// Blocks until the worker has processed `stream`'s finish job, so
    /// every frame the stream will ever emit is available to
    /// [`Self::take_results`]. Must be called after
    /// [`Self::finish_stream`].
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream, when `finish_stream` was never
    /// called for it (the wait could block forever), or when a worker
    /// has failed.
    pub fn wait_finished(&self, stream: StreamId) {
        let state = self.state(stream);
        let mut counters = lock(&state.counters);
        assert!(counters.closed, "wait_finished on {stream} before finish_stream");
        while !counters.finished {
            assert!(!counters.failed, "engine worker failed while {stream} awaited finish");
            counters = state.progress.wait(counters).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Drains and returns the frames `stream` has emitted since the last
    /// take — the incremental counterpart of [`Self::join`]'s per-stream
    /// output, used by sessions streaming results back to a client while
    /// ingestion is still running. Frames are returned exactly once and
    /// always in emission order.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream.
    #[must_use]
    pub fn take_results(&self, stream: StreamId) -> Vec<FrameResult> {
        let state = self.state(stream);
        let taken = std::mem::take(&mut *lock(&state.results));
        taken
    }

    /// The highest queue depth `stream` has seen — the per-stream
    /// counterpart of [`Snapshot::max_queue_high_water`], without
    /// snapshotting every stream.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream.
    #[must_use]
    pub fn queue_high_water(&self, stream: StreamId) -> usize {
        self.state(stream).gate.high_water()
    }

    /// Retires a finished stream from the running engine: queues a job
    /// that drops its pipeline and returns any frames not yet drained
    /// by [`Self::take_results`]. The [`StreamId`] stays allocated (ids
    /// are never reused) but accepts no further pushes.
    ///
    /// A detached slot is retained as a small tombstone so ids stay
    /// stable and its final counters remain visible to
    /// [`Self::snapshot`]; an engine serving short-lived sessions
    /// therefore grows by one (drained) slot per session over its
    /// lifetime.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream, when the stream has not finished
    /// (call [`Self::finish_stream`] then [`Self::wait_finished`]
    /// first), on a second detach, or when a worker has failed.
    pub fn detach(&self, stream: StreamId) -> Vec<FrameResult> {
        let state = self.state(stream);
        {
            let mut counters = lock(&state.counters);
            assert!(counters.finished, "detach of {stream} before its finish was processed");
            assert!(!counters.detached, "detach called twice for {stream}");
            counters.detached = true;
        }
        self.enqueue(&state, stream.0, WorkItem::Detach);
        let remaining = std::mem::take(&mut *lock(&state.results));
        remaining
    }

    /// Checkpoints and retires a **running** stream: blocks until the
    /// owning worker has drained every chunk already pushed, then
    /// freezes the pipeline into a
    /// [`SessionState`](ebbiot_core::SessionState) and returns it with
    /// the stream's totals and undrained frames. No `finish_stream`
    /// happens — the open window rides along inside the state, so a
    /// later [`Self::attach_with_state`] (same engine, another engine,
    /// or another process via an `EBSS` snapshot) resumes bit-
    /// identically to a never-interrupted run.
    ///
    /// Race-freedom comes from the per-stream FIFO job queue: the
    /// hand-off job is enqueued behind every accepted chunk, so
    /// whichever worker owns the stream checkpoints only after all of
    /// them — and no chunk can arrive after it (the slot is closed to
    /// producers first). Which worker that is doesn't matter.
    ///
    /// # Panics
    ///
    /// Panics on an unknown stream, after [`Self::finish_stream`] (a
    /// finished stream has nothing live to hand over — use
    /// [`Self::detach`]), on a second detach, or when a worker has
    /// failed.
    pub fn detach_with_state(&self, stream: StreamId) -> SessionHandoff {
        let state = self.state(stream);
        {
            let mut counters = lock(&state.counters);
            assert!(!counters.closed, "detach_with_state of {stream} after finish_stream");
            assert!(!counters.detached, "detach called twice for {stream}");
            counters.closed = true;
            counters.detached = true;
        }
        let (tx, rx) = mpsc::channel();
        self.enqueue(&state, stream.0, WorkItem::DetachWithState(tx));
        let session = rx.recv().expect("engine worker failed during the state hand-off");
        let frames = std::mem::take(&mut *lock(&state.results));
        let totals = {
            let counters = lock(&state.counters);
            StreamTotals {
                events_in: counters.events_in,
                chunks_in: counters.chunks_in,
                frames_out: counters.frames_out,
                tracks_out: counters.tracks_out,
            }
        };
        SessionHandoff { state: session, totals, frames }
    }

    /// Current per-stream, per-worker and scheduler statistics.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            elapsed: self.started.elapsed(),
            streams: self
                .streams
                .all()
                .iter()
                .enumerate()
                .map(|(i, state)| {
                    let counters = lock(&state.counters);
                    let (last_owner, migrations) = {
                        let work = lock(&state.work);
                        (work.last_owner, work.migrations)
                    };
                    StreamSnapshot {
                        id: StreamId(i),
                        events_in: counters.events_in,
                        chunks_in: counters.chunks_in,
                        frames_out: counters.frames_out,
                        tracks_out: counters.tracks_out,
                        active_trackers: counters.active_trackers,
                        queue_depth: state.gate.depth(),
                        queue_high_water: state.gate.high_water(),
                        queue_wait_ns: state.telemetry.queue_wait.get(),
                        producer_block_ns: state.telemetry.producer_block.get(),
                        last_owner,
                        migrations,
                        finished: counters.finished,
                        detached: counters.detached,
                    }
                })
                .collect(),
            workers: self
                .worker_stats
                .iter()
                .enumerate()
                .map(|(id, stats)| WorkerSnapshot {
                    id,
                    busy_ns: stats.busy.get(),
                    acquire_ns: stats.acquire.get(),
                    idle_ns: stats.idle.get(),
                    queue_wait_ns: stats.queue_wait.get(),
                    wall_ns: stats.wall.get(),
                    chunks: stats.chunks.get(),
                    steals: stats.steals.get(),
                })
                .collect(),
            scheduler: SchedulerSnapshot {
                steals: self.telemetry.steals.get(),
                batches: self.telemetry.batch_size.count(),
                batch_mean: self.telemetry.batch_size.mean(),
                batch_max_le: self.telemetry.batch_size.max_bound(),
                ready_high_water: self.scheduler.ready_high_water(),
            },
        }
    }

    /// Shuts the engine down: signals the scheduler, waits for the
    /// workers to drain every queued job, and returns every stream's
    /// re-sequenced frame output plus a final [`Snapshot`]. Streams
    /// already drained through [`Self::take_results`] /
    /// [`Self::detach`] contribute only their untaken frames (usually
    /// none).
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic (e.g. out-of-order events pushed to a
    /// stream) on the caller.
    #[must_use]
    pub fn join(mut self) -> EngineOutput {
        self.scheduler.shutdown();
        for worker in self.workers.drain(..) {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
        let streams =
            self.streams.all().iter().map(|s| std::mem::take(&mut *lock(&s.results))).collect();
        EngineOutput { streams, snapshot: self.snapshot() }
    }
}

impl<T: Tracker + Send + 'static> Drop for Engine<T> {
    /// An engine dropped without [`Engine::join`] (e.g. a replay error
    /// path) must not strand its workers in the scheduler wait: signal
    /// shutdown so they drain whatever is queued and exit detached.
    fn drop(&mut self) {
        self.scheduler.shutdown();
    }
}

/// Appends one job's frames to the stream's ordered results and folds
/// its counts into the stream counters. Frames are published *before*
/// `finished` flips: a waiter in `wait_finished` may observe the flag
/// without ever blocking on the condvar, and its follow-up
/// `take_results`/`detach` must already see every frame the stream will
/// ever emit.
fn publish<T: Tracker>(
    state: &StreamState<T>,
    telemetry: &EngineTelemetry,
    frames: Vec<FrameResult>,
    active_trackers: usize,
    finished: bool,
) {
    let (frame_count, track_count) =
        (frames.len() as u64, frames.iter().map(|f| f.tracks.len() as u64).sum::<u64>());
    {
        let mut results = lock(&state.results);
        results.extend(frames);
        telemetry.collector_buffered.record(results.len() as u64);
    }
    {
        let mut counters = lock(&state.counters);
        counters.frames_out += frame_count;
        counters.tracks_out += track_count;
        counters.active_trackers = active_trackers;
        counters.finished |= finished;
    }
    if finished {
        state.progress.notify_all();
    }
}

fn worker_loop<T: Tracker>(
    worker: usize,
    scheduler: &Scheduler,
    streams: &Arc<StreamTable<T>>,
    telemetry: &EngineTelemetry,
    stats: &WorkerTelemetry,
    batch_chunks: usize,
    jitter: Option<u64>,
) {
    let _poison_guard = PoisonOnPanic(Arc::clone(streams));
    let mut rng =
        jitter.map(|seed| SplitMix(seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 1));
    // Worker-local scratch, reused across every batch drain: the job
    // buffer never reallocates once grown to the batch limit.
    let mut batch: Vec<WorkItem> = Vec::with_capacity(batch_chunks);
    // Telescoping time accounting: every nanosecond between `started`
    // and exit is attributed to exactly one of idle (waiting for a
    // ready stream), acquire (claiming ownership + draining the batch)
    // or busy (processing jobs), so busy + acquire + idle == wall
    // *exactly*.
    let started = Instant::now();
    let mut mark = started;
    loop {
        // Jitter (tests only): perturb the schedule so the determinism
        // proptests explore many steal/migration interleavings.
        let mut skip_local = false;
        if let Some(rng) = rng.as_mut() {
            let roll = rng.next();
            skip_local = roll % 3 == 0;
            if roll % 4 == 0 {
                std::thread::yield_now();
            } else if roll % 5 == 0 {
                std::thread::sleep(Duration::from_micros(roll % 200));
            }
        }
        let Some(acquired) = scheduler.next(worker, skip_local) else {
            let now = Instant::now();
            stats.idle.add_duration(now - mark);
            stats.wall.add_duration(now - started);
            break;
        };
        let picked = Instant::now();
        stats.idle.add_duration(picked - mark);
        if acquired.stolen {
            stats.steals.inc();
            telemetry.steals.inc();
        }
        let state = streams.get(acquired.stream).expect("scheduled stream exists");

        // Acquire: take exclusive ownership, drain one batch of jobs
        // and lift the pipeline out (it travels with the batch).
        let mut pipeline = {
            let mut work = lock(&state.work);
            debug_assert_eq!(work.sched, Sched::Queued, "acquired stream must be queued");
            work.sched = Sched::Running;
            if work.last_owner != Some(worker) {
                if work.last_owner.is_some() {
                    work.migrations += 1;
                }
                work.last_owner = Some(worker);
            }
            let take = work.jobs.len().min(batch_chunks);
            batch.extend(work.jobs.drain(..take));
            work.pipeline.take()
        };
        telemetry.batch_size.record(batch.len() as u64);
        let dequeued = Instant::now();
        stats.acquire.add_duration(dequeued - picked);

        for job in batch.drain(..) {
            match job {
                WorkItem::Chunk(chunk, enqueued) => {
                    let wait = dequeued.saturating_duration_since(enqueued);
                    telemetry.queue_wait.record_duration(wait);
                    stats.queue_wait.add_duration(wait);
                    state.telemetry.queue_wait.add_duration(wait);
                    stats.chunks.inc();
                    let p = pipeline.as_mut().expect("owned stream has a pipeline");
                    let frames = p.push(&chunk);
                    publish(&state, telemetry, frames, p.active_trackers(), false);
                    state.gate.release();
                }
                WorkItem::Finish(span_us) => {
                    let p = pipeline.as_mut().expect("owned stream has a pipeline");
                    let frames = p.finish(span_us);
                    let active = p.active_trackers();
                    publish(&state, telemetry, frames, active, true);
                }
                WorkItem::Detach => {
                    pipeline = None;
                }
                WorkItem::DetachWithState(reply) => {
                    let p = pipeline.take().expect("owned stream has a pipeline");
                    // A dropped receiver means the detaching thread gave
                    // up (e.g. panicked); discard the state.
                    let _ = reply.send(p.checkpoint());
                }
            }
        }

        // Release: park the pipeline and, if more jobs arrived while
        // this batch ran, mark the stream ready again (own deque, for
        // locality — idle peers can still steal it).
        let requeue = {
            let mut work = lock(&state.work);
            work.pipeline = pipeline.take();
            if work.jobs.is_empty() {
                work.sched = Sched::Idle;
                false
            } else {
                work.sched = Sched::Queued;
                true
            }
        };
        if requeue {
            scheduler.inject(acquired.stream, Some(worker));
        }
        let done = Instant::now();
        stats.busy.add_duration(done - dequeued);
        mark = done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
    use ebbiot_events::SensorGeometry;

    fn pipelines(n: usize) -> Vec<EbbiotPipeline> {
        let config = EbbiotConfig::paper_default(SensorGeometry::davis240());
        (0..n).map(|_| EbbiotPipeline::new(config.clone())).collect()
    }

    /// Dense block of events surviving the median filter.
    fn block_events(x0: u16, t0: u64) -> Vec<Event> {
        let mut events = Vec::new();
        for dy in 0..12u16 {
            for dx in 0..24u16 {
                events.push(Event::on(x0 + dx, 80 + dy, t0 + u64::from(dy)));
            }
        }
        events
    }

    #[test]
    fn engine_with_no_streams_joins_empty() {
        let engine = Engine::new(EngineConfig::with_workers(2), pipelines(0));
        let out = engine.join();
        assert!(out.streams.is_empty());
        assert_eq!(out.snapshot.events_in(), 0);
        assert_eq!(out.snapshot.scheduler.batches, 0);
    }

    #[test]
    fn per_stream_outputs_match_sequential_for_any_worker_count() {
        let chunks: Vec<Vec<Event>> =
            (0..5u64).map(|k| block_events(40 + 4 * k as u16, k * 66_000)).collect();
        let span = 8 * 66_000;

        let mut reference = pipelines(1).pop().unwrap();
        let mut expected = Vec::new();
        for chunk in &chunks {
            expected.extend(reference.push(chunk));
        }
        expected.extend(reference.finish(span));

        for workers in [1, 2, 3, 8] {
            let engine = Engine::new(EngineConfig::with_workers(workers), pipelines(3));
            for chunk in &chunks {
                for s in 0..3 {
                    engine.push(StreamId(s), chunk.clone());
                }
            }
            for s in 0..3 {
                engine.finish_stream(StreamId(s), span);
            }
            let out = engine.join();
            assert_eq!(out.streams.len(), 3);
            for (s, frames) in out.streams.iter().enumerate() {
                assert_eq!(frames, &expected, "stream {s} with {workers} workers");
            }
            assert_eq!(out.snapshot.frames_out(), 3 * expected.len() as u64);
            assert!(out.snapshot.streams.iter().all(|s| s.finished));
        }
    }

    #[test]
    fn batching_amortizes_acquisitions_below_chunk_count() {
        // One worker, one stream, tiny batch limit: acquisitions are
        // counted per batch, not per chunk, and respect the limit.
        let config = EngineConfig {
            workers: 1,
            batch_chunks: 2,
            queue_capacity: 32,
            ..EngineConfig::default()
        };
        let engine = Engine::new(config, pipelines(1));
        for k in 0..6u64 {
            engine.push(StreamId(0), block_events(40 + 3 * k as u16, k * 66_000));
        }
        engine.finish_stream(StreamId(0), 7 * 66_000);
        let out = engine.join();
        let sched = out.snapshot.scheduler;
        assert!(sched.batches >= 1, "at least one acquisition");
        assert!(
            sched.batches <= 7,
            "never more acquisitions than jobs (6 chunks + finish): {}",
            sched.batches
        );
        assert!(sched.batch_mean >= 1.0);
        assert!(sched.batch_max_le >= 1);
        assert_eq!(sched.steals, 0, "one worker cannot steal from itself");
        assert!(sched.ready_high_water >= 1);
        assert_eq!(out.snapshot.streams[0].last_owner, Some(0));
        assert_eq!(out.snapshot.streams[0].migrations, 0, "one worker, no migrations");
    }

    #[test]
    fn snapshot_counts_router_accepts() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(2));
        engine.push(StreamId(0), block_events(40, 0));
        engine.push(StreamId(0), block_events(44, 66_000));
        engine.push(StreamId(1), block_events(40, 0));
        let snap = engine.snapshot();
        assert_eq!(snap.streams[0].chunks_in, 2);
        assert_eq!(snap.streams[1].chunks_in, 1);
        assert_eq!(snap.events_in(), 3 * 288);
        let out = engine.join();
        assert!(out.snapshot.streams[0].queue_high_water >= 1);
        assert_eq!(out.snapshot.events_in(), 3 * 288);
        assert!(out.snapshot.elapsed >= snap.elapsed);
    }

    #[test]
    #[should_panic(expected = "unknown stream")]
    fn pushing_to_unknown_stream_panics() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        engine.push(StreamId(7), Vec::new());
    }

    #[test]
    #[should_panic(expected = "after finish_stream")]
    fn pushing_after_finish_panics() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        engine.finish_stream(StreamId(0), 66_000);
        // The producer-side closed flag fires immediately — no need to
        // wait for the worker to process the finish job.
        engine.push(StreamId(0), Vec::new());
    }

    #[test]
    #[should_panic(expected = "called twice")]
    fn double_finish_panics() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        engine.finish_stream(StreamId(0), 66_000);
        engine.finish_stream(StreamId(0), 66_000);
    }

    #[test]
    fn workers_are_clamped_to_stream_count() {
        let engine = Engine::new(EngineConfig::with_workers(64), pipelines(2));
        assert_eq!(engine.num_workers(), 2);
        // An engine built without initial pipelines keeps its configured
        // worker count for streams attached later.
        let engine = Engine::new(EngineConfig::with_workers(3), pipelines(0));
        assert_eq!(engine.num_workers(), 3);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn worker_panic_resurfaces_on_join() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        engine.push(StreamId(0), vec![Event::on(10, 10, 70_000)]);
        engine.push(StreamId(0), vec![Event::on(10, 10, 0)]); // out of order
        let _ = engine.join();
    }

    #[test]
    fn zero_duration_snapshot_rates_are_zero_not_nan() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        engine.push(StreamId(0), block_events(40, 0));
        let mut snap = engine.snapshot();
        snap.elapsed = Duration::ZERO;
        assert!(snap.events_in() > 0, "events were accepted");
        assert_eq!(snap.events_per_sec(), 0.0, "zero-duration rate is 0, not inf/NaN");
        assert_eq!(snap.frames_per_sec(), 0.0);
        assert!(snap.events_per_sec().is_finite() && snap.frames_per_sec().is_finite());
        engine.finish_stream(StreamId(0), 66_000);
        let _ = engine.join();
    }

    #[test]
    fn worker_time_accounting_is_exact_after_join() {
        let engine = Engine::new(EngineConfig::with_workers(2), pipelines(2));
        for k in 0..4u64 {
            engine.push(StreamId(0), block_events(40 + 3 * k as u16, k * 66_000));
            engine.push(StreamId(1), block_events(60 + 3 * k as u16, k * 66_000));
        }
        engine.finish_stream(StreamId(0), 5 * 66_000);
        engine.finish_stream(StreamId(1), 5 * 66_000);
        let out = engine.join();
        assert_eq!(out.snapshot.workers.len(), 2);
        for worker in &out.snapshot.workers {
            assert!(worker.wall_ns > 0, "wall stamped at worker exit");
            assert_eq!(
                worker.busy_ns + worker.acquire_ns + worker.idle_ns,
                worker.wall_ns,
                "telescoping accounting: busy + acquire + idle == wall for worker {}",
                worker.id
            );
        }
        // Chunk bookkeeping lines up across views: per-worker chunk
        // counts equal router accepts (which worker drained which chunk
        // is the scheduler's business — only the total is invariant).
        let accepted: u64 = out.snapshot.streams.iter().map(|s| s.chunks_in).sum();
        let drained: u64 = out.snapshot.workers.iter().map(|w| w.chunks).sum();
        assert_eq!(drained, accepted);
        // Every drained chunk was part of exactly one batch.
        let sched = out.snapshot.scheduler;
        assert!(sched.batches >= 2, "each stream needs at least one acquisition");
        assert_eq!(
            out.snapshot.workers.iter().map(|w| w.steals).sum::<u64>(),
            sched.steals,
            "per-worker steals sum to the scheduler total"
        );
    }

    #[test]
    fn stream_queue_wait_counters_accumulate() {
        let registry = Arc::new(Registry::new());
        let engine = Engine::with_registry(
            EngineConfig::with_workers(1),
            pipelines(1),
            Arc::clone(&registry),
        );
        let telemetry = engine.telemetry().clone();
        for k in 0..3u64 {
            engine.push(StreamId(0), block_events(40 + 3 * k as u16, k * 66_000));
        }
        engine.finish_stream(StreamId(0), 4 * 66_000);
        let out = engine.join();
        let stream = &out.snapshot.streams[0];
        assert!(stream.queue_wait_ns > 0, "every chunk waits at least a little");
        assert_eq!(telemetry.queue_wait.count(), 3, "one sample per chunk");
        assert_eq!(telemetry.queue_depth.count(), 3, "one depth sample per push");
        let text = registry.render();
        assert!(
            text.contains("ebbiot_engine_stream_queue_wait_nanoseconds_total{stream=\"cam00\"}")
        );
        assert!(text.contains("ebbiot_engine_worker_chunks_total{worker=\"0\"} 3"));
        assert!(text.contains("ebbiot_engine_steals_total"));
        assert!(text.contains("ebbiot_engine_batch_chunks"));
    }

    #[test]
    fn stream_id_displays_as_camera() {
        assert_eq!(StreamId(3).to_string(), "cam03");
        assert_eq!(StreamId(12).to_string(), "cam12");
    }

    #[test]
    fn attached_sessions_match_construction_time_streams() {
        // One stream from construction, one attached while running —
        // identical inputs must give identical outputs.
        let chunks: Vec<Vec<Event>> =
            (0..4u64).map(|k| block_events(50 + 3 * k as u16, k * 66_000)).collect();
        let span = 5 * 66_000;

        let engine = Engine::new(EngineConfig::with_workers(2), pipelines(1));
        for chunk in &chunks {
            engine.push(StreamId(0), chunk.clone());
        }
        let attached = engine.attach(pipelines(1).pop().unwrap());
        assert_eq!(attached, StreamId(1));
        for chunk in &chunks {
            engine.push(attached, chunk.clone());
        }
        engine.finish_stream(StreamId(0), span);
        engine.finish_stream(attached, span);
        let out = engine.join();
        assert_eq!(out.streams[0], out.streams[1]);
        assert!(!out.streams[0].is_empty());
    }

    #[test]
    fn take_results_drains_incrementally_and_join_returns_the_rest() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        // Two windows: pushing the second window's events completes the
        // first frame.
        engine.push(StreamId(0), block_events(40, 0));
        engine.push(StreamId(0), block_events(44, 66_000));
        engine.finish_stream(StreamId(0), 2 * 66_000);
        engine.wait_finished(StreamId(0));

        let mut reference = pipelines(1).pop().unwrap();
        let mut expected = Vec::new();
        expected.extend(reference.push(&block_events(40, 0)));
        expected.extend(reference.push(&block_events(44, 66_000)));
        expected.extend(reference.finish(2 * 66_000));

        let first = engine.take_results(StreamId(0));
        assert_eq!(first, expected, "everything is available after wait_finished");
        assert!(engine.take_results(StreamId(0)).is_empty(), "frames are taken exactly once");
        let out = engine.join();
        assert!(out.streams[0].is_empty(), "join does not repeat taken frames");
        assert_eq!(out.snapshot.frames_out(), expected.len() as u64);
    }

    #[test]
    fn detach_retires_a_stream_and_ids_are_not_reused() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(2));
        engine.push(StreamId(0), block_events(40, 0));
        engine.finish_stream(StreamId(0), 66_000);
        engine.wait_finished(StreamId(0));
        let frames = engine.detach(StreamId(0));
        assert!(!frames.is_empty());

        // The slot survives as a tombstone; a new attach gets a new id.
        let fresh = engine.attach(pipelines(1).pop().unwrap());
        assert_eq!(fresh, StreamId(2));
        assert_eq!(engine.num_streams(), 3);
        let snap = engine.snapshot();
        assert!(snap.streams[0].detached);
        assert!(!snap.streams[1].detached);

        engine.finish_stream(StreamId(1), 0);
        engine.finish_stream(fresh, 0);
        let out = engine.join();
        assert_eq!(out.streams.len(), 3);
        assert!(out.streams[0].is_empty(), "detached stream was already drained");
    }

    #[test]
    #[should_panic(expected = "before its finish was processed")]
    fn detach_before_finish_panics() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        engine.detach(StreamId(0));
    }

    #[test]
    fn detach_with_state_resumes_bit_identically_and_keeps_totals() {
        let chunks: Vec<Vec<Event>> =
            (0..6u64).map(|k| block_events(40 + 3 * k as u16, k * 66_000)).collect();
        let span = 8 * 66_000;

        let mut reference = pipelines(1).pop().unwrap();
        let mut expected = Vec::new();
        for chunk in &chunks {
            expected.extend(reference.push(chunk));
        }
        expected.extend(reference.finish(span));

        // Stream 0 is severed mid-stream; stream 1 runs uninterrupted on
        // the same engine, proving the hand-off does not disturb peers.
        let engine = Engine::new(EngineConfig::with_workers(2), pipelines(2));
        for chunk in &chunks[..3] {
            engine.push(StreamId(0), chunk.clone());
        }
        for chunk in &chunks {
            engine.push(StreamId(1), chunk.clone());
        }
        let handoff = engine.detach_with_state(StreamId(0));
        assert_eq!(handoff.totals.chunks_in, 3);
        assert_eq!(handoff.state.backend, "ebbiot");

        // Rebuild the pipeline from the checkpoint (as a cross-process
        // recovery would) and resume it as a new stream.
        let config = EbbiotConfig::paper_default(SensorGeometry::davis240());
        let tracker = ebbiot_core::OverlapTracker::new(config.geometry, config.ot);
        let restored = Pipeline::restore(config, tracker, &handoff.state).unwrap();
        let resumed = engine.attach_with_state(restored, handoff.totals);
        for chunk in &chunks[3..] {
            engine.push(resumed, chunk.clone());
        }
        engine.finish_stream(resumed, span);
        engine.finish_stream(StreamId(1), span);
        let out = engine.join();

        let mut combined = handoff.frames.clone();
        combined.extend(out.streams[resumed.0].iter().cloned());
        assert_eq!(combined, expected, "severed + resumed equals uninterrupted");
        assert_eq!(out.streams[1], expected, "peer stream is undisturbed");
        let resumed_snap = &out.snapshot.streams[resumed.0];
        assert_eq!(resumed_snap.chunks_in, 6, "totals carried across the hand-off");
        assert_eq!(resumed_snap.events_in, chunks.iter().map(|c| c.len() as u64).sum::<u64>());
        assert_eq!(resumed_snap.frames_out, expected.len() as u64);
        assert!(out.snapshot.streams[0].detached);
    }

    #[test]
    #[should_panic(expected = "after finish_stream")]
    fn detach_with_state_after_finish_panics() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        engine.finish_stream(StreamId(0), 66_000);
        let _ = engine.detach_with_state(StreamId(0));
    }

    #[test]
    #[should_panic(expected = "before finish_stream")]
    fn wait_finished_without_finish_panics() {
        let engine = Engine::new(EngineConfig::with_workers(1), pipelines(1));
        engine.wait_finished(StreamId(0));
    }

    #[test]
    fn jittered_schedule_is_still_bit_identical() {
        // The jitter knob perturbs worker acquisition order (yields,
        // micro-sleeps, forced steals) — output must not move.
        let chunks: Vec<Vec<Event>> =
            (0..6u64).map(|k| block_events(40 + 4 * k as u16, k * 66_000)).collect();
        let span = 8 * 66_000;
        let mut reference = pipelines(1).pop().unwrap();
        let mut expected = Vec::new();
        for chunk in &chunks {
            expected.extend(reference.push(chunk));
        }
        expected.extend(reference.finish(span));

        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let config = EngineConfig {
                workers: 3,
                queue_capacity: 2,
                batch_chunks: 2,
                schedule_jitter: Some(seed),
            };
            let engine = Engine::new(config, pipelines(3));
            for chunk in &chunks {
                for s in 0..3 {
                    engine.push(StreamId(s), chunk.clone());
                }
            }
            for s in 0..3 {
                engine.finish_stream(StreamId(s), span);
            }
            let out = engine.join();
            for (s, frames) in out.streams.iter().enumerate() {
                assert_eq!(frames, &expected, "seed {seed} stream {s}");
            }
        }
    }

    #[test]
    fn dropping_an_unjoined_engine_does_not_hang_workers() {
        // The replay error path drops the engine without join(); the
        // Drop impl must signal shutdown so workers exit. If they did
        // not, this test would leak threads (and under a worker-panic
        // regime, hang a later join) — success here is simply that the
        // drop returns and the process stays healthy.
        let engine = Engine::new(EngineConfig::with_workers(2), pipelines(2));
        engine.push(StreamId(0), block_events(40, 0));
        drop(engine);
    }
}

//! Fleet driving: feed K recorded/simulated streams through an engine
//! and measure aggregate throughput.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ebbiot_core::{Pipeline, Tracker};
use ebbiot_events::{Event, Micros};
use ebbiot_telemetry::Registry;

use crate::engine::{Engine, EngineConfig, EngineOutput, StreamId};

/// One camera's input to a fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetStream<'a> {
    /// The stream's time-ordered events.
    pub events: &'a [Event],
    /// Span handed to the stream's `finish` (usually the recording
    /// duration), so trailing silence still advances the tracker.
    pub span_us: Micros,
}

/// Knobs for [`Engine::run_fleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetOptions {
    /// Worker threads.
    pub workers: usize,
    /// Per-stream queue bound, in chunks.
    pub queue_capacity: usize,
    /// Events per routed chunk (the granularity at which streams
    /// interleave; clamped to at least 1).
    pub chunk_events: usize,
}

impl Default for FleetOptions {
    fn default() -> Self {
        let EngineConfig { workers, queue_capacity, .. } = EngineConfig::default();
        Self { workers, queue_capacity, chunk_events: 4096 }
    }
}

/// Result of a fleet run: the engine's output plus wall-clock timing.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// The engine's per-stream outputs and final snapshot.
    pub output: EngineOutput,
    /// Wall-clock time from first push to full drain.
    pub elapsed: Duration,
}

impl FleetRun {
    /// Total events processed.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.output.snapshot.events_in()
    }

    /// Total frames emitted.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.output.snapshot.frames_out()
    }

    /// Aggregate event throughput over the run, events/second (0 for a
    /// zero-duration run rather than NaN or a bogus near-infinite rate).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.events() as f64 / secs
        } else {
            0.0
        }
    }

    /// Aggregate frame throughput over the run, frames/second (0 for a
    /// zero-duration run).
    #[must_use]
    pub fn frames_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.frames() as f64 / secs
        } else {
            0.0
        }
    }
}

impl<T: Tracker + Send + 'static> Engine<T> {
    /// Runs a whole fleet to completion: builds an engine over
    /// `pipelines` (one per entry of `streams`), feeds every stream's
    /// events in `chunk_events`-sized chunks interleaved round-robin
    /// across cameras (so the router genuinely multiplexes), finishes
    /// each stream with its span, and drains.
    ///
    /// The returned per-stream outputs are bit-for-bit identical to
    /// running each pipeline sequentially over its events, regardless of
    /// `options.workers`.
    ///
    /// ```
    /// use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
    /// use ebbiot_engine::{Engine, FleetOptions, FleetStream};
    /// use ebbiot_events::{Event, SensorGeometry};
    ///
    /// let config = EbbiotConfig::paper_default(SensorGeometry::davis240());
    /// let cameras: Vec<Vec<Event>> = (0..3u16)
    ///     .map(|cam| (0..200).map(|i| Event::on(40 + cam * 8 + i % 16, 80, u64::from(i))).collect())
    ///     .collect();
    /// let streams: Vec<FleetStream> = cameras
    ///     .iter()
    ///     .map(|events| FleetStream { events, span_us: 132_000 })
    ///     .collect();
    ///
    /// let pipelines = (0..3).map(|_| EbbiotPipeline::new(config.clone())).collect();
    /// let run = Engine::run_fleet(
    ///     pipelines,
    ///     &streams,
    ///     &FleetOptions { workers: 2, ..FleetOptions::default() },
    /// );
    /// assert_eq!(run.output.streams.len(), 3);
    /// assert_eq!(run.events(), 600);
    ///
    /// // Identical to processing each camera alone, any worker count.
    /// let alone = EbbiotPipeline::new(config).process_recording(&cameras[0], 132_000);
    /// assert_eq!(run.output.streams[0], alone);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `pipelines` and `streams` lengths differ, or when a
    /// stream's events are not time-ordered.
    #[must_use]
    pub fn run_fleet(
        pipelines: Vec<Pipeline<T>>,
        streams: &[FleetStream<'_>],
        options: &FleetOptions,
    ) -> FleetRun {
        Self::run_fleet_with_registry(pipelines, streams, options, Arc::new(Registry::new()))
    }

    /// Like [`Self::run_fleet`], but registers the engine's contention
    /// metrics in a caller-provided [`Registry`] so the experiment
    /// harness can read queue-wait / queue-depth / collector histograms
    /// (and any stage telemetry the pipelines carry) after the run.
    ///
    /// # Panics
    ///
    /// Panics like [`Self::run_fleet`].
    #[must_use]
    pub fn run_fleet_with_registry(
        pipelines: Vec<Pipeline<T>>,
        streams: &[FleetStream<'_>],
        options: &FleetOptions,
        registry: Arc<Registry>,
    ) -> FleetRun {
        assert_eq!(pipelines.len(), streams.len(), "one pipeline per fleet stream");
        let config = EngineConfig {
            workers: options.workers,
            queue_capacity: options.queue_capacity,
            ..EngineConfig::default()
        };
        let chunk = options.chunk_events.max(1);

        let started = Instant::now();
        let engine = Engine::with_registry(config, pipelines, registry);
        let mut offsets = vec![0usize; streams.len()];
        loop {
            let mut progressed = false;
            for (i, stream) in streams.iter().enumerate() {
                if offsets[i] < stream.events.len() {
                    let end = (offsets[i] + chunk).min(stream.events.len());
                    engine.push(StreamId(i), stream.events[offsets[i]..end].to_vec());
                    offsets[i] = end;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        for (i, stream) in streams.iter().enumerate() {
            engine.finish_stream(StreamId(i), stream.span_us);
        }
        let output = engine.join();
        FleetRun { output, elapsed: started.elapsed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
    use ebbiot_events::SensorGeometry;

    fn pipelines(n: usize) -> Vec<EbbiotPipeline> {
        let config = EbbiotConfig::paper_default(SensorGeometry::davis240());
        (0..n).map(|_| EbbiotPipeline::new(config.clone())).collect()
    }

    fn moving_block(seed: u16, frames: u64) -> Vec<Event> {
        let mut events = Vec::new();
        for f in 0..frames {
            for dy in 0..10u16 {
                for dx in 0..20u16 {
                    let x = 30 + seed % 40 + (f as u16) * 3 + dx;
                    events.push(Event::on(x, 70 + dy, f * 66_000 + u64::from(dy) * 7));
                }
            }
        }
        events
    }

    #[test]
    fn run_fleet_matches_sequential_processing() {
        let recordings: Vec<Vec<Event>> = (0..4).map(|k| moving_block(k * 9, 5)).collect();
        let span = 6 * 66_000;
        let streams: Vec<FleetStream<'_>> =
            recordings.iter().map(|events| FleetStream { events, span_us: span }).collect();

        let expected: Vec<Vec<_>> = recordings
            .iter()
            .map(|events| pipelines(1).pop().unwrap().process_recording(events, span))
            .collect();

        for workers in [1, 2, 8] {
            let run = Engine::run_fleet(
                pipelines(4),
                &streams,
                &FleetOptions { workers, queue_capacity: 2, chunk_events: 100 },
            );
            assert_eq!(run.output.streams, expected, "{workers} workers");
            assert_eq!(run.events(), recordings.iter().map(|r| r.len() as u64).sum::<u64>());
            assert!(run.frames() >= 4 * 6);
            assert!(run.events_per_sec() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "one pipeline per fleet stream")]
    fn mismatched_fleet_sizes_panic() {
        let streams = [FleetStream { events: &[], span_us: 0 }];
        let _ = Engine::run_fleet(pipelines(2), &streams, &FleetOptions::default());
    }
}

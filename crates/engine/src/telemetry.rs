//! Engine contention telemetry — the instruments that explain where
//! parallel speedup goes.
//!
//! The engine always carries an [`EngineTelemetry`] (share one across
//! components with [`crate::Engine::with_registry`]): a handful of
//! relaxed atomic adds per *chunk* is noise next to the kernel work a
//! chunk performs, so unlike the per-stage pipeline telemetry there is
//! no off switch. Four views cover the contention story
//! (ARCHITECTURE.md §7):
//!
//! * **per worker** ([`WorkerTelemetry`]) — busy / acquire / idle /
//!   wall time, chunk counts and steals, accounted with telescoping
//!   timestamps so that `busy + acquire + idle == wall` holds *exactly*
//!   at worker exit (the determinism suite asserts equality, not a
//!   tolerance);
//! * **per chunk** — enqueue→dequeue latency and queue-depth
//!   distributions, plus collector reorder-buffer occupancy;
//! * **per stream** ([`StreamTelemetry`]) — cumulative queue wait and
//!   producer back-pressure blocking, labelled by camera;
//! * **scheduler** — steal counts, the jobs-per-acquisition batch-size
//!   histogram (how well batching amortizes hand-off), and a live
//!   ready-streams gauge.

use std::sync::Arc;

use ebbiot_telemetry::{Counter, Gauge, Histogram, Registry};

/// Chunk enqueue→dequeue latency histogram (nanoseconds).
pub const CHUNK_QUEUE_WAIT_METRIC: &str = "ebbiot_engine_chunk_queue_wait_nanoseconds";
/// Queue depth observed at each admission (chunks in flight).
pub const QUEUE_DEPTH_METRIC: &str = "ebbiot_engine_queue_depth_chunks";
/// Collector buffer occupancy after each append (frames awaiting drain).
pub const COLLECTOR_BUFFERED_METRIC: &str = "ebbiot_engine_collector_buffered_frames";
/// Stream acquisitions taken from another worker's deque.
pub const STEALS_METRIC: &str = "ebbiot_engine_steals_total";
/// Jobs drained per stream acquisition (batching effectiveness).
pub const BATCH_SIZE_METRIC: &str = "ebbiot_engine_batch_chunks";
/// Streams currently ready and awaiting a worker.
pub const READY_STREAMS_METRIC: &str = "ebbiot_engine_ready_streams";

/// Engine-wide instruments plus the registry they live in.
#[derive(Debug, Clone)]
pub struct EngineTelemetry {
    registry: Arc<Registry>,
    /// Chunk enqueue→dequeue latency (nanoseconds).
    pub queue_wait: Arc<Histogram>,
    /// Stream queue depth sampled at each admission.
    pub queue_depth: Arc<Histogram>,
    /// Collector buffer occupancy sampled after each append.
    pub collector_buffered: Arc<Histogram>,
    /// Stream acquisitions stolen from another worker's deque.
    pub steals: Arc<Counter>,
    /// Jobs drained per stream acquisition.
    pub batch_size: Arc<Histogram>,
    /// Streams ready and awaiting a worker, live.
    pub ready_streams: Arc<Gauge>,
}

impl EngineTelemetry {
    /// Registers (or retrieves) the engine-wide instruments in `registry`.
    #[must_use]
    pub fn register(registry: Arc<Registry>) -> Self {
        Self {
            queue_wait: registry.histogram(CHUNK_QUEUE_WAIT_METRIC, &[]),
            queue_depth: registry.histogram(QUEUE_DEPTH_METRIC, &[]),
            collector_buffered: registry.histogram(COLLECTOR_BUFFERED_METRIC, &[]),
            steals: registry.counter(STEALS_METRIC, &[]),
            batch_size: registry.histogram(BATCH_SIZE_METRIC, &[]),
            ready_streams: registry.gauge(READY_STREAMS_METRIC, &[]),
            registry,
        }
    }

    /// The registry the engine's metrics are registered in.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

/// One worker thread's time accounting.
///
/// Every nanosecond of the worker's life is attributed to exactly one of
/// `busy` (processing jobs), `acquire` (claiming stream ownership and
/// draining a batch) or `idle` (waiting for a ready stream), and `wall`
/// is stamped once at exit — so after [`crate::Engine::join`],
/// `busy + acquire + idle == wall` exactly.
#[derive(Debug, Clone)]
pub struct WorkerTelemetry {
    /// Nanoseconds spent processing jobs.
    pub busy: Arc<Counter>,
    /// Nanoseconds spent acquiring stream ownership and draining batches.
    pub acquire: Arc<Counter>,
    /// Nanoseconds spent waiting for a ready stream.
    pub idle: Arc<Counter>,
    /// Sum of the queue waits of the chunks this worker dequeued.
    pub queue_wait: Arc<Counter>,
    /// Worker lifetime in nanoseconds (written once, at exit).
    pub wall: Arc<Counter>,
    /// Chunks processed (finish jobs excluded).
    pub chunks: Arc<Counter>,
    /// Stream acquisitions taken from another worker's deque.
    pub steals: Arc<Counter>,
}

impl WorkerTelemetry {
    /// Registers (or retrieves) worker `index`'s counters.
    #[must_use]
    pub fn register(registry: &Registry, index: usize) -> Self {
        let worker = index.to_string();
        let labels: &[(&str, &str)] = &[("worker", &worker)];
        Self {
            busy: registry.counter("ebbiot_engine_worker_busy_nanoseconds_total", labels),
            acquire: registry.counter("ebbiot_engine_worker_acquire_nanoseconds_total", labels),
            idle: registry.counter("ebbiot_engine_worker_idle_nanoseconds_total", labels),
            queue_wait: registry
                .counter("ebbiot_engine_worker_queue_wait_nanoseconds_total", labels),
            wall: registry.counter("ebbiot_engine_worker_wall_nanoseconds_total", labels),
            chunks: registry.counter("ebbiot_engine_worker_chunks_total", labels),
            steals: registry.counter("ebbiot_engine_worker_steals_total", labels),
        }
    }
}

/// One stream's cumulative contention counters, labelled by camera
/// (`stream="cam03"`).
#[derive(Debug, Clone)]
pub struct StreamTelemetry {
    /// Total nanoseconds this stream's chunks sat queued.
    pub queue_wait: Arc<Counter>,
    /// Total nanoseconds producers spent blocked on the stream's gate.
    pub producer_block: Arc<Counter>,
}

impl StreamTelemetry {
    /// Registers (or retrieves) the counters for the stream labelled
    /// `name` (use the [`crate::StreamId`] display form).
    #[must_use]
    pub fn register(registry: &Registry, name: &str) -> Self {
        let labels: &[(&str, &str)] = &[("stream", name)];
        Self {
            queue_wait: registry
                .counter("ebbiot_engine_stream_queue_wait_nanoseconds_total", labels),
            producer_block: registry
                .counter("ebbiot_engine_stream_producer_block_nanoseconds_total", labels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_families_render_in_the_exposition() {
        let telemetry = EngineTelemetry::register(Arc::new(Registry::new()));
        telemetry.queue_wait.record(1_000);
        telemetry.queue_depth.record(3);
        telemetry.collector_buffered.record(16);
        telemetry.steals.inc();
        telemetry.batch_size.record(4);
        telemetry.ready_streams.set(2);
        let text = telemetry.registry().render();
        for family in [
            CHUNK_QUEUE_WAIT_METRIC,
            QUEUE_DEPTH_METRIC,
            COLLECTOR_BUFFERED_METRIC,
            BATCH_SIZE_METRIC,
        ] {
            assert!(text.contains(&format!("# TYPE {family} histogram")), "missing {family}");
        }
        assert!(text.contains(&format!("{STEALS_METRIC} 1")));
        assert!(text.contains(&format!("{READY_STREAMS_METRIC} 2")));
    }

    #[test]
    fn worker_and_stream_series_are_labelled() {
        let registry = Registry::new();
        let w1 = WorkerTelemetry::register(&registry, 1);
        w1.busy.add(5);
        w1.acquire.add(2);
        w1.chunks.inc();
        w1.steals.inc();
        StreamTelemetry::register(&registry, "cam02").queue_wait.add(9);
        let text = registry.render();
        assert!(text.contains("ebbiot_engine_worker_busy_nanoseconds_total{worker=\"1\"} 5"));
        assert!(text.contains("ebbiot_engine_worker_acquire_nanoseconds_total{worker=\"1\"} 2"));
        assert!(text.contains("ebbiot_engine_worker_chunks_total{worker=\"1\"} 1"));
        assert!(text.contains("ebbiot_engine_worker_steals_total{worker=\"1\"} 1"));
        assert!(
            text.contains("ebbiot_engine_stream_queue_wait_nanoseconds_total{stream=\"cam02\"} 9")
        );
    }

    #[test]
    fn register_is_idempotent_per_worker() {
        let registry = Registry::new();
        let a = WorkerTelemetry::register(&registry, 0);
        let b = WorkerTelemetry::register(&registry, 0);
        a.chunks.inc();
        assert_eq!(b.chunks.get(), 1);
    }
}

//! Multi-camera concurrent tracking engine with deterministic fan-out.
//!
//! The paper targets *fleets* of stationary neuromorphic sensors, each
//! feeding a low-complexity tracker. This crate runs N independent
//! camera streams concurrently over the streaming
//! [`Pipeline::push`](ebbiot_core::Pipeline::push) /
//! [`finish`](ebbiot_core::Pipeline::finish) API from `ebbiot_core`,
//! using nothing but `std` (threads, `Mutex`/`Condvar` — the
//! workspace is offline/vendored):
//!
//! * a [`StreamId`]-keyed **router** that appends incoming event chunks
//!   to per-stream bounded FIFO queues, with blocking ([`Engine::push`])
//!   or rejecting ([`Engine::try_push`]) back-pressure via
//!   [`ChunkGate`];
//! * a **work-stealing scheduler** (global injector + per-worker
//!   deques) over *stream* granularity: a ready stream is a schedulable
//!   unit exactly one worker owns at a time, drains a *batch* of queued
//!   chunks per acquisition, and migrates to whichever worker is free;
//! * a **worker pool** that acquires ready streams and drives each
//!   stream's own [`Pipeline`](ebbiot_core::Pipeline);
//! * an **output collector** that keeps every stream's `FrameResult`s in
//!   emission order, indexed by stream;
//! * per-stream and aggregate **stats** (events/s, frames/s, active
//!   trackers, queue depth high-water) through [`Engine::snapshot`];
//! * [`Engine::run_fleet`], the batteries-included entry point the
//!   `exp_fleet` experiment binary drives.
//!
//! The engine is source-agnostic: `run_fleet` feeds it from in-memory
//! recordings, `ebbiot_store`'s `Replayer` drives the same
//! [`Engine::push`]/[`Engine::finish_stream`] API from chunked on-disk
//! `EBST` readers, and `ebbiot_server` sessions [`Engine::attach`] /
//! [`Engine::detach`] streams on the *running* engine as TCP
//! connections come and go — `tests/store_replay_parity.rs` and
//! `tests/server_parity.rs` prove all paths produce bit-for-bit
//! identical output. A stream can also hand its *state* across:
//! [`Engine::detach_with_state`] returns a [`SessionHandoff`]
//! (checkpoint + totals + frames) and
//! [`Engine::attach_with_state`] resumes it on a running engine,
//! bit-identically — the `EBSS` snapshot story of ARCHITECTURE.md §8,
//! pinned by `tests/checkpoint_parity.rs`. `ARCHITECTURE.md` at the
//! workspace root diagrams the fan-out.
//!
//! # Determinism guarantee
//!
//! Engine output is **bit-for-bit identical to running each stream's
//! pipeline sequentially**, for any worker count, any chunk granularity
//! and any steal schedule. Three properties combine to give this:
//!
//! 1. **Exclusive ownership** — a ready stream is acquired by exactly
//!    one worker at a time; ownership may *migrate* between
//!    acquisitions, but only one thread ever advances a given pipeline,
//!    so there is no intra-stream racing to be ordered.
//! 2. **Per-stream FIFO queues** — each stream's jobs sit in one FIFO
//!    queue drained in submission order by whichever worker owns the
//!    stream, and the chunked streaming `Pipeline` is itself proven
//!    chunking-invariant (`push`/`finish` ≡ `process_recording`, see
//!    the core crate's parity tests).
//! 3. **Per-stream collection** — results are appended to the stream's
//!    own ordered buffer and returned indexed by [`StreamId`], so
//!    cross-stream completion order (the only thing scheduling can
//!    affect) never shows up in the output.
//!
//! Which worker drains which batch, and how often streams change hands,
//! is therefore invisible — `tests/engine_determinism.rs` at the
//! workspace root checks exactly this: a 16-camera fleet on 1, 2 and 8
//! workers against sequential `process_recording`, for every registered
//! back-end, plus a proptest that perturbs the schedule with
//! [`EngineConfig::schedule_jitter`] (random yields, micro-sleeps and
//! forced steals) and random attach/detach interleavings.
//!
//! # Example
//!
//! ```
//! use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
//! use ebbiot_engine::{Engine, EngineConfig, StreamId};
//! use ebbiot_events::{Event, SensorGeometry};
//!
//! let config = EbbiotConfig::paper_default(SensorGeometry::davis240());
//! let pipelines = (0..4).map(|_| EbbiotPipeline::new(config.clone())).collect();
//! let engine = Engine::new(EngineConfig::with_workers(2), pipelines);
//!
//! // Each camera feed pushes independently; back-pressure per stream.
//! let events: Vec<Event> =
//!     (0..200).map(|i| Event::on(60 + (i % 20) as u16, 80 + (i / 20) as u16, i)).collect();
//! engine.push(StreamId(0), events);
//! for cam in 0..4 {
//!     engine.finish_stream(StreamId(cam), 200_000);
//! }
//! let out = engine.join();
//! assert_eq!(out.streams.len(), 4);
//! assert!(out.streams[0][0].num_events > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backpressure;
pub mod engine;
pub mod fleet;
pub mod telemetry;

pub use backpressure::ChunkGate;
pub use engine::{
    Engine, EngineConfig, EngineOutput, RejectedChunk, SchedulerSnapshot, SessionHandoff, Snapshot,
    StreamId, StreamSnapshot, StreamTotals, WorkerSnapshot,
};
pub use fleet::{FleetOptions, FleetRun, FleetStream};
pub use telemetry::{EngineTelemetry, StreamTelemetry, WorkerTelemetry};

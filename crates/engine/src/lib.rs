//! Multi-camera concurrent tracking engine with deterministic fan-out.
//!
//! The paper targets *fleets* of stationary neuromorphic sensors, each
//! feeding a low-complexity tracker. This crate runs N independent
//! camera streams concurrently over the streaming
//! [`Pipeline::push`](ebbiot_core::Pipeline::push) /
//! [`finish`](ebbiot_core::Pipeline::finish) API from `ebbiot_core`,
//! using nothing but `std` (threads, `mpsc`, `Mutex`/`Condvar` — the
//! workspace is offline/vendored):
//!
//! * a [`StreamId`]-keyed **router** that shards incoming event chunks
//!   to per-stream bounded queues, with blocking ([`Engine::push`]) or
//!   rejecting ([`Engine::try_push`]) back-pressure via [`ChunkGate`];
//! * a **worker pool** that drains the queues and drives each stream's
//!   own [`Pipeline`](ebbiot_core::Pipeline);
//! * an **output collector** that keeps every stream's `FrameResult`s in
//!   emission order, indexed by stream;
//! * per-stream and aggregate **stats** (events/s, frames/s, active
//!   trackers, queue depth high-water) through [`Engine::snapshot`];
//! * [`Engine::run_fleet`], the batteries-included entry point the
//!   `exp_fleet` experiment binary drives.
//!
//! The engine is source-agnostic: `run_fleet` feeds it from in-memory
//! recordings, `ebbiot_store`'s `Replayer` drives the same
//! [`Engine::push`]/[`Engine::finish_stream`] API from chunked on-disk
//! `EBST` readers, and `ebbiot_server` sessions [`Engine::attach`] /
//! [`Engine::detach`] streams on the *running* engine as TCP
//! connections come and go — `tests/store_replay_parity.rs` and
//! `tests/server_parity.rs` prove all paths produce bit-for-bit
//! identical output. A stream can also hand its *state* across:
//! [`Engine::detach_with_state`] returns a [`SessionHandoff`]
//! (checkpoint + totals + frames) and
//! [`Engine::attach_with_state`] resumes it on a running engine,
//! bit-identically — the `EBSS` snapshot story of ARCHITECTURE.md §8,
//! pinned by `tests/checkpoint_parity.rs`. `ARCHITECTURE.md` at the
//! workspace root diagrams the fan-out.
//!
//! # Determinism guarantee
//!
//! Engine output is **bit-for-bit identical to running each stream's
//! pipeline sequentially**, for any worker count and any chunk
//! granularity. Three properties combine to give this:
//!
//! 1. **Stream pinning** — stream `i` is owned by worker
//!    `i % workers`, so exactly one thread ever advances a given
//!    pipeline; there is no intra-stream racing to be ordered.
//! 2. **FIFO routing** — each worker drains one FIFO job queue, so a
//!    stream's chunks are processed in submission order, and the
//!    chunked streaming `Pipeline` is itself proven chunking-invariant
//!    (`push`/`finish` ≡ `process_recording`, see the core crate's
//!    parity tests).
//! 3. **Per-stream collection** — results are appended to the stream's
//!    own ordered buffer and returned indexed by [`StreamId`], so
//!    cross-stream completion order (the only thing scheduling can
//!    affect) never shows up in the output.
//!
//! `tests/engine_determinism.rs` at the workspace root checks exactly
//! this: a 16-camera fleet on 1, 2 and 8 workers against sequential
//! `process_recording`, for every registered back-end.
//!
//! # Example
//!
//! ```
//! use ebbiot_core::{EbbiotConfig, EbbiotPipeline};
//! use ebbiot_engine::{Engine, EngineConfig, StreamId};
//! use ebbiot_events::{Event, SensorGeometry};
//!
//! let config = EbbiotConfig::paper_default(SensorGeometry::davis240());
//! let pipelines = (0..4).map(|_| EbbiotPipeline::new(config.clone())).collect();
//! let engine = Engine::new(EngineConfig::with_workers(2), pipelines);
//!
//! // Each camera feed pushes independently; back-pressure per stream.
//! let events: Vec<Event> =
//!     (0..200).map(|i| Event::on(60 + (i % 20) as u16, 80 + (i / 20) as u16, i)).collect();
//! engine.push(StreamId(0), events);
//! for cam in 0..4 {
//!     engine.finish_stream(StreamId(cam), 200_000);
//! }
//! let out = engine.join();
//! assert_eq!(out.streams.len(), 4);
//! assert!(out.streams[0][0].num_events > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backpressure;
pub mod engine;
pub mod fleet;
pub mod telemetry;

pub use backpressure::ChunkGate;
pub use engine::{
    Engine, EngineConfig, EngineOutput, RejectedChunk, SessionHandoff, Snapshot, StreamId,
    StreamSnapshot, StreamTotals, WorkerSnapshot,
};
pub use fleet::{FleetOptions, FleetRun, FleetStream};
pub use telemetry::{EngineTelemetry, StreamTelemetry, WorkerTelemetry};

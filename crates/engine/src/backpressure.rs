//! Bounded admission gates — the engine's per-stream back-pressure.
//!
//! Each camera stream owns one [`ChunkGate`] sized in *chunks in flight*.
//! The router acquires a slot before handing a chunk to the worker pool
//! and the worker releases it after the chunk has been pushed through the
//! stream's pipeline, so a slow stream throttles exactly its own
//! producer: [`ChunkGate::acquire`] blocks, [`ChunkGate::try_acquire`]
//! rejects, and neither ever drops or reorders work. The gate also
//! records the queue-depth high-water mark surfaced by the engine's
//! `Snapshot`.
//!
//! The gate is purely the back-pressure *ledger*: it bounds how much a
//! producer may run ahead, independent of scheduling. Queued chunks
//! live in the stream's own FIFO job queue, the work-stealing
//! scheduler decides which worker drains them (a whole batch per
//! acquisition), and the owning worker releases one slot per chunk as
//! it completes — so the admission contract is identical whether the
//! stream migrates between workers or not.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Recovers a mutex guard even when another thread panicked while holding
/// the lock — the engine's own poison flag, not std's, decides liveness.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug)]
struct GateState {
    in_flight: usize,
    high_water: usize,
    poisoned: bool,
}

/// A counting gate bounding how many chunks of one stream may be queued
/// or in processing at once.
#[derive(Debug)]
pub struct ChunkGate {
    capacity: usize,
    state: Mutex<GateState>,
    available: Condvar,
}

impl ChunkGate {
    /// Creates a gate admitting at most `capacity` chunks in flight.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero (a zero-capacity stream could never
    /// make progress).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "chunk gate capacity must be at least 1");
        Self {
            capacity,
            state: Mutex::new(GateState { in_flight: 0, high_water: 0, poisoned: false }),
            available: Condvar::new(),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquires one slot, blocking while the stream is at capacity, and
    /// returns the in-flight depth *including* the admitted chunk (the
    /// sample the engine's queue-depth histogram records).
    ///
    /// # Panics
    ///
    /// Panics when the gate was [`poisoned`](Self::poison) by a worker
    /// failure — a blocked producer must not wait forever on an engine
    /// that can no longer drain it.
    pub fn acquire(&self) -> usize {
        let mut state = lock(&self.state);
        loop {
            assert!(!state.poisoned, "engine worker failed; stream queue will never drain");
            if state.in_flight < self.capacity {
                state.in_flight += 1;
                state.high_water = state.high_water.max(state.in_flight);
                return state.in_flight;
            }
            state = self.available.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Acquires one slot without blocking; `None` means the stream is at
    /// capacity and the chunk was *not* admitted, `Some(depth)` reports
    /// the in-flight depth like [`Self::acquire`].
    ///
    /// # Panics
    ///
    /// Panics when the gate was poisoned, like [`Self::acquire`].
    #[must_use]
    pub fn try_acquire(&self) -> Option<usize> {
        let mut state = lock(&self.state);
        assert!(!state.poisoned, "engine worker failed; stream queue will never drain");
        if state.in_flight < self.capacity {
            state.in_flight += 1;
            state.high_water = state.high_water.max(state.in_flight);
            Some(state.in_flight)
        } else {
            None
        }
    }

    /// Releases one slot, waking a blocked producer.
    ///
    /// # Panics
    ///
    /// Panics when no slot is held (release without acquire).
    pub fn release(&self) {
        let mut state = lock(&self.state);
        assert!(state.in_flight > 0, "chunk gate released more slots than were acquired");
        state.in_flight -= 1;
        drop(state);
        self.available.notify_one();
    }

    /// Chunks currently in flight (queued or being processed).
    #[must_use]
    pub fn depth(&self) -> usize {
        lock(&self.state).in_flight
    }

    /// Highest in-flight depth observed so far.
    #[must_use]
    pub fn high_water(&self) -> usize {
        lock(&self.state).high_water
    }

    /// Marks the gate dead and wakes every blocked producer (which then
    /// panics instead of hanging). Called when a worker thread fails.
    pub fn poison(&self) {
        lock(&self.state).poisoned = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn slots_are_counted_and_high_water_tracked() {
        let gate = ChunkGate::new(2);
        assert_eq!(gate.capacity(), 2);
        assert_eq!(gate.try_acquire(), Some(1));
        assert_eq!(gate.try_acquire(), Some(2));
        assert_eq!(gate.try_acquire(), None, "full gate rejects");
        assert_eq!(gate.depth(), 2);
        assert_eq!(gate.high_water(), 2);
        gate.release();
        assert_eq!(gate.depth(), 1);
        assert_eq!(gate.try_acquire(), Some(2));
        assert_eq!(gate.high_water(), 2, "high water is monotone");
    }

    #[test]
    fn acquire_blocks_until_release() {
        let gate = Arc::new(ChunkGate::new(1));
        gate.acquire();
        let acquired = Arc::new(AtomicBool::new(false));
        let (g, flag) = (Arc::clone(&gate), Arc::clone(&acquired));
        let producer = std::thread::spawn(move || {
            g.acquire();
            flag.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!acquired.load(Ordering::SeqCst), "producer blocks while full");
        gate.release();
        producer.join().unwrap();
        assert!(acquired.load(Ordering::SeqCst));
        assert_eq!(gate.depth(), 1);
    }

    #[test]
    fn poison_wakes_and_fails_blocked_producers() {
        let gate = Arc::new(ChunkGate::new(1));
        gate.acquire();
        let g = Arc::clone(&gate);
        let producer = std::thread::spawn(move || g.acquire());
        std::thread::sleep(Duration::from_millis(20));
        gate.poison();
        assert!(producer.join().is_err(), "blocked producer panics instead of hanging");
    }

    #[test]
    #[should_panic(expected = "more slots")]
    fn release_without_acquire_panics() {
        ChunkGate::new(1).release();
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = ChunkGate::new(0);
    }
}

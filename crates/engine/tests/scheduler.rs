//! Work-stealing scheduler smoke tests for degenerate configurations:
//! oversubscribed worker pools (`workers > streams`, `workers =
//! 2×cores`) must drain cleanly — no deadlock, no leaked streams, no
//! lost or reordered frames — because the scheduler's shutdown drain
//! and exclusive stream ownership hold at any worker:stream ratio. The
//! CI "Scheduler" step runs this file alongside the jitter proptests in
//! `tests/engine_determinism.rs`.

use ebbiot_core::{EbbiotConfig, EbbiotPipeline, FrameResult, OverlapTracker};
use ebbiot_engine::{Engine, EngineConfig, StreamId};
use ebbiot_events::{Event, SensorGeometry};

const FRAMES: u64 = 6;
const SPAN: u64 = (FRAMES + 1) * 66_000;

fn pipelines(n: usize) -> Vec<EbbiotPipeline> {
    let config = EbbiotConfig::paper_default(SensorGeometry::davis240());
    (0..n).map(|_| EbbiotPipeline::new(config.clone())).collect()
}

/// Dense moving block surviving the median filter.
fn frame_chunk(f: u64) -> Vec<Event> {
    let mut events = Vec::new();
    for dy in 0..12u16 {
        for dx in 0..24u16 {
            events.push(Event::on(40 + 3 * f as u16 + dx, 80 + dy, f * 66_000 + u64::from(dy)));
        }
    }
    events
}

fn expected() -> Vec<FrameResult> {
    let mut reference = pipelines(1).pop().unwrap();
    let mut out = Vec::new();
    for f in 0..FRAMES {
        out.extend(reference.push(&frame_chunk(f)));
    }
    out.extend(reference.finish(SPAN));
    out
}

/// Drives `streams` sessions through `engine` and asserts every one is
/// complete, ordered and identical to the sequential reference.
fn drive_and_check(engine: Engine<OverlapTracker>, streams: usize) {
    let expected = expected();
    for f in 0..FRAMES {
        for s in 0..streams {
            engine.push(StreamId(s), frame_chunk(f));
        }
    }
    for s in 0..streams {
        engine.finish_stream(StreamId(s), SPAN);
    }
    let out = engine.join();
    assert_eq!(out.streams.len(), streams, "no leaked or missing stream slots");
    for (s, frames) in out.streams.iter().enumerate() {
        assert_eq!(frames, &expected, "stream {s} complete and in order");
    }
    assert!(out.snapshot.streams.iter().all(|s| s.finished), "every stream drained its finish");
}

#[test]
fn more_workers_than_streams_drains_without_deadlock() {
    // Construction-time pipelines clamp the pool, so oversubscribe via
    // attach: an engine built empty keeps all 8 workers, then only 2
    // streams ever exist — 6 workers never acquire anything and must
    // still park and exit cleanly at shutdown.
    let engine: Engine<OverlapTracker> = Engine::new(
        EngineConfig { workers: 8, queue_capacity: 4, ..EngineConfig::default() },
        Vec::new(),
    );
    assert_eq!(engine.num_workers(), 8);
    for pipeline in pipelines(2) {
        engine.attach(pipeline);
    }
    drive_and_check(engine, 2);
}

#[test]
fn twice_the_cores_drains_without_deadlock() {
    // More workers than the machine has cores: acquisition and steal
    // scans contend on genuinely preempted threads.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workers = 2 * cores;
    let engine: Engine<OverlapTracker> = Engine::new(
        EngineConfig { workers, queue_capacity: 2, ..EngineConfig::default() },
        Vec::new(),
    );
    assert_eq!(engine.num_workers(), workers);
    let streams = workers + 1; // more streams than workers, too
    for pipeline in pipelines(streams) {
        engine.attach(pipeline);
    }
    drive_and_check(engine, streams);
}

#[test]
fn oversubscribed_and_jittered_still_drains() {
    // The worst of both: oversubscription plus schedule jitter (forced
    // steals, yields, micro-sleeps). Liveness and bit-exactness both
    // hold.
    let engine: Engine<OverlapTracker> = Engine::new(
        EngineConfig {
            workers: 6,
            queue_capacity: 1,
            batch_chunks: 1,
            schedule_jitter: Some(0xC0FFEE),
        },
        Vec::new(),
    );
    for pipeline in pipelines(3) {
        engine.attach(pipeline);
    }
    drive_and_check(engine, 3);
}

#[test]
fn detach_mid_run_does_not_leak_ready_streams() {
    // A stream detached with queued peers still in flight must leave
    // the ready set consistent: the remaining streams finish normally
    // and join() drains everything.
    let engine: Engine<OverlapTracker> = Engine::new(
        EngineConfig { workers: 4, queue_capacity: 4, ..EngineConfig::default() },
        Vec::new(),
    );
    for pipeline in pipelines(3) {
        engine.attach(pipeline);
    }
    let expected = expected();
    for f in 0..FRAMES {
        for s in 0..3 {
            engine.push(StreamId(s), frame_chunk(f));
        }
    }
    engine.finish_stream(StreamId(1), SPAN);
    engine.wait_finished(StreamId(1));
    let detached = engine.detach(StreamId(1));
    assert_eq!(detached, expected, "detached stream handed over all frames");

    engine.finish_stream(StreamId(0), SPAN);
    engine.finish_stream(StreamId(2), SPAN);
    let out = engine.join();
    assert_eq!(out.streams[0], expected);
    assert_eq!(out.streams[2], expected);
    assert!(out.streams[1].is_empty(), "detached stream already drained");
    assert!(out.snapshot.streams[1].detached);
}
